package spacebounds

import (
	"errors"
	"testing"
	"time"
)

// newFaultFixture opens a small store with injection disabled (ticks are
// driven by hand) and returns it with a fresh injector state.
func newFaultFixture(t *testing.T, shards ...string) (*Store, *injectorState) {
	t.Helper()
	specs := make([]ShardSpec, 0, len(shards))
	for _, name := range shards {
		specs = append(specs, ShardSpec{Name: name})
	}
	s, err := Open(Options{ValueSize: 32, Shards: specs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, newInjectorState(1)
}

// TestInjectorSkipsEmptyShardList pins the empty-topology guard: a tick that
// observes no routable shard (reconfiguration can transiently retire every
// route) must be a no-op instead of panicking in rng.Intn(0).
func TestInjectorSkipsEmptyShardList(t *testing.T) {
	s, st := newFaultFixture(t, "a")
	s.set.Router().MarkRetired("a")
	if got := len(s.set.Shards()); got != 0 {
		t.Fatalf("fixture still has %d shards; want an empty list", got)
	}
	opts := FaultOptions{Interval: time.Millisecond}
	for i := 0; i < 8; i++ {
		s.faults.tick(s, st, time.Now(), opts) // must not panic
	}
	if stats := s.faults.Stats(); stats.Crashes != 0 {
		t.Fatalf("crashes injected against an empty topology: %+v", stats)
	}
}

// TestInjectorPrunesRetiredShardBudget pins the budget-map hygiene: outages
// whose shard was retired are released (counted as RetiredOutages), and downIn
// never keeps entries for names absent from the re-read shard list — under
// reconfiguration churn the old code grew the map without bound.
func TestInjectorPrunesRetiredShardBudget(t *testing.T) {
	s, st := newFaultFixture(t, "a", "b")
	now := time.Now()
	st.down = []outage{{since: now, node: s.set.Shard("a").Base, shard: "a"}}
	st.downIn = map[string]int{"a": 1, "ghost": 3} // "ghost" simulates accumulated stale entries
	s.set.Router().MarkRetired("a")

	s.faults.tick(s, st, now, FaultOptions{Interval: time.Millisecond})

	if stats := s.faults.Stats(); stats.RetiredOutages != 1 {
		t.Fatalf("retired outage not released: %+v", stats)
	}
	for name := range st.downIn {
		if name != "b" {
			t.Fatalf("downIn keeps entry for non-live shard %q: %v", name, st.downIn)
		}
	}
	for _, o := range st.down {
		if o.shard == "a" {
			t.Fatalf("outage for retired shard survived: %+v", st.down)
		}
	}
}

// TestInjectorKeepsBudgetOnFailedRestart pins the crash-budget accounting: a
// restart that fails while the node's region is still live must NOT release
// the outage — the node is still down, and freeing its budget slot would let
// the injector crash a second node in an F=1 shard and break its quorums. The
// restart failure is injected via the hook, so it is exactly the
// "down for reasons other than region retirement" case.
func TestInjectorKeepsBudgetOnFailedRestart(t *testing.T) {
	s, st := newFaultFixture(t, "a")
	sh := s.set.Shard("a")
	if err := s.set.Cluster().CrashObject(sh.Base); err != nil {
		t.Fatal(err)
	}
	s.faults.restartHook = func(node int) error { return errors.New("injected restart failure") }

	now := time.Now()
	st.down = []outage{{since: now.Add(-time.Hour), node: sh.Base, shard: "a"}}
	opts := FaultOptions{Interval: time.Millisecond, Downtime: time.Millisecond}
	for i := 0; i < 32; i++ {
		now = now.Add(2 * time.Millisecond)
		s.faults.tick(s, st, now, opts)
		if len(st.down) != 1 || st.downIn["a"] != 1 {
			t.Fatalf("tick %d: failed restart released the outage: down=%v downIn=%v", i, st.down, st.downIn)
		}
	}
	stats := s.faults.Stats()
	if stats.Crashes != 0 {
		t.Fatalf("injector crashed %d nodes while the shard's budget was exhausted (F=%d, 1 node already down)",
			stats.Crashes, sh.Reg.Config().F)
	}
	if stats.FailedRestarts == 0 {
		t.Fatalf("failed restart attempts not counted: %+v", stats)
	}
	if got := len(s.set.Cluster().CrashedObjects()); got != 1 {
		t.Fatalf("%d nodes down, want exactly the original 1 (F=%d)", got, sh.Reg.Config().F)
	}

	// Once the restart succeeds the budget is released — the same tick's
	// crash attempt may immediately use the freed slot, which is exactly the
	// point: budget moves only on success, never on failure.
	s.faults.restartHook = nil
	now = now.Add(2 * time.Millisecond)
	s.faults.tick(s, st, now, opts)
	stats = s.faults.Stats()
	if stats.Restarts != 1 {
		t.Fatalf("successful restart not counted: %+v", stats)
	}
	if len(st.down) != stats.Crashes || st.downIn["a"] != stats.Crashes {
		t.Fatalf("post-restart accounting off: down=%v downIn=%v stats=%+v", st.down, st.downIn, stats)
	}
	if got := len(s.set.Cluster().CrashedObjects()); got > sh.Reg.Config().F {
		t.Fatalf("%d nodes down after restart tick, budget is F=%d", got, sh.Reg.Config().F)
	}
}
