module spacebounds

go 1.24
