package spacebounds_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented is the godoc gate for the public facade:
// every exported top-level identifier in the root package — types, functions,
// methods, consts, vars, and exported struct fields — must carry a doc
// comment. It runs in the ordinary test job, so an undocumented export fails
// CI the same way a broken test does. (go vet catches malformed directives
// and mismatched comment placement; it does not require comments to exist,
// which is this test's job.)
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["spacebounds"]
	if !ok {
		t.Fatalf("package spacebounds not found in %v", pkgs)
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report(d.Pos(), "func "+funcName(d)+" has no doc comment")
				}
			case *ast.GenDecl:
				checkGenDecl(d, report)
			}
		}
	}
	for _, m := range missing {
		t.Error(m)
	}
	if len(missing) > 0 {
		t.Log("every exported identifier of the facade needs a doc comment; see the godoc conventions in CONTRIBUTING docs or existing files")
	}
}

// funcName renders a function or method name for the failure message.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + types(d.Recv.List[0].Type) + ") " + d.Name.Name
}

// types renders a receiver type expression.
func types(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return "*" + types(v.X)
	case *ast.IndexExpr:
		return types(v.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// checkGenDecl enforces docs on exported type/const/var declarations and on
// the exported fields of struct types.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name+" has no doc comment")
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							report(n.Pos(), "field "+s.Name.Name+"."+n.Name+" has no doc comment")
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), "const/var "+n.Name+" has no doc comment")
				}
			}
		}
	}
}
