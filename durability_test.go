package spacebounds

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/shard"
)

// trimmed strips the register padding so tests can compare against the short
// strings they wrote.
func trimmed(b []byte) string { return string(bytes.TrimRight(b, "\x00")) }

// checkBreakdown asserts the durability sample is summation-exact: the total
// equals the per-shard attributions plus the ledger remainder.
func checkBreakdown(t *testing.T, s *Store) (total int) {
	t.Helper()
	total, perShard, ledger := s.DurabilityBreakdown()
	sum := ledger
	for _, bits := range perShard {
		sum += bits
	}
	if total != sum {
		t.Fatalf("DurabilityBreakdown not summation-exact: total=%d, sum(perShard)+ledger=%d (perShard=%v ledger=%d)", total, sum, perShard, ledger)
	}
	return total
}

// TestStoreDurabilityRoundTrip closes a durable store and reopens it on the
// same directory: every acknowledged write must come back from disk alone,
// and the durable-bytes accounting must stay on its own summation-exact axis
// (never leaking into StorageBits, which measures the paper's volatile
// space).
func TestStoreDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		ValueSize: 32,
		Shards:    []ShardSpec{{Name: "a"}, {Name: "b"}},
		Durability: Durability{
			Dir:       dir,
			SyncEvery: 1,
		},
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := s.StorageBits()
	for i := 0; i < 3; i++ {
		if err := s.WriteKey(1, "a", []byte("alpha")); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteKey(2, "b", []byte("beta")); err != nil {
			t.Fatal(err)
		}
	}
	if got := checkBreakdown(t, s); got == 0 {
		t.Fatal("DurabilityBits = 0 after journaled writes")
	}
	if got := s.StorageBits(); got != base {
		t.Fatalf("StorageBits moved with durable bytes: %d -> %d; the axes must stay separate", base, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: a fresh process image with wiped memory, same directory.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for key, want := range map[string]string{"a": "alpha", "b": "beta"} {
		got, err := s2.ReadKey(3, key)
		if err != nil {
			t.Fatalf("ReadKey(%q) after reopen: %v", key, err)
		}
		if trimmed(got) != want {
			t.Fatalf("ReadKey(%q) after reopen = %q, want %q", key, trimmed(got), want)
		}
	}
	if got := checkBreakdown(t, s2); got == 0 {
		t.Fatal("DurabilityBits = 0 after reopen")
	}
}

// TestDurabilityBreakdownAttributesLedger runs a reconfiguration on a durable
// store: move records land on the ledger axis of the breakdown, per-object
// bytes follow their shards, and the sample stays summation-exact throughout.
func TestDurabilityBreakdownAttributesLedger(t *testing.T) {
	s, err := Open(Options{
		ValueSize:  32,
		Durability: Durability{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SplitShard("default"); err != nil {
		t.Fatal(err)
	}
	_, _, ledger := s.DurabilityBreakdown()
	if ledger == 0 {
		t.Fatal("ledger durable bits = 0 after a journaled move")
	}
	checkBreakdown(t, s)
}

// TestDurableRestartNodeReplaysFromDisk crashes a node of a durable store,
// writes while it is down, and restarts it: RestartNode must rebuild the node
// from the write-ahead log (fresh state + replay), after which reads are
// correct and the store keeps accounting exactly.
func TestDurableRestartNodeReplaysFromDisk(t *testing.T) {
	s, err := Open(Options{
		ValueSize:  32,
		Durability: Durability{Dir: t.TempDir(), SnapshotEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // crosses SnapshotEvery while the node is down
		if err := s.Write(1, []byte("during")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RestartNode(0); err != nil {
		t.Fatalf("RestartNode on durable store: %v", err)
	}
	got, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed(got) != "during" {
		t.Fatalf("Read after durable restart = %q, want %q", trimmed(got), "during")
	}
	checkBreakdown(t, s)
}

// failRunner fails every migration step with ErrInterrupted — the
// deterministic stand-in for a controller that dies immediately.
type failRunner struct{}

func (failRunner) RunOn(*shard.Shard, func(h *dsys.ClientHandle) error) error {
	return reconfig.ErrInterrupted
}
func (failRunner) Wait(func() bool) error { return reconfig.ErrInterrupted }
func (failRunner) Checkpoint() error      { return reconfig.ErrInterrupted }

// TestRestartNodeClassifiesResumeFailure is the regression test for the old
// RestartNode conflating its two jobs: a resume failure must be typed
// ErrResumeFailed (node is UP), never ErrRestartFailed, and must leave the
// interrupted move re-drivable by a plain ResumeMoves.
func TestRestartNodeClassifiesResumeFailure(t *testing.T) {
	s, err := Open(Options{ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Interrupt a split at its first step: the ledger now holds an in-flight,
	// interrupted move.
	s.reconMu.Lock()
	_, err = s.recon.Apply(failRunner{}, reconfig.Move{Kind: reconfig.MoveSplit, Shard: s.defKey})
	s.reconMu.Unlock()
	if !errors.Is(err, reconfig.ErrInterrupted) {
		t.Fatalf("interrupting Apply = %v, want ErrInterrupted", err)
	}
	if fl := s.recon.InFlight(); fl == nil || !fl.Interrupted {
		t.Fatalf("no interrupted in-flight move after injected failure: %+v", fl)
	}
	if err := s.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected resume failure")
	s.resumeHook = func() error { return injected }
	err = s.RestartNode(0)
	if !errors.Is(err, ErrResumeFailed) {
		t.Fatalf("RestartNode with failing resume = %v, want ErrResumeFailed", err)
	}
	if errors.Is(err, ErrRestartFailed) {
		t.Fatalf("resume failure misclassified as restart failure: %v", err)
	}
	if !errors.Is(err, injected) {
		// The wrapped cause must stay inspectable even though the class
		// sentinel leads the chain.
		t.Fatalf("RestartNode error lost the resume cause: %v", err)
	}
	// The node is back and the move is still re-drivable.
	if fl := s.recon.InFlight(); fl == nil || !fl.Interrupted {
		t.Fatalf("in-flight move lost after failed resume: %+v", fl)
	}
	s.resumeHook = nil
	resumed, err := s.ResumeMoves()
	if err != nil || resumed != 1 {
		t.Fatalf("ResumeMoves after failed resume = %d, %v; want 1, nil", resumed, err)
	}
	got, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed(got) != "v0" {
		t.Fatalf("Read after resumed split = %q, want %q", trimmed(got), "v0")
	}
}

// TestRestartNodeClassifiesRestartFailure: a restart-phase failure carries
// ErrRestartFailed, so callers can tell "node still down" from "node up,
// move not resumed".
func TestRestartNodeClassifiesRestartFailure(t *testing.T) {
	s, err := Open(Options{ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RestartNode(9999)
	if !errors.Is(err, ErrRestartFailed) {
		t.Fatalf("RestartNode(9999) = %v, want ErrRestartFailed", err)
	}
	if errors.Is(err, ErrResumeFailed) {
		t.Fatalf("restart failure misclassified as resume failure: %v", err)
	}
}

// TestFaultStatsCountFailedRestarts is the regression test for the injector
// silently discarding outages it cannot restart: drain a shard while one of
// its nodes is down, and the retired node's outage must surface in the stats
// (RetiredOutages — the region took the node with it; a restart failure on a
// still-live region would surface in FailedRestarts) instead of vanishing.
func TestFaultStatsCountFailedRestarts(t *testing.T) {
	s, err := Open(Options{
		ValueSize: 32,
		Faults:    FaultOptions{Interval: 2 * time.Millisecond, Downtime: 60 * time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Write(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Wait for the injector to take a node down.
	deadline := time.Now().Add(5 * time.Second)
	for s.FaultStats().Crashes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injector produced no crash")
		}
		time.Sleep(time.Millisecond)
	}
	// Retire the crashed node's region while it is down: the drain migrates
	// the shard onto a fresh region (quorums hold with one node down).
	if _, err := s.DrainShard("default"); err != nil {
		t.Fatalf("DrainShard with a node down: %v", err)
	}
	// At the tick after the drain, the injector must notice the region is
	// gone and release the outage — counted, not dropped.
	for s.FaultStats().RetiredOutages == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no RetiredOutages counted; stats = %+v", s.FaultStats())
		}
		time.Sleep(time.Millisecond)
	}
	st := s.FaultStats()
	if st.RetiredOutages == 0 {
		t.Fatalf("RetiredOutages = 0, want > 0 (stats %+v)", st)
	}
}
