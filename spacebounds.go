// Package spacebounds is the public facade of a reproduction of
// "Space Bounds for Reliable Storage: Fundamental Limits of Coding"
// (Spiegelman, Cassuto, Chockler, Keidar — PODC 2016).
//
// The paper proves that any lock-free regular register emulation over
// asynchronous fault-prone storage that treats its (symmetric) coding scheme
// as a black box must use Ω(min(f, c)·D) bits of storage, and gives an
// adaptive algorithm combining erasure coding with replication that matches
// the bound with O(min(f, c)·D) bits. This module implements the adaptive
// algorithm, the baselines it is compared against, the lower-bound adversary,
// and the simulation substrate they run on; see DESIGN.md for the full
// inventory.
//
// The facade exposes the most common entry point: a Store that multiplexes
// one or more named register shards over a shared simulated cluster and
// offers keyed Write/Read with per-shard storage-cost introspection. A Store
// opened without explicit shards behaves exactly like the original
// single-register facade. Lower-level control (custom scheduling policies,
// the adversary, workload generation, consistency checking) lives in the
// internal packages and is exercised through cmd/spacebench, cmd/adversary
// and the examples.
package spacebounds

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spacebounds/internal/autoshard"
	"spacebounds/internal/dsys"
	"spacebounds/internal/metrics"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
	"spacebounds/internal/wal"
)

// Algorithm selects a register emulation.
type Algorithm string

// Available algorithms.
const (
	// Adaptive is the paper's algorithm: erasure coding with a replication
	// fallback, storage O(min(f, c)·D), strongly regular, FW-terminating.
	Adaptive Algorithm = "adaptive"
	// Replication is the ABD baseline: 2f+1 full replicas, storage O(f·D).
	Replication Algorithm = "replication"
	// ErasureCoded is the pure coded baseline: storage Θ(c·D) under
	// concurrency.
	ErasureCoded Algorithm = "erasure"
	// Safe is the Appendix E wait-free safe register: storage n·D/k, but only
	// safe (not regular) semantics.
	Safe Algorithm = "safe"
)

// provider maps a facade algorithm to its register provider name.
func (a Algorithm) provider() (string, error) {
	switch a {
	case Adaptive:
		return "adaptive", nil
	case Replication:
		return "abd", nil
	case ErasureCoded:
		return "ecreg", nil
	case Safe:
		return "safereg", nil
	default:
		return "", fmt.Errorf("spacebounds: unknown algorithm %q", a)
	}
}

// ShardSpec configures one named shard of a Store. Zero fields inherit the
// Store-level defaults from Options, so heterogeneous stores only spell out
// what differs per shard.
type ShardSpec struct {
	// Name identifies the shard; keys equal to a shard name route to that
	// shard, all other keys hash across the shard list.
	Name string
	// Algorithm selects this shard's emulation ("" inherits Options).
	Algorithm Algorithm
	// F, K, ValueSize override the Store-level values when nonzero.
	F, K, ValueSize int
}

// Options configure a Store.
type Options struct {
	// Algorithm selects the emulation; default Adaptive.
	Algorithm Algorithm
	// F is the number of storage-node crashes tolerated per shard (default 1).
	F int
	// K is the erasure-code decode threshold; n = 2F+K nodes are simulated
	// per shard (default K = F; forced to 1 for Replication).
	K int
	// ValueSize is the register value size in bytes (default 1024).
	ValueSize int
	// Shards lists the named shards to multiplex over the shared cluster.
	// Empty means one shard named "default" built from the options above —
	// the original single-register facade.
	Shards []ShardSpec
	// NodeLatency, when nonzero, gives every simulated base object a fixed
	// RMW service time: objects serve requests serially and clients issue
	// each quorum round concurrently, so the store behaves like a cluster of
	// finite-capacity storage nodes instead of an infinitely fast in-process
	// simulation. Throughput then scales with the number of shards, because
	// shards add nodes.
	NodeLatency time.Duration
	// Batch enables the batched quorum engine (zero value: disabled). It
	// switches on two independent amortizations: client-side group commit —
	// concurrent Write/Read calls on a shard coalesce into shared quorum
	// rounds run by a per-shard batcher — and, when NodeLatency is set,
	// node-level RMW coalescing, where each storage node drains up to
	// Batch.MaxSize queued RMWs in a single service period. Per-shard
	// regularity is preserved; storage accounting stays exact.
	Batch BatchOptions
	// Faults enables opt-in crash/restart fault injection against the live
	// store (zero value: disabled). Never more than F nodes per shard are
	// down at once, so a healthy store stays available throughout.
	Faults FaultOptions
	// Durability enables the write-ahead log: every applied mutating RMW and
	// every reconfiguration ledger transition is journaled to Durability.Dir,
	// Open replays whatever the directory holds before serving, and
	// RestartNode rebuilds a crashed node's state from disk instead of
	// resuming from its pre-crash memory. Zero value: disabled (the store is
	// purely in-memory, as before).
	Durability Durability
	// Metrics, when non-nil, instruments the store against the given registry:
	// per-shard quorum-round latency and outcomes, batch-wait and batch-size
	// distributions, and migration step timings all become live series the
	// registry exports over Prometheus and expvar (see docs/METRICS.md).
	// Nil disables instrumentation at the cost of one predictable branch per
	// hot-path operation.
	Metrics *Metrics
	// Trace, when non-nil, attaches a per-operation tracer: sampled
	// operations record a span per stage (op, batch wait, quorum round, node
	// apply, WAL append/fsync) into the tracer's ring, and reconfiguration
	// moves each record a trace of their ledger steps. Nil disables tracing
	// at the same one-branch cost as Metrics (see docs/TRACING.md).
	Trace *Tracer
	// AutoReshard enables the self-driving topology controller (zero value:
	// disabled): a background loop that samples per-shard load from the
	// store's metrics and splits hot shards, merges cold ones, and drains
	// shards whose nodes run slow, through the same reconfiguration
	// coordinator the SplitShard/MergeShards/DrainShard methods use. The
	// controller needs instrumentation; when Options.Metrics is nil it
	// creates a private registry (visible through Store.Metrics). See
	// docs/OPERATIONS.md for tuning guidance.
	AutoReshard AutoReshardOptions
}

// AutoReshardOptions configures the autoshard controller. Setting Interval
// enables it; thresholds are compared against per-interval deltas, so they
// scale with the interval. At least one of HotOps, HotLatency, HotQueue or
// ColdOps must be set, and ColdOps must sit strictly below HotOps when both
// are — the gap between them is the hysteresis band in which the controller
// does nothing.
type AutoReshardOptions struct {
	// Interval is the control-loop tick period (> 0 enables the controller).
	Interval time.Duration
	// HotOps is the per-interval operation count at or above which a shard
	// runs hot and becomes a split candidate (0 disables the rate signal).
	HotOps float64
	// ColdOps is the per-interval operation count at or below which a shard
	// runs cold and becomes a merge candidate.
	ColdOps float64
	// HotLatency is the p99 quorum-round latency at or above which a shard
	// runs hot. A shard hot by latency alone is drained onto fresh nodes
	// rather than split (0 disables the latency signal).
	HotLatency time.Duration
	// HotQueue is the mean batch occupancy at or above which a shard runs
	// hot (0 disables the queue signal).
	HotQueue float64
	// SustainTicks is how many consecutive hot or cold ticks a shard must
	// show before the controller acts (default 3).
	SustainTicks int
	// CooldownTicks is how many ticks the controller rests after every
	// resolved move (default 5).
	CooldownTicks int
	// MaxMoves caps the total moves the controller will ever make
	// (0 = unlimited).
	MaxMoves int
	// MinShards and MaxShards bound the topology: no merge below the floor,
	// no split above the cap (defaults 1 and unlimited).
	MinShards, MaxShards int
}

// enabled reports whether the zero-value-off controller was requested.
func (a AutoReshardOptions) enabled() bool { return a.Interval > 0 }

// ReshardStats are the autoshard controller's counters; see
// Store.AutoReshardStats.
type ReshardStats = autoshard.Stats

// Metrics is the store's metrics registry: counters, gauges, and fixed-bucket
// latency histograms exported in Prometheus text format (Handler, or Serve
// for a standalone endpoint) and as expvar JSON (String / PublishExpvar). A
// registry is passive — it only aggregates what instrumented components
// record into it — so one registry may be shared by a Store, a transport
// client, and anything else that accepts one.
type Metrics = metrics.Registry

// NewMetrics creates an empty metrics registry to pass in Options.Metrics
// (and to transport clients via WithMetrics, where applicable).
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Durability configures the per-store write-ahead log (see internal/wal).
// Setting Dir enables it; the other fields tune the sync and snapshot
// policies. Durable bytes are accounted on their own axis — DurabilityBits,
// never StorageBits — because the paper's space measure (Definition 2) counts
// only the bits stored in the volatile base objects.
type Durability struct {
	// Dir is the journal directory (created if absent). Empty disables
	// durability.
	Dir string
	// SyncEvery is the number of appended records between fsyncs (default 1:
	// sync every record — crash-durable but slowest).
	SyncEvery int
	// SnapshotEvery is the number of appended records between background
	// snapshots, which bound log length and replay time (default 4096).
	SnapshotEvery int
}

// enabled reports whether the zero-value-off journal was requested.
func (d Durability) enabled() bool { return d.Dir != "" }

// BatchOptions configures the batched quorum engine. The zero value disables
// batching; setting either field enables it.
type BatchOptions struct {
	// MaxSize caps both the operations per shared quorum round and the RMWs
	// a node coalesces per service period (default 16 when batching is on).
	MaxSize int
	// MaxDelay is how long an idle shard waits for more operations before
	// dispatching a non-full round (default 0: dispatch immediately).
	MaxDelay time.Duration
}

// enabled reports whether the zero-value-off batch engine was requested.
func (b BatchOptions) enabled() bool { return b.MaxSize > 0 || b.MaxDelay > 0 }

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = Adaptive
	}
	if o.F == 0 {
		o.F = 1
	}
	if o.K == 0 {
		o.K = o.F
	}
	if o.ValueSize == 0 {
		o.ValueSize = 1024
	}
	if len(o.Shards) == 0 {
		o.Shards = []ShardSpec{{Name: "default"}}
	} else {
		// Copy before filling defaults so a caller-owned spec slice is not
		// mutated (it may be reused for another Open with different options).
		o.Shards = append([]ShardSpec(nil), o.Shards...)
	}
	for i := range o.Shards {
		s := &o.Shards[i]
		if s.Algorithm == "" {
			s.Algorithm = o.Algorithm
		}
		if s.F == 0 {
			s.F = o.F
		}
		if s.K == 0 {
			s.K = o.K
		}
		if s.Algorithm == Replication {
			s.K = 1
		}
		if s.ValueSize == 0 {
			s.ValueSize = o.ValueSize
		}
	}
	return o
}

// Store is a fault-tolerant store of one or more register shards over a
// shared simulated cluster of base objects. It is safe for concurrent use by
// multiple goroutines, each of which acts as a distinct client; clients
// operating on keys that route to different shards never contend on a shared
// lock.
type Store struct {
	set    *shard.Set
	def    *shard.Shard
	defKey string
	faults faultInjector

	recon         *reconfig.Coordinator
	reconMu       sync.Mutex // serializes reconfiguration moves
	nextMigClient int        // next migration-writer client ID

	metrics *Metrics          // nil unless Options.Metrics was set
	tracer  *Tracer           // nil unless Options.Trace was set
	wal     *wal.Journal      // nil unless Options.Durability was set
	reshard *autoshard.Driver // nil unless Options.AutoReshard was set

	// resumeHook, when non-nil, replaces ResumeMoves in RestartNode's resume
	// phase; tests inject failures here to exercise the ErrResumeFailed path.
	resumeHook func() error
}

// Metrics returns the registry the store was opened with, or nil when
// instrumentation is disabled.
func (s *Store) Metrics() *Metrics { return s.metrics }

// Tracer returns the tracer the store was opened with, or nil when tracing is
// disabled.
func (s *Store) Tracer() *Tracer { return s.tracer }

// Open builds the register shards and their shared simulated cluster.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	specs := make([]shard.Spec, 0, len(opts.Shards))
	for _, s := range opts.Shards {
		prov, err := s.Algorithm.provider()
		if err != nil {
			return nil, err
		}
		specs = append(specs, shard.Spec{
			Name:      s.Name,
			Algorithm: prov,
			Config:    register.Config{F: s.F, K: s.K, DataLen: s.ValueSize},
		})
	}
	var dopts []dsys.Option
	if opts.NodeLatency > 0 {
		dopts = append(dopts, dsys.WithLiveLatency(opts.NodeLatency))
	}
	batch := shard.BatchConfig{MaxSize: opts.Batch.MaxSize, MaxDelay: opts.Batch.MaxDelay}
	if opts.Batch.enabled() && opts.NodeLatency > 0 {
		if batch.MaxSize <= 0 {
			batch.MaxSize = 16
		}
		dopts = append(dopts, dsys.WithLiveBatch(batch.MaxSize))
	}
	set, err := shard.New(specs, dopts...)
	if err != nil {
		return nil, err
	}
	if opts.Batch.enabled() {
		set.EnableBatching(batch)
	}
	def := set.Shards()[0]
	store := &Store{set: set, def: def, defKey: def.Name, recon: reconfig.NewCoordinator(set)}
	if opts.Metrics != nil {
		set.SetMetrics(opts.Metrics)
		store.recon.SetMetrics(opts.Metrics)
		store.metrics = opts.Metrics
	}
	if opts.Trace != nil {
		set.SetTracer(opts.Trace)
		store.recon.SetTracer(opts.Trace)
		store.tracer = opts.Trace
	}
	if opts.Durability.enabled() {
		if err := store.openJournal(opts); err != nil {
			set.Close()
			return nil, err
		}
	}
	if opts.Faults.enabled() {
		store.faults.start(store, opts.Faults)
	}
	if opts.AutoReshard.enabled() {
		if err := store.startAutoReshard(opts.AutoReshard); err != nil {
			store.faults.halt()
			set.Close()
			if store.wal != nil {
				store.wal.Close()
			}
			return nil, err
		}
	}
	return store, nil
}

// startAutoReshard builds and starts the autoshard control loop against the
// store's registry, instrumenting into a private one when the caller passed
// none — the controller's signals are the store's own metrics, so enabling it
// implies instrumentation.
func (s *Store) startAutoReshard(opts AutoReshardOptions) error {
	reg := s.metrics
	if reg == nil {
		reg = NewMetrics()
		s.set.SetMetrics(reg)
		s.recon.SetMetrics(reg)
		s.metrics = reg
	}
	planner, err := autoshard.NewPlanner(autoshard.Config{
		HotOps:        opts.HotOps,
		ColdOps:       opts.ColdOps,
		HotLatency:    opts.HotLatency.Seconds(),
		HotQueue:      opts.HotQueue,
		SustainTicks:  opts.SustainTicks,
		CooldownTicks: opts.CooldownTicks,
		MaxMoves:      opts.MaxMoves,
		MinShards:     opts.MinShards,
		MaxShards:     opts.MaxShards,
	})
	if err != nil {
		return err
	}
	sampler := autoshard.NewRegistrySampler(reg, s.Shards)
	s.reshard, err = autoshard.StartDriver(autoshard.DriverConfig{
		Planner:  planner,
		Interval: opts.Interval,
		Sample:   sampler.Sample,
		Apply: func(mv reconfig.Move) error {
			_, err := s.apply(mv)
			return err
		},
		Resume:   s.ResumeMoves,
		InFlight: func() bool { return s.recon.InFlight() != nil },
		Metrics:  reg,
	})
	return err
}

// AutoReshardStats returns the autoshard controller's counters (ticks, plans
// by kind, resolutions, current hot/cold census). The zero value when the
// controller is disabled.
func (s *Store) AutoReshardStats() ReshardStats {
	if s.reshard == nil {
		return ReshardStats{}
	}
	return s.reshard.Stats()
}

// openJournal opens the write-ahead log, replays whatever it holds into the
// freshly built cluster and ledger, and only then attaches it for journaling
// new operations — replayed records must not be re-journaled. The caller
// closes the set on error; the journal is closed here.
func (s *Store) openJournal(opts Options) error {
	j, err := wal.Open(wal.Config{
		Dir:           opts.Durability.Dir,
		SyncEvery:     opts.Durability.SyncEvery,
		SnapshotEvery: opts.Durability.SnapshotEvery,
	})
	if err != nil {
		return err
	}
	if opts.Metrics != nil {
		j.SetMetrics(opts.Metrics)
	}
	if opts.Trace != nil {
		j.SetTracer(opts.Trace)
	}
	moves := j.Moves()
	states := make([]reconfig.MoveState, 0, len(moves))
	for _, mr := range moves {
		ms, err := reconfig.DecodeMoveState(mr.Payload)
		if err != nil {
			j.Close()
			return fmt.Errorf("spacebounds: restoring reconfiguration ledger: move %d: %w", mr.ID, err)
		}
		states = append(states, ms)
	}
	if err := s.recon.RestoreLedger(states); err != nil {
		j.Close()
		return fmt.Errorf("spacebounds: restoring reconfiguration ledger: %w", err)
	}
	if _, err := j.Replay(s.set.Cluster()); err != nil {
		j.Close()
		return fmt.Errorf("spacebounds: replaying write-ahead log: %w", err)
	}
	j.Attach(s.set.Cluster())
	s.recon.SetJournal(j)
	s.wal = j
	return nil
}

// Algorithm returns the name of the default (first) shard's emulation.
func (s *Store) Algorithm() string { return s.def.Reg.Name() }

// Nodes returns the number of live (non-retired) simulated base objects
// across all shards (2f+k per shard; reconfiguration retires regions and
// grows new ones).
func (s *Store) Nodes() int { return s.set.Cluster().LiveObjectCount() }

// FaultTolerance returns f for the default shard, the number of its node
// crashes tolerated.
func (s *Store) FaultTolerance() int { return s.def.Reg.Config().F }

// ValueSize returns the default shard's register value size in bytes.
func (s *Store) ValueSize() int { return s.def.Reg.Config().DataLen }

// Shards returns the shard names in declaration order.
func (s *Store) Shards() []string {
	out := make([]string, 0, len(s.set.Shards()))
	for _, sh := range s.set.Shards() {
		out = append(out, sh.Name)
	}
	return out
}

// pad zero-pads val to the shard's value size, rejecting oversized values.
func pad(sh *shard.Shard, val []byte) (value.Value, error) {
	size := sh.Reg.Config().DataLen
	if len(val) > size {
		return value.Value{}, fmt.Errorf("spacebounds: value of %d bytes exceeds register size %d of shard %q", len(val), size, sh.Name)
	}
	padded := make([]byte, size)
	copy(padded, val)
	return value.FromBytes(padded), nil
}

// Write stores val on the default shard on behalf of the given client ID,
// preserving the original single-register facade.
//
// Deprecated: use WriteKey with an explicit key. The positional form only
// addresses the default (first) shard and hides the routing step every other
// store entry point goes through.
func (s *Store) Write(client int, val []byte) error {
	return s.WriteKey(client, s.defKey, val)
}

// WriteKey stores val under key: the key routes to a shard (exact shard name,
// otherwise by hash) and the write runs on that shard's register. Keys are
// routing labels, not map entries — every key on a shard addresses the same
// register, so a later write under any key of the shard supersedes earlier
// ones, exactly as in the paper's register model. For key-value semantics,
// give each key its own shard (see examples/kvstore).
func (s *Store) WriteKey(client int, key string, val []byte) error {
	// Pad against the routed shard's size, then write through the router: a
	// migration successor inherits its predecessor's configuration, so the
	// size stays right even if a reconfiguration lands in between.
	v, err := pad(s.set.ForKey(key), val)
	if err != nil {
		return err
	}
	return s.set.Write(client, key, v)
}

// Read returns the default shard's current value on behalf of the client.
//
// Deprecated: use ReadKey with an explicit key, for the same reason as Write.
func (s *Store) Read(client int) ([]byte, error) {
	return s.ReadKey(client, s.defKey)
}

// ReadKey returns the current value of the shard the key routes to. While
// that shard is being migrated the read consults both epochs and the higher
// (epoch, timestamp) wins.
func (s *Store) ReadKey(client int, key string) ([]byte, error) {
	got, err := s.set.Read(client, key)
	if err != nil {
		return nil, err
	}
	return got.Bytes(), nil
}

// CrashNode crashes one simulated base object by global ID (shards occupy
// contiguous ID ranges in declaration order). Up to FaultTolerance() nodes
// per shard may be crashed while preserving availability.
func (s *Store) CrashNode(id int) error { return s.set.Cluster().CrashObject(id) }

// CrashShardNode crashes node (shard-local, 0-based) of the shard key routes
// to.
func (s *Store) CrashShardNode(key string, node int) error {
	return s.set.CrashNode(s.set.ForKey(key).Name, node)
}

// Restart error classes. RestartNode does two separable jobs — bring the
// node back, then resume any interrupted reconfiguration — and its callers
// need to know which one failed: a restart failure means the node is still
// down and the call may be retried; a resume failure means the node is UP and
// only the interrupted move still needs driving (retry the restart and the
// quorum protocols stay correct, but ResumeMoves alone is cheaper).
var (
	// ErrRestartFailed wraps failures of the restart phase: the node did not
	// come back (and, on a durable store, its on-disk state was not replayed).
	ErrRestartFailed = errors.New("spacebounds: node restart failed")
	// ErrResumeFailed wraps failures of the resume phase: the node IS back,
	// but the interrupted reconfiguration could not be resumed. The ledger
	// entry stays interrupted and re-drivable via ResumeMoves.
	ErrResumeFailed = errors.New("spacebounds: resuming interrupted reconfiguration failed")
)

// RestartNode brings a crashed node back. On an in-memory store it resumes
// with the state it had when it crashed (fail-recover): writes that raced the
// crash window are lost on that node, exactly like messages to a down
// replica, and the quorum protocols repair on the next operations. On a
// durable store the node instead rebuilds from the write-ahead log — fresh
// initial state, then snapshot and journaled RMWs replayed — so it returns
// with everything it had acknowledged before the crash, wiped memory
// notwithstanding. Restarting is also the store's recovery entry point: if
// the reconfiguration ledger holds a move whose driver died mid-migration,
// the restart resumes it (see ResumeMoves). The in-flight check is done
// before touching the reconfiguration lock, so a restart never blocks behind
// a healthy migration another goroutine is driving. Failures are classed:
// errors.Is(err, ErrRestartFailed) means the node is still down; errors.Is(
// err, ErrResumeFailed) means the node is up and only the interrupted move
// still needs driving — callers must not conflate the two, which is why the
// resume error never travels unwrapped.
func (s *Store) RestartNode(id int) error {
	cl := s.set.Cluster()
	if s.wal != nil && cl.ObjectDown(id) {
		fresh, err := s.set.InitialStateOf(id)
		if err != nil {
			return fmt.Errorf("%w: node %d: %w", ErrRestartFailed, id, err)
		}
		if _, err := s.wal.ReplayObject(cl, id, fresh); err != nil {
			return fmt.Errorf("%w: node %d: rebuilding state from the write-ahead log: %w", ErrRestartFailed, id, err)
		}
	}
	if err := cl.RestartObject(id); err != nil {
		return fmt.Errorf("%w: node %d: %w", ErrRestartFailed, id, err)
	}
	if fl := s.recon.InFlight(); fl == nil || !fl.Interrupted {
		return nil
	}
	resume := s.resumeHook
	if resume == nil {
		resume = func() error { _, err := s.ResumeMoves(); return err }
	}
	if err := resume(); err != nil {
		return fmt.Errorf("%w: node %d restarted: %w", ErrResumeFailed, id, err)
	}
	return nil
}

// FaultStats reports the injected crash/restart counts (zero when fault
// injection is disabled).
func (s *Store) FaultStats() FaultStats { return s.faults.Stats() }

// BatchStats reports the group-commit amortization across all shards:
// operations completed through the batchers and the physical quorum rounds
// that carried them. All zeros when batching is disabled.
type BatchStats struct {
	// Writes and Reads count operations completed through the batchers.
	Writes, Reads int
	// WriteRounds and ReadRounds count the physical quorum rounds dispatched
	// to carry them; ops/rounds is the amortization factor per direction.
	WriteRounds, ReadRounds int
}

// BatchStats returns the store-wide group-commit counters.
func (s *Store) BatchStats() BatchStats {
	st := s.set.BatchStats()
	return BatchStats{Writes: st.Writes, Reads: st.Reads, WriteRounds: st.WriteRounds, ReadRounds: st.ReadRounds}
}

// StorageBits returns the current storage cost in bits: the code-block bits
// held by all base objects (meta-data excluded), per the paper's
// Definition 2. It equals the sum of ShardStorageBits over all shards.
func (s *Store) StorageBits() int { return s.set.StorageSnapshot().BaseObjectBits }

// ShardStorageBits returns the base-object bits of the shard key routes to,
// so the paper's min(f, c)·D bound can be checked shard by shard.
func (s *Store) ShardStorageBits(key string) int {
	return s.set.ShardBits(s.set.StorageSnapshot(), s.set.ForKey(key).Name)
}

// PerShardStorageBits returns the base-object bits of every shard from one
// consistent storage sample; the values sum to that sample's total. Prefer it
// over calling ShardStorageBits in a loop, which re-samples the whole cluster
// per call.
func (s *Store) PerShardStorageBits() map[string]int {
	_, perShard := s.StorageBreakdown()
	return perShard
}

// StorageBreakdown returns, from one consistent storage sample, the
// aggregate base-object bits and their attribution to every shard. Because
// both numbers come from the same sample — and attribution covers every
// region the cluster has ever owned — the total always equals the sum of the
// per-shard values: while a batched workload is in flight, and also while a
// reconfiguration has two epochs coexisting (a retiring region's last bits
// are attributed to its old shard name until they are gone).
func (s *Store) StorageBreakdown() (total int, perShard map[string]int) {
	snap, perShard := s.set.StorageBreakdown()
	return snap.BaseObjectBits, perShard
}

// StorageSnapshot returns the full storage breakdown across all shards.
func (s *Store) StorageSnapshot() *storagecost.Snapshot { return s.set.StorageSnapshot() }

// DurabilityBits returns the current on-disk footprint of the write-ahead
// log in bits (live segments plus the current snapshot), or 0 when
// durability is disabled. Durable bits are deliberately NOT part of
// StorageBits: the paper's space measure counts only the bits held in the
// volatile base objects, and the log is a different resource with a
// different lifecycle (it is truncated by snapshots, not by the protocol).
func (s *Store) DurabilityBits() int {
	if s.wal == nil {
		return 0
	}
	total, _, _ := s.set.DurabilityBreakdown()
	return total
}

// DurabilityBreakdown returns, from one consistent storage sample, the total
// durable bits and their attribution: perShard maps each shard name to the
// bits its objects' journal records and snapshot entries occupy, and ledger
// is the remainder — reconfiguration move records plus per-file framing and
// snapshot overhead. The sample is summation-exact: total always equals the
// sum of the per-shard values plus ledger. All zeros when durability is
// disabled.
func (s *Store) DurabilityBreakdown() (total int, perShard map[string]int, ledger int) {
	if s.wal == nil {
		return 0, map[string]int{}, 0
	}
	return s.set.DurabilityBreakdown()
}

// ResizeOp is one step of a Resize plan; exactly one of Split, Drain, Add,
// Remove and Merge must be set (Merge additionally needs MergeWith).
type ResizeOp struct {
	// Split names a shard to split into two successors on fresh regions.
	Split string
	// Drain names a shard to migrate onto a fresh region (evacuate nodes).
	Drain string
	// Add names a key to fork onto a dedicated shard.
	Add string
	// Remove names a dedicated shard to drop (its key rejoins hash routing;
	// the dedicated register's value is discarded with its namespace).
	Remove string
	// Merge names the first of two shards to merge into one successor.
	Merge string
	// MergeWith names the second shard of a Merge.
	MergeWith string
}

// move translates the facade op into a reconfig move.
func (op ResizeOp) move() (reconfig.Move, error) {
	set := 0
	mv := reconfig.Move{}
	if op.Split != "" {
		set, mv = set+1, reconfig.Move{Kind: reconfig.MoveSplit, Shard: op.Split}
	}
	if op.Drain != "" {
		set, mv = set+1, reconfig.Move{Kind: reconfig.MoveDrain, Shard: op.Drain}
	}
	if op.Add != "" {
		set, mv = set+1, reconfig.Move{Kind: reconfig.MoveAdd, Shard: op.Add}
	}
	if op.Remove != "" {
		set, mv = set+1, reconfig.Move{Kind: reconfig.MoveRemove, Shard: op.Remove}
	}
	if op.Merge != "" {
		set, mv = set+1, reconfig.Move{Kind: reconfig.MoveMerge, Shard: op.Merge, Shard2: op.MergeWith}
	}
	if set != 1 || (op.Merge != "") != (op.MergeWith != "") {
		return mv, fmt.Errorf("spacebounds: resize op must set exactly one of Split/Drain/Add/Remove/Merge(+MergeWith), got %+v", op)
	}
	return mv, nil
}

// ReconfigStats aggregates the reconfiguration subsystem's counters.
type ReconfigStats struct {
	// Epoch is the current routing epoch (0 until the first move).
	Epoch int64
	// Splits, Drains, Adds, Removes, Merges count completed moves.
	Splits, Drains, Adds, Removes, Merges int
	// Resumes counts takeovers of interrupted moves (a move interrupted
	// twice counts twice, whatever its eventual outcome); Aborts counts
	// cleanly rolled-back moves.
	Resumes, Aborts int
	// SeedWrites counts migration-writer replays into successor shards.
	SeedWrites int
	// FallbackReads counts dual-epoch reads answered by the old epoch.
	FallbackReads int64
	// HeldWrites counts writes that waited for a migration to seed their
	// shard.
	HeldWrites int64
}

// migRunner returns a live runner with a fresh migration-writer client ID.
func (s *Store) migRunner() reconfig.Runner {
	// 1<<28 keeps migration timestamps clear of application clients while
	// staying below the batcher lane range at 1<<30.
	id := 1<<28 + s.nextMigClient
	s.nextMigClient++
	return reconfig.NewLiveRunner(s.set, id)
}

// apply runs one move under the store's reconfiguration lock.
func (s *Store) apply(mv reconfig.Move) (reconfig.Event, error) {
	s.reconMu.Lock()
	defer s.reconMu.Unlock()
	return s.recon.Apply(s.migRunner(), mv)
}

// SplitShard splits the named shard into two successors on fresh base-object
// regions while the store keeps serving: the shard's keyspace re-partitions
// across the successors, its latest value is replayed into both by the
// migration writer, reads during the migration consult both epochs, and the
// old region is retired once drained. It returns the successor shard names.
func (s *Store) SplitShard(name string) ([]string, error) {
	ev, err := s.apply(reconfig.Move{Kind: reconfig.MoveSplit, Shard: name})
	if err != nil {
		return nil, err
	}
	return ev.Successors, nil
}

// DrainShard migrates the named shard onto a single fresh region — same
// routing position, new nodes — and retires the old region. It returns the
// replacement shard's name.
func (s *Store) DrainShard(name string) (string, error) {
	ev, err := s.apply(reconfig.Move{Kind: reconfig.MoveDrain, Shard: name})
	if err != nil {
		return "", err
	}
	return ev.Successors[0], nil
}

// MergeShards merges two shards into a single successor on a fresh region —
// the inverse of SplitShard — while the store keeps serving. Keys of both
// sources route to the successor, which is seeded with the latest value of
// the source that wins the (installation epoch, timestamp) ordering; the
// other source's value is discarded with its register, exactly like the
// value ordering of a dual-epoch read. It returns the successor shard name.
func (s *Store) MergeShards(a, b string) (string, error) {
	ev, err := s.apply(reconfig.Move{Kind: reconfig.MoveMerge, Shard: a, Shard2: b})
	if err != nil {
		return "", err
	}
	return ev.Successors[0], nil
}

// ResumeMoves re-drives a reconfiguration move whose driver died
// mid-migration, picking up from the step ledger's last completed step. A
// live store's moves normally run synchronously inside Resize and friends,
// so there is usually nothing to do; the method exists for the fail-recover
// path (RestartNode calls it) and for embedders driving moves from their own
// goroutines. It reports how many moves were resumed.
func (s *Store) ResumeMoves() (int, error) {
	s.reconMu.Lock()
	defer s.reconMu.Unlock()
	resumed := 0
	for {
		fl := s.recon.InFlight()
		if fl == nil || !fl.Interrupted {
			return resumed, nil
		}
		took, _, err := s.recon.Resume(s.migRunner())
		if err != nil {
			return resumed, err
		}
		if took {
			resumed++
		}
	}
}

// AddShard forks the given key onto a dedicated shard seeded from the
// register the key currently routes to. The origin keeps serving its other
// keys.
func (s *Store) AddShard(key string) error {
	_, err := s.apply(reconfig.Move{Kind: reconfig.MoveAdd, Shard: key})
	return err
}

// RemoveShard drops a dedicated shard created by AddShard: its key rejoins
// hash routing and the dedicated register's value is discarded.
func (s *Store) RemoveShard(name string) error {
	_, err := s.apply(reconfig.Move{Kind: reconfig.MoveRemove, Shard: name})
	return err
}

// Resize applies a reconfiguration plan move by move, stopping at the first
// error. The store serves reads and writes throughout.
func (s *Store) Resize(plan []ResizeOp) error {
	moves := make([]reconfig.Move, 0, len(plan))
	for _, op := range plan {
		mv, err := op.move()
		if err != nil {
			return err
		}
		moves = append(moves, mv)
	}
	s.reconMu.Lock()
	defer s.reconMu.Unlock()
	for _, mv := range moves {
		if _, err := s.recon.Apply(s.migRunner(), mv); err != nil {
			return fmt.Errorf("spacebounds: %v: %w", mv, err)
		}
	}
	return nil
}

// ReconfigStats returns the reconfiguration counters.
func (s *Store) ReconfigStats() ReconfigStats {
	st := s.recon.Stats()
	return ReconfigStats{
		Epoch: st.Epoch, Splits: st.Splits, Drains: st.Drains, Adds: st.Adds, Removes: st.Removes,
		Merges: st.Merges, Resumes: st.Resumes, Aborts: st.Aborts,
		SeedWrites: st.SeedWrites, FallbackReads: st.FallbackReads, HeldWrites: st.HeldWrites,
	}
}

// Close stops the autoshard controller and fault injection, then shuts the
// cluster down — including, for a store backed by a remote cluster, the
// transport behind it. The controller stops first so no new move starts while
// the cluster is going away; a move it was mid-way through stays in the
// ledger for the next open's ResumeMoves. Close implements io.Closer; closing
// an already-closed store is a no-op.
func (s *Store) Close() error {
	if s.reshard != nil {
		s.reshard.Stop()
	}
	s.faults.halt()
	s.set.Close()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
