// Package spacebounds is the public facade of a reproduction of
// "Space Bounds for Reliable Storage: Fundamental Limits of Coding"
// (Spiegelman, Cassuto, Chockler, Keidar — PODC 2016).
//
// The paper proves that any lock-free regular register emulation over
// asynchronous fault-prone storage that treats its (symmetric) coding scheme
// as a black box must use Ω(min(f, c)·D) bits of storage, and gives an
// adaptive algorithm combining erasure coding with replication that matches
// the bound with O(min(f, c)·D) bits. This module implements the adaptive
// algorithm, the baselines it is compared against, the lower-bound adversary,
// and the simulation substrate they run on; see DESIGN.md for the full
// inventory and EXPERIMENTS.md for the reproduced results.
//
// The facade exposes the most common entry point: a Store that binds a
// register emulation to a simulated cluster and offers Write/Read/Crash with
// storage-cost introspection. Lower-level control (custom scheduling
// policies, the adversary, workload generation, consistency checking) lives
// in the internal packages and is exercised through cmd/spacebench,
// cmd/adversary and the examples.
package spacebounds

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
)

// Algorithm selects a register emulation.
type Algorithm string

// Available algorithms.
const (
	// Adaptive is the paper's algorithm: erasure coding with a replication
	// fallback, storage O(min(f, c)·D), strongly regular, FW-terminating.
	Adaptive Algorithm = "adaptive"
	// Replication is the ABD baseline: 2f+1 full replicas, storage O(f·D).
	Replication Algorithm = "replication"
	// ErasureCoded is the pure coded baseline: storage Θ(c·D) under
	// concurrency.
	ErasureCoded Algorithm = "erasure"
	// Safe is the Appendix E wait-free safe register: storage n·D/k, but only
	// safe (not regular) semantics.
	Safe Algorithm = "safe"
)

// Options configure a Store.
type Options struct {
	// Algorithm selects the emulation; default Adaptive.
	Algorithm Algorithm
	// F is the number of storage-node crashes tolerated (default 1).
	F int
	// K is the erasure-code decode threshold; n = 2F+K nodes are simulated
	// (default K = F; forced to 1 for Replication).
	K int
	// ValueSize is the register value size in bytes (default 1024).
	ValueSize int
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = Adaptive
	}
	if o.F == 0 {
		o.F = 1
	}
	if o.K == 0 {
		o.K = o.F
	}
	if o.Algorithm == Replication {
		o.K = 1
	}
	if o.ValueSize == 0 {
		o.ValueSize = 1024
	}
	return o
}

// Store is a fault-tolerant single-register store over a simulated cluster of
// base objects. It is safe for concurrent use by multiple goroutines, each of
// which acts as a distinct client.
type Store struct {
	reg     register.Register
	cluster *dsys.Cluster
	cfg     register.Config
}

// Open builds a register emulation and its simulated cluster.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	cfg := register.Config{F: opts.F, K: opts.K, DataLen: opts.ValueSize}
	var (
		reg register.Register
		err error
	)
	switch opts.Algorithm {
	case Adaptive:
		reg, err = adaptive.New(cfg)
	case Replication:
		reg, err = abd.New(cfg)
	case ErasureCoded:
		reg, err = ecreg.New(cfg)
	case Safe:
		reg, err = safereg.New(cfg)
	default:
		return nil, fmt.Errorf("spacebounds: unknown algorithm %q", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	vcfg := reg.Config()
	states, err := reg.InitialStates(value.Zero(vcfg.DataLen))
	if err != nil {
		return nil, err
	}
	cluster := dsys.NewCluster(states, dsys.WithLiveMode(), dsys.WithDataBits(vcfg.DataBits()))
	return &Store{reg: reg, cluster: cluster, cfg: vcfg}, nil
}

// Algorithm returns the name of the underlying emulation.
func (s *Store) Algorithm() string { return s.reg.Name() }

// Nodes returns the number of simulated base objects (2f+k).
func (s *Store) Nodes() int { return s.cfg.N() }

// FaultTolerance returns f, the number of node crashes tolerated.
func (s *Store) FaultTolerance() int { return s.cfg.F }

// ValueSize returns the register value size in bytes.
func (s *Store) ValueSize() int { return s.cfg.DataLen }

// Write stores val (padded with zeros to the register's value size) on behalf
// of the given client ID. It returns an error if val exceeds the value size
// or if a quorum of nodes is unreachable.
func (s *Store) Write(client int, val []byte) error {
	if len(val) > s.cfg.DataLen {
		return fmt.Errorf("spacebounds: value of %d bytes exceeds register size %d", len(val), s.cfg.DataLen)
	}
	padded := make([]byte, s.cfg.DataLen)
	copy(padded, val)
	return s.cluster.Spawn(client, func(h *dsys.ClientHandle) error {
		return s.reg.Write(h, value.FromBytes(padded))
	}).Wait()
}

// Read returns the register's current value on behalf of the given client ID.
func (s *Store) Read(client int) ([]byte, error) {
	var got value.Value
	err := s.cluster.Spawn(client, func(h *dsys.ClientHandle) error {
		var err error
		got, err = s.reg.Read(h)
		return err
	}).Wait()
	if err != nil {
		return nil, err
	}
	return got.Bytes(), nil
}

// CrashNode crashes one simulated base object. Up to FaultTolerance() nodes
// may be crashed while preserving availability.
func (s *Store) CrashNode(id int) error { return s.cluster.CrashObject(id) }

// StorageBits returns the current storage cost in bits: the code-block bits
// held by the base objects (meta-data excluded), per the paper's Definition 2.
func (s *Store) StorageBits() int { return s.cluster.SampleStorage().BaseObjectBits }

// StorageSnapshot returns the full storage breakdown.
func (s *Store) StorageSnapshot() *storagecost.Snapshot { return s.cluster.SampleStorage() }

// Close shuts the simulated cluster down.
func (s *Store) Close() { s.cluster.Close() }
