// Benchmark harness: one benchmark per experiment in DESIGN.md's index
// (E1-E8), plus micro-benchmarks for the coding and register substrates.
// The experiment benchmarks report the measured storage (bits) through
// b.ReportMetric so that `go test -bench` regenerates the paper's analytic
// quantities; absolute ns/op numbers only characterize the simulator, not
// the paper's testbed.
package spacebounds_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spacebounds"
	"spacebounds/internal/adversary"
	"spacebounds/internal/dsys"
	"spacebounds/internal/erasure"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/transport"
	"spacebounds/internal/value"
	"spacebounds/internal/workload"
)

const benchDataLen = 1024 // 1 KiB values, D = 8192 bits

// BenchmarkAdaptiveStorageVsConcurrency is experiment E1 (Theorem 2,
// Corollary 3): the adaptive register's peak storage as concurrency grows.
func BenchmarkAdaptiveStorageVsConcurrency(b *testing.B) {
	for _, c := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("f=2/k=2/c=%d", c), func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				reg, err := adaptive.New(register.Config{F: 2, K: 2, DataLen: benchDataLen})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(reg, workload.Spec{Writers: c, WritesPerWriter: 2})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.MaxBaseObjectBits
			}
			b.ReportMetric(float64(peak), "storage-bits")
		})
	}
}

// BenchmarkAdaptiveQuiescentStorage is experiment E2 (Theorem 2 final clause):
// storage after all writes complete.
func BenchmarkAdaptiveQuiescentStorage(b *testing.B) {
	var quiescent int
	for i := 0; i < b.N; i++ {
		reg, err := adaptive.New(register.Config{F: 2, K: 2, DataLen: benchDataLen})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.Run(reg, workload.Spec{Writers: 4, WritesPerWriter: 3})
		if err != nil {
			b.Fatal(err)
		}
		quiescent = res.QuiescentBaseObjectBits
	}
	b.ReportMetric(float64(quiescent), "storage-bits")
}

// BenchmarkStorageComparison is experiment E3 (Section 1, Corollary 2):
// replication vs. pure coding vs. adaptive under concurrency.
func BenchmarkStorageComparison(b *testing.B) {
	const f, c = 2, 8
	algorithms := map[string]func() (register.Register, error){
		"abd": func() (register.Register, error) { return abd.New(register.Config{F: f, K: 1, DataLen: benchDataLen}) },
		"ecreg": func() (register.Register, error) {
			return ecreg.New(register.Config{F: f, K: f, DataLen: benchDataLen})
		},
		"adaptive": func() (register.Register, error) {
			return adaptive.New(register.Config{F: f, K: f, DataLen: benchDataLen})
		},
	}
	for _, name := range []string{"abd", "ecreg", "adaptive"} {
		mk := algorithms[name]
		b.Run(fmt.Sprintf("%s/c=%d", name, c), func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				reg, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(reg, workload.Spec{Writers: c, WritesPerWriter: 2})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.MaxBaseObjectBits
			}
			b.ReportMetric(float64(peak), "storage-bits")
		})
	}
}

// BenchmarkAdversaryLowerBound is experiment E4 (Theorem 1): the storage the
// adversary Ad extracts from the coded baseline and the adaptive algorithm.
func BenchmarkAdversaryLowerBound(b *testing.B) {
	const f, k = 8, 8
	for _, tc := range []struct {
		name string
		mk   func() (register.Register, error)
	}{
		{"ecreg", func() (register.Register, error) { return ecreg.New(register.Config{F: f, K: k, DataLen: 512}) }},
		{"adaptive", func() (register.Register, error) { return adaptive.New(register.Config{F: f, K: k, DataLen: 512}) }},
	} {
		for _, c := range []int{4, 8} {
			b.Run(fmt.Sprintf("%s/c=%d", tc.name, c), func(b *testing.B) {
				var pinned, bound int
				for i := 0; i < b.N; i++ {
					reg, err := tc.mk()
					if err != nil {
						b.Fatal(err)
					}
					res, err := adversary.Run(reg, c, 0)
					if err != nil {
						b.Fatal(err)
					}
					pinned, bound = res.PinnedBaseObjectBits, res.LowerBoundBits
				}
				b.ReportMetric(float64(pinned), "pinned-bits")
				b.ReportMetric(float64(bound), "bound-bits")
			})
		}
	}
}

// BenchmarkSafeRegisterStorage is experiment E5 (Appendix E, Lemma 17): the
// safe register's constant n·D/k storage.
func BenchmarkSafeRegisterStorage(b *testing.B) {
	for _, c := range []int{1, 8} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				reg, err := safereg.New(register.Config{F: 2, K: 2, DataLen: benchDataLen})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(reg, workload.Spec{Writers: c, WritesPerWriter: 2})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.MaxBaseObjectBits
			}
			b.ReportMetric(float64(peak), "storage-bits")
		})
	}
}

// BenchmarkAdversaryTrace is experiment E6 (Figure 3): the scheduling cost of
// pinning a 4-writer run.
func BenchmarkAdversaryTrace(b *testing.B) {
	const c = 4
	var pinned, steps int
	for i := 0; i < b.N; i++ {
		reg, err := ecreg.New(register.Config{F: 4, K: 4, DataLen: 256})
		if err != nil {
			b.Fatal(err)
		}
		res, err := adversary.Run(reg, c, 0)
		if err != nil {
			b.Fatal(err)
		}
		pinned, steps = res.PinnedBaseObjectBits, res.Steps
	}
	b.ReportMetric(float64(pinned), "pinned-bits")
	b.ReportMetric(float64(steps), "sched-steps")
}

// BenchmarkKAblation is experiment E7 (Section 5): quiescent storage as a
// function of the code parameter k.
func BenchmarkKAblation(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var quiescent int
			for i := 0; i < b.N; i++ {
				reg, err := adaptive.New(register.Config{F: 2, K: k, DataLen: benchDataLen})
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(reg, workload.Spec{Writers: 4, WritesPerWriter: 2})
				if err != nil {
					b.Fatal(err)
				}
				quiescent = res.QuiescentBaseObjectBits
			}
			b.ReportMetric(float64(quiescent), "storage-bits")
		})
	}
}

// BenchmarkOperationLatency is experiment E8: end-to-end operation cost of
// each algorithm on the live (uncontrolled) runtime.
func BenchmarkOperationLatency(b *testing.B) {
	for _, algo := range []spacebounds.Algorithm{spacebounds.Adaptive, spacebounds.Replication, spacebounds.ErasureCoded, spacebounds.Safe} {
		b.Run(string(algo)+"/write+read", func(b *testing.B) {
			store, err := spacebounds.Open(spacebounds.Options{Algorithm: algo, F: 2, K: 2, ValueSize: benchDataLen})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			payload := make([]byte, benchDataLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				payload[0] = byte(i)
				if err := store.WriteKey(1, "default", payload); err != nil {
					b.Fatal(err)
				}
				if _, err := store.ReadKey(2, "default"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReedSolomon measures the coding substrate itself.
func BenchmarkReedSolomon(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{2, 6}, {4, 12}, {8, 24}} {
		rs, err := erasure.NewReedSolomon(tc.k, tc.n)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, 64*1024)
		for i := range data {
			data[i] = byte(i * 31)
		}
		b.Run(fmt.Sprintf("encode/k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := rs.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		blocks, err := rs.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("decode/k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			subset := blocks[tc.n-tc.k:]
			for i := 0; i < b.N; i++ {
				if _, err := rs.Decode(len(data), subset); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedLiveThroughput measures the live engine on a keyed
// workload (90% writes) over storage nodes with a 50µs RMW service time
// (Options.NodeLatency — the finite-capacity cluster model), across three
// scaling levers:
//
//   - shards: with one shard every key lands on the same 2f+k = 6 nodes and
//     clients queue behind each other; with 8 shards the keys spread over 8×
//     the nodes. 8 shards must deliver at least 2× the single-shard figure.
//   - clients: higher client counts deepen the per-node queues, which is the
//     regime batching amortizes.
//   - batch: the batched quorum engine (group commit + node-level RMW
//     coalescing) versus the one-RMW-per-service-period engine. At 32
//     clients the batch=on variant must deliver at least 2× the ops/s of
//     batch=off on the same topology — the PR's acceptance quantity.
//
// The ops/s metric is what cmd/benchdiff gates in CI; being dominated by the
// simulated service time, it is stable across machines.
func BenchmarkShardedLiveThroughput(b *testing.B) {
	const (
		keys      = 64
		valueSize = 4096
	)
	for _, tc := range []struct {
		shards, clients int
		batch           bool
		split           bool // live SplitShard("s0") at the half-way mark
		metrics         bool // full instrumentation via Options.Metrics
		trc             bool // every op traced via Options.Trace (Sample: 1)
	}{
		{1, 8, false, false, false, false},
		{8, 8, false, false, false, false},
		{1, 32, false, false, false, false},
		{1, 32, true, false, false, false},
		{8, 32, true, false, false, false},
		{4, 32, true, true, false, false},
		// The metrics=on twin of the 8×32 batched case is the observability
		// overhead gate: same topology, every histogram live, allocs/op
		// reported. The CI bench gate holds its ops/s within the shared 25%
		// tolerance of the baseline, i.e. instrumentation must stay invisible
		// next to a 50µs service period.
		{8, 32, true, false, true, false},
		// The trace=on twin additionally samples EVERY operation into the
		// trace flight recorder — the worst-case tracing overhead (production
		// sampling is fractional), held to the same 25% gate.
		{8, 32, true, false, true, true},
	} {
		name := fmt.Sprintf("shards=%d/clients=%d/batch=%s", tc.shards, tc.clients, onOff(tc.batch))
		if tc.split {
			name += "/split=mid"
		}
		if tc.metrics {
			name += "/metrics=on"
		}
		if tc.trc {
			name += "/trace=on"
		}
		b.Run(name, func(b *testing.B) {
			// Give every client its own scheduling context even on small
			// machines so the concurrent quorum rounds actually overlap.
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(tc.clients, runtime.NumCPU())))
			specs := make([]spacebounds.ShardSpec, 0, tc.shards)
			for i := 0; i < tc.shards; i++ {
				specs = append(specs, spacebounds.ShardSpec{Name: fmt.Sprintf("s%d", i)})
			}
			opts := spacebounds.Options{
				Algorithm: spacebounds.Adaptive, F: 2, K: 2, ValueSize: valueSize,
				Shards:      specs,
				NodeLatency: 50 * time.Microsecond,
			}
			if tc.batch {
				opts.Batch = spacebounds.BatchOptions{MaxSize: 32}
			}
			if tc.metrics {
				opts.Metrics = spacebounds.NewMetrics()
				b.ReportAllocs()
			}
			if tc.trc {
				opts.Trace = spacebounds.NewTracer(spacebounds.TraceOptions{
					Sample: 1, Node: -1, Proc: "bench", Metrics: opts.Metrics,
				})
			}
			store, err := spacebounds.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			clients := tc.clients
			b.ResetTimer()
			start := time.Now()
			var completed atomic.Int64
			splitDone := make(chan error, 1)
			workersDone := make(chan struct{})
			if tc.split {
				// Live elastic resharding at the half-way mark: the store must
				// absorb the split with zero failed operations (the ops/s the
				// gate tracks then includes the migration's cost). The wait
				// also exits when the workers finish — if one errored out via
				// b.Error before the threshold, the benchmark must report that
				// instead of hanging on splitDone.
				go func() {
					threshold := int64(b.N / 2)
					for completed.Load() < threshold {
						select {
						case <-workersDone:
							splitDone <- nil
							return
						case <-time.After(50 * time.Microsecond):
						}
					}
					_, err := store.SplitShard("s0")
					splitDone <- err
				}()
			}
			var wg sync.WaitGroup
			for cl := 1; cl <= clients; cl++ {
				cl := cl
				ops := b.N / clients
				if cl <= b.N%clients {
					ops++
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					payload := make([]byte, valueSize)
					for i := 0; i < ops; i++ {
						// Stride client-disjoint key subsets over the whole
						// keyspace; safe for any clients/keys ratio.
						key := fmt.Sprintf("key-%d", ((cl-1)+clients*i)%keys)
						if i%10 == 9 {
							if _, err := store.ReadKey(cl, key); err != nil {
								b.Error(err)
								return
							}
							completed.Add(1)
							continue
						}
						payload[0] = byte(i)
						if err := store.WriteKey(cl, key, payload); err != nil {
							b.Error(err)
							return
						}
						completed.Add(1)
					}
				}()
			}
			wg.Wait()
			close(workersDone)
			if tc.split {
				if err := <-splitDone; err != nil {
					b.Fatalf("live split: %v", err)
				}
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
		})
	}
}

// BenchmarkLoopbackLiveThroughput prices the wire format on the hot path: the
// same keyed live workload run directly against a shard set versus through
// the loopback transport, where every RMW and response is codec-encoded,
// envelope-marshalled, unmarshalled and decoded before the local engine
// applies it. Both variants simulate a 50µs node service time, so ops/s is
// dominated by the simulated cluster and stable across machines; the gate in
// CI (cmd/benchdiff, 25% tolerance) enforces that envelope serialization
// stays a rounding error next to a single node service period.
func BenchmarkLoopbackLiveThroughput(b *testing.B) {
	const (
		clients   = 8
		valueSize = 1024
	)
	specs := func() []shard.Spec {
		return []shard.Spec{{
			Name:      "s0",
			Algorithm: "adaptive",
			Config:    register.Config{F: 2, K: 2, DataLen: valueSize},
		}}
	}
	for _, mode := range []string{"direct", "loopback"} {
		b.Run(fmt.Sprintf("transport=%s/clients=%d", mode, clients), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(clients, runtime.NumCPU())))
			backing, err := shard.New(specs(), dsys.WithLiveLatency(50*time.Microsecond))
			if err != nil {
				b.Fatal(err)
			}
			defer backing.Close()
			set := backing
			if mode == "loopback" {
				set, err = shard.NewRemote(specs(), transport.NewLoopback(backing.Cluster()))
				if err != nil {
					b.Fatal(err)
				}
				defer set.Close()
			}
			sh := set.Shards()[0]
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for cl := 1; cl <= clients; cl++ {
				cl := cl
				ops := b.N / clients
				if cl <= b.N%clients {
					ops++
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if i%10 == 9 {
							if _, err := set.ReadValue(cl, sh); err != nil {
								b.Error(err)
								return
							}
							continue
						}
						if err := set.WriteValue(cl, sh, value.Sequenced(cl, i, valueSize)); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
		})
	}
}

// onOff renders a benchmark sub-name dimension.
func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// BenchmarkAdaptiveLiveThroughput measures raw operation throughput of the
// adaptive register on the live runtime with several concurrent clients.
func BenchmarkAdaptiveLiveThroughput(b *testing.B) {
	store, err := spacebounds.Open(spacebounds.Options{Algorithm: spacebounds.Adaptive, F: 2, K: 2, ValueSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	payload := make([]byte, 4096)
	b.RunParallel(func(pb *testing.PB) {
		client := 0
		for pb.Next() {
			client++
			if err := store.WriteKey(client%16+1, "default", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
