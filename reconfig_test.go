package spacebounds_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spacebounds"
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/shard"
	"spacebounds/internal/workload"
)

// TestStoreSplitShardLive splits a shard of a batched, latency-modelled store
// while clients hammer it: zero failed operations, successors live, stats
// recorded, storage breakdown summation-consistent mid-flight.
func TestStoreSplitShardLive(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		Shards: []spacebounds.ShardSpec{
			{Name: "s0"}, {Name: "s1"}, {Name: "s2"}, {Name: "s3"},
		},
		F: 1, K: 2, ValueSize: 256,
		NodeLatency: 20 * time.Microsecond,
		Batch:       spacebounds.BatchOptions{MaxSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const clients = 8
	const opsPerClient = 120
	var failed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A storage sampler races the migration to pin summation consistency
	// while two epochs coexist.
	sampler := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				sampler <- nil
				return
			case <-time.After(200 * time.Microsecond):
			}
			total, perShard := store.StorageBreakdown()
			sum := 0
			for _, bits := range perShard {
				sum += bits
			}
			if sum != total {
				sampler <- fmt.Errorf("per-shard bits sum to %d, total says %d", sum, total)
				return
			}
		}
	}()
	for c := 1; c <= clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 64)
			for i := 0; i < opsPerClient; i++ {
				key := fmt.Sprintf("key-%d", (c+i)%16)
				payload[0] = byte(i)
				if err := store.WriteKey(c, key, payload); err != nil {
					failed.Add(1)
					return
				}
				if _, err := store.ReadKey(c, key); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}

	succs, err := store.SplitShard("s0")
	if err != nil {
		t.Fatalf("split under load: %v", err)
	}
	if len(succs) != 2 {
		t.Fatalf("successors = %v", succs)
	}
	if _, err := store.DrainShard("s1"); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg.Wait()
	close(stop)
	if err := <-sampler; err != nil {
		t.Fatal(err)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d operations failed during live reconfiguration", n)
	}

	st := store.ReconfigStats()
	if st.Splits != 1 || st.Drains != 1 || st.SeedWrites != 3 || st.Epoch == 0 {
		t.Fatalf("reconfig stats = %+v", st)
	}
	// Shard list reflects the new topology; storage still sums.
	total, perShard := store.StorageBreakdown()
	sum := 0
	for _, bits := range perShard {
		sum += bits
	}
	if sum != total {
		t.Fatalf("post-reconfig per-shard bits sum to %d, total %d", sum, total)
	}
	if _, ok := perShard["s0/0"]; !ok {
		t.Fatalf("successor missing from breakdown: %v", perShard)
	}
}

// TestStoreResizePlanAndDedicated exercises Resize with add/remove moves and
// the plan validation.
func TestStoreResizePlanAndDedicated(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		Shards:    []spacebounds.ShardSpec{{Name: "a"}, {Name: "b"}},
		ValueSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.WriteKey(1, "hot", []byte("before-fork")); err != nil {
		t.Fatal(err)
	}
	if err := store.Resize([]spacebounds.ResizeOp{
		{Add: "hot"},
		{Split: "a"},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := store.ReadKey(2, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:11]) != "before-fork" {
		t.Fatalf("forked key read %q", got[:11])
	}
	if err := store.RemoveShard("hot"); err != nil {
		t.Fatal(err)
	}
	st := store.ReconfigStats()
	if st.Adds != 1 || st.Removes != 1 || st.Splits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Exactly-one-field validation.
	if err := store.Resize([]spacebounds.ResizeOp{{Split: "b", Drain: "b"}}); err == nil {
		t.Fatal("ambiguous resize op accepted")
	}
	if err := store.Resize([]spacebounds.ResizeOp{{}}); err == nil {
		t.Fatal("empty resize op accepted")
	}
}

// TestReconfigUnderFaultInjection runs a split while the store's fault
// injector crashes and restarts nodes: the migration must complete and the
// store stay available.
func TestReconfigUnderFaultInjection(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		Shards:    []spacebounds.ShardSpec{{Name: "s0"}, {Name: "s1"}},
		F:         1,
		K:         2,
		ValueSize: 128,
		Faults:    spacebounds.FaultOptions{Interval: 500 * time.Microsecond, Downtime: 2 * time.Millisecond, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 1; c <= 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 32)
			for i := 0; i < 80; i++ {
				payload[0] = byte(i)
				if err := store.WriteKey(c, fmt.Sprintf("key-%d", i%8), payload); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	if _, err := store.SplitShard("s0"); err != nil {
		t.Fatalf("split under fault injection: %v", err)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d writes failed (fault injector must stay within per-shard budget F)", n)
	}
	if _, err := store.ReadKey(99, "s0"); err != nil {
		t.Fatalf("read after faulted split: %v", err)
	}
}

// TestLiveSplitThroughputRecovers is the live half of the PR's acceptance
// criterion: an open-loop workload saturates a single shard (arrivals beyond
// its service capacity under the node-latency model), a live split lands at
// the half-way mark, and the post-split completion rate must be at least the
// pre-split rate — the new epoch has twice the storage nodes — with zero
// failed operations throughout. Rates are dominated by the simulated node
// service time, so the comparison is stable across machines.
func TestLiveSplitThroughputRecovers(t *testing.T) {
	set, err := shard.New(
		[]shard.Spec{{Name: "s0", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 256}}},
		dsys.WithLiveLatency(200*time.Microsecond),
		dsys.WithLiveBatch(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: 8})

	// One shard (4 nodes, 200µs service time, batch 8) completes roughly 6k
	// ops/s under this mix; 9.6k arrivals/s oversaturate it — the backlog
	// grows — while staying under the doubled post-split capacity, so the
	// completion rate must rise once the second region is live.
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:      8,
		OpsPerClient: 1200,
		ReadFraction: 0.2,
		Keys:         32,
		Seed:         1,
		ArrivalRate:  1200,
		Reconfig:     []workload.ReconfigMove{{AfterOps: 2000, Split: "s0"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteErrors+res.ReadErrors != 0 {
		t.Fatalf("%d writes / %d reads failed during the live split", res.WriteErrors, res.ReadErrors)
	}
	if len(res.Reconfigs) != 1 || res.Reconfigs[0].Err != "" {
		t.Fatalf("split did not apply cleanly: %+v", res.Reconfigs)
	}
	ar := res.Reconfigs[0]
	t.Logf("split after %d ops in %v: %.0f ops/s before -> %.0f ops/s after",
		ar.TriggeredAtOps, ar.Took, ar.OpsPerSecBefore, ar.OpsPerSecAfter)
	if raceEnabled {
		// The race detector multiplies compute cost, which shifts the
		// sleep-dominated capacity model this comparison depends on; the
		// correctness half (zero failed operations, clean migration) was
		// asserted above and is what the race build is for.
		t.Skip("skipping throughput comparison under the race detector")
	}
	if ar.OpsPerSecBefore <= 0 || ar.OpsPerSecAfter <= 0 {
		t.Fatalf("degenerate rate windows: %+v", ar)
	}
	if ar.OpsPerSecAfter < ar.OpsPerSecBefore {
		t.Fatalf("throughput did not recover after the split: %.0f ops/s before, %.0f after",
			ar.OpsPerSecBefore, ar.OpsPerSecAfter)
	}
}

// TestStoreMergeShardsLive merges two shards of a live store while clients
// hammer keys of both: zero failed operations, the merged shard serves both
// namespaces, and the inverse move round-trips (split the merged shard
// again).
func TestStoreMergeShardsLive(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		Shards: []spacebounds.ShardSpec{
			{Name: "s0"}, {Name: "s1"}, {Name: "s2"},
		},
		F: 1, K: 2, ValueSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const clients = 6
	const opsPerClient = 150
	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 1; c <= clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 32)
			for i := 0; i < opsPerClient; i++ {
				key := fmt.Sprintf("key-%d", (c+i)%16)
				payload[0] = byte(i)
				if err := store.WriteKey(c, key, payload); err != nil {
					failed.Add(1)
					return
				}
				if _, err := store.ReadKey(c, key); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	merged, err := store.MergeShards("s0", "s1")
	if err != nil {
		t.Fatalf("merge under load: %v", err)
	}
	if merged != "s0+s1" {
		t.Fatalf("merged shard = %q", merged)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d operations failed during the live merge", n)
	}

	// Both old namespaces answer through the merged shard.
	if err := store.WriteKey(1, "s0", []byte("after-merge")); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"s0", "s1"} {
		got, err := store.ReadKey(2, key)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:len("after-merge")]) != "after-merge" {
			t.Fatalf("read of %q after merge = %q", key, got[:16])
		}
	}
	// The inverse move still works: split the merged shard again.
	if _, err := store.SplitShard(merged); err != nil {
		t.Fatalf("re-split of merged shard: %v", err)
	}
	st := store.ReconfigStats()
	if st.Merges != 1 || st.Splits != 1 || st.Aborts != 0 {
		t.Fatalf("reconfig stats = %+v", st)
	}

	// A quiet store has nothing to resume; the recovery entry points are
	// no-ops that report so.
	resumed, err := store.ResumeMoves()
	if err != nil || resumed != 0 {
		t.Fatalf("ResumeMoves on settled store = %d, %v", resumed, err)
	}
}

// TestStoreResizeWithMerge drives a merge through the Resize plan API and
// validates the op-shape checks.
func TestStoreResizeWithMerge(t *testing.T) {
	store, err := spacebounds.Open(spacebounds.Options{
		Shards: []spacebounds.ShardSpec{{Name: "a"}, {Name: "b"}},
		F:      1, K: 2, ValueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Resize([]spacebounds.ResizeOp{{Merge: "a"}}); err == nil {
		t.Fatal("merge without MergeWith accepted")
	}
	if err := store.Resize([]spacebounds.ResizeOp{{MergeWith: "b"}}); err == nil {
		t.Fatal("MergeWith without Merge accepted")
	}
	if err := store.Resize([]spacebounds.ResizeOp{{Split: "a", MergeWith: "b"}}); err == nil {
		t.Fatal("ambiguous op accepted")
	}
	if err := store.Resize([]spacebounds.ResizeOp{{Merge: "a", MergeWith: "b"}}); err != nil {
		t.Fatal(err)
	}
	if st := store.ReconfigStats(); st.Merges != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
