// Command linkcheck verifies the repository's markdown cross-references
// without any external dependency: every inline link or image whose target is
// a relative path must resolve to an existing file, and a #fragment pointing
// into a markdown file must match one of that file's heading anchors (GitHub
// slug rules). External links (http, https, mailto) are not fetched — the
// checker guards the repo's own docs graph, not the internet.
//
// Usage:
//
//	linkcheck [-root DIR] [paths...]
//
// With no paths it checks every .md file under -root (default "."), skipping
// dot-directories. It prints one line per broken link and exits non-zero if
// any were found.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root; relative links may not escape it")
	flag.Parse()

	files, err := collectFiles(*root, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	broken := 0
	for _, f := range files {
		problems, err := checkFile(*root, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %s: %v\n", f, err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) across %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) ok\n", len(files))
}

// collectFiles expands the given paths (default: the whole root) into the
// list of markdown files to check.
func collectFiles(root string, paths []string) ([]string, error) {
	if len(paths) == 0 {
		paths = []string{root}
	}
	var out []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != p {
				return filepath.SkipDir
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// inlineLink matches [text](target) and ![alt](target), capturing the target
// up to the closing parenthesis or an optional "title".
var inlineLink = regexp.MustCompile(`!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+"[^"]*")?\s*\)`)

// checkFile returns a description of every broken link in file.
func checkFile(root, file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var problems []string
	for i, line := range strings.Split(stripCodeBlocks(string(data)), "\n") {
		for _, m := range inlineLink.FindAllStringSubmatch(line, -1) {
			if reason := checkTarget(root, file, m[1]); reason != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: [%s] %s", file, i+1, m[1], reason))
			}
		}
	}
	return problems, nil
}

// stripCodeBlocks blanks fenced code blocks and inline code spans so code
// samples cannot produce false links; line numbering is preserved.
func stripCodeBlocks(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			b.WriteString("\n")
			continue
		}
		if inFence {
			b.WriteString("\n")
			continue
		}
		b.WriteString(blankInlineCode(line))
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// blankInlineCode replaces `code spans` with spaces.
func blankInlineCode(line string) string {
	out := []byte(line)
	for {
		start := strings.IndexByte(string(out), '`')
		if start < 0 {
			return string(out)
		}
		end := strings.IndexByte(string(out[start+1:]), '`')
		if end < 0 {
			return string(out)
		}
		for i := start; i <= start+1+end; i++ {
			out[i] = ' '
		}
	}
}

// checkTarget validates one link target; it returns "" when the link is fine
// (or outside the checker's scope) and a human-readable reason otherwise.
func checkTarget(root, file, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // external; not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	if path == "" {
		// Same-file fragment.
		return checkFragment(file, frag)
	}
	resolved := filepath.Join(filepath.Dir(file), path)
	if escapesRoot(root, resolved) {
		// Links that climb out of the repository (e.g. the CI badge's
		// ../../actions/... URL, which GitHub resolves site-side) cannot be
		// verified from a checkout.
		return ""
	}
	info, err := os.Stat(resolved)
	if err != nil {
		return "target does not exist"
	}
	if frag != "" {
		if info.IsDir() {
			return "fragment on a directory link"
		}
		if strings.HasSuffix(resolved, ".md") {
			return checkFragment(resolved, frag)
		}
	}
	return ""
}

// escapesRoot reports whether path lies outside root.
func escapesRoot(root, path string) bool {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return true
	}
	return rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// checkFragment verifies that a markdown file has a heading whose GitHub
// anchor slug matches frag.
func checkFragment(file, frag string) string {
	if frag == "" {
		return ""
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "fragment target unreadable"
	}
	for _, slug := range headingSlugs(string(data)) {
		if slug == frag {
			return ""
		}
	}
	return fmt.Sprintf("no heading with anchor #%s in %s", frag, filepath.Base(file))
}

// headingSlugs returns the GitHub anchor slugs of every markdown heading,
// applying the -n suffix GitHub adds to duplicates.
func headingSlugs(s string) []string {
	var slugs []string
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ') {
			continue // not a heading (e.g. "#hashtag" or over six #s is fine either way)
		}
		slug := slugify(strings.TrimSpace(text))
		if n, dup := seen[slug]; dup {
			seen[slug] = n + 1
			slugs = append(slugs, fmt.Sprintf("%s-%d", slug, n))
		} else {
			seen[slug] = 1
			slugs = append(slugs, slug)
		}
	}
	return slugs
}

// slugify applies GitHub's heading-anchor rules: lowercase, spaces to
// dashes, and everything except letters, digits, dashes and underscores
// dropped (backticks and other punctuation vanish).
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			r >= 'a' && r <= 'z',
			r >= '0' && r <= '9',
			r > 127: // unicode letters survive
			b.WriteRune(r)
		}
	}
	return b.String()
}
