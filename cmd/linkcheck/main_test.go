package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir, making parents as needed.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileResolvesRelativeLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "docs/TARGET.md", "# Title\n\n## Sub Heading!\n")
	readme := write(t, root, "README.md", strings.Join([]string{
		"# Readme",
		"[good](docs/TARGET.md)",
		"[good anchor](docs/TARGET.md#sub-heading)",
		"[bad anchor](docs/TARGET.md#nope)",
		"[missing](docs/GONE.md)",
		"[external](https://example.com/GONE.md)",
		"[badge](../../actions/workflows/ci.yml)", // escapes root: skipped
		"[self](#readme)",
		"[self bad](#nothing-here)",
		"```",
		"[in a fence](docs/GONE.md)",
		"```",
		"`[inline code](docs/GONE.md)`",
	}, "\n"))

	problems, err := checkFile(root, readme)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range problems {
		got = append(got, p)
	}
	if len(got) != 3 {
		t.Fatalf("want 3 problems (bad anchor, missing file, bad self-anchor), got %d:\n%s",
			len(got), strings.Join(got, "\n"))
	}
	for _, want := range []string{"#nope", "GONE.md", "#nothing-here"} {
		found := false
		for _, p := range got {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no problem mentions %s:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

func TestHeadingSlugs(t *testing.T) {
	slugs := headingSlugs("# One Two\n## `Code` & Stuff\n## One Two\n```\n# not a heading\n```\n")
	want := []string{"one-two", "code--stuff", "one-two-1"}
	if strings.Join(slugs, ",") != strings.Join(want, ",") {
		t.Fatalf("slugs = %v, want %v", slugs, want)
	}
}

// TestRepoDocsAreClean runs the checker over the repository's own markdown —
// the same invocation make linkcheck uses — so a broken cross-reference in
// README/DESIGN/ROADMAP/docs fails as a unit test too.
func TestRepoDocsAreClean(t *testing.T) {
	root := "../.."
	files, err := collectFiles(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found from the repo root")
	}
	for _, f := range files {
		problems, err := checkFile(root, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
}
