package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: spacebounds
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedLiveThroughput/shards=1/clients=8/batch=off-8         	     141	   2185802 ns/op	       462.6 ops/s
BenchmarkShardedLiveThroughput/shards=1/clients=32/batch=on-8         	    2025	    170408 ns/op	      5870 ops/s
BenchmarkAdaptiveStorageVsConcurrency/f=2/k=2/c=1-8                   	     100	    123456 ns/op	     98304 storage-bits
BenchmarkReedSolomon/encode/k=2/n=6-8                                 	    5000	      3000 ns/op	 21845.33 MB/s
PASS
ok  	spacebounds	2.888s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rec.Benchmarks))
	}
	byName := make(map[string]Benchmark)
	for _, b := range rec.Benchmarks {
		byName[b.Name] = b
	}
	off := byName["BenchmarkShardedLiveThroughput/shards=1/clients=8/batch=off"]
	if off.OpsPerSec != 462.6 || off.NsPerOp != 2185802 {
		t.Fatalf("batch=off parsed as %+v", off)
	}
	// The GOMAXPROCS suffix must be stripped so records diff across machines.
	if _, ok := byName["BenchmarkShardedLiveThroughput/shards=1/clients=8/batch=off-8"]; ok {
		t.Fatal("GOMAXPROCS suffix survived parsing")
	}
	// Benchmarks without an ops/s metric fall back to 1e9/ns-per-op.
	storage := byName["BenchmarkAdaptiveStorageVsConcurrency/f=2/k=2/c=1"]
	want := 1e9 / 123456
	if diff := storage.OpsPerSec - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("derived ops/s = %v, want %v", storage.OpsPerSec, want)
	}
}

func TestCompare(t *testing.T) {
	base := &Record{Benchmarks: []Benchmark{
		{Name: "a", OpsPerSec: 1000},
		{Name: "b", OpsPerSec: 1000},
		{Name: "gone", OpsPerSec: 1000},
	}}
	cur := &Record{Benchmarks: []Benchmark{
		{Name: "a", OpsPerSec: 800},  // -20%: within a 25% tolerance
		{Name: "b", OpsPerSec: 700},  // -30%: regression
		{Name: "new", OpsPerSec: 50}, // no baseline: reported, not failed
	}}
	deltas := Compare(base, cur, 0.25)
	got := make(map[string]Delta)
	for _, d := range deltas {
		got[d.Name] = d
	}
	if got["a"].Regressed {
		t.Fatal("a regressed although within tolerance")
	}
	if !got["b"].Regressed {
		t.Fatal("b not flagged despite 30% regression")
	}
	if !got["gone"].Regressed || !got["gone"].MissingCurrent {
		t.Fatal("benchmark missing from current run must fail the gate")
	}
	if got["new"].Regressed || !got["new"].NewBenchmark {
		t.Fatal("new benchmark must be reported without failing")
	}
}

func TestValidateBaselineRejectsZeroThroughput(t *testing.T) {
	bad := &Record{Benchmarks: []Benchmark{
		{Name: "ok", OpsPerSec: 100},
		{Name: "BenchmarkBroken/batch=on", OpsPerSec: 0},
	}}
	err := ValidateBaseline(bad)
	if err == nil {
		t.Fatal("baseline with ops_per_sec 0 accepted")
	}
	if !strings.Contains(err.Error(), "BenchmarkBroken/batch=on") {
		t.Fatalf("error does not name the malformed benchmark: %v", err)
	}
	if err := ValidateBaseline(&Record{Benchmarks: []Benchmark{{Name: "ok", OpsPerSec: 1}}}); err != nil {
		t.Fatalf("healthy baseline rejected: %v", err)
	}
}

func TestRunCompareFailsOnMalformedBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rec *Record) string {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", &Record{Benchmarks: []Benchmark{{Name: "zeroed", OpsPerSec: 0}}})
	cur := write("cur.json", &Record{Benchmarks: []Benchmark{{Name: "zeroed", OpsPerSec: 10}}})
	err := runCompare(base, cur, 0.25)
	if err == nil {
		t.Fatal("compare against a zero-throughput baseline must fail")
	}
	if !strings.Contains(err.Error(), "zeroed") {
		t.Fatalf("error does not name the benchmark: %v", err)
	}
}
