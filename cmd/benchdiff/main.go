// Command benchdiff turns `go test -bench` output into a JSON benchmark
// record and gates throughput regressions against a committed baseline.
//
// Emit mode parses benchmark output and writes BENCH.json:
//
//	go test -bench=. -run='^$' . > bench.out
//	benchdiff -emit -in bench.out -o BENCH.json
//
// Compare mode diffs a current record against a baseline and exits non-zero
// when any benchmark's throughput regressed by more than the tolerance:
//
//	benchdiff -baseline BENCH.baseline.json -current BENCH.json -tolerance 0.25
//
// Throughput is the ops/s metric a benchmark reports via b.ReportMetric,
// falling back to 1e9/ns-per-op for benchmarks without one. Benchmarks
// present in the baseline but missing from the current record fail the diff
// (a silently dropped benchmark must not pass the gate); new benchmarks are
// reported but do not fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result in the BENCH.json schema.
type Benchmark struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Record is the BENCH.json document.
type Record struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		emit      = flag.Bool("emit", false, "parse `go test -bench` output and emit BENCH.json")
		in        = flag.String("in", "", "input file for -emit (default stdin)")
		out       = flag.String("o", "", "output file for -emit (default stdout)")
		baseline  = flag.String("baseline", "", "baseline BENCH.json to compare against")
		current   = flag.String("current", "", "current BENCH.json to compare")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional throughput regression before failing")
	)
	flag.Parse()
	var err error
	switch {
	case *emit:
		err = runEmit(*in, *out)
	case *baseline != "" && *current != "":
		err = runCompare(*baseline, *current, *tolerance)
	default:
		err = fmt.Errorf("nothing to do: use -emit, or -baseline with -current (see -h)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

// runEmit parses benchmark output from in (or stdin) and writes the JSON
// record to out (or stdout).
func runEmit(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rec, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse reads `go test -bench` output and collects one Benchmark per result
// line. Result lines look like
//
//	BenchmarkName/sub=1-8   141   2185802 ns/op   462.6 ops/s   4096 storage-bits
//
// i.e. a name, an iteration count, then value/unit pairs. Only ns/op and
// ops/s are recorded; ops/s defaults to 1e9/ns-per-op when absent.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		b := Benchmark{Name: trimProcSuffix(fields[0])}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = val
			case "ops/s":
				b.OpsPerSec = val
			}
		}
		if b.NsPerOp == 0 && b.OpsPerSec == 0 {
			continue
		}
		if b.OpsPerSec == 0 {
			b.OpsPerSec = 1e9 / b.NsPerOp
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to benchmark
// names, so records from machines with different core counts stay diffable.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Delta is the outcome of comparing one benchmark against the baseline.
type Delta struct {
	Name           string
	Base, Cur      float64 // ops/s
	Change         float64 // fractional change, +faster/-slower
	Regressed      bool
	MissingCurrent bool
	NewBenchmark   bool
}

// Compare diffs current against baseline with the given tolerance.
func Compare(base, cur *Record, tolerance float64) []Delta {
	curByName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	var deltas []Delta
	for _, bb := range base.Benchmarks {
		baseNames[bb.Name] = true
		cb, ok := curByName[bb.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: bb.Name, Base: bb.OpsPerSec, MissingCurrent: true, Regressed: true})
			continue
		}
		d := Delta{Name: bb.Name, Base: bb.OpsPerSec, Cur: cb.OpsPerSec}
		if bb.OpsPerSec > 0 {
			d.Change = (cb.OpsPerSec - bb.OpsPerSec) / bb.OpsPerSec
			d.Regressed = cb.OpsPerSec < bb.OpsPerSec*(1-tolerance)
		}
		deltas = append(deltas, d)
	}
	for _, cb := range cur.Benchmarks {
		if !baseNames[cb.Name] {
			deltas = append(deltas, Delta{Name: cb.Name, Cur: cb.OpsPerSec, NewBenchmark: true})
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// ValidateBaseline rejects baseline records that cannot gate anything: an
// entry with non-positive throughput would turn the regression check into a
// division by zero (or a silent pass), so it is reported by name instead.
func ValidateBaseline(rec *Record) error {
	for _, b := range rec.Benchmarks {
		if b.OpsPerSec <= 0 {
			return fmt.Errorf("baseline benchmark %q has non-positive ops_per_sec %v; regenerate the baseline", b.Name, b.OpsPerSec)
		}
	}
	return nil
}

// runCompare loads both records, prints the diff, and returns an error when
// any benchmark regressed beyond the tolerance.
func runCompare(baselinePath, currentPath string, tolerance float64) error {
	base, err := load(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := ValidateBaseline(base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := load(currentPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	deltas := Compare(base, cur, tolerance)
	regressions := 0
	for _, d := range deltas {
		switch {
		case d.MissingCurrent:
			fmt.Printf("MISSING  %-60s baseline %.1f ops/s, absent from current run\n", d.Name, d.Base)
			regressions++
		case d.NewBenchmark:
			fmt.Printf("NEW      %-60s %.1f ops/s (no baseline)\n", d.Name, d.Cur)
		case d.Regressed:
			fmt.Printf("REGRESS  %-60s %.1f -> %.1f ops/s (%+.1f%%, tolerance -%.0f%%)\n",
				d.Name, d.Base, d.Cur, 100*d.Change, 100*tolerance)
			regressions++
		default:
			fmt.Printf("ok       %-60s %.1f -> %.1f ops/s (%+.1f%%)\n", d.Name, d.Base, d.Cur, 100*d.Change)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the %.0f%% tolerance", regressions, 100*tolerance)
	}
	return nil
}

// load reads a BENCH.json record.
func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}
