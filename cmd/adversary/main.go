// Command adversary runs the Theorem 1 scheduling adversary Ad against a
// chosen register emulation and reports the storage it pins the system at,
// compared with the analytic Ω(min(f, c)·D) target.
//
// Usage:
//
//	adversary -algo ecreg -f 8 -k 8 -c 12 -size 512
//	adversary -algo adaptive -f 8 -k 8 -c 1,4,8,12
//	adversary -algo safe -f 8 -k 8 -c 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spacebounds/internal/adversary"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
)

func main() {
	var (
		algo = flag.String("algo", "ecreg", "algorithm to attack: ecreg | adaptive | safe")
		f    = flag.Int("f", 8, "number of base-object failures tolerated")
		k    = flag.Int("k", 8, "erasure-code decode threshold (n = 2f+k)")
		size = flag.Int("size", 512, "value size in bytes (D = 8*size bits)")
		cs   = flag.String("c", "1,4,8,12", "comma-separated concurrency levels")
		ell  = flag.Int("ell", 0, "adversary parameter ℓ in bits (0 = D/2)")
	)
	flag.Parse()
	if err := run(*algo, *f, *k, *size, *cs, *ell); err != nil {
		fmt.Fprintf(os.Stderr, "adversary: %v\n", err)
		os.Exit(1)
	}
}

func run(algo string, f, k, size int, cs string, ell int) error {
	newReg := func() (register.Register, error) {
		cfg := register.Config{F: f, K: k, DataLen: size}
		switch algo {
		case "ecreg":
			return ecreg.New(cfg)
		case "adaptive":
			return adaptive.New(cfg)
		case "safe":
			return safereg.New(cfg)
		default:
			return nil, fmt.Errorf("unknown algorithm %q (want ecreg, adaptive, or safe)", algo)
		}
	}
	for _, field := range strings.Split(cs, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad concurrency level %q: %w", field, err)
		}
		reg, err := newReg()
		if err != nil {
			return err
		}
		res, err := adversary.Run(reg, c, ell)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}
