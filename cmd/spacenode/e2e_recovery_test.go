package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestClusterRecoveryEndToEnd is the black-box test of durable recovery: a
// 4-node cluster journals to per-node WAL directories, one node is killed
// with SIGKILL mid-run and restarted as a FRESH process — wiped memory, same
// WAL directory — and must come back by replaying its journal before
// listening. The paced client must finish with strong regularity intact, and
// the restarted node must prove it recovered from disk (its WAL REPLAY line
// reports applied records), not from writes repairing it afterwards.
func TestClusterRecoveryEndToEnd(t *testing.T) {
	opsPerClient, rate := 240, 120.0
	killAt, restartAt := 500*time.Millisecond, 1000*time.Millisecond
	if testing.Short() {
		opsPerClient, rate = 120, 150.0
		killAt, restartAt = 300*time.Millisecond, 600*time.Millisecond
	}

	bin := t.TempDir()
	nodeBin := filepath.Join(bin, "spacenode")
	benchBin := filepath.Join(bin, "spacebench")
	buildBinary(t, nodeBin, "spacebounds/cmd/spacenode")
	buildBinary(t, benchBin, "spacebounds/cmd/spacebench")

	const (
		nodes  = 4
		shards = 2
		algo   = "adaptive"
	)
	walRoot := t.TempDir()
	layoutArgs := []string{
		"-nodes", fmt.Sprint(nodes),
		"-algo", algo, "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
	}
	nodeArgs := func(n int, listen string, recover bool) []string {
		args := []string{
			"-listen", listen, "-node", fmt.Sprint(n),
			"-wal-dir", filepath.Join(walRoot, fmt.Sprintf("node-%d", n)),
			"-wal-sync-every", "1", // every acknowledged round survives SIGKILL
		}
		if recover {
			args = append(args, "-recover")
		}
		return append(args, layoutArgs...)
	}

	procs := make([]*exec.Cmd, nodes)
	addrs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		procs[n], addrs[n], _ = startNodeCapture(t, nodeBin, nodeArgs(n, "127.0.0.1:0", false))
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		}
	}()

	histFile := filepath.Join(bin, "history.txt")
	clientOut := &bytes.Buffer{}
	client := exec.Command(benchBin,
		"-connect", strings.Join(addrs, ","),
		"-algo", algo, "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
		"-clients", "3", "-ops", fmt.Sprint(opsPerClient),
		"-arrival-rate", fmt.Sprint(rate),
		"-keys", "8", "-reads", "0.4", "-seed", "11",
		"-record-out", histFile,
	)
	client.Stdout = clientOut
	client.Stderr = clientOut
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: no flushes, no goodbyes. Whatever the node acknowledged is on
	// disk or the test fails.
	const victim = 2
	time.Sleep(killAt)
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill node %d: %v", victim, err)
	}
	_ = procs[victim].Wait()

	time.Sleep(restartAt - killAt)
	replayStart := time.Now()
	var victimOut *nodeOutput
	procs[victim], _, victimOut = startNodeCapture(t, nodeBin, nodeArgs(victim, addrs[victim], true))
	replayTook := time.Since(replayStart)

	err := client.Wait()
	out := clientOut.String()
	if err != nil {
		if data, rerr := os.ReadFile(histFile); rerr == nil {
			t.Logf("recorded history:\n%s", data)
		}
		t.Fatalf("client failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "history check: strong regularity ok") {
		t.Fatalf("client output missing history verdict:\n%s", out)
	}

	// The restarted process must have rebuilt state from its journal: its
	// WAL REPLAY line reports the records it re-applied before listening.
	replayLine := victimOut.waitLine(t, "WAL REPLAY ", 5*time.Second)
	m := regexp.MustCompile(`applied=(\d+)`).FindStringSubmatch(replayLine)
	if m == nil {
		t.Fatalf("unparseable replay line %q", replayLine)
	}
	if applied, _ := strconv.Atoi(m[1]); applied == 0 {
		t.Fatalf("restarted node replayed no records (%q); recovery did not come from the WAL", replayLine)
	}
	t.Logf("victim recovery (replay + listen) took %v: %s", replayTook, replayLine)
	t.Logf("client output:\n%s", out)
}

// nodeOutput accumulates a node's stdout lines for scraping.
type nodeOutput struct {
	mu    sync.Mutex
	lines []string
}

func (o *nodeOutput) waitLine(t *testing.T, prefix string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		o.mu.Lock()
		for _, l := range o.lines {
			if strings.HasPrefix(l, prefix) {
				o.mu.Unlock()
				return l
			}
		}
		all := strings.Join(o.lines, "\n")
		o.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no %q line in node output:\n%s", prefix, all)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startNodeCapture launches one spacenode, scrapes its LISTENING line, and
// keeps capturing stdout so tests can assert on later lines (WAL REPLAY).
func startNodeCapture(t *testing.T, bin string, args []string) (*exec.Cmd, string, *nodeOutput) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	out := &nodeOutput{}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			out.mu.Lock()
			out.lines = append(out.lines, line)
			out.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "LISTENING "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, out
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("spacenode %v did not report LISTENING", args)
		return nil, "", nil
	}
}
