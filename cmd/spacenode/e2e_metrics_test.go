package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterMetricsEndToEnd is the black-box test of the observability
// surface: a 4-node spacenode cluster started with -metrics-addr serves
// Prometheus /metrics and expvar /debug/vars while a spacebench -connect run
// is in flight, the client's own -metrics-addr endpoint exposes live
// transport-RPC and quorum-round histograms mid-run, and the client finishes
// by printing its latency summary.
func TestClusterMetricsEndToEnd(t *testing.T) {
	bin := t.TempDir()
	nodeBin := filepath.Join(bin, "spacenode")
	benchBin := filepath.Join(bin, "spacebench")
	buildBinary(t, nodeBin, "spacebounds/cmd/spacenode")
	buildBinary(t, benchBin, "spacebounds/cmd/spacebench")

	const (
		nodes  = 4
		shards = 2
	)
	layoutArgs := []string{
		"-nodes", fmt.Sprint(nodes),
		"-algo", "adaptive", "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
	}
	procs := make([]*exec.Cmd, nodes)
	addrs := make([]string, nodes)
	maddrs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		procs[n], addrs[n], maddrs[n] = startNodeWithMetrics(t, nodeBin,
			append([]string{"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-node", fmt.Sprint(n)}, layoutArgs...))
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		}
	}()

	// Paced client: ~150 ops at 100/s keeps the run in flight for over a
	// second, long enough to scrape everything mid-run.
	stderrBuf := &bytes.Buffer{}
	client := exec.Command(benchBin,
		"-connect", strings.Join(addrs, ","),
		"-algo", "adaptive", "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
		"-clients", "3", "-ops", "50", "-arrival-rate", "100",
		"-keys", "8", "-reads", "0.4", "-seed", "7",
		"-metrics-addr", "127.0.0.1:0",
	)
	stdout, err := client.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	client.Stderr = stderrBuf
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	// One goroutine owns stdout: it surfaces the METRICS line as soon as it
	// appears and accumulates everything for the end-of-run assertions.
	metricsLine := make(chan string, 1)
	outDone := make(chan string, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if rest, ok := strings.CutPrefix(line, "METRICS "); ok {
				select {
				case metricsLine <- rest:
				default:
				}
			}
		}
		outDone <- strings.Join(lines, "\n")
	}()
	var clientMetrics string
	select {
	case clientMetrics = <-metricsLine:
	case <-time.After(10 * time.Second):
		t.Fatal("client did not report METRICS")
	}

	// Mid-run, the client's endpoint must show completed transport RPCs and
	// quorum rounds; poll briefly since the scrape races the first rounds.
	waitForMetric(t, clientMetrics, "spacebounds_transport_rpc_seconds_count")
	clientPage := httpGet(t, "http://"+clientMetrics+"/metrics")
	for _, family := range []string{
		"spacebounds_transport_rpc_seconds_bucket",
		"spacebounds_transport_inflight_frames",
		"spacebounds_transport_redials_total",
		"spacebounds_dsys_quorum_round_seconds_bucket",
		"spacebounds_dsys_quorum_rounds_total",
	} {
		if !strings.Contains(clientPage, family) {
			t.Errorf("client /metrics missing %s:\n%.2000s", family, clientPage)
		}
	}
	if !strings.Contains(httpGet(t, "http://"+clientMetrics+"/debug/vars"), `"spacebounds"`) {
		t.Errorf("client /debug/vars missing the published registry")
	}

	// Every node serves both endpoints mid-run, with the server-side request
	// histogram and the applies counter live on the nodes the run touches.
	for n := 0; n < nodes; n++ {
		page := httpGet(t, "http://"+maddrs[n]+"/metrics")
		for _, family := range []string{
			"spacebounds_transport_server_request_seconds",
			"spacebounds_dsys_quorum_round_seconds",
			"spacebounds_dsys_applies_total",
		} {
			if !strings.Contains(page, family) {
				t.Errorf("node %d /metrics missing %s:\n%.2000s", n, family, page)
			}
		}
		if !strings.Contains(httpGet(t, "http://"+maddrs[n]+"/debug/vars"), `"spacebounds"`) {
			t.Errorf("node %d /debug/vars missing the published registry", n)
		}
	}
	waitForMetric(t, maddrs[0], "spacebounds_transport_server_requests_total")

	waitErr := client.Wait()
	out := <-outDone
	if waitErr != nil {
		t.Fatalf("client failed: %v\noutput:\n%s\nstderr:\n%s", waitErr, out, stderrBuf.String())
	}
	if !strings.Contains(out, "metrics summary:") || !strings.Contains(out, "spacebounds_transport_rpc_seconds") {
		t.Fatalf("client output missing final metrics summary:\n%s", out)
	}
	if !strings.Contains(out, "history check: strong regularity ok") {
		t.Fatalf("client output missing history verdict:\n%s", out)
	}
}

// startNodeWithMetrics launches one spacenode and scrapes its LISTENING and
// METRICS lines.
func startNodeWithMetrics(t *testing.T, bin string, args []string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	var listen, metrics string
	for sc.Scan() && (listen == "" || metrics == "") {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "LISTENING "); ok {
			listen = rest
		}
		if rest, ok := strings.CutPrefix(line, "METRICS "); ok {
			metrics = rest
		}
	}
	if listen == "" || metrics == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("spacenode %v did not report LISTENING and METRICS (got %q, %q)", args, listen, metrics)
	}
	// Keep draining so the node never blocks on a full stdout pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, listen, metrics
}

// waitForMetric polls addr's /metrics until the named series reports a
// nonzero value (the workload has demonstrably flowed through it).
func waitForMetric(t *testing.T, addr, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(httpGet(t, "http://"+addr+"/metrics"), "\n") {
			if strings.HasPrefix(line, name) && !strings.HasSuffix(line, " 0") {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("metric %s stayed zero on %s", name, addr)
}

// httpGet fetches a URL and returns the body.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}
