// Command spacenode hosts one node's share of a sharded deployment's base
// objects behind the TCP envelope transport. Every node of a cluster is
// started with the same layout flags and its own -node index; clients
// (spacebench -connect) expand the same layout, so object placement needs no
// runtime coordination.
//
// The node prints "LISTENING <addr>" once it accepts connections — start it
// with -listen 127.0.0.1:0 and scrape the line to learn the ephemeral port.
//
// A node restarted after a crash has lost its base objects' state. Restart it
// with -recover: read-only rounds are refused per object until a mutating
// round has applied there, so the recovered node re-joins quorums without
// ever serving its empty state as if it were current.
//
// With -wal-dir the node journals every applied mutating round to a
// write-ahead log and, on restart, replays the log before listening — the
// replayed objects come back with their pre-crash state and serve reads
// immediately, even under -recover (replay marks them repaired). The node
// prints "WAL REPLAY <stats>" after a replay so operators can see what was
// recovered.
//
// Usage:
//
//	spacenode -listen 127.0.0.1:9001 -node 0 -nodes 4 -algo adaptive -shards 4 -f 1 -k 1
//	spacenode -listen 127.0.0.1:9001 -node 0 -nodes 4 -wal-dir /var/lib/spacenode-0 -recover ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spacebounds/internal/metrics"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/trace"
	"spacebounds/internal/transport"
	"spacebounds/internal/wal"
)

// nodeConfig carries the parsed flags.
type nodeConfig struct {
	listen      string
	node        int
	nodes       int
	algo        string
	shards      int
	f, k        int
	valueSize   int
	recovery    bool
	metricsAddr string

	traceSample float64
	traceSlow   time.Duration

	walDir    string
	walSyncEv int
	walSnapEv int
}

func parseArgs(args []string, errOut io.Writer) (*nodeConfig, error) {
	c := &nodeConfig{}
	fs := flag.NewFlagSet("spacenode", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&c.listen, "listen", "127.0.0.1:0", "address to listen on (port 0 picks an ephemeral port)")
	fs.IntVar(&c.node, "node", 0, "this node's index in [0,nodes)")
	fs.IntVar(&c.nodes, "nodes", 1, "total number of nodes in the deployment")
	fs.StringVar(&c.algo, "algo", "adaptive", "register provider per shard: adaptive, abd, ecreg, safereg")
	fs.IntVar(&c.shards, "shards", 1, "number of shards")
	fs.IntVar(&c.f, "f", 1, "crash failures tolerated per shard")
	fs.IntVar(&c.k, "k", 1, "erasure decode threshold per shard")
	fs.IntVar(&c.valueSize, "valuesize", 64, "value size in bytes")
	fs.BoolVar(&c.recovery, "recover", false, "start in recovery mode: refuse reads per object until a write has applied (use after a crash)")
	fs.StringVar(&c.metricsAddr, "metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars, pprof /debug/pprof/ and the trace dump /debug/trace on this address (empty: disabled; port 0 picks an ephemeral port)")
	fs.Float64Var(&c.traceSample, "trace-sample", 1, "probability of locally originated traces; requests arriving with a wire trace context are always recorded (needs -metrics-addr)")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "retain whole-trace captures of ops slower than this (0: disabled)")
	fs.StringVar(&c.walDir, "wal-dir", "", "write-ahead log directory: journal applied rounds and replay them before serving (empty: in-memory only)")
	fs.IntVar(&c.walSyncEv, "wal-sync-every", 1, "records appended between fsyncs (1: sync every record)")
	fs.IntVar(&c.walSnapEv, "wal-snapshot-every", 0, "records appended between snapshots, which truncate the log (0: default 4096)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if c.nodes < 1 || c.node < 0 || c.node >= c.nodes {
		return nil, fmt.Errorf("-node %d out of range [0,%d)", c.node, c.nodes)
	}
	return c, nil
}

// run starts the node and blocks until stop is signalled.
func run(c *nodeConfig, out io.Writer, stop <-chan os.Signal) error {
	layout := transport.Layout{
		Algorithm: c.algo,
		Shards:    c.shards,
		F:         c.f,
		K:         c.k,
		ValueSize: c.valueSize,
	}
	specs, err := layout.Specs()
	if err != nil {
		return err
	}
	// The node builds the full cluster's object table but hosts only its
	// placement's slice; hosting is a predicate, not a copy, so the unhosted
	// objects cost a few empty structs.
	set, err := shard.New(specs)
	if err != nil {
		return err
	}
	defer set.Close()

	opts := []transport.ServerOption{
		transport.WithHosts(layout.HostedBy(c.nodes, c.node)),
	}
	if c.recovery {
		opts = append(opts, transport.WithRecovery())
	}
	var reg *metrics.Registry
	var tr *trace.Tracer
	if c.metricsAddr != "" {
		reg = metrics.NewRegistry()
		set.SetMetrics(reg)
		opts = append(opts, transport.WithServerMetrics(reg))
		tr = trace.New(trace.Options{
			Sample:  c.traceSample,
			Slow:    c.traceSlow,
			Proc:    fmt.Sprintf("node-%d", c.node),
			Node:    c.node,
			Metrics: reg,
		})
		set.SetTracer(tr)
		opts = append(opts, transport.WithServerTracer(tr))
		msrv, err := metrics.Serve(c.metricsAddr, reg,
			metrics.Mount{Pattern: "/debug/trace", Handler: tr.Handler()})
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "METRICS %s\n", msrv.Addr())
	}
	// Replay the write-ahead log BEFORE listening: the node must not answer a
	// single round with state older than what it journaled.
	var journal *wal.Journal
	if c.walDir != "" {
		journal, err = wal.Open(wal.Config{Dir: c.walDir, SyncEvery: c.walSyncEv, SnapshotEvery: c.walSnapEv})
		if err != nil {
			return err
		}
		defer journal.Close()
		if reg != nil {
			journal.SetMetrics(reg)
		}
		if tr != nil {
			journal.SetTracer(tr)
		}
		stats, err := journal.Replay(set.Cluster())
		if err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		journal.Attach(set.Cluster())
		fmt.Fprintf(out, "WAL REPLAY %s\n", stats)
	}
	srv := transport.NewServer(set.Cluster(), opts...)
	if journal != nil && c.recovery {
		// Replayed objects hold current state; serving their reads right away
		// only removes needless unavailability.
		for obj := 0; obj < layout.TotalObjects(); obj++ {
			if journal.Covered(obj) {
				srv.MarkRepaired(obj)
			}
		}
	}
	addr, err := srv.Listen(c.listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "LISTENING %s\n", addr)
	fmt.Fprintf(out, "spacenode %d/%d: %s, %d shards (f=%d, k=%d), hosting %d of %d objects, recovery=%v\n",
		c.node, c.nodes, c.algo, c.shards, c.f, c.k,
		countHosted(layout, c.nodes, c.node), layout.TotalObjects(), c.recovery)
	<-stop
	return nil
}

func countHosted(l transport.Layout, nodes, node int) int {
	hosted := 0
	for obj := 0; obj < l.TotalObjects(); obj++ {
		if l.HostedBy(nodes, node)(obj) {
			hosted++
		}
	}
	return hosted
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintf(os.Stderr, "spacenode: %v\n", err)
		os.Exit(2)
	}
	// NewByName panics late otherwise; fail fast on a bad provider name.
	if _, err := register.NewByName(cfg.algo, register.Config{F: cfg.f, K: cfg.k, DataLen: cfg.valueSize}); err != nil {
		fmt.Fprintf(os.Stderr, "spacenode: %v\n", err)
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, os.Stdout, stop); err != nil {
		fmt.Fprintf(os.Stderr, "spacenode: %v\n", err)
		os.Exit(1)
	}
}
