package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// traceSpan mirrors the trace dump's span shape; the test decodes the JSON by
// hand so it stays a black-box client of the wire format.
type traceSpan struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Stage  string `json:"stage"`
	Proc   string `json:"proc"`
}

// traceDump is the subset of the /debug/trace body the test needs.
type traceDump struct {
	Proc  string      `json:"proc"`
	Spans []traceSpan `json:"spans"`
}

// TestClusterTraceEndToEnd is the black-box test of the tracing surface: a
// 4-node cluster with write-ahead logs serves /debug/trace on every process
// while a fully-sampled spacebench -connect run is in flight, one node is
// SIGKILLed mid-run and restarted with -recover on its log, and the merged
// dump the client writes must stitch the recovered node's apply and WAL spans
// into complete traces rooted at client ops — the recovered process knew
// nothing but the trace context each request envelope carried.
func TestClusterTraceEndToEnd(t *testing.T) {
	bin := t.TempDir()
	nodeBin := filepath.Join(bin, "spacenode")
	benchBin := filepath.Join(bin, "spacebench")
	buildBinary(t, nodeBin, "spacebounds/cmd/spacenode")
	buildBinary(t, benchBin, "spacebounds/cmd/spacebench")

	const (
		nodes  = 4
		shards = 2
		victim = 2
	)
	layoutArgs := []string{
		"-nodes", fmt.Sprint(nodes),
		"-algo", "adaptive", "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
	}
	procs := make([]*exec.Cmd, nodes)
	addrs := make([]string, nodes)
	maddrs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		procs[n], addrs[n], maddrs[n] = startNodeWithMetrics(t, nodeBin, append([]string{
			"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-wal-dir", filepath.Join(bin, fmt.Sprintf("wal%d", n)),
			"-node", fmt.Sprint(n),
		}, layoutArgs...))
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		}
	}()

	mergedFile := filepath.Join(bin, "merged.json")
	clientOut := &bytes.Buffer{}
	client := exec.Command(benchBin,
		"-connect", strings.Join(addrs, ","),
		"-algo", "adaptive", "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
		"-clients", "3", "-ops", "120", "-arrival-rate", "100",
		"-keys", "8", "-reads", "0.4", "-seed", "7", "-batch", "4",
		"-trace-sample", "1", "-trace-out", mergedFile,
		"-trace-peers", strings.Join(maddrs, ","),
		"-metrics-addr", "127.0.0.1:0",
	)
	stdout, err := client.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	client.Stderr = clientOut
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	metricsLine := make(chan string, 1)
	outDone := make(chan string, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if rest, ok := strings.CutPrefix(line, "METRICS "); ok {
				select {
				case metricsLine <- rest:
				default:
				}
			}
		}
		outDone <- strings.Join(lines, "\n")
	}()
	var clientMetrics string
	select {
	case clientMetrics = <-metricsLine:
	case <-time.After(10 * time.Second):
		t.Fatal("client did not report METRICS")
	}

	// Mid-run, every process serves /debug/trace; the client and at least the
	// still-alive nodes must already hold spans.
	waitForTraceSpans(t, clientMetrics, "client")
	for n := 0; n < nodes; n++ {
		if n != victim {
			waitForTraceSpans(t, maddrs[n], fmt.Sprintf("node-%d", n))
		}
	}

	// Kill the victim hard mid-run and restart it in recovery mode on the same
	// ports, replaying its write-ahead log. Its pre-crash flight recorder dies
	// with it; everything it contributes to the merge below was recorded after
	// the restart, parented only by wire trace contexts.
	time.Sleep(300 * time.Millisecond)
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill node %d: %v", victim, err)
	}
	_ = procs[victim].Wait()
	time.Sleep(300 * time.Millisecond)
	procs[victim], _, _ = startNodeWithMetrics(t, nodeBin, append([]string{
		"-listen", addrs[victim], "-metrics-addr", maddrs[victim],
		"-wal-dir", filepath.Join(bin, fmt.Sprintf("wal%d", victim)),
		"-node", fmt.Sprint(victim), "-recover",
	}, layoutArgs...))

	waitErr := client.Wait()
	out := <-outDone
	if waitErr != nil {
		t.Fatalf("client failed: %v\noutput:\n%s\nstderr:\n%s", waitErr, out, clientOut.String())
	}
	if !strings.Contains(out, "slowest traced ops:") {
		t.Fatalf("client output missing the slowest-ops trace summary:\n%s", out)
	}
	if !strings.Contains(out, "trace dump written to") {
		t.Fatalf("client output missing the trace dump line:\n%s", out)
	}

	// The merged dump must stitch every stage across all processes.
	data, err := os.ReadFile(mergedFile)
	if err != nil {
		t.Fatalf("reading merged dump: %v", err)
	}
	var dump traceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("parsing %s: %v", mergedFile, err)
	}
	stages := map[string]int{}
	procSpans := map[string]int{}
	for _, s := range dump.Spans {
		stages[s.Stage]++
		procSpans[s.Proc]++
	}
	for _, stage := range []string{"op", "batch-wait", "quorum-round", "rpc", "apply", "wal-append", "wal-fsync"} {
		if stages[stage] == 0 {
			t.Errorf("merged dump has no %q spans (stages: %v)", stage, stages)
		}
	}

	// The recovered victim's spans must stitch into complete traces: an apply
	// span it recorded after the restart parents under a client RPC span whose
	// trace is rooted at a client op span.
	roots := map[uint64]bool{}  // trace -> has client root op span
	rpcIDs := map[uint64]bool{} // client rpc span IDs
	for _, s := range dump.Spans {
		if s.Proc == "client" && s.Stage == "op" && s.Parent == 0 {
			roots[s.Trace] = true
		}
		if s.Proc == "client" && s.Stage == "rpc" {
			rpcIDs[s.ID] = true
		}
	}
	victimProc := fmt.Sprintf("node-%d", victim)
	stitched := 0
	for _, s := range dump.Spans {
		if s.Proc == victimProc && s.Stage == "apply" && rpcIDs[s.Parent] && roots[s.Trace] {
			stitched++
		}
	}
	if procSpans[victimProc] == 0 {
		t.Fatalf("merged dump holds no spans from the recovered %s (procs: %v)", victimProc, procSpans)
	}
	if stitched == 0 {
		t.Fatalf("no %s apply span stitches under a client RPC span of a rooted trace (procs: %v)", victimProc, procSpans)
	}
	t.Logf("merged dump: %d spans, stages %v, procs %v, %d stitched recovered applies",
		len(dump.Spans), stages, procSpans, stitched)
}

// waitForTraceSpans polls addr's /debug/trace until it reports at least one
// span from the expected process.
func waitForTraceSpans(t *testing.T, addr, wantProc string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var d traceDump
		if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/debug/trace")), &d); err != nil {
			t.Fatalf("parsing /debug/trace from %s: %v", addr, err)
		}
		if d.Proc != wantProc {
			t.Fatalf("/debug/trace on %s reports proc %q, want %q", addr, d.Proc, wantProc)
		}
		if len(d.Spans) > 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("/debug/trace on %s (%s) never reported spans", addr, wantProc)
}
