package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterEndToEnd is the black-box test of the whole wire stack: it
// builds the real binaries, starts a 4-node spacenode cluster on ephemeral
// ports, runs the sharded workload against it through spacebench's client
// mode at a paced arrival rate, kills one node with SIGKILL mid-run, restarts
// it in recovery mode on the same port, and requires the client to finish
// with its recorded history passing the strong-regularity checker.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		// The -short variant still kills and restarts a node; it just runs a
		// shorter paced window.
		runClusterE2E(t, 120, 150, 300*time.Millisecond, 600*time.Millisecond)
		return
	}
	runClusterE2E(t, 240, 120, 500*time.Millisecond, 1000*time.Millisecond)
}

// runClusterE2E drives one kill-and-recover run: opsPerClient operations per
// client dispatched at ratePerSec, the victim killed at killAt and restarted
// with -recover at restartAt.
func runClusterE2E(t *testing.T, opsPerClient int, ratePerSec float64, killAt, restartAt time.Duration) {
	bin := t.TempDir()
	nodeBin := filepath.Join(bin, "spacenode")
	benchBin := filepath.Join(bin, "spacebench")
	buildBinary(t, nodeBin, "spacebounds/cmd/spacenode")
	buildBinary(t, benchBin, "spacebounds/cmd/spacebench")

	const (
		nodes  = 4
		shards = 2
		algo   = "adaptive"
	)
	layoutArgs := []string{
		"-nodes", fmt.Sprint(nodes),
		"-algo", algo, "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
	}

	procs := make([]*exec.Cmd, nodes)
	addrs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		procs[n], addrs[n] = startNode(t, nodeBin,
			append([]string{"-listen", "127.0.0.1:0", "-node", fmt.Sprint(n)}, layoutArgs...))
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		}
	}()

	// The recorded history lands in the test tempdir unless CI points
	// E2E_HISTORY_DIR at a directory that survives the test, so a failing run
	// can upload it as an artifact.
	histDir := bin
	if d := os.Getenv("E2E_HISTORY_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatalf("E2E_HISTORY_DIR %q: %v", d, err)
		}
		histDir = d
	}
	histFile := filepath.Join(histDir, "history.txt")

	// The client paces its arrivals, so the run's wall-clock window is
	// opsPerClient/ratePerSec regardless of cluster health — long enough to
	// span the kill and the recovery below.
	clientOut := &bytes.Buffer{}
	client := exec.Command(benchBin,
		"-connect", strings.Join(addrs, ","),
		"-algo", algo, "-shards", fmt.Sprint(shards), "-f", "1", "-k", "1", "-valuesize", "64",
		"-clients", "3", "-ops", fmt.Sprint(opsPerClient),
		"-arrival-rate", fmt.Sprint(ratePerSec),
		"-keys", "8", "-reads", "0.4", "-seed", "7",
		"-record-out", histFile,
	)
	client.Stdout = clientOut
	client.Stderr = clientOut
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill one node mid-run — hard, as a crash would.
	const victim = 2
	time.Sleep(killAt)
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill node %d: %v", victim, err)
	}
	_ = procs[victim].Wait()

	// Restart it on the same port, in recovery mode: its state is gone, so it
	// must refuse reads per object until writes repair them.
	time.Sleep(restartAt - killAt)
	procs[victim], _ = startNode(t, nodeBin,
		append([]string{"-listen", addrs[victim], "-node", fmt.Sprint(victim), "-recover"}, layoutArgs...))

	err := client.Wait()
	out := clientOut.String()
	if err != nil {
		if data, rerr := os.ReadFile(histFile); rerr == nil {
			t.Logf("recorded history:\n%s", data)
		}
		t.Fatalf("client failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "history check: strong regularity ok") {
		t.Fatalf("client output missing history verdict:\n%s", out)
	}
	t.Logf("client output:\n%s", out)
}

// buildBinary builds pkg into path with the module's toolchain.
func buildBinary(t *testing.T, path, pkg string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", path, pkg)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
}

// startNode launches one spacenode and scrapes its LISTENING line.
func startNode(t *testing.T, bin string, args []string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "LISTENING "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("spacenode %v did not report LISTENING", args)
		return nil, ""
	}
}
