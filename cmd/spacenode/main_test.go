package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"spacebounds/internal/transport"
)

func TestParseArgs(t *testing.T) {
	c, err := parseArgs([]string{
		"-listen", "127.0.0.1:9001", "-node", "2", "-nodes", "4",
		"-algo", "abd", "-shards", "3", "-f", "2", "-k", "1", "-valuesize", "128", "-recover",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := nodeConfig{
		listen: "127.0.0.1:9001", node: 2, nodes: 4,
		algo: "abd", shards: 3, f: 2, k: 1, valueSize: 128, recovery: true,
		walSyncEv: 1,
	}
	if *c != want {
		t.Fatalf("parseArgs = %+v, want %+v", *c, want)
	}

	for _, bad := range [][]string{
		{"-node", "4", "-nodes", "4"},          // index out of range
		{"-node", "-1"},                        // negative index
		{"-nodes", "0"},                        // empty deployment
		{"-node", "0", "-nodes", "1", "extra"}, // positional leftovers
		{"-no-such-flag"},
	} {
		if _, err := parseArgs(bad, io.Discard); err == nil {
			t.Fatalf("parseArgs(%v) accepted", bad)
		}
	}
}

func TestCountHosted(t *testing.T) {
	l := transport.Layout{Algorithm: "adaptive", Shards: 2, F: 1, K: 1, ValueSize: 64}
	total := 0
	for node := 0; node < 4; node++ {
		total += countHosted(l, 4, node)
	}
	if total != l.TotalObjects() {
		t.Fatalf("nodes host %d objects in total, want %d", total, l.TotalObjects())
	}
	// 2 shards x 3 objects over 4 nodes round-robin: no node hosts more than 2.
	for node := 0; node < 4; node++ {
		if n := countHosted(l, 4, node); n > 2 {
			t.Fatalf("node %d hosts %d objects, want <= 2", node, n)
		}
	}
}

// run must come up, report its address and hosting summary, and exit cleanly
// when signalled — the lifecycle the e2e test drives through the binary.
func TestRunListensAndStops(t *testing.T) {
	c, err := parseArgs([]string{"-listen", "127.0.0.1:0", "-node", "0", "-nodes", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		done <- run(c, pw, stop)
	}()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no output before exit: %v", <-done)
	}
	addr, ok := strings.CutPrefix(sc.Text(), "LISTENING ")
	if !ok {
		t.Fatalf("first line = %q, want LISTENING prefix", sc.Text())
	}
	if !sc.Scan() || !strings.Contains(sc.Text(), "hosting") {
		t.Fatalf("missing hosting summary, got %q", sc.Text())
	}

	// The reported address accepts envelope rounds.
	cl, err := transport.Dial([]string{addr}, transport.WithPlacement(func(int) int { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop <- os.Interrupt
	io.Copy(io.Discard, pr)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadLayout(t *testing.T) {
	c, err := parseArgs([]string{"-algo", "no-such-provider"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal)
	if err := run(c, &bytes.Buffer{}, stop); err == nil {
		t.Fatal("run accepted an unknown provider")
	}
	c2, err := parseArgs([]string{"-listen", "no-such-host-zzz:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(c2, &bytes.Buffer{}, stop); err == nil {
		t.Fatal("run accepted an unresolvable listen address")
	}
}
