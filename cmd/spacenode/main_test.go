package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"spacebounds/internal/trace"
	"spacebounds/internal/transport"
)

func TestParseArgs(t *testing.T) {
	c, err := parseArgs([]string{
		"-listen", "127.0.0.1:9001", "-node", "2", "-nodes", "4",
		"-algo", "abd", "-shards", "3", "-f", "2", "-k", "1", "-valuesize", "128", "-recover",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := nodeConfig{
		listen: "127.0.0.1:9001", node: 2, nodes: 4,
		algo: "abd", shards: 3, f: 2, k: 1, valueSize: 128, recovery: true,
		traceSample: 1, walSyncEv: 1,
	}
	if *c != want {
		t.Fatalf("parseArgs = %+v, want %+v", *c, want)
	}

	for _, bad := range [][]string{
		{"-node", "4", "-nodes", "4"},          // index out of range
		{"-node", "-1"},                        // negative index
		{"-nodes", "0"},                        // empty deployment
		{"-node", "0", "-nodes", "1", "extra"}, // positional leftovers
		{"-no-such-flag"},
	} {
		if _, err := parseArgs(bad, io.Discard); err == nil {
			t.Fatalf("parseArgs(%v) accepted", bad)
		}
	}
}

func TestCountHosted(t *testing.T) {
	l := transport.Layout{Algorithm: "adaptive", Shards: 2, F: 1, K: 1, ValueSize: 64}
	total := 0
	for node := 0; node < 4; node++ {
		total += countHosted(l, 4, node)
	}
	if total != l.TotalObjects() {
		t.Fatalf("nodes host %d objects in total, want %d", total, l.TotalObjects())
	}
	// 2 shards x 3 objects over 4 nodes round-robin: no node hosts more than 2.
	for node := 0; node < 4; node++ {
		if n := countHosted(l, 4, node); n > 2 {
			t.Fatalf("node %d hosts %d objects, want <= 2", node, n)
		}
	}
}

// run must come up, report its address and hosting summary, and exit cleanly
// when signalled — the lifecycle the e2e test drives through the binary.
func TestRunListensAndStops(t *testing.T) {
	c, err := parseArgs([]string{"-listen", "127.0.0.1:0", "-node", "0", "-nodes", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		done <- run(c, pw, stop)
	}()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no output before exit: %v", <-done)
	}
	addr, ok := strings.CutPrefix(sc.Text(), "LISTENING ")
	if !ok {
		t.Fatalf("first line = %q, want LISTENING prefix", sc.Text())
	}
	if !sc.Scan() || !strings.Contains(sc.Text(), "hosting") {
		t.Fatalf("missing hosting summary, got %q", sc.Text())
	}

	// The reported address accepts envelope rounds.
	cl, err := transport.Dial([]string{addr}, transport.WithPlacement(func(int) int { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop <- os.Interrupt
	io.Copy(io.Discard, pr)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunServesTraceEndpoint brings a node up with metrics, tracing, and a
// journal all enabled — the fully instrumented configuration — and checks the
// observability surface in-process: the METRICS line names a live endpoint
// whose /debug/trace serves this node's (empty, node-named) dump.
func TestRunServesTraceEndpoint(t *testing.T) {
	c, err := parseArgs([]string{
		"-listen", "127.0.0.1:0", "-node", "0", "-nodes", "2",
		"-metrics-addr", "127.0.0.1:0", "-trace-slow", "5ms",
		"-wal-dir", t.TempDir(), "-recover",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		done <- run(c, pw, stop)
	}()

	var maddr string
	sc := bufio.NewScanner(pr)
	for maddr == "" {
		if !sc.Scan() {
			t.Fatalf("no METRICS line before exit: %v", <-done)
		}
		maddr, _ = strings.CutPrefix(sc.Text(), "METRICS ")
	}
	go io.Copy(io.Discard, pr) // keep run's remaining output draining

	resp, err := http.Get("http://" + maddr + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	d, err := trace.ParseDump(body)
	if err != nil {
		t.Fatalf("ParseDump(%q): %v", body, err)
	}
	if d.Proc != "node-0" || d.Node != 0 || d.SlowSeconds != 0.005 {
		t.Fatalf("dump header = %q/%d/%v, want node-0/0/0.005", d.Proc, d.Node, d.SlowSeconds)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadLayout(t *testing.T) {
	c, err := parseArgs([]string{"-algo", "no-such-provider"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal)
	if err := run(c, &bytes.Buffer{}, stop); err == nil {
		t.Fatal("run accepted an unknown provider")
	}
	c2, err := parseArgs([]string{"-listen", "no-such-host-zzz:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(c2, &bytes.Buffer{}, stop); err == nil {
		t.Fatal("run accepted an unresolvable listen address")
	}
}
