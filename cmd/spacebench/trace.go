package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"spacebounds/internal/trace"
)

// traceEnabled reports whether any trace flag asked for a client tracer.
func (c *cliConfig) traceEnabled() bool {
	return c.traceSample > 0 || c.traceSlow > 0 || c.traceOut != ""
}

// scrapePeerTraces fetches /debug/trace from each peer metrics address
// (comma-separated host:port) and returns the parsed dumps. A peer that
// cannot be reached is reported on out and skipped — a killed node's spans
// are simply absent from the merge, not fatal to the run.
func scrapePeerTraces(peers string, out io.Writer) []trace.Dump {
	var dumps []trace.Dump
	client := &http.Client{Timeout: 5 * time.Second}
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		resp, err := client.Get("http://" + p + "/debug/trace")
		if err != nil {
			fmt.Fprintf(out, "  trace: peer %s unreachable: %v\n", p, err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			fmt.Fprintf(out, "  trace: peer %s: %v\n", p, err)
			continue
		}
		d, err := trace.ParseDump(body)
		if err != nil {
			fmt.Fprintf(out, "  trace: peer %s: bad dump: %v\n", p, err)
			continue
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// writeMergedDump writes the client's dump with every peer's spans merged in,
// so one file holds the complete multi-process traces of the run.
func writeMergedDump(path string, tr *trace.Tracer, peers []trace.Dump) error {
	d := tr.Dump()
	d.Proc = "merged"
	for _, pd := range peers {
		d.Spans = append(d.Spans, pd.Spans...)
	}
	sort.Slice(d.Spans, func(i, j int) bool { return d.Spans[i].Start.Before(d.Spans[j].Start) })
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printSlowOps prints the n slowest fully-captured ops with a per-stage span
// breakdown — which part of the op's latency was batch wait, quorum round,
// per-node RPC, node apply, or WAL durability.
func printSlowOps(out io.Writer, spans []trace.Span, n int) {
	asm := trace.Assemble(spans)
	shown := 0
	for _, a := range asm {
		if a.Root.ID == 0 || shown >= n {
			break
		}
		if shown == 0 {
			fmt.Fprintf(out, "  slowest traced ops:\n")
		}
		shown++
		fmt.Fprintf(out, "    trace %016x  %-5s shard %-8s %10s\n",
			a.Trace, a.Root.Note, a.Root.Shard, fmtDur(a.Root.Duration))
		for _, s := range a.Spans {
			if s.ID == a.Root.ID {
				continue
			}
			offset := s.Start.Sub(a.Root.Start)
			fmt.Fprintf(out, "      +%-9s %-12s %10s  %s", fmtDur(offset), s.Stage, fmtDur(s.Duration), s.Proc)
			if s.Note != "" {
				fmt.Fprintf(out, "  (%s)", s.Note)
			}
			fmt.Fprintln(out)
		}
	}
	if shown == 0 {
		fmt.Fprintf(out, "  no traced ops captured (raise -trace-sample)\n")
	}
}

// fmtDur renders a duration at microsecond precision — span durations are
// measured in nanoseconds, and full precision only adds noise.
func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }
