package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spacebounds/internal/history"
	"spacebounds/internal/shard"
	"spacebounds/internal/transport"
)

// startCluster brings up `nodes` in-process envelope servers sharing one
// layout — the same shape spacenode serves — and returns their addresses.
func startCluster(t *testing.T, layout transport.Layout, nodes int) []string {
	t.Helper()
	specs, err := layout.Specs()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		set, err := shard.New(specs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(set.Close)
		srv := transport.NewServer(set.Cluster(), transport.WithHosts(layout.HostedBy(nodes, n)))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addrs[n] = addr.String()
	}
	return addrs
}

func TestClientModeAgainstLiveCluster(t *testing.T) {
	layout := transport.Layout{Algorithm: "adaptive", Shards: 2, F: 1, K: 1, ValueSize: 64}
	addrs := startCluster(t, layout, 4)

	c := mustParse(t, "-connect", strings.Join(addrs, ","),
		"-algo", "adaptive", "-shards", "2", "-f", "1", "-k", "1", "-valuesize", "64",
		"-clients", "2", "-ops", "25", "-keys", "8", "-reads", "0.4", "-seed", "3")
	out := &bytes.Buffer{}
	if err := c.execute(out); err != nil {
		t.Fatalf("client run: %v\noutput:\n%s", err, out)
	}
	got := out.String()
	for _, want := range []string{"client: 4 nodes, 2 shards", "history check: strong regularity ok (2 shards)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// The safe register claims strong safety, not regularity; the client must
// check the condition the provider claims (and force k=1 like the local
// throughput runner does).
func TestClientModeSafeRegister(t *testing.T) {
	layout := transport.Layout{Algorithm: "safereg", Shards: 1, F: 1, K: 1, ValueSize: 32}
	addrs := startCluster(t, layout, 3)

	c := mustParse(t, "-connect", strings.Join(addrs, ","),
		"-algo", "safereg", "-shards", "1", "-f", "1", "-k", "3", "-valuesize", "32",
		"-clients", "1", "-ops", "15", "-keys", "4", "-seed", "5")
	out := &bytes.Buffer{}
	if err := c.execute(out); err != nil {
		t.Fatalf("safereg client run: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out.String(), "history check: strong safety ok") {
		t.Fatalf("output missing safety verdict:\n%s", out)
	}
}

func TestClientModeRejectsSplitAndBadCluster(t *testing.T) {
	c := mustParse(t, "-connect", "127.0.0.1:1", "-split", "shard-0")
	if err := c.execute(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-split") {
		t.Fatalf("split+connect accepted: %v", err)
	}
	bad := mustParse(t, "-connect", "127.0.0.1:1", "-clients", "1", "-ops", "1", "-keys", "1")
	if err := bad.execute(&bytes.Buffer{}); err == nil {
		t.Fatal("run against a dead cluster succeeded")
	}
}

func TestFormatHistories(t *testing.T) {
	hs := map[string]*history.History{
		"b": {Ops: []*history.Op{{ID: 1, Client: 2, Invoked: 1, Returned: 2}}},
		"a": {Ops: []*history.Op{{ID: 3, Client: 4, Invoked: 5, Returned: 6}}},
	}
	got := formatHistories(hs)
	ai, bi := strings.Index(got, "shard a:"), strings.Index(got, "shard b:")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("shards missing or unsorted:\n%s", got)
	}
	if !strings.Contains(got, "c4#3") {
		t.Fatalf("op line missing:\n%s", got)
	}

	// A failing check writes this dump to -record-out; exercise the path with
	// an unwritable destination so the warning branch is covered too.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "h.txt"), []byte(got), 0o644); err != nil {
		t.Fatal(err)
	}
}
