// Command spacebench runs the experiment suite that regenerates the paper's
// analytic results (see DESIGN.md E1-E8) and prints each result as a table,
// or — with -throughput — drives a sharded multi-register store with a keyed,
// optionally Zipf-skewed workload and reports ops/sec.
//
// Usage:
//
//	spacebench                 # run every experiment
//	spacebench -exp E3,E4      # run a subset
//	spacebench -list           # list experiments
//	spacebench -markdown       # emit GitHub-flavoured markdown tables
//	spacebench -throughput -shards 8 -skew 1.2 -clients 8 -ops 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/experiments"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/workload"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs to run (default: all)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		markdown = flag.Bool("markdown", false, "emit markdown tables instead of plain text")

		throughput  = flag.Bool("throughput", false, "run the sharded live-throughput workload instead of the experiments")
		shards      = flag.Int("shards", 8, "number of register shards (throughput mode)")
		skew        = flag.Float64("skew", 0, "Zipf key-skew exponent; > 1 skews, otherwise uniform (throughput mode)")
		clients     = flag.Int("clients", 8, "concurrent clients (throughput mode)")
		ops         = flag.Int("ops", 2000, "operations per client (throughput mode)")
		keys        = flag.Int("keys", 64, "distinct keys (throughput mode)")
		reads       = flag.Float64("reads", 0.1, "fraction of operations that are reads (throughput mode)")
		valueSize   = flag.Int("valuesize", 1024, "value size in bytes (throughput mode)")
		algo        = flag.String("algo", "adaptive", "register provider per shard: adaptive, abd, ecreg, safereg (throughput mode)")
		f           = flag.Int("f", 2, "crash failures tolerated per shard (throughput mode)")
		k           = flag.Int("k", 2, "erasure decode threshold per shard (throughput mode)")
		nodeLatency = flag.Duration("node-latency", 0, "per-RMW service time of each storage node, e.g. 50us (throughput mode)")
		seed        = flag.Int64("seed", 1, "workload seed; fixed seeds make runs reproducible, e.g. in CI (throughput mode)")
		batch       = flag.Int("batch", 0, "batched quorum engine: max ops per shared round and RMWs per node service period; 0 disables (throughput mode)")
		batchDelay  = flag.Duration("batch-delay", 0, "how long an idle shard waits for a batch to fill before dispatching (throughput mode)")
		arrivalRate = flag.Float64("arrival-rate", 0, "open-loop arrivals per second per client; 0 keeps the closed loop (throughput mode)")
	)
	flag.Parse()
	var err error
	if *throughput {
		err = runThroughput(throughputConfig{
			shards: *shards, clients: *clients, ops: *ops, keys: *keys,
			skew: *skew, reads: *reads, valueSize: *valueSize, algo: *algo,
			f: *f, k: *k, nodeLatency: *nodeLatency, seed: *seed,
			batch: *batch, batchDelay: *batchDelay, arrivalRate: *arrivalRate,
		})
	} else {
		err = run(*expFlag, *list, *markdown)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spacebench: %v\n", err)
		os.Exit(1)
	}
}

// throughputConfig carries the -throughput mode flags.
type throughputConfig struct {
	shards, clients, ops, keys int
	skew, reads                float64
	valueSize                  int
	algo                       string
	f, k                       int
	nodeLatency                time.Duration
	seed                       int64
	batch                      int
	batchDelay                 time.Duration
	arrivalRate                float64
}

// runThroughput drives a sharded store with a keyed workload and prints
// ops/sec, the per-shard operation distribution, and the storage breakdown.
func runThroughput(c throughputConfig) error {
	shards, clients, ops, keys := c.shards, c.clients, c.ops, c.keys
	skew, reads, valueSize, algo := c.skew, c.reads, c.valueSize, c.algo
	f, k, nodeLatency, seed := c.f, c.k, c.nodeLatency, c.seed
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		cfg := register.Config{F: f, K: k, DataLen: valueSize}
		if algo == "abd" {
			cfg.K = 1
		}
		specs = append(specs, shard.Spec{Name: fmt.Sprintf("s%d", i), Algorithm: algo, Config: cfg})
	}
	// Mirror the facade's Options.Batch semantics: either flag enables the
	// batched engine, MaxSize defaults to 16, and node-level coalescing
	// rides along whenever a node service time is simulated.
	batching := c.batch > 0 || c.batchDelay > 0
	batchCfg := shard.BatchConfig{MaxSize: c.batch, MaxDelay: c.batchDelay}
	if batching && batchCfg.MaxSize <= 0 {
		batchCfg.MaxSize = 16
	}
	var opts []dsys.Option
	if nodeLatency > 0 {
		opts = append(opts, dsys.WithLiveLatency(nodeLatency))
		if batching && batchCfg.MaxSize > 1 {
			opts = append(opts, dsys.WithLiveBatch(batchCfg.MaxSize))
		}
	}
	set, err := shard.New(specs, opts...)
	if err != nil {
		return err
	}
	defer set.Close()
	if batching {
		set.EnableBatching(batchCfg)
	}

	spec := workload.ShardedSpec{
		Clients:      clients,
		OpsPerClient: ops,
		ReadFraction: reads,
		Keys:         keys,
		ZipfS:        skew,
		Seed:         seed,
		ArrivalRate:  c.arrivalRate,
	}
	start := time.Now()
	res, err := workload.RunSharded(set, spec)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	total := res.CompletedWrites + res.CompletedReads
	fmt.Printf("sharded throughput: %d shards (%s, f=%d, k=%d), %d clients × %d ops, %d keys, skew %.2f, node latency %v\n",
		shards, algo, f, k, clients, ops, keys, skew, nodeLatency)
	if batching {
		st := set.BatchStats()
		fmt.Printf("  batching: max %d, delay %v  ->  %d writes in %d rounds, %d reads in %d rounds\n",
			batchCfg.MaxSize, batchCfg.MaxDelay, st.Writes, st.WriteRounds, st.Reads, st.ReadRounds)
	}
	if c.arrivalRate > 0 {
		fmt.Printf("  open loop: %.0f arrivals/s per client\n", c.arrivalRate)
	}
	fmt.Printf("  completed: %d ops (%d writes, %d reads) in %v  ->  %.0f ops/s\n",
		total, res.CompletedWrites, res.CompletedReads, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if res.WriteErrors+res.ReadErrors > 0 {
		fmt.Printf("  errors: %d writes, %d reads\n", res.WriteErrors, res.ReadErrors)
	}
	names := make([]string, 0, len(res.PerShardOps))
	for name := range res.PerShardOps {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("  per-shard ops / storage bits:")
	for _, name := range names {
		fmt.Printf("    %-6s %6d ops  %8d bits\n", name, res.PerShardOps[name], res.PerShardBits[name])
	}
	fmt.Printf("  total base-object storage: %d bits\n", res.FinalSnapshot.BaseObjectBits)
	return nil
}

func run(expFlag string, list, markdown bool) error {
	all := experiments.All()
	if list {
		for _, e := range all {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperSource)
		}
		return nil
	}
	selected := all
	if expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(expFlag, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *e)
		}
	}
	for i, e := range selected {
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if markdown {
			fmt.Print(tbl.Markdown())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tbl.Format())
		}
	}
	return nil
}
