// Command spacebench runs the experiment suite that regenerates the paper's
// analytic results (see DESIGN.md E1-E8 and EXPERIMENTS.md) and prints each
// result as a table.
//
// Usage:
//
//	spacebench                 # run every experiment
//	spacebench -exp E3,E4      # run a subset
//	spacebench -list           # list experiments
//	spacebench -markdown       # emit GitHub-flavoured markdown tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spacebounds/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs to run (default: all)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		markdown = flag.Bool("markdown", false, "emit markdown tables instead of plain text")
	)
	flag.Parse()
	if err := run(*expFlag, *list, *markdown); err != nil {
		fmt.Fprintf(os.Stderr, "spacebench: %v\n", err)
		os.Exit(1)
	}
}

func run(expFlag string, list, markdown bool) error {
	all := experiments.All()
	if list {
		for _, e := range all {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperSource)
		}
		return nil
	}
	selected := all
	if expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(expFlag, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *e)
		}
	}
	for i, e := range selected {
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if markdown {
			fmt.Print(tbl.Markdown())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tbl.Format())
		}
	}
	return nil
}
