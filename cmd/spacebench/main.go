// Command spacebench runs the experiment suite that regenerates the paper's
// analytic results (see DESIGN.md E1-E8) and prints each result as a table,
// or — with -throughput — drives a sharded multi-register store with a keyed,
// optionally Zipf-skewed workload and reports ops/sec, or — with -sim —
// explores seeded adversarial fault schedules against every register
// provider with the deterministic simulator and checks the recorded
// histories against the paper's consistency conditions.
//
// Usage:
//
//	spacebench                 # run every experiment
//	spacebench -exp E3,E4      # run a subset
//	spacebench -list           # list experiments
//	spacebench -markdown       # emit GitHub-flavoured markdown tables
//	spacebench -throughput -shards 8 -skew 1.2 -clients 8 -ops 2000
//	spacebench -sim -seeds 500 -sim-out sim-failures.txt
//
// With -connect, spacebench is instead a client of a real multi-process
// cluster: it dials the given spacenode addresses, runs the same sharded
// workload over the TCP envelope transport with history recording, and
// checks the recorded histories against the provider's consistency
// condition — the same checkers the deterministic simulator uses. The
// checkers assume the registers start from their initial value with this
// run's writes the only writes, so run one checked client per cluster
// lifetime: a second run against nodes that kept state from an earlier run
// reads values the checker never saw written and reports false violations.
//
//	spacebench -connect 127.0.0.1:9001,127.0.0.1:9002 -algo adaptive -shards 4 -clients 4 -ops 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"spacebounds/internal/autoshard"
	"spacebounds/internal/dsys"
	"spacebounds/internal/experiments"
	"spacebounds/internal/history"
	"spacebounds/internal/metrics"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/sim"
	"spacebounds/internal/trace"
	"spacebounds/internal/transport"
	"spacebounds/internal/workload"
)

// cliConfig carries every parsed flag; it exists so that flag parsing and
// command dispatch are unit-testable without a process boundary.
type cliConfig struct {
	// Experiment mode.
	exp      string
	list     bool
	markdown bool

	// Throughput mode.
	throughput  bool
	shards      int
	skew        float64
	clients     int
	ops         int
	keys        int
	reads       float64
	valueSize   int
	algo        string
	f           int
	k           int
	nodeLatency time.Duration
	seed        int64
	batch       int
	batchDelay  time.Duration
	arrivalRate float64
	split       string
	resizeAt    int

	// Auto-resharding (throughput mode).
	autoReshard      bool
	autoReshardEvery time.Duration
	autoReshardHot   float64
	autoReshardCold  float64
	autoReshardMax   int

	// Client mode.
	connect   string
	recordOut string

	// Shared by throughput and client mode.
	metricsAddr string

	// Tracing (client mode).
	traceSample float64
	traceSlow   time.Duration
	traceOut    string
	tracePeers  string

	// Simulation mode.
	sim             bool
	seeds           int
	simProviders    string
	simShards       int
	simClients      int
	simOps          int
	simLive         bool
	simOut          string
	simReconfSplits int
	simReconfDrains int
	simReconfMerges int
	simCtrlCrashes  int
	simAutoReshard  string
}

// parseArgs parses command-line arguments. Usage and error text go to
// errOut.
func parseArgs(args []string, errOut io.Writer) (*cliConfig, error) {
	c := &cliConfig{}
	fs := flag.NewFlagSet("spacebench", flag.ContinueOnError)
	fs.SetOutput(errOut)

	fs.StringVar(&c.exp, "exp", "", "comma-separated experiment IDs to run (default: all)")
	fs.BoolVar(&c.list, "list", false, "list available experiments and exit")
	fs.BoolVar(&c.markdown, "markdown", false, "emit markdown tables instead of plain text")

	fs.BoolVar(&c.throughput, "throughput", false, "run the sharded live-throughput workload instead of the experiments")
	fs.IntVar(&c.shards, "shards", 8, "number of register shards (throughput mode)")
	fs.Float64Var(&c.skew, "skew", 0, "Zipf key-skew exponent; > 1 skews, otherwise uniform (throughput mode)")
	fs.IntVar(&c.clients, "clients", 8, "concurrent clients (throughput mode)")
	fs.IntVar(&c.ops, "ops", 2000, "operations per client (throughput mode)")
	fs.IntVar(&c.keys, "keys", 64, "distinct keys (throughput mode)")
	fs.Float64Var(&c.reads, "reads", 0.1, "fraction of operations that are reads (throughput mode)")
	fs.IntVar(&c.valueSize, "valuesize", 1024, "value size in bytes (throughput mode)")
	fs.StringVar(&c.algo, "algo", "adaptive", "register provider per shard: adaptive, abd, ecreg, safereg (throughput mode)")
	fs.IntVar(&c.f, "f", 2, "crash failures tolerated per shard (throughput mode)")
	fs.IntVar(&c.k, "k", 2, "erasure decode threshold per shard (throughput mode)")
	fs.DurationVar(&c.nodeLatency, "node-latency", 0, "per-RMW service time of each storage node, e.g. 50us (throughput mode)")
	fs.Int64Var(&c.seed, "seed", 1, "workload seed / first simulation seed; fixed seeds make runs reproducible, e.g. in CI")
	fs.IntVar(&c.batch, "batch", 0, "batched quorum engine: max ops per shared round and RMWs per node service period; 0 disables (throughput mode)")
	fs.DurationVar(&c.batchDelay, "batch-delay", 0, "how long an idle shard waits for a batch to fill before dispatching (throughput mode)")
	fs.Float64Var(&c.arrivalRate, "arrival-rate", 0, "open-loop arrivals per second per client; 0 keeps the closed loop (throughput mode)")
	fs.StringVar(&c.split, "split", "", "live-split this shard mid-run and report throughput before/after (throughput mode)")
	fs.IntVar(&c.resizeAt, "resize-at", 0, "completed-op threshold that triggers -split; 0 means half the scheduled operations (throughput mode)")
	fs.BoolVar(&c.autoReshard, "auto-reshard", false, "run the autoshard controller during the workload: split hot shards, merge cold ones (throughput mode; excludes -split)")
	fs.DurationVar(&c.autoReshardEvery, "auto-reshard-interval", 25*time.Millisecond, "autoshard control-loop tick period (throughput mode)")
	fs.Float64Var(&c.autoReshardHot, "auto-reshard-hot", 512, "ops per interval at or above which a shard is split (throughput mode)")
	fs.Float64Var(&c.autoReshardCold, "auto-reshard-cold", 0, "ops per interval at or below which a shard is a merge candidate; 0 disables merging (throughput mode)")
	fs.IntVar(&c.autoReshardMax, "auto-reshard-moves", 4, "autoshard lifetime move budget (throughput mode)")

	fs.StringVar(&c.connect, "connect", "", "comma-separated spacenode addresses; runs the workload as a client of that cluster (client mode)")
	fs.StringVar(&c.recordOut, "record-out", "", "write the recorded per-shard histories to this file when the consistency check fails (client mode)")
	fs.StringVar(&c.metricsAddr, "metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars on this address during the run (throughput and client modes; empty: disabled)")
	fs.Float64Var(&c.traceSample, "trace-sample", 0, "probability an operation is traced end to end; 1 traces every op (client mode)")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "retain whole-trace captures of ops slower than this (client mode; 0: disabled)")
	fs.StringVar(&c.traceOut, "trace-out", "", "write the merged trace dump (client spans plus every -trace-peers scrape) to this JSON file (client mode)")
	fs.StringVar(&c.tracePeers, "trace-peers", "", "comma-separated node metrics addresses whose /debug/trace to scrape into the final summary and -trace-out (client mode)")

	fs.BoolVar(&c.sim, "sim", false, "explore seeded adversarial fault schedules with the deterministic simulator")
	fs.IntVar(&c.seeds, "seeds", 50, "number of seeds per simulated configuration (sim mode)")
	fs.StringVar(&c.simProviders, "sim-providers", strings.Join(sim.DefaultProviders, ","),
		"comma-separated register providers to simulate (sim mode)")
	fs.IntVar(&c.simShards, "sim-shards", 2, "shards per provider configuration (sim mode)")
	fs.IntVar(&c.simClients, "sim-clients", 3, "clients per shard (sim mode)")
	fs.IntVar(&c.simOps, "sim-ops", 4, "operations per client (sim mode)")
	fs.BoolVar(&c.simLive, "sim-live", true, "also smoke the live batched engine under crash/restart churn per provider (sim mode)")
	fs.StringVar(&c.simOut, "sim-out", "", "write the failure report (seeds, shrunken histories) to this file (sim mode)")
	fs.IntVar(&c.simReconfSplits, "sim-reconfig-splits", 1, "splits per reconfiguration-enabled sweep configuration; setting splits, drains and merges all to 0 disables the reconfig sweep (sim mode)")
	fs.IntVar(&c.simReconfDrains, "sim-reconfig-drains", 1, "drains per reconfiguration-enabled sweep configuration (sim mode)")
	fs.IntVar(&c.simReconfMerges, "sim-reconfig-merges", 1, "merges per reconfiguration-enabled sweep configuration (sim mode)")
	fs.IntVar(&c.simCtrlCrashes, "sim-controller-crashes", 0, "controller-crash budget per reconfiguration-enabled run: the adversary kills the migration controller between migration steps and a standby resumes the move from its ledger (sim mode)")
	fs.StringVar(&c.simAutoReshard, "sim-autoreshard", "", "comma-separated workload shapes (hot-key, skew-flip, cold-shard) to sweep with the autoshard controller driving the topology; empty disables the autoshard sweep (sim mode)")

	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return c, nil
}

// execute dispatches the parsed configuration. Normal output goes to out.
func (c *cliConfig) execute(out io.Writer) error {
	switch {
	case c.connect != "":
		return runClient(c, out)
	case c.sim:
		return runSim(c, out)
	case c.throughput:
		return runThroughput(c, out)
	default:
		return runExperiments(c, out)
	}
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintf(os.Stderr, "spacebench: %v\n", err)
		os.Exit(2)
	}
	if err := cfg.execute(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spacebench: %v\n", err)
		os.Exit(1)
	}
}

// simConfiguration is one named entry of the exploration sweep.
type simConfiguration struct {
	name string
	cfg  sim.Config
}

// simSweep builds the configuration matrix: every provider × the requested
// shard count with concurrent clients, a sequential (single-client)
// configuration per provider that additionally checks linearizability —
// sequential operations make regularity and atomicity coincide, so the
// Wing&Gong checker is sound there — a reconfiguration-enabled configuration
// per provider (splits and drains land mid-run and the stitched cross-epoch
// histories are checked), an autoshard configuration per provider × requested
// workload shape (the self-driving controller picks the moves while the
// adversary shapes the load against it), and a mixed-provider configuration.
func simSweep(providers []string, shards, clients, ops int, reconfig sim.ReconfigPlan, shapes []string) []simConfiguration {
	var out []simConfiguration
	for _, p := range providers {
		plans := make([]sim.ShardPlan, shards)
		for i := range plans {
			plans[i] = sim.ShardPlan{Provider: p}
		}
		out = append(out, simConfiguration{
			name: fmt.Sprintf("%s x%d", p, shards),
			cfg:  sim.Config{Shards: plans, Clients: clients, OpsPerClient: ops},
		})
		out = append(out, simConfiguration{
			name: fmt.Sprintf("%s sequential", p),
			cfg: sim.Config{
				Shards:            []sim.ShardPlan{{Provider: p}},
				Clients:           1,
				OpsPerClient:      ops + 2,
				CheckLinearizable: true,
			},
		})
		if reconfig.Enabled() {
			out = append(out, simConfiguration{
				name: fmt.Sprintf("%s reconfig", p),
				cfg: sim.Config{
					Shards:       plans,
					Clients:      clients,
					OpsPerClient: ops + 2,
					Reconfig:     reconfig,
				},
			})
		}
		for _, shape := range shapes {
			// At least three shards so the cold-shard shape always leaves a
			// same-provider pair of cold shards for the controller to merge.
			autoPlans := plans
			if len(autoPlans) < 3 {
				autoPlans = make([]sim.ShardPlan, 3)
				for i := range autoPlans {
					autoPlans[i] = sim.ShardPlan{Provider: p}
				}
			}
			out = append(out, simConfiguration{
				name: fmt.Sprintf("%s autoreshard %s", p, shape),
				cfg: sim.Config{
					Shards:       autoPlans,
					Clients:      clients,
					OpsPerClient: ops + 2,
					AutoReshard:  sim.AutoReshardPlan{Shape: shape},
				},
			})
		}
	}
	if len(providers) > 1 {
		plans := make([]sim.ShardPlan, len(providers))
		for i, p := range providers {
			plans[i] = sim.ShardPlan{Provider: p}
		}
		out = append(out, simConfiguration{
			name: "mixed providers",
			cfg:  sim.Config{Shards: plans, Clients: clients, OpsPerClient: ops},
		})
		if reconfig.Enabled() {
			out = append(out, simConfiguration{
				name: "mixed reconfig",
				cfg:  sim.Config{Shards: plans, Clients: clients, OpsPerClient: ops, Reconfig: reconfig},
			})
		}
	}
	return out
}

// runSim sweeps the configuration matrix over the seed range, prints one
// verdict line per configuration, and fails (after writing the replayable
// failure report) if any seed violated its consistency condition.
func runSim(c *cliConfig, out io.Writer) error {
	if c.seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1")
	}
	providers := strings.Split(c.simProviders, ",")
	for i := range providers {
		providers[i] = strings.TrimSpace(providers[i])
	}
	var shapes []string
	if c.simAutoReshard != "" {
		for _, s := range strings.Split(c.simAutoReshard, ",") {
			s = strings.TrimSpace(s)
			switch s {
			case sim.ShapeHotKey, sim.ShapeSkewFlip, sim.ShapeColdShard:
				shapes = append(shapes, s)
			default:
				return fmt.Errorf("unknown -sim-autoreshard shape %q (want %s, %s or %s)",
					s, sim.ShapeHotKey, sim.ShapeSkewFlip, sim.ShapeColdShard)
			}
		}
	}
	sweep := simSweep(providers, c.simShards, c.simClients, c.simOps,
		sim.ReconfigPlan{Splits: c.simReconfSplits, Drains: c.simReconfDrains,
			Merges: c.simReconfMerges, ControllerCrashes: c.simCtrlCrashes}, shapes)
	var failures []*sim.Result
	for _, sc := range sweep {
		fails, err := sim.Explore(sc.cfg, c.seed, c.seeds)
		if err != nil {
			return fmt.Errorf("configuration %q: %w", sc.name, err)
		}
		verdict := "ok"
		if len(fails) > 0 {
			verdict = fmt.Sprintf("%d FAILING SEEDS", len(fails))
		}
		fmt.Fprintf(out, "sim %-22s seeds %d..%d: %s\n", sc.name, c.seed, c.seed+int64(c.seeds)-1, verdict)
		failures = append(failures, fails...)
	}
	// The live smoke runs after the controlled sweep but must not preempt its
	// failure report: a nightly red that loses the shrunken schedules would
	// defeat the soak's purpose.
	var liveErr error
	if c.simLive {
		for _, p := range providers {
			if err := runSimLive(c, out, p); err != nil {
				fmt.Fprintf(out, "%v\n", err)
				if liveErr == nil {
					liveErr = err
				}
			}
		}
	}
	fmt.Fprintf(out, "sim: swept %d configurations x %d seeds, %d failing seeds\n",
		len(sweep), c.seeds, len(failures))
	if len(failures) == 0 {
		return liveErr
	}
	report := &strings.Builder{}
	for _, f := range failures {
		report.WriteString(sim.FormatFailure(f))
		fmt.Fprintf(report, "replay: spacebench -sim -seeds 1 -seed %d\n\n", f.Seed)
	}
	if c.simOut != "" {
		if err := os.WriteFile(c.simOut, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("writing failure report: %w", err)
		}
		fmt.Fprintf(out, "failure report written to %s\n", c.simOut)
	}
	fmt.Fprint(out, report.String())
	return fmt.Errorf("%d seeds violated their consistency condition", len(failures))
}

// runSimLive smokes the live batched engine for one provider: an open-loop
// batched workload with history recording while nodes crash and restart
// within the per-shard budget, checked for strong regularity (strong safety
// is all the safe register promises, and live histories routinely violate
// regularity there, so safereg is exercised without the regularity check).
func runSimLive(c *cliConfig, out io.Writer, provider string) error {
	const (
		shardCount = 2
		f, k       = 1, 2
	)
	specs := make([]shard.Spec, shardCount)
	for i := range specs {
		kk := k
		if provider == "abd" {
			kk = 1
		}
		specs[i] = shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: provider,
			Config:    register.Config{F: f, K: kk, DataLen: 32},
		}
	}
	set, err := shard.New(specs, dsys.WithLiveLatency(20*time.Microsecond), dsys.WithLiveBatch(8))
	if err != nil {
		return fmt.Errorf("live smoke %s: %w", provider, err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: 8})

	// Crash/restart churn: one node per shard cycles down and back up.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		cluster := set.Cluster()
		node := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			sh := set.Shards()[node%shardCount]
			id := sh.Base + node%sh.Span
			_ = cluster.CrashObject(id)
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			_ = cluster.RestartObject(id)
			node++
		}
	}()

	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:       4,
		OpsPerClient:  50,
		ReadFraction:  0.3,
		Keys:          8,
		Seed:          c.seed,
		RecordHistory: true,
	})
	close(stop)
	<-churnDone
	if err != nil {
		return fmt.Errorf("live smoke %s: %w", provider, err)
	}
	checked := "strong regularity ok"
	if provider == "safereg" {
		checked = "unchecked (safe register)"
	} else if err := res.CheckRegularity(); err != nil {
		return fmt.Errorf("live smoke %s: %w", provider, err)
	}
	fmt.Fprintf(out, "sim live %-14s %d ops (%d errors under churn): %s\n", provider,
		res.CompletedWrites+res.CompletedReads, res.WriteErrors+res.ReadErrors, checked)
	return nil
}

// runClient dials a spacenode cluster, runs the sharded workload over the
// TCP envelope transport with history recording, and checks the recorded
// histories against the provider's consistency condition: strong regularity
// for the regular emulations, strong safety for the safe register.
func runClient(c *cliConfig, out io.Writer) error {
	if c.split != "" {
		return fmt.Errorf("-split requires the in-process store; it cannot be combined with -connect")
	}
	addrs := strings.Split(c.connect, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	layout := transport.Layout{
		Algorithm: c.algo,
		Shards:    c.shards,
		F:         c.f,
		K:         c.k,
		ValueSize: c.valueSize,
	}
	if c.algo == "abd" || c.algo == "safereg" {
		layout.K = 1
	}
	specs, err := layout.Specs()
	if err != nil {
		return err
	}
	// Client runs are always instrumented: the transport and quorum-round
	// histograms cost next to nothing next to real network RPCs, and the
	// run ends with a latency summary. -metrics-addr additionally serves
	// the registry live during the run.
	reg := metrics.NewRegistry()
	var tr *trace.Tracer
	if c.traceEnabled() {
		tr = trace.New(trace.Options{
			Sample:  c.traceSample,
			Slow:    c.traceSlow,
			Proc:    "client",
			Node:    -1,
			Metrics: reg,
		})
	}
	if c.metricsAddr != "" {
		msrv, err := metrics.Serve(c.metricsAddr, reg,
			metrics.Mount{Pattern: "/debug/trace", Handler: tr.Handler()})
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "METRICS %s\n", msrv.Addr())
	}
	dialOpts := []transport.ClientOption{transport.WithMetrics(reg)}
	if tr != nil {
		dialOpts = append(dialOpts, transport.WithTracer(tr))
	}
	cli, err := transport.Dial(addrs, dialOpts...)
	if err != nil {
		return err
	}
	set, err := shard.NewRemote(specs, cli)
	if err != nil {
		_ = cli.Close()
		return err
	}
	defer set.Close()
	set.SetMetrics(reg)
	if tr != nil {
		set.SetTracer(tr)
	}
	// Mirror the throughput mode's batching semantics over the real cluster:
	// either flag enables client-side group commit.
	if c.batch > 0 || c.batchDelay > 0 {
		batchCfg := shard.BatchConfig{MaxSize: c.batch, MaxDelay: c.batchDelay}
		if batchCfg.MaxSize <= 0 {
			batchCfg.MaxSize = 16
		}
		set.EnableBatching(batchCfg)
	}

	start := time.Now()
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:       c.clients,
		OpsPerClient:  c.ops,
		ReadFraction:  c.reads,
		Keys:          c.keys,
		ZipfS:         c.skew,
		Seed:          c.seed,
		ArrivalRate:   c.arrivalRate,
		RecordHistory: true,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	total := res.CompletedWrites + res.CompletedReads
	fmt.Fprintf(out, "client: %d nodes, %d shards (%s, f=%d, k=%d), %d clients × %d ops\n",
		len(addrs), layout.Shards, layout.Algorithm, layout.F, layout.K, c.clients, c.ops)
	fmt.Fprintf(out, "  completed: %d ops (%d writes, %d reads) in %v  ->  %.0f ops/s\n",
		total, res.CompletedWrites, res.CompletedReads, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if res.WriteErrors+res.ReadErrors > 0 {
		fmt.Fprintf(out, "  errors: %d writes, %d reads (nodes down mid-run count here; completed ops must still be consistent)\n",
			res.WriteErrors, res.ReadErrors)
	}
	fmt.Fprintln(out, "  metrics summary:")
	reg.WriteSummary(out)
	if tr != nil {
		peers := scrapePeerTraces(c.tracePeers, out)
		spans := tr.Snapshot()
		for _, pd := range peers {
			spans = append(spans, pd.Spans...)
		}
		printSlowOps(out, spans, 5)
		if c.traceOut != "" {
			if err := writeMergedDump(c.traceOut, tr, peers); err != nil {
				fmt.Fprintf(out, "  (failed to write %s: %v)\n", c.traceOut, err)
			} else {
				fmt.Fprintf(out, "  trace dump written to %s\n", c.traceOut)
			}
		}
	}
	if total == 0 {
		// An empty history passes every checker trivially; a run where nothing
		// completed is a dead cluster, not a consistent one.
		return fmt.Errorf("no operations completed (%d write errors, %d read errors)",
			res.WriteErrors, res.ReadErrors)
	}

	var checkErr error
	condition := "strong regularity"
	if c.algo == "safereg" {
		condition = "strong safety"
		for name, h := range res.Histories {
			if err := history.CheckStrongSafety(h); err != nil {
				checkErr = fmt.Errorf("shard %q: %w", name, err)
				break
			}
		}
	} else {
		checkErr = res.CheckRegularity()
	}
	if checkErr == nil {
		fmt.Fprintf(out, "  history check: %s ok (%d shards)\n", condition, len(res.Histories))
		return nil
	}
	if c.recordOut != "" {
		if werr := os.WriteFile(c.recordOut, []byte(formatHistories(res.Histories)), 0o644); werr != nil {
			fmt.Fprintf(out, "  (failed to write %s: %v)\n", c.recordOut, werr)
		} else {
			fmt.Fprintf(out, "  recorded histories written to %s\n", c.recordOut)
		}
	}
	return fmt.Errorf("history violates %s: %w", condition, checkErr)
}

// formatHistories dumps the recorded per-shard histories, one operation per
// line, for offline analysis of a failed run.
func formatHistories(hs map[string]*history.History) string {
	names := make([]string, 0, len(hs))
	for name := range hs {
		names = append(names, name)
	}
	sort.Strings(names)
	b := &strings.Builder{}
	for _, name := range names {
		fmt.Fprintf(b, "shard %s:\n", name)
		for _, op := range hs[name].Ops {
			fmt.Fprintf(b, "  %s\n", op)
		}
	}
	return b.String()
}

// runThroughput drives a sharded store with a keyed workload and prints
// ops/sec, the per-shard operation distribution, and the storage breakdown.
func runThroughput(c *cliConfig, out io.Writer) error {
	shards, clients, ops, keys := c.shards, c.clients, c.ops, c.keys
	skew, reads, valueSize, algo := c.skew, c.reads, c.valueSize, c.algo
	f, k, nodeLatency, seed := c.f, c.k, c.nodeLatency, c.seed
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		cfg := register.Config{F: f, K: k, DataLen: valueSize}
		if algo == "abd" {
			cfg.K = 1
		}
		specs = append(specs, shard.Spec{Name: fmt.Sprintf("s%d", i), Algorithm: algo, Config: cfg})
	}
	// Mirror the facade's Options.Batch semantics: either flag enables the
	// batched engine, MaxSize defaults to 16, and node-level coalescing
	// rides along whenever a node service time is simulated.
	batching := c.batch > 0 || c.batchDelay > 0
	batchCfg := shard.BatchConfig{MaxSize: c.batch, MaxDelay: c.batchDelay}
	if batching && batchCfg.MaxSize <= 0 {
		batchCfg.MaxSize = 16
	}
	var opts []dsys.Option
	if nodeLatency > 0 {
		opts = append(opts, dsys.WithLiveLatency(nodeLatency))
		if batching && batchCfg.MaxSize > 1 {
			opts = append(opts, dsys.WithLiveBatch(batchCfg.MaxSize))
		}
	}
	set, err := shard.New(specs, opts...)
	if err != nil {
		return err
	}
	defer set.Close()
	if batching {
		set.EnableBatching(batchCfg)
	}
	var reg *metrics.Registry
	if c.metricsAddr != "" {
		reg = metrics.NewRegistry()
		msrv, err := metrics.Serve(c.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "METRICS %s\n", msrv.Addr())
		set.SetMetrics(reg)
	}

	var resharder *autoshard.Driver
	if c.autoReshard {
		if c.split != "" {
			return fmt.Errorf("-auto-reshard and -split are mutually exclusive: both drive the reconfiguration coordinator")
		}
		// The controller samples the registry, so instrument the set even when
		// no scrape endpoint was requested.
		if reg == nil {
			reg = metrics.NewRegistry()
			set.SetMetrics(reg)
		}
		planner, err := autoshard.NewPlanner(autoshard.Config{
			HotOps:        c.autoReshardHot,
			ColdOps:       c.autoReshardCold,
			SustainTicks:  2,
			CooldownTicks: 2,
			MaxMoves:      c.autoReshardMax,
			MinShards:     2,
		})
		if err != nil {
			return err
		}
		co := reconfig.NewCoordinator(set)
		sampler := autoshard.NewRegistrySampler(reg, func() []string {
			return set.Router().ActiveLeafNames()
		})
		// Each move gets a fresh live-runner incarnation, in an ID block clear
		// of the scripted-reconfig migration IDs (1<<28+i).
		var mu sync.Mutex
		next := 0
		runner := func() reconfig.Runner {
			next++
			return reconfig.NewLiveRunner(set, 1<<28+(1<<20)+next)
		}
		resharder, err = autoshard.StartDriver(autoshard.DriverConfig{
			Planner:  planner,
			Interval: c.autoReshardEvery,
			Sample:   sampler.Sample,
			Apply: func(mv reconfig.Move) error {
				mu.Lock()
				defer mu.Unlock()
				_, err := co.Apply(runner(), mv)
				return err
			},
			Resume: func() (int, error) {
				mu.Lock()
				defer mu.Unlock()
				took, _, err := co.Resume(runner())
				if took {
					return 1, err
				}
				return 0, err
			},
			InFlight: func() bool { return co.InFlight() != nil },
			Metrics:  reg,
		})
		if err != nil {
			return err
		}
		defer resharder.Stop()
	}

	spec := workload.ShardedSpec{
		Clients:      clients,
		OpsPerClient: ops,
		ReadFraction: reads,
		Keys:         keys,
		ZipfS:        skew,
		Seed:         seed,
		ArrivalRate:  c.arrivalRate,
	}
	if c.split != "" {
		at := c.resizeAt
		if at <= 0 {
			at = clients * ops / 2
		}
		spec.Reconfig = []workload.ReconfigMove{{AfterOps: at, Split: c.split}}
	}
	start := time.Now()
	res, err := workload.RunSharded(set, spec)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if resharder != nil {
		resharder.Stop() // settle the stats before reporting (Stop is idempotent)
	}

	total := res.CompletedWrites + res.CompletedReads
	fmt.Fprintf(out, "sharded throughput: %d shards (%s, f=%d, k=%d), %d clients × %d ops, %d keys, skew %.2f, node latency %v\n",
		shards, algo, f, k, clients, ops, keys, skew, nodeLatency)
	if batching {
		st := set.BatchStats()
		fmt.Fprintf(out, "  batching: max %d, delay %v  ->  %d writes in %d rounds, %d reads in %d rounds\n",
			batchCfg.MaxSize, batchCfg.MaxDelay, st.Writes, st.WriteRounds, st.Reads, st.ReadRounds)
	}
	if c.arrivalRate > 0 {
		fmt.Fprintf(out, "  open loop: %.0f arrivals/s per client\n", c.arrivalRate)
	}
	for _, ar := range res.Reconfigs {
		if ar.Err != "" {
			fmt.Fprintf(out, "  reconfig: split %s FAILED: %s\n", ar.Move.Split, ar.Err)
			continue
		}
		fmt.Fprintf(out, "  reconfig: split %s -> %v after %d ops in %v; %.0f ops/s before -> %.0f ops/s after\n",
			ar.Move.Split, ar.Successors, ar.TriggeredAtOps, ar.Took.Round(time.Millisecond),
			ar.OpsPerSecBefore, ar.OpsPerSecAfter)
	}
	if resharder != nil {
		ast := resharder.Stats()
		fmt.Fprintf(out, "  auto-reshard: %d ticks, %d plans (%d splits, %d merges, %d drains), %d applied, %d dropped, %d resumed; final topology %d shards\n",
			ast.Ticks, ast.Plans, ast.Splits, ast.Merges, ast.Drains,
			ast.Applied, ast.Dropped, ast.Resumed, len(set.Router().ActiveLeafNames()))
	}
	fmt.Fprintf(out, "  completed: %d ops (%d writes, %d reads) in %v  ->  %.0f ops/s\n",
		total, res.CompletedWrites, res.CompletedReads, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if res.WriteErrors+res.ReadErrors > 0 {
		fmt.Fprintf(out, "  errors: %d writes, %d reads\n", res.WriteErrors, res.ReadErrors)
	}
	names := make([]string, 0, len(res.PerShardOps))
	for name := range res.PerShardOps {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(out, "  per-shard ops / storage bits:")
	for _, name := range names {
		fmt.Fprintf(out, "    %-6s %6d ops  %8d bits\n", name, res.PerShardOps[name], res.PerShardBits[name])
	}
	fmt.Fprintf(out, "  total base-object storage: %d bits\n", res.FinalSnapshot.BaseObjectBits)
	if reg != nil {
		fmt.Fprintln(out, "  metrics summary:")
		reg.WriteSummary(out)
	}
	return nil
}

func runExperiments(c *cliConfig, out io.Writer) error {
	all := experiments.All()
	if c.list {
		for _, e := range all {
			fmt.Fprintf(out, "%-4s %-55s (%s)\n", e.ID, e.Title, e.PaperSource)
		}
		return nil
	}
	selected := all
	if c.exp != "" {
		selected = selected[:0]
		for _, id := range strings.Split(c.exp, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *e)
		}
	}
	for i, e := range selected {
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if c.markdown {
			fmt.Fprint(out, tbl.Markdown())
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, tbl.Format())
		}
	}
	return nil
}
