package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacebounds/internal/sim"
)

func mustParse(t *testing.T, args ...string) *cliConfig {
	t.Helper()
	c, err := parseArgs(args, io.Discard)
	if err != nil {
		t.Fatalf("parseArgs(%v): %v", args, err)
	}
	return c
}

func TestParseArgsDefaults(t *testing.T) {
	c := mustParse(t)
	if c.sim || c.throughput || c.list {
		t.Fatalf("defaults should select experiment mode: %+v", c)
	}
	if c.seeds != 50 || c.seed != 1 {
		t.Fatalf("seed defaults wrong: seeds=%d seed=%d", c.seeds, c.seed)
	}
	if c.simProviders != "adaptive,abd,ecreg,safereg" {
		t.Fatalf("provider default wrong: %q", c.simProviders)
	}
}

func TestParseArgsThroughputFlags(t *testing.T) {
	c := mustParse(t, "-throughput", "-shards", "4", "-clients", "2", "-ops", "100",
		"-node-latency", "50us", "-batch", "8", "-skew", "1.2", "-algo", "abd")
	if !c.throughput {
		t.Fatal("throughput mode not selected")
	}
	if c.shards != 4 || c.clients != 2 || c.ops != 100 || c.batch != 8 || c.algo != "abd" {
		t.Fatalf("flags not parsed: %+v", c)
	}
	if c.nodeLatency != 50*time.Microsecond {
		t.Fatalf("node latency = %v", c.nodeLatency)
	}
	if c.skew != 1.2 {
		t.Fatalf("skew = %v", c.skew)
	}
}

func TestParseArgsSimFlags(t *testing.T) {
	c := mustParse(t, "-sim", "-seeds", "7", "-seed", "99", "-sim-providers", "adaptive,abd",
		"-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "3", "-sim-live=false", "-sim-out", "x.txt")
	if !c.sim {
		t.Fatal("sim mode not selected")
	}
	if c.seeds != 7 || c.seed != 99 || c.simShards != 1 || c.simClients != 2 || c.simOps != 3 {
		t.Fatalf("sim flags not parsed: %+v", c)
	}
	if c.simLive {
		t.Fatal("-sim-live=false not honoured")
	}
	if c.simOut != "x.txt" {
		t.Fatalf("sim-out = %q", c.simOut)
	}
}

func TestParseArgsRejectsGarbage(t *testing.T) {
	if _, err := parseArgs([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag must error")
	}
	if _, err := parseArgs([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("positional arguments must error")
	}
}

func TestListExperimentsOutput(t *testing.T) {
	var buf strings.Builder
	if err := mustParse(t, "-list").execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1") {
		t.Fatalf("experiment listing missing E1:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("suspiciously short experiment listing:\n%s", out)
	}
}

func TestThroughputOutputFormat(t *testing.T) {
	var buf strings.Builder
	c := mustParse(t, "-throughput", "-shards", "2", "-clients", "2", "-ops", "30",
		"-keys", "4", "-valuesize", "64", "-seed", "1")
	if err := c.execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sharded throughput", "ops/s", "per-shard ops", "total base-object storage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputRejectsBadShardCount(t *testing.T) {
	c := mustParse(t, "-throughput", "-shards", "0")
	if err := c.execute(io.Discard); err == nil {
		t.Fatal("-shards 0 must be rejected")
	}
}

func TestSimSweepMatrix(t *testing.T) {
	sweep := simSweep([]string{"adaptive", "abd"}, 2, 3, 4, sim.ReconfigPlan{Splits: 1, Drains: 1})
	// Two providers -> concurrent + sequential + reconfig each, plus the
	// mixed and mixed-reconfig configs.
	if len(sweep) != 8 {
		t.Fatalf("sweep has %d configurations, want 8", len(sweep))
	}
	names := make([]string, 0, len(sweep))
	for _, sc := range sweep {
		names = append(names, sc.name)
	}
	joined := strings.Join(names, ";")
	for _, want := range []string{"adaptive x2", "adaptive sequential", "adaptive reconfig",
		"abd x2", "abd sequential", "abd reconfig", "mixed providers", "mixed reconfig"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("sweep missing %q: %v", want, names)
		}
	}
	for _, sc := range sweep {
		if strings.Contains(sc.name, "sequential") {
			if sc.cfg.Clients != 1 || !sc.cfg.CheckLinearizable {
				t.Fatalf("sequential config %q must be single-client linearizable: %+v", sc.name, sc.cfg)
			}
		} else if sc.cfg.CheckLinearizable {
			t.Fatalf("concurrent config %q must not claim linearizability", sc.name)
		}
		hasPlan := sc.cfg.Reconfig.Splits > 0 || sc.cfg.Reconfig.Drains > 0
		if strings.Contains(sc.name, "reconfig") != hasPlan {
			t.Fatalf("config %q reconfig plan mismatch: %+v", sc.name, sc.cfg.Reconfig)
		}
	}
	// Disabling the plan removes the reconfig configurations.
	if n := len(simSweep([]string{"adaptive"}, 2, 3, 4, sim.ReconfigPlan{})); n != 2 {
		t.Fatalf("plan-less sweep has %d configurations, want 2", n)
	}
}

func TestSimEndToEndSmoke(t *testing.T) {
	// A seeded -sim sweep over two providers: deterministic, clean, and the
	// output names every configuration. The live leg is exercised too.
	var buf strings.Builder
	c := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2")
	if err := c.execute(&buf); err != nil {
		t.Fatalf("sim sweep failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"adaptive x1", "abd x1", "adaptive sequential", "mixed providers",
		"adaptive reconfig", "abd reconfig", "mixed reconfig",
		"seeds 11..13: ok",
		"sim live adaptive", "sim live abd",
		"swept 8 configurations x 3 seeds, 0 failing seeds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sim output missing %q:\n%s", want, out)
		}
	}

	// The same sweep again produces byte-identical output (determinism of the
	// controlled legs; the live smoke line only reports counts that are fixed
	// by the workload size).
	var buf2 strings.Builder
	c2 := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2", "-sim-live=false")
	if err := c2.execute(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 strings.Builder
	if err := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2", "-sim-live=false").execute(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Fatalf("controlled sweep output not deterministic:\n%s\nvs\n%s", buf2.String(), buf3.String())
	}
}

func TestSimWritesNoArtifactOnSuccess(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "failures.txt")
	c := mustParse(t, "-sim", "-seeds", "2", "-sim-providers", "adaptive",
		"-sim-clients", "2", "-sim-ops", "2", "-sim-live=false", "-sim-out", outPath)
	if err := c.execute(io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatalf("clean sweep must not write a failure report (stat err %v)", err)
	}
}
