package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacebounds/internal/sim"
)

func mustParse(t *testing.T, args ...string) *cliConfig {
	t.Helper()
	c, err := parseArgs(args, io.Discard)
	if err != nil {
		t.Fatalf("parseArgs(%v): %v", args, err)
	}
	return c
}

func TestParseArgsDefaults(t *testing.T) {
	c := mustParse(t)
	if c.sim || c.throughput || c.list {
		t.Fatalf("defaults should select experiment mode: %+v", c)
	}
	if c.seeds != 50 || c.seed != 1 {
		t.Fatalf("seed defaults wrong: seeds=%d seed=%d", c.seeds, c.seed)
	}
	if c.simProviders != "adaptive,abd,ecreg,safereg" {
		t.Fatalf("provider default wrong: %q", c.simProviders)
	}
}

func TestParseArgsThroughputFlags(t *testing.T) {
	c := mustParse(t, "-throughput", "-shards", "4", "-clients", "2", "-ops", "100",
		"-node-latency", "50us", "-batch", "8", "-skew", "1.2", "-algo", "abd")
	if !c.throughput {
		t.Fatal("throughput mode not selected")
	}
	if c.shards != 4 || c.clients != 2 || c.ops != 100 || c.batch != 8 || c.algo != "abd" {
		t.Fatalf("flags not parsed: %+v", c)
	}
	if c.nodeLatency != 50*time.Microsecond {
		t.Fatalf("node latency = %v", c.nodeLatency)
	}
	if c.skew != 1.2 {
		t.Fatalf("skew = %v", c.skew)
	}
}

func TestParseArgsSimFlags(t *testing.T) {
	c := mustParse(t, "-sim", "-seeds", "7", "-seed", "99", "-sim-providers", "adaptive,abd",
		"-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "3", "-sim-live=false", "-sim-out", "x.txt")
	if !c.sim {
		t.Fatal("sim mode not selected")
	}
	if c.seeds != 7 || c.seed != 99 || c.simShards != 1 || c.simClients != 2 || c.simOps != 3 {
		t.Fatalf("sim flags not parsed: %+v", c)
	}
	if c.simLive {
		t.Fatal("-sim-live=false not honoured")
	}
	if c.simOut != "x.txt" {
		t.Fatalf("sim-out = %q", c.simOut)
	}
}

func TestParseArgsRejectsGarbage(t *testing.T) {
	if _, err := parseArgs([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag must error")
	}
	if _, err := parseArgs([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("positional arguments must error")
	}
}

func TestListExperimentsOutput(t *testing.T) {
	var buf strings.Builder
	if err := mustParse(t, "-list").execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1") {
		t.Fatalf("experiment listing missing E1:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("suspiciously short experiment listing:\n%s", out)
	}
}

func TestThroughputOutputFormat(t *testing.T) {
	var buf strings.Builder
	c := mustParse(t, "-throughput", "-shards", "2", "-clients", "2", "-ops", "30",
		"-keys", "4", "-valuesize", "64", "-seed", "1")
	if err := c.execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sharded throughput", "ops/s", "per-shard ops", "total base-object storage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out)
		}
	}
}

func TestParseArgsAutoReshardFlags(t *testing.T) {
	c := mustParse(t, "-throughput", "-auto-reshard", "-auto-reshard-interval", "10ms",
		"-auto-reshard-hot", "64", "-auto-reshard-cold", "2", "-auto-reshard-moves", "7")
	if !c.autoReshard {
		t.Fatal("-auto-reshard not parsed")
	}
	if c.autoReshardEvery != 10*time.Millisecond || c.autoReshardHot != 64 ||
		c.autoReshardCold != 2 || c.autoReshardMax != 7 {
		t.Fatalf("auto-reshard flags not parsed: %+v", c)
	}
}

func TestThroughputAutoReshard(t *testing.T) {
	// A skewed workload with a low hot threshold: the controller should run
	// and its stats line should appear in the report. The run's correctness
	// (route integrity, data served across moves) is covered by the workload
	// succeeding end to end.
	var buf strings.Builder
	c := mustParse(t, "-throughput", "-shards", "3", "-clients", "4", "-ops", "400",
		"-keys", "6", "-valuesize", "64", "-seed", "1",
		"-auto-reshard", "-auto-reshard-interval", "5ms", "-auto-reshard-hot", "5")
	if err := c.execute(&buf); err != nil {
		t.Fatalf("auto-reshard throughput run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "auto-reshard:") {
		t.Fatalf("report missing the auto-reshard stats line:\n%s", out)
	}
	if !strings.Contains(out, "completed: 1600 ops") {
		t.Fatalf("workload did not complete all operations:\n%s", out)
	}
}

func TestThroughputAutoReshardExcludesSplit(t *testing.T) {
	c := mustParse(t, "-throughput", "-auto-reshard", "-split", "s0")
	if err := c.execute(io.Discard); err == nil {
		t.Fatal("-auto-reshard with -split must be rejected")
	}
}

func TestThroughputRejectsBadShardCount(t *testing.T) {
	c := mustParse(t, "-throughput", "-shards", "0")
	if err := c.execute(io.Discard); err == nil {
		t.Fatal("-shards 0 must be rejected")
	}
}

func TestSimSweepMatrix(t *testing.T) {
	sweep := simSweep([]string{"adaptive", "abd"}, 2, 3, 4, sim.ReconfigPlan{Splits: 1, Drains: 1}, nil)
	// Two providers -> concurrent + sequential + reconfig each, plus the
	// mixed and mixed-reconfig configs.
	if len(sweep) != 8 {
		t.Fatalf("sweep has %d configurations, want 8", len(sweep))
	}
	names := make([]string, 0, len(sweep))
	for _, sc := range sweep {
		names = append(names, sc.name)
	}
	joined := strings.Join(names, ";")
	for _, want := range []string{"adaptive x2", "adaptive sequential", "adaptive reconfig",
		"abd x2", "abd sequential", "abd reconfig", "mixed providers", "mixed reconfig"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("sweep missing %q: %v", want, names)
		}
	}
	for _, sc := range sweep {
		if strings.Contains(sc.name, "sequential") {
			if sc.cfg.Clients != 1 || !sc.cfg.CheckLinearizable {
				t.Fatalf("sequential config %q must be single-client linearizable: %+v", sc.name, sc.cfg)
			}
		} else if sc.cfg.CheckLinearizable {
			t.Fatalf("concurrent config %q must not claim linearizability", sc.name)
		}
		hasPlan := sc.cfg.Reconfig.Splits > 0 || sc.cfg.Reconfig.Drains > 0
		if strings.Contains(sc.name, "reconfig") != hasPlan {
			t.Fatalf("config %q reconfig plan mismatch: %+v", sc.name, sc.cfg.Reconfig)
		}
	}
	// Disabling the plan removes the reconfig configurations.
	if n := len(simSweep([]string{"adaptive"}, 2, 3, 4, sim.ReconfigPlan{}, nil)); n != 2 {
		t.Fatalf("plan-less sweep has %d configurations, want 2", n)
	}
}

func TestSimSweepAutoReshardConfigs(t *testing.T) {
	shapes := []string{sim.ShapeHotKey, sim.ShapeColdShard}
	sweep := simSweep([]string{"adaptive"}, 2, 3, 4, sim.ReconfigPlan{}, shapes)
	// Concurrent + sequential + one autoshard configuration per shape.
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d configurations, want 4", len(sweep))
	}
	var found int
	for _, sc := range sweep {
		if !strings.Contains(sc.name, "autoreshard") {
			continue
		}
		found++
		if !sc.cfg.AutoReshard.Enabled() {
			t.Fatalf("config %q has no autoshard plan: %+v", sc.name, sc.cfg)
		}
		if len(sc.cfg.Shards) < 3 {
			t.Fatalf("config %q has %d shards; autoshard configs need at least 3 so cold merges have a pair",
				sc.name, len(sc.cfg.Shards))
		}
		if sc.cfg.Reconfig.Enabled() {
			t.Fatalf("config %q carries both a scripted plan and the controller", sc.name)
		}
	}
	if found != len(shapes) {
		t.Fatalf("sweep has %d autoshard configurations, want %d", found, len(shapes))
	}
}

func TestSimAutoReshardSmoke(t *testing.T) {
	// A short end-to-end autoshard sweep through the CLI: all three shapes,
	// adversary on, every seed must converge.
	var buf strings.Builder
	c := mustParse(t, "-sim", "-seeds", "3", "-seed", "5", "-sim-providers", "adaptive",
		"-sim-clients", "3", "-sim-ops", "8",
		"-sim-reconfig-splits", "0", "-sim-reconfig-drains", "0", "-sim-reconfig-merges", "0",
		"-sim-autoreshard", "hot-key,skew-flip,cold-shard", "-sim-live=false")
	if err := c.execute(&buf); err != nil {
		t.Fatalf("autoshard sim sweep failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"adaptive autoreshard hot-key", "adaptive autoreshard skew-flip",
		"adaptive autoreshard cold-shard", "0 failing seeds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sim output missing %q:\n%s", want, out)
		}
	}
}

func TestSimRejectsUnknownAutoReshardShape(t *testing.T) {
	c := mustParse(t, "-sim", "-sim-autoreshard", "sideways")
	if err := c.execute(io.Discard); err == nil {
		t.Fatal("unknown autoshard shape must be rejected")
	}
}

func TestSimEndToEndSmoke(t *testing.T) {
	// A seeded -sim sweep over two providers: deterministic, clean, and the
	// output names every configuration. The live leg is exercised too.
	var buf strings.Builder
	c := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2")
	if err := c.execute(&buf); err != nil {
		t.Fatalf("sim sweep failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"adaptive x1", "abd x1", "adaptive sequential", "mixed providers",
		"adaptive reconfig", "abd reconfig", "mixed reconfig",
		"seeds 11..13: ok",
		"sim live adaptive", "sim live abd",
		"swept 8 configurations x 3 seeds, 0 failing seeds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sim output missing %q:\n%s", want, out)
		}
	}

	// The same sweep again produces byte-identical output (determinism of the
	// controlled legs; the live smoke line only reports counts that are fixed
	// by the workload size).
	var buf2 strings.Builder
	c2 := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2", "-sim-live=false")
	if err := c2.execute(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 strings.Builder
	if err := mustParse(t, "-sim", "-seeds", "3", "-seed", "11",
		"-sim-providers", "adaptive,abd", "-sim-shards", "1", "-sim-clients", "2", "-sim-ops", "2", "-sim-live=false").execute(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Fatalf("controlled sweep output not deterministic:\n%s\nvs\n%s", buf2.String(), buf3.String())
	}
}

func TestSimWritesNoArtifactOnSuccess(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "failures.txt")
	c := mustParse(t, "-sim", "-seeds", "2", "-sim-providers", "adaptive",
		"-sim-clients", "2", "-sim-ops", "2", "-sim-live=false", "-sim-out", outPath)
	if err := c.execute(io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatalf("clean sweep must not write a failure report (stat err %v)", err)
	}
}
