package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacebounds/internal/trace"
)

// fakeSpans builds one complete two-span trace plus a rootless fragment.
func fakeSpans(base time.Time) []trace.Span {
	return []trace.Span{
		{Trace: 7, ID: 1, Stage: trace.StageOp, Shard: "s0", Note: "write",
			Proc: "client", Start: base, Duration: 3 * time.Millisecond},
		{Trace: 7, ID: 2, Parent: 1, Stage: trace.StageRound, Shard: "s0",
			Proc: "client", Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{Trace: 9, ID: 5, Parent: 4, Stage: trace.StageApply, Note: "abd.write",
			Proc: "node-1", Start: base, Duration: time.Millisecond},
	}
}

func TestPrintSlowOps(t *testing.T) {
	var buf strings.Builder
	printSlowOps(&buf, fakeSpans(time.Now()), 5)
	out := buf.String()
	for _, want := range []string{
		"slowest traced ops:",
		"trace 0000000000000007",
		"write", "shard s0",
		"quorum-round",
		"+1ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printSlowOps output missing %q:\n%s", want, out)
		}
	}
	// The rootless fragment (trace 9) must not be shown as an op.
	if strings.Contains(out, "0000000000000009") {
		t.Errorf("printSlowOps listed a rootless fragment:\n%s", out)
	}

	buf.Reset()
	printSlowOps(&buf, nil, 5)
	if !strings.Contains(buf.String(), "no traced ops captured") {
		t.Errorf("empty span list did not print the fallback, got %q", buf.String())
	}
}

func TestScrapePeerTracesAndMergedDump(t *testing.T) {
	// One live peer, one dead address, one serving garbage.
	tr := trace.New(trace.Options{Sample: 1, Proc: "node-0", Node: 0})
	sp := tr.Start(trace.Context{Trace: 42, Span: 41}, trace.StageApply)
	sp.Done()
	live := httptest.NewServer(tr.Handler())
	defer live.Close()
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer garbage.Close()

	peerList := strings.Join([]string{
		strings.TrimPrefix(live.URL, "http://"),
		"127.0.0.1:1", // nothing listens on the reserved port
		strings.TrimPrefix(garbage.URL, "http://"),
		"", // blank entries are tolerated
	}, ",")
	var report strings.Builder
	dumps := scrapePeerTraces(peerList, &report)
	if len(dumps) != 1 {
		t.Fatalf("scraped %d dumps, want 1 (report: %s)", len(dumps), report.String())
	}
	if dumps[0].Proc != "node-0" || len(dumps[0].Spans) != 1 {
		t.Fatalf("scraped dump = proc %q with %d spans, want node-0 with 1", dumps[0].Proc, len(dumps[0].Spans))
	}
	if !strings.Contains(report.String(), "unreachable") || !strings.Contains(report.String(), "bad dump") {
		t.Errorf("report did not mention the failing peers: %q", report.String())
	}

	// Merging the scraped dump with a client tracer lands both processes'
	// spans in one parseable file.
	cliTr := trace.New(trace.Options{Sample: 1, Proc: "client", Node: -1})
	op := cliTr.Start(trace.Context{Trace: cliTr.SpanID()}, trace.StageOp)
	op.Done()
	path := filepath.Join(t.TempDir(), "merged.json")
	if err := writeMergedDump(path, cliTr, dumps); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.ParseDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Proc != "merged" || len(merged.Spans) != 2 {
		t.Fatalf("merged dump = proc %q with %d spans, want merged with 2", merged.Proc, len(merged.Spans))
	}
	procs := map[string]bool{}
	for _, s := range merged.Spans {
		procs[s.Proc] = true
	}
	if !procs["client"] || !procs["node-0"] {
		t.Errorf("merged spans from %v, want client and node-0", procs)
	}
}

func TestTraceEnabled(t *testing.T) {
	for _, tc := range []struct {
		c    cliConfig
		want bool
	}{
		{cliConfig{}, false},
		{cliConfig{traceSample: 0.5}, true},
		{cliConfig{traceSlow: time.Millisecond}, true},
		{cliConfig{traceOut: "x.json"}, true},
	} {
		if got := tc.c.traceEnabled(); got != tc.want {
			t.Errorf("traceEnabled(%+v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}
