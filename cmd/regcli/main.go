// Command regcli runs a scripted sequence of operations against a simulated
// register cluster and prints what happened, including the storage cost after
// every command. It is a small debugging/demonstration tool.
//
// Commands are passed as arguments, separated by commas:
//
//	write:<client>:<text>   perform a write of the given text
//	read:<client>           perform a read and print the value
//	crash:<object>          crash a base object
//	storage                 print the current storage breakdown
//
// Example:
//
//	regcli -algo adaptive -f 1 -k 2 -size 64 \
//	    "write:1:hello, storage, crash:0, write:2:world, read:3, storage"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/value"
)

func main() {
	var (
		algo = flag.String("algo", "adaptive", "register algorithm: adaptive | ecreg | abd | safe")
		f    = flag.Int("f", 1, "failures tolerated")
		k    = flag.Int("k", 2, "code parameter k (n = 2f+k; abd forces k=1)")
		size = flag.Int("size", 64, "value size in bytes")
	)
	flag.Parse()
	script := strings.Join(flag.Args(), " ")
	if script == "" {
		script = "write:1:hello, read:2, storage"
	}
	if err := run(*algo, *f, *k, *size, script); err != nil {
		fmt.Fprintf(os.Stderr, "regcli: %v\n", err)
		os.Exit(1)
	}
}

func newRegister(algo string, f, k, size int) (register.Register, error) {
	cfg := register.Config{F: f, K: k, DataLen: size}
	switch algo {
	case "adaptive":
		return adaptive.New(cfg)
	case "ecreg":
		return ecreg.New(cfg)
	case "safe":
		return safereg.New(cfg)
	case "abd":
		cfg.K = 1
		return abd.New(cfg)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func run(algo string, f, k, size int, script string) error {
	reg, err := newRegister(algo, f, k, size)
	if err != nil {
		return err
	}
	cfg := reg.Config()
	states, err := reg.InitialStates(value.Zero(cfg.DataLen))
	if err != nil {
		return err
	}
	// Live mode: commands execute immediately, which is what an interactive
	// tool wants.
	cluster := dsys.NewCluster(states, dsys.WithLiveMode(), dsys.WithDataBits(cfg.DataBits()))
	defer cluster.Close()
	fmt.Printf("cluster: %s, n=%d base objects, quorum=%d, D=%d bits\n", reg.Name(), cfg.N(), cfg.Quorum(), cfg.DataBits())

	for _, raw := range strings.Split(script, ",") {
		cmd := strings.TrimSpace(raw)
		if cmd == "" {
			continue
		}
		if err := runCommand(cluster, reg, cmd); err != nil {
			return fmt.Errorf("command %q: %w", cmd, err)
		}
	}
	return nil
}

func runCommand(cluster *dsys.Cluster, reg register.Register, cmd string) error {
	cfg := reg.Config()
	parts := strings.SplitN(cmd, ":", 3)
	switch parts[0] {
	case "write":
		if len(parts) < 3 {
			return fmt.Errorf("want write:<client>:<text>")
		}
		client, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		v := value.FromString(parts[2], cfg.DataLen)
		th := cluster.Spawn(client, func(h *dsys.ClientHandle) error { return reg.Write(h, v) })
		if err := th.Wait(); err != nil {
			return err
		}
		fmt.Printf("write by client %d ok: %q\n", client, parts[2])
	case "read":
		if len(parts) < 2 {
			return fmt.Errorf("want read:<client>")
		}
		client, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		var got value.Value
		th := cluster.Spawn(client, func(h *dsys.ClientHandle) error {
			var err error
			got, err = reg.Read(h)
			return err
		})
		if err := th.Wait(); err != nil {
			return err
		}
		fmt.Printf("read by client %d: %q\n", client, strings.TrimRight(string(got.Bytes()), "\x00"))
	case "crash":
		if len(parts) < 2 {
			return fmt.Errorf("want crash:<object>")
		}
		obj, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		if err := cluster.CrashObject(obj); err != nil {
			return err
		}
		fmt.Printf("crashed base object %d (crashed so far: %v)\n", obj, cluster.CrashedObjects())
	case "storage":
		snap := cluster.SampleStorage()
		fmt.Println(snap)
	default:
		return fmt.Errorf("unknown command %q", parts[0])
	}
	return nil
}
