package sim

import (
	"testing"

	"spacebounds/internal/reconfig"
)

// reconfigConfig is the standard reconfiguration-enabled exploration config:
// enough clients and operations that splits and drains land mid-traffic.
func reconfigConfig(seed int64, provider string) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: provider}, {Provider: provider}},
		Clients:      3,
		OpsPerClient: 6,
		Reconfig:     ReconfigPlan{Splits: 1, Drains: 1},
	}
}

// TestReconfigRunRecordsSplitAndDrain is the acceptance scenario: a seeded
// run with reconfiguration moves enabled records at least one split and one
// drain, stitches histories across epochs, passes the strong-regularity
// checker, and replays byte for byte from its fingerprint.
func TestReconfigRunRecordsSplitAndDrain(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 10; seed++ {
		cfg := reconfigConfig(seed, "adaptive")
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		splits, drains := 0, 0
		for _, ev := range res.Reconfigs {
			switch ev.Kind {
			case reconfig.MoveSplit:
				splits++
			case reconfig.MoveDrain:
				drains++
			}
		}
		if splits < 1 || drains < 1 {
			continue
		}
		// Histories must actually stitch: some verdict spans a lineage of
		// more than one epoch with operations recorded in it.
		stitched := false
		for _, v := range res.Verdicts {
			if len(v.Lineage) > 1 && len(v.History.Ops) > 0 {
				stitched = true
			}
		}
		if !stitched {
			t.Fatalf("seed %d recorded %d splits / %d drains but no stitched history", seed, splits, drains)
		}
		// Byte-for-byte replay from the fingerprint.
		if _, err := Replay(cfg, res.Fingerprint); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no seed in 1..10 completed both a split and a drain")
	}
}

// TestReconfigRunIsDeterministic re-runs reconfiguration-enabled seeds and
// requires identical fingerprints, steps and reconfiguration schedules.
func TestReconfigRunIsDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := reconfigConfig(seed, "adaptive")
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints diverge", seed)
		}
		if len(a.Reconfigs) != len(b.Reconfigs) {
			t.Fatalf("seed %d: reconfig schedules diverge: %v vs %v", seed, a.Reconfigs, b.Reconfigs)
		}
		for i := range a.Reconfigs {
			if a.Reconfigs[i].String() != b.Reconfigs[i].String() {
				t.Fatalf("seed %d: reconfig %d diverges: %v vs %v", seed, i, a.Reconfigs[i], b.Reconfigs[i])
			}
		}
	}
}

// TestReconfigCheckedCleanAcrossProvidersAndSeeds sweeps every provider with
// reconfiguration enabled: no stitched history may violate its condition.
func TestReconfigCheckedCleanAcrossProvidersAndSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for _, provider := range DefaultProviders {
		failures, err := Explore(reconfigConfig(0, provider), 1, 10)
		if err != nil {
			t.Fatalf("%s: %v", provider, err)
		}
		for _, f := range failures {
			t.Errorf("%s seed %d failed:\n%s", provider, f.Seed, FormatFailure(f))
		}
	}
}

// TestReconfigFingerprintDiffersFromStatic proves the reconfig plan actually
// changes the schedule (the controller is part of the deterministic run).
func TestReconfigFingerprintDiffersFromStatic(t *testing.T) {
	base := Config{Seed: 5, Shards: []ShardPlan{{Provider: "adaptive"}}, Clients: 2, OpsPerClient: 5}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPlan := base
	withPlan.Reconfig = ReconfigPlan{Splits: 1}
	b, err := Run(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("reconfiguration plan did not change the run")
	}
	if len(b.Reconfigs) == 0 {
		t.Fatal("no reconfiguration was recorded")
	}
}

// crashConfig is the standard controller-crash exploration config: merges in
// the plan and enough crash budget that the PRNG schedule interleaves
// controller deaths between migration steps.
func crashConfig(seed int64, provider string) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: provider}, {Provider: provider}},
		Clients:      3,
		OpsPerClient: 6,
		Reconfig:     ReconfigPlan{Splits: 1, Drains: 1, Merges: 1, ControllerCrashes: 2},
	}
}

// TestMergeRunStitchesAndPrunes is the merge acceptance scenario: a seeded
// run with a merge in the plan completes it, the merged shard's verdict
// lineage crosses the merge, the value-ordering loser shows up as a pruned-
// branch verdict, and everything checks clean and replays byte for byte.
func TestMergeRunStitchesAndPrunes(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		cfg := Config{
			Seed:         seed,
			Shards:       []ShardPlan{{Provider: "adaptive"}, {Provider: "adaptive"}},
			Clients:      3,
			OpsPerClient: 6,
			Reconfig:     ReconfigPlan{Merges: 1},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		merges := 0
		for _, ev := range res.Reconfigs {
			if ev.Kind == reconfig.MoveMerge {
				merges++
			}
		}
		if merges == 0 {
			continue
		}
		// The merged shard's verdict must stitch a multi-epoch lineage, and
		// the loser must be checked as a pruned branch.
		var mergedLineage, prunedSeen bool
		leafSet := make(map[string]bool)
		for _, v := range res.Verdicts {
			if len(v.Lineage) > 1 && v.Lineage[len(v.Lineage)-1] != v.Shard {
				t.Fatalf("seed %d: lineage %v does not end at shard %s", seed, v.Lineage, v.Shard)
			}
			if len(v.Lineage) > 1 {
				mergedLineage = true
			}
			if leafSet[v.Shard+"/"+v.Condition] {
				t.Fatalf("seed %d: duplicate verdict for %s", seed, v.Shard)
			}
			leafSet[v.Shard+"/"+v.Condition] = true
		}
		for _, m := range res.Moves {
			if m.Move.Kind == reconfig.MoveMerge && m.Done {
				if m.Winner == "" {
					t.Fatalf("seed %d: completed merge has no winner: %s", seed, m)
				}
				for _, v := range res.Verdicts {
					for _, src := range m.Sources {
						if src != m.Winner && v.Shard == src {
							prunedSeen = true
						}
					}
				}
			}
		}
		if !mergedLineage || !prunedSeen {
			continue
		}
		if _, err := Replay(cfg, res.Fingerprint); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no seed in 1..20 completed a merge with a stitched lineage and a pruned branch")
	}
}

// TestControllerCrashIsResumedAndResolves is the crash-resumability
// acceptance scenario: across a seed sweep with controller crashes enabled,
// every run must end with all moves resolved (completed or cleanly aborted)
// and no route left Seeding/Draining, and at least one seed must actually
// exercise a crash-then-takeover of an in-flight move.
func TestControllerCrashIsResumedAndResolves(t *testing.T) {
	crashSeen, resumedMoveDone := false, false
	for seed := int64(1); seed <= 30; seed++ {
		cfg := crashConfig(seed, "adaptive")
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		if len(res.RouteLeaks) != 0 || len(res.Unresolved()) != 0 {
			t.Fatalf("seed %d: leaks %v unresolved %v", seed, res.RouteLeaks, res.Unresolved())
		}
		if res.ControllerCrashes > 0 {
			crashSeen = true
			if res.ControllerResumes == 0 {
				t.Fatalf("seed %d: %d controller crashes but no takeover", seed, res.ControllerCrashes)
			}
		}
		for _, m := range res.Moves {
			if m.Resumes > 0 && m.Done {
				resumedMoveDone = true
			}
		}
	}
	if !crashSeen {
		t.Fatal("no seed in 1..30 crashed the controller; raise the rates")
	}
	if !resumedMoveDone {
		t.Fatal("no seed in 1..30 resumed an interrupted move to completion")
	}
}

// TestControllerCrashRunsAreDeterministic replays crash-enabled seeds and
// requires identical fingerprints, ledgers and controller counters.
func TestControllerCrashRunsAreDeterministic(t *testing.T) {
	for _, seed := range []int64{2, 11, 23} {
		cfg := crashConfig(seed, "adaptive")
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints diverge", seed)
		}
		if a.ControllerCrashes != b.ControllerCrashes || a.ControllerResumes != b.ControllerResumes {
			t.Fatalf("seed %d: controller counters diverge: %d/%d vs %d/%d",
				seed, a.ControllerCrashes, a.ControllerResumes, b.ControllerCrashes, b.ControllerResumes)
		}
		if len(a.Moves) != len(b.Moves) {
			t.Fatalf("seed %d: ledgers diverge: %v vs %v", seed, a.Moves, b.Moves)
		}
		for i := range a.Moves {
			if a.Moves[i].String() != b.Moves[i].String() {
				t.Fatalf("seed %d: ledger entry %d diverges:\n%s\n%s", seed, i, a.Moves[i], b.Moves[i])
			}
		}
	}
}

// TestCrashResumeCleanAcrossProvidersAndSeeds sweeps every provider with
// merges and controller crashes enabled: no stitched history may violate its
// condition and no move may be left unresolved.
func TestCrashResumeCleanAcrossProvidersAndSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for _, provider := range DefaultProviders {
		failures, err := Explore(crashConfig(0, provider), 1, 10)
		if err != nil {
			t.Fatalf("%s: %v", provider, err)
		}
		for _, f := range failures {
			t.Errorf("%s seed %d failed:\n%s", provider, f.Seed, FormatFailure(f))
		}
	}
}

// sabotageConfig plans moves that are sabotaged into genuine aborts while the
// adversary holds controller-crash budget: the mix that can put a controller
// crash inside a rollback.
func sabotageConfig(seed int64, provider string) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: provider}, {Provider: provider}},
		Clients:      3,
		OpsPerClient: 6,
		Reconfig:     ReconfigPlan{Splits: 1, Drains: 1, Merges: 1, ControllerCrashes: 2, Sabotage: 2},
	}
}

// TestSabotagedMovesAbortAndResolve: every sabotaged run must still end fully
// resolved — aborted moves rolled back, no route leaked, histories clean —
// and across the sweep at least one move must be aborted at all, proving the
// sabotage reaches the abort path under adversarial scheduling.
func TestSabotagedMovesAbortAndResolve(t *testing.T) {
	abortSeen := false
	for seed := int64(1); seed <= 20; seed++ {
		res, err := Run(sabotageConfig(seed, "adaptive"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		for _, m := range res.Moves {
			if m.Aborted {
				abortSeen = true
			}
		}
	}
	if !abortSeen {
		t.Fatal("no seed in 1..20 aborted a sabotaged move; the sabotage never reached the abort path")
	}
}

// TestControllerCrashMidAbortIsResumed closes the mid-abort gap at the
// simulator level: some schedule must crash the controller while a sabotaged
// move is rolling back — observable as an aborted ledger entry with Resumes >
// 0, i.e. a standby incarnation finished a rollback it did not start — and
// every such run must still converge with zero leaks and clean histories. The
// witnessing seed must also replay byte for byte.
func TestControllerCrashMidAbortIsResumed(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		cfg := sabotageConfig(seed, "adaptive")
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		for _, m := range res.Moves {
			if m.Aborted && m.Resumes > 0 {
				// A crash landed inside this move's lifecycle and the abort
				// still completed under a different incarnation.
				if _, err := Replay(cfg, res.Fingerprint); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				return
			}
		}
	}
	t.Fatal("no seed in 1..300 crashed a controller mid-abort; raise Sabotage or the crash rates")
}
