package sim

import (
	"testing"

	"spacebounds/internal/reconfig"
)

// reconfigConfig is the standard reconfiguration-enabled exploration config:
// enough clients and operations that splits and drains land mid-traffic.
func reconfigConfig(seed int64, provider string) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: provider}, {Provider: provider}},
		Clients:      3,
		OpsPerClient: 6,
		Reconfig:     ReconfigPlan{Splits: 1, Drains: 1},
	}
}

// TestReconfigRunRecordsSplitAndDrain is the acceptance scenario: a seeded
// run with reconfiguration moves enabled records at least one split and one
// drain, stitches histories across epochs, passes the strong-regularity
// checker, and replays byte for byte from its fingerprint.
func TestReconfigRunRecordsSplitAndDrain(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 10; seed++ {
		cfg := reconfigConfig(seed, "adaptive")
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, FormatFailure(res))
		}
		splits, drains := 0, 0
		for _, ev := range res.Reconfigs {
			switch ev.Kind {
			case reconfig.MoveSplit:
				splits++
			case reconfig.MoveDrain:
				drains++
			}
		}
		if splits < 1 || drains < 1 {
			continue
		}
		// Histories must actually stitch: some verdict spans a lineage of
		// more than one epoch with operations recorded in it.
		stitched := false
		for _, v := range res.Verdicts {
			if len(v.Lineage) > 1 && len(v.History.Ops) > 0 {
				stitched = true
			}
		}
		if !stitched {
			t.Fatalf("seed %d recorded %d splits / %d drains but no stitched history", seed, splits, drains)
		}
		// Byte-for-byte replay from the fingerprint.
		if _, err := Replay(cfg, res.Fingerprint); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no seed in 1..10 completed both a split and a drain")
	}
}

// TestReconfigRunIsDeterministic re-runs reconfiguration-enabled seeds and
// requires identical fingerprints, steps and reconfiguration schedules.
func TestReconfigRunIsDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := reconfigConfig(seed, "adaptive")
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints diverge", seed)
		}
		if len(a.Reconfigs) != len(b.Reconfigs) {
			t.Fatalf("seed %d: reconfig schedules diverge: %v vs %v", seed, a.Reconfigs, b.Reconfigs)
		}
		for i := range a.Reconfigs {
			if a.Reconfigs[i].String() != b.Reconfigs[i].String() {
				t.Fatalf("seed %d: reconfig %d diverges: %v vs %v", seed, i, a.Reconfigs[i], b.Reconfigs[i])
			}
		}
	}
}

// TestReconfigCheckedCleanAcrossProvidersAndSeeds sweeps every provider with
// reconfiguration enabled: no stitched history may violate its condition.
func TestReconfigCheckedCleanAcrossProvidersAndSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for _, provider := range DefaultProviders {
		failures, err := Explore(reconfigConfig(0, provider), 1, 10)
		if err != nil {
			t.Fatalf("%s: %v", provider, err)
		}
		for _, f := range failures {
			t.Errorf("%s seed %d failed:\n%s", provider, f.Seed, FormatFailure(f))
		}
	}
}

// TestReconfigFingerprintDiffersFromStatic proves the reconfig plan actually
// changes the schedule (the controller is part of the deterministic run).
func TestReconfigFingerprintDiffersFromStatic(t *testing.T) {
	base := Config{Seed: 5, Shards: []ShardPlan{{Provider: "adaptive"}}, Clients: 2, OpsPerClient: 5}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPlan := base
	withPlan.Reconfig = ReconfigPlan{Splits: 1}
	b, err := Run(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("reconfiguration plan did not change the run")
	}
	if len(b.Reconfigs) == 0 {
		t.Fatal("no reconfiguration was recorded")
	}
}
