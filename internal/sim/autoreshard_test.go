package sim

import (
	"testing"

	"spacebounds/internal/reconfig"
)

// autoReshardConfig builds the harness config the sweeps use: three
// same-provider shards (so merges have valid pairs), enough operations for
// the controller's sampling windows to see the shape.
func autoReshardConfig(seed int64, shape string) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: "adaptive"}, {Provider: "adaptive"}, {Provider: "adaptive"}},
		Clients:      3,
		OpsPerClient: 30,
		AutoReshard:  AutoReshardPlan{Shape: shape},
	}
}

// TestAutoReshardRejectsCombinedPlans pins the mutual exclusion: a config
// with both a scripted move plan and the controller is a configuration
// error, not a coin toss over the coordinator.
func TestAutoReshardRejectsCombinedPlans(t *testing.T) {
	cfg := autoReshardConfig(1, ShapeHotKey)
	cfg.Reconfig = ReconfigPlan{Splits: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted Reconfig and AutoReshard together")
	}
}

// TestAutoReshardConvergesUnderShapedLoad is the harness's core claim, per
// shape: across a seed sweep of adversary-faulted runs, every run converges
// — clean verdicts, zero route leaks, zero unresolved moves, move budget
// respected — and the shape actually provokes the controller: hot-key storms
// produce splits, cold shards produce merges, and no shape worth its name
// leaves the controller idle across the whole sweep.
func TestAutoReshardConvergesUnderShapedLoad(t *testing.T) {
	shapes := []struct {
		shape string
		want  func(Stats) bool
		desc  string
	}{
		{ShapeHotKey, func(s Stats) bool { return s.splits > 0 }, "at least one split"},
		{ShapeSkewFlip, func(s Stats) bool { return s.splits > 0 }, "at least one split"},
		{ShapeColdShard, func(s Stats) bool { return s.merges > 0 }, "at least one merge"},
	}
	for _, sh := range shapes {
		t.Run(sh.shape, func(t *testing.T) {
			var total Stats
			for seed := int64(1); seed <= 20; seed++ {
				cfg := autoReshardConfig(seed, sh.shape)
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Failed() {
					t.Fatalf("seed %d failed to converge: violations %d, leaks %v, unresolved %+v",
						seed, len(res.Violations()), res.RouteLeaks, res.Unresolved())
				}
				if res.Autoshard.Plans > int64(cfg.AutoReshard.withDefaults().MaxMoves) {
					t.Fatalf("seed %d: controller emitted %d plans over its budget of %d",
						seed, res.Autoshard.Plans, cfg.AutoReshard.withDefaults().MaxMoves)
				}
				for _, ev := range res.Reconfigs {
					switch ev.Kind {
					case reconfig.MoveSplit:
						total.splits++
					case reconfig.MoveMerge:
						total.merges++
					case reconfig.MoveDrain:
						total.drains++
					}
				}
			}
			if !sh.want(total) {
				t.Fatalf("shape %s never provoked %s across the sweep (splits %d, merges %d, drains %d)",
					sh.shape, sh.desc, total.splits, total.merges, total.drains)
			}
		})
	}
}

// Stats tallies applied moves by kind across a sweep.
type Stats struct{ splits, merges, drains int }

// TestAutoReshardDeterministic pins the purity claim for controller runs: the
// same config replays to the identical fingerprint, controller decisions
// included.
func TestAutoReshardDeterministic(t *testing.T) {
	cfg := autoReshardConfig(7, ShapeHotKey)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(cfg, first.Fingerprint); err != nil {
		t.Fatal(err)
	}
}
