package sim

import (
	"math/rand"
	"sort"
	"sync"

	"spacebounds/internal/autoshard"
	"spacebounds/internal/dsys"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/shard"
)

// autoshardClientID is the autoshard controller task's client ID — its own
// block far above the reconfiguration controller incarnations, and spared
// from the generic client-crash move (the autoshard sweeps stress workload
// shape, not controller death; controller-crash interleavings are the
// reconfig sweeps' job).
const autoshardClientID = 1 << 21

// tickYields is how many scheduler yields the autoshard controller sleeps
// between control-loop ticks — the controlled-mode stand-in for the live
// driver's wall-clock interval. Per-tick thresholds are calibrated against
// the workload progress one such sleep typically admits.
const tickYields = 32

// Workload shapes the autoshard harness can impose on the routed clients.
// Each is a load pattern the controller is supposed to answer with a
// different move.
const (
	// ShapeHotKey concentrates most operations on one key: its shard runs
	// hot and the controller should split it.
	ShapeHotKey = "hot-key"
	// ShapeSkewFlip moves the hot spot to a different key halfway through
	// the workload: the controller must follow the skew, not fight it.
	ShapeSkewFlip = "skew-flip"
	// ShapeColdShard confines all operations to a single key: every shard
	// not serving it goes cold and the controller should merge the cold
	// pair. The shape defaults the hot threshold out of reach — it tests
	// downward convergence, and a split of the one loaded shard would eat
	// the merge budget.
	ShapeColdShard = "cold-shard"
)

// AutoReshardPlan runs the self-driving topology controller inside the
// simulation: a spared controller task samples per-shard completed-op counts
// every few scheduler yields, feeds them to the autoshard planner, and
// applies the emitted plans through the coordinator — all on the
// deterministic schedule, under the same fault adversary as the workload.
// Mutually exclusive with ReconfigPlan (the two would fight over the
// coordinator).
type AutoReshardPlan struct {
	// Shape selects the workload pattern (required; see the Shape constants).
	Shape string
	// MaxMoves caps the controller's lifetime move budget (default 3).
	MaxMoves int
	// HotOps and ColdOps override the per-tick thresholds (defaults 6 and 0:
	// a shard is cold only when a tick brings it nothing at all).
	HotOps, ColdOps float64
	// SustainTicks and CooldownTicks override the planner windows
	// (defaults 2 and 2 — the simulation's ticks are coarse already).
	SustainTicks, CooldownTicks int
}

// Enabled reports whether the zero-value-off harness was requested.
func (p AutoReshardPlan) Enabled() bool { return p.Shape != "" }

func (p AutoReshardPlan) withDefaults() AutoReshardPlan {
	if p.MaxMoves == 0 {
		p.MaxMoves = 3
	}
	if p.HotOps == 0 {
		if p.Shape == ShapeColdShard {
			p.HotOps = 1 << 30 // splits effectively off; see ShapeColdShard
		} else {
			p.HotOps = 6
		}
	}
	if p.SustainTicks == 0 {
		p.SustainTicks = 2
	}
	if p.CooldownTicks == 0 {
		p.CooldownTicks = 2
	}
	return p
}

// plannerConfig maps the plan onto the autoshard planner. MinShards 2 keeps
// the controller from collapsing the whole store into one shard after the
// workload quiesces.
func (p AutoReshardPlan) plannerConfig() autoshard.Config {
	return autoshard.Config{
		HotOps:        p.HotOps,
		ColdOps:       p.ColdOps,
		SustainTicks:  p.SustainTicks,
		CooldownTicks: p.CooldownTicks,
		MaxMoves:      p.MaxMoves,
		MinShards:     2,
	}
}

// picker builds the per-client key-selection function for the plan's shape.
// The returned function is pure in (rng, op index), so shaping is part of the
// deterministic schedule.
func (p AutoReshardPlan) picker(home string, totalOps int) func(*rand.Rand, int) string {
	switch p.Shape {
	case ShapeHotKey:
		hot := KeySpaceName(0)
		mix := defaultKeyMix(home)
		return func(rng *rand.Rand, op int) string {
			if rng.Float64() < 0.75 {
				return hot
			}
			return mix(rng, op)
		}
	case ShapeSkewFlip:
		early, late := KeySpaceName(0), KeySpaceName(2)
		mix := defaultKeyMix(home)
		return func(rng *rand.Rand, op int) string {
			hot := early
			if op >= totalOps/2 {
				hot = late
			}
			if rng.Float64() < 0.75 {
				return hot
			}
			return mix(rng, op)
		}
	case ShapeColdShard:
		only := KeySpaceName(0)
		return func(*rand.Rand, int) string { return only }
	default:
		return defaultKeyMix(home)
	}
}

// opCounts tallies completed operations per serving shard — the simulation's
// sampling surface, standing in for the live store's metrics registry. In
// controlled mode only one task runs at a time; the mutex exists for the race
// detector and the final read from the orchestrating goroutine.
type opCounts struct {
	mu sync.Mutex
	m  map[string]int64
}

func newOpCounts() *opCounts { return &opCounts{m: make(map[string]int64)} }

func (o *opCounts) add(shard string) {
	o.mu.Lock()
	o.m[shard]++
	o.mu.Unlock()
}

func (o *opCounts) get(shard string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[shard]
}

// autoshardScript builds the controller task: every tickYields scheduler
// yields it samples the per-shard op deltas, ticks the planner, and pushes
// the plan through the coordinator with a controlled runner. Backpressure
// follows the live driver's contract — a move left in the ledger by a failed
// step is resumed, never re-planned. The task returns once the workload has
// wound down and no move is in flight, so the run quiesces with a settled
// topology.
func autoshardScript(set *shard.Set, co *reconfig.Coordinator, planner *autoshard.Planner, counts *opCounts, workloadDone func() bool) func(*dsys.ClientHandle) error {
	return func(h *dsys.ClientHandle) error {
		runner := reconfig.NewControlledRunner(h)
		last := make(map[string]int64)
		resuming := false
		for {
			for i := 0; i < tickYields; i++ {
				if err := h.Yield(); err != nil {
					return nil
				}
			}
			if fl := co.InFlight(); fl != nil {
				// A move is mid-flight (a step failed at a non-abortable
				// stage, or an abort was interrupted): re-drive it from the
				// ledger before doing anything else.
				resuming = true
				if _, _, err := co.Resume(runner); err != nil && reconfig.IsInterruption(err) {
					return nil // cluster halted under the resume
				}
				continue
			}
			if resuming {
				resuming = false
				planner.NoteResumed()
				continue
			}

			names := append([]string(nil), set.Router().ActiveLeafNames()...)
			sort.Strings(names)
			samples := make([]autoshard.Sample, 0, len(names))
			for _, name := range names {
				cur := counts.get(name)
				samples = append(samples, autoshard.Sample{Shard: name, Ops: float64(cur - last[name])})
				last[name] = cur
			}
			pl, ok := planner.Tick(samples)
			if !ok {
				if workloadDone() {
					return nil
				}
				continue
			}
			_, err := co.Apply(runner, pl.Move)
			switch {
			case err == nil:
				planner.NoteResolved(true)
			case reconfig.IsInterruption(err):
				return nil
			case co.InFlight() != nil:
				// Genuine failure, move still in the ledger: the next tick's
				// in-flight branch resumes it.
				resuming = true
			default:
				// Rejected or cleanly aborted; the topology is unchanged.
				planner.NoteResolved(false)
			}
		}
	}
}
