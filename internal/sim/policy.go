package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"spacebounds/internal/dsys"
)

// Sim-level policy decision kinds, layered above dsys's: with a reconfig
// plan, migrations are no longer paced by a background task — the adversary
// decides when a move starts, when the migration controller crashes
// mid-move, and when a standby controller takes the interrupted move over.
// They are recorded as fault events, so a failure artifact shows exactly
// where in the schedule the controller died.
const (
	// KindStartMove releases the next planned reconfiguration move; the
	// active controller picks it up at its next scheduling.
	KindStartMove = dsys.TraceEventKind("start-move")
	// KindCrashController crashes the active controller incarnation (it
	// translates to a dsys client crash of the controller's client ID). Only
	// rolled while a move is in flight, so the crash lands between migration
	// steps.
	KindCrashController = dsys.TraceEventKind("crash-controller")
	// KindResumeController activates the next standby controller
	// incarnation, which re-drives the interrupted move from its ledger.
	KindResumeController = dsys.TraceEventKind("resume-controller")
)

// FaultRates are the per-scheduling-decision probabilities of the adversary's
// fault moves. They are rolled once per decision, in the order listed; a move
// whose preconditions fail (no candidate victim, budget exhausted) falls
// through to an ordinary scheduling move, so the rates are upper bounds.
type FaultRates struct {
	// CrashObject permanently crashes a base object. Crashed plus suspended
	// objects never exceed the shard's f, so quorums stay formable.
	CrashObject float64
	// SuspendObject marks a base object unresponsive until resumed.
	SuspendObject float64
	// ResumeObject lifts one suspension.
	ResumeObject float64
	// CrashClient crashes a client mid-operation: it never takes another
	// step, though its in-flight RMWs may still land.
	CrashClient float64
	// MaxClientCrashes caps the total number of client crashes (0 = default:
	// a third of the clients).
	MaxClientCrashes int
	// StartMove releases the next planned reconfiguration move (reconfig
	// plans only; zero with a plan defaults to 0.02).
	StartMove float64
	// CrashController crashes the active migration controller while a move is
	// in flight (bounded by ReconfigPlan.ControllerCrashes; zero with crashes
	// planned defaults to 0.03).
	CrashController float64
	// ResumeController activates the next standby controller after a
	// controller crash (zero with crashes planned defaults to 0.05; a
	// deterministic takeover backstop in the standby task bounds the outage
	// even when this never fires).
	ResumeController float64
}

// withDefaults fills an all-zero rate set with the standard adversarial mix.
func (f FaultRates) withDefaults(totalClients int) FaultRates {
	if f.CrashObject == 0 && f.SuspendObject == 0 && f.ResumeObject == 0 && f.CrashClient == 0 {
		f.CrashObject = 0.01
		f.SuspendObject = 0.05
		f.ResumeObject = 0.08
		f.CrashClient = 0.01
	}
	if f.MaxClientCrashes == 0 {
		f.MaxClientCrashes = totalClients / 3
	}
	return f
}

// withControllerDefaults fills the controller-decision rates for a
// reconfiguration-enabled run.
func (f FaultRates) withControllerDefaults(crashes int) FaultRates {
	if f.StartMove == 0 {
		f.StartMove = 0.02
	}
	if crashes > 0 {
		if f.CrashController == 0 {
			f.CrashController = 0.03
		}
		if f.ResumeController == 0 {
			f.ResumeController = 0.05
		}
	}
	return f
}

// FaultEvent is one fault injected by the adversary, recorded for the
// failure artifact (the full schedule is reproducible from the seed alone).
type FaultEvent struct {
	Step   int
	Kind   dsys.TraceEventKind
	Object int // -1 for client faults
	Client int // -1 for object faults
}

// String implements fmt.Stringer.
func (e FaultEvent) String() string {
	if e.Client >= 0 {
		return fmt.Sprintf("step %d: %s client %d", e.Step, e.Kind, e.Client)
	}
	if e.Object >= 0 {
		return fmt.Sprintf("step %d: %s object %d", e.Step, e.Kind, e.Object)
	}
	return fmt.Sprintf("step %d: %s", e.Step, e.Kind)
}

// region is one shard's object range and fault budget.
type region struct {
	base, span, f int
}

// adversary is the seeded scheduling policy of the simulator: at every
// scheduling point it either injects a fault (within the model's budgets),
// makes a controller decision (release a reconfiguration move, crash the
// migration controller mid-move, activate a standby), or picks uniformly at
// random among the enabled moves — running a ready client or applying a
// pending RMW on a responsive object. Random choice among enabled moves is
// exactly the delay/reorder power the model's environment has over pending
// RMWs. The policy is a deterministic function of its seed: replaying a seed
// replays the schedule.
type adversary struct {
	rng *rand.Rand
	// regions supplies the current shard layout; reconfiguration grows and
	// retires regions mid-run, and the fault budget follows the topology. The
	// callback is consulted at scheduling points only, so its answers are a
	// pure function of the schedule.
	regions func() []region
	rates   FaultRates
	// immortal clients (the controller incarnations) are exempt from the
	// generic client-crash move; the controller is crashed only through the
	// budgeted KindCrashController decision, which the resume machinery pairs
	// with a takeover.
	immortal map[int]bool
	// ctrl is the controller coordination state (nil without a reconfig
	// plan). The adversary reads and mutates it at scheduling points only.
	ctrl *controllerState
	// moveInFlight reports whether a migration is mid-protocol; controller
	// crashes are only rolled then, so they land between migration steps.
	moveInFlight func() bool

	crashed       map[int]bool // objects
	suspended     map[int]bool // objects
	clientCrashes int
	events        []FaultEvent
}

var _ dsys.Policy = (*adversary)(nil)

func newAdversary(seed int64, rates FaultRates) *adversary {
	return &adversary{
		rng:       rand.New(rand.NewSource(seed)),
		rates:     rates,
		immortal:  make(map[int]bool),
		crashed:   make(map[int]bool),
		suspended: make(map[int]bool),
	}
}

// bind tells the adversary where to read the (possibly changing) shard
// layout. It must be called before the cluster starts scheduling.
func (a *adversary) bind(regions func() []region) { a.regions = regions }

// bindController wires the controller coordination state and the in-flight
// probe. It must be called before the cluster starts scheduling.
func (a *adversary) bindController(ctrl *controllerState, inFlight func() bool) {
	a.ctrl = ctrl
	a.moveInFlight = inFlight
}

// spare marks a client as exempt from the generic client-crash move.
func (a *adversary) spare(client int) { a.immortal[client] = true }

// faultedIn counts crashed plus suspended objects of one region.
func (a *adversary) faultedIn(r region) int {
	n := 0
	for obj := r.base; obj < r.base+r.span; obj++ {
		if a.crashed[obj] || a.suspended[obj] {
			n++
		}
	}
	return n
}

// faultCandidates lists objects that may be crashed or suspended without
// blowing a shard's fault budget, in ascending order.
func (a *adversary) faultCandidates() []int {
	var out []int
	for _, r := range a.regions() {
		if a.faultedIn(r) >= r.f {
			continue
		}
		for obj := r.base; obj < r.base+r.span; obj++ {
			if !a.crashed[obj] && !a.suspended[obj] {
				out = append(out, obj)
			}
		}
	}
	return out
}

// suspendedList returns the suspended objects in ascending order so picks are
// deterministic.
func (a *adversary) suspendedList() []int {
	out := make([]int, 0, len(a.suspended))
	for obj := range a.suspended {
		out = append(out, obj)
	}
	sort.Ints(out)
	return out
}

func (a *adversary) note(step int, kind dsys.TraceEventKind, object, client int) {
	a.events = append(a.events, FaultEvent{Step: step, Kind: kind, Object: object, Client: client})
}

// clientAlive reports whether the view lists the client as a live task.
func clientAlive(v *dsys.View, client int) bool {
	for _, cl := range v.Clients {
		if cl == client {
			return true
		}
	}
	return false
}

// Decide implements dsys.Policy.
func (a *adversary) Decide(v *dsys.View) dsys.Decision {
	r := a.rates
	roll := a.rng.Float64()
	cum := r.CrashObject
	switch {
	case roll < cum:
		if cands := a.faultCandidates(); len(cands) > 0 {
			obj := cands[a.rng.Intn(len(cands))]
			a.crashed[obj] = true
			a.note(v.Step, dsys.TraceCrash, obj, -1)
			return dsys.Decision{Kind: dsys.KindCrashObject, Object: obj}
		}
	case roll < cum+r.SuspendObject:
		if cands := a.faultCandidates(); len(cands) > 0 {
			obj := cands[a.rng.Intn(len(cands))]
			a.suspended[obj] = true
			a.note(v.Step, dsys.TraceSuspend, obj, -1)
			return dsys.Decision{Kind: dsys.KindSuspendObject, Object: obj}
		}
	case roll < cum+r.SuspendObject+r.ResumeObject:
		if sus := a.suspendedList(); len(sus) > 0 {
			obj := sus[a.rng.Intn(len(sus))]
			delete(a.suspended, obj)
			a.note(v.Step, dsys.TraceResume, obj, -1)
			return dsys.Decision{Kind: dsys.KindResumeObject, Object: obj}
		}
	case roll < cum+r.SuspendObject+r.ResumeObject+r.CrashClient:
		if a.clientCrashes < r.MaxClientCrashes {
			cands := make([]int, 0, len(v.Clients))
			for _, cl := range v.Clients {
				if !a.immortal[cl] {
					cands = append(cands, cl)
				}
			}
			if len(cands) > 0 {
				client := cands[a.rng.Intn(len(cands))]
				a.clientCrashes++
				a.note(v.Step, dsys.TraceClientCrash, -1, client)
				return dsys.Decision{Kind: dsys.KindCrashClient, Client: client}
			}
		}
	default:
		if d, ok := a.controllerDecision(v, roll-cum-r.SuspendObject-r.ResumeObject-r.CrashClient); ok {
			return d
		}
	}
	return a.scheduleMove(v)
}

// controllerDecision rolls the reconfiguration-control moves. A start-move or
// resume-controller decision mutates the shared controller state and reports
// !ok so the scheduler still makes an ordinary move this step; a
// crash-controller decision is a real dsys client crash.
func (a *adversary) controllerDecision(v *dsys.View, roll float64) (dsys.Decision, bool) {
	r := a.rates
	if a.ctrl == nil || roll < 0 {
		return dsys.Decision{}, false
	}
	switch {
	case roll < r.StartMove:
		if a.ctrl.release() {
			a.note(v.Step, KindStartMove, -1, -1)
		}
	case roll < r.StartMove+r.CrashController:
		// Only mid-move (the interesting interleavings are crashes between
		// migration steps), only while a standby remains, and only if the
		// active incarnation is still a live task.
		if a.moveInFlight != nil && a.moveInFlight() {
			if client, ok := a.ctrl.crashActive(func(id int) bool { return clientAlive(v, id) }); ok {
				a.note(v.Step, KindCrashController, -1, client)
				return dsys.Decision{Kind: dsys.KindCrashClient, Client: client}, true
			}
		}
	case roll < r.StartMove+r.CrashController+r.ResumeController:
		if client, ok := a.ctrl.resumeNext(); ok {
			a.note(v.Step, KindResumeController, -1, client)
		}
	}
	return dsys.Decision{}, false
}

// scheduleMove is the ordinary scheduling move: uniformly random among ready
// clients and applicable pending RMWs — the random delay/reorder of the
// environment.
func (a *adversary) scheduleMove(v *dsys.View) dsys.Decision {
	type move struct {
		kind   dsys.DecisionKind
		index  int
		ticket int64
	}
	moves := make([]move, 0, len(v.Ready)+len(v.Pending))
	for _, rc := range v.Ready {
		moves = append(moves, move{kind: dsys.KindRun, ticket: rc.Ticket})
	}
	for _, pd := range v.Pending {
		if pd.ObjectCrashed || pd.ObjectSuspended || pd.ObjectRetired {
			continue
		}
		moves = append(moves, move{kind: dsys.KindApply, index: pd.Index})
	}
	if len(moves) == 0 {
		// Everything schedulable is behind a suspension: resume one object
		// rather than pinning the run (the adversary must stay fair to
		// correct processes for liveness-oriented exploration).
		if sus := a.suspendedList(); len(sus) > 0 {
			obj := sus[0]
			delete(a.suspended, obj)
			a.note(v.Step, dsys.TraceResume, obj, -1)
			return dsys.Decision{Kind: dsys.KindResumeObject, Object: obj}
		}
		return dsys.Decision{Kind: dsys.KindStall}
	}
	m := moves[a.rng.Intn(len(moves))]
	return dsys.Decision{Kind: m.kind, PendingIndex: m.index, Ticket: m.ticket}
}
