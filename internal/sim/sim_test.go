package sim

import (
	"fmt"
	"strings"
	"testing"

	"spacebounds/internal/history"
	"spacebounds/internal/value"
)

// tinyConfig keeps unit-test runs fast while still exercising faults.
func tinyConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Shards:       []ShardPlan{{Provider: "adaptive"}, {Provider: "abd"}},
		Clients:      3,
		OpsPerClient: 3,
	}
}

func TestRunIsDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		a, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints diverge:\n%s\n%s", seed, a.Fingerprint, b.Fingerprint)
		}
		if a.Steps != b.Steps || a.Reason != b.Reason {
			t.Fatalf("seed %d: steps/reason diverge: %d/%s vs %d/%s", seed, a.Steps, a.Reason, b.Steps, b.Reason)
		}
		if len(a.Verdicts) != len(b.Verdicts) {
			t.Fatalf("seed %d: verdict counts diverge", seed)
		}
		for i := range a.Verdicts {
			if (a.Verdicts[i].Err == nil) != (b.Verdicts[i].Err == nil) {
				t.Fatalf("seed %d: verdict %d diverges", seed, i)
			}
		}
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	a, err := Run(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints; the explorer is not exploring")
	}
}

func TestReplayMatchesAndDetectsDivergence(t *testing.T) {
	cfg := tinyConfig(99)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(cfg, res.Fingerprint); err != nil {
		t.Fatalf("replay of the same seed must reproduce the fingerprint: %v", err)
	}
	other := cfg
	other.Seed = 100
	if _, err := Replay(other, res.Fingerprint); err == nil {
		t.Fatal("replay with a different seed must report divergence")
	}
}

func TestRunsAreCheckedCleanAcrossProviders(t *testing.T) {
	// All four providers must satisfy their claimed conditions across a seed
	// sweep with the standard adversarial mix. This is the in-test version of
	// the CI soak.
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	failures, err := Explore(Config{Clients: 2, OpsPerClient: 3}, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("seed %d failed:\n%s", f.Seed, FormatFailure(f))
	}
}

func TestSequentialConfigurationIsLinearizable(t *testing.T) {
	// One client per shard: operations are sequential, so regularity
	// coincides with atomicity and the Wing&Gong checker must pass.
	failures, err := Explore(Config{Clients: 1, OpsPerClient: 5, CheckLinearizable: true}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("sequential seed %d failed:\n%s", f.Seed, FormatFailure(f))
	}
}

func TestFaultsAreInjected(t *testing.T) {
	// Across a seed range the adversary must actually exercise its powers.
	sawObjectFault, sawClientCrash := false, false
	for seed := int64(1); seed <= 20 && !(sawObjectFault && sawClientCrash); seed++ {
		res, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.CrashedObjects) > 0 || len(res.SuspendedObjects) > 0 {
			sawObjectFault = true
		}
		if len(res.CrashedClients) > 0 {
			sawClientCrash = true
		}
	}
	if !sawObjectFault {
		t.Error("no object was ever crashed or suspended across 20 seeds")
	}
	if !sawClientCrash {
		t.Error("no client was ever crashed across 20 seeds")
	}
}

// plantStaleRead injects a read that returns the value of an overwritten
// write with an interval that cleanly follows both writes — a regularity
// violation slipped in behind the checker, as if the runtime had returned a
// stale value.
func plantStaleRead(t *testing.T, h *history.History) *history.History {
	t.Helper()
	writes := h.Writes()
	var w1 *history.Op
	for _, a := range writes {
		for _, b := range writes {
			if a != b && a.Completed() && b.Completed() && a.Returned < b.Invoked {
				w1 = a // overwritten by b; its value is stale after b returns
			}
		}
	}
	if w1 == nil {
		t.Skip("history has no two sequential completed writes")
	}
	last := h.Ops[len(h.Ops)-1]
	stale := &history.Op{
		ID:       last.ID + 1,
		Client:   9999,
		Kind:     history.Read,
		Value:    w1.Value,
		Invoked:  last.Returned + 10,
		Returned: last.Returned + 11,
	}
	ops := append(append([]*history.Op(nil), h.Ops...), stale)
	return &history.History{V0: h.V0, Ops: ops}
}

func TestPlantedViolationIsCaughtAndShrunk(t *testing.T) {
	// Find a seed whose adaptive shard has two sequential writes, plant a
	// stale read behind the checker, and require detection plus a shrunken
	// reproducer of at most 10 events (the acceptance bound; greedy
	// minimization typically gets to 1-3).
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		v := res.Verdicts[0]
		if v.Err != nil {
			t.Fatalf("seed %d: clean run expected, got %v", seed, v.Err)
		}
		if !hasSequentialWrites(v.History) {
			continue
		}
		tampered := plantStaleRead(t, v.History)
		err = history.CheckStrongRegularity(tampered)
		if err == nil {
			t.Fatalf("seed %d: planted stale read not caught", seed)
		}
		shrunk := ShrinkHistory(tampered, history.CheckStrongRegularity)
		if n := len(shrunk.Ops); n > 10 {
			t.Fatalf("seed %d: shrunken history has %d events, want <= 10", seed, n)
		}
		if history.CheckStrongRegularity(shrunk) == nil {
			t.Fatalf("seed %d: shrunken history no longer fails", seed)
		}
		return
	}
	t.Fatal("no seed produced two sequential writes to tamper with")
}

func TestShrinkKeepsPassingHistoriesIntact(t *testing.T) {
	v0 := value.Zero(4)
	h := &history.History{V0: v0, Ops: []*history.Op{
		{ID: 1, Client: 1, Kind: history.Write, Value: value.Sequenced(1, 1, 4), Invoked: 1, Returned: 2},
	}}
	if got := ShrinkHistory(h, history.CheckStrongRegularity); len(got.Ops) != 1 {
		t.Fatalf("passing history must be returned unchanged, got %d ops", len(got.Ops))
	}
}

func TestFormatFailureMentionsSeedAndShrunkHistory(t *testing.T) {
	// Build a synthetic failing result through the public path: tamper with a
	// run's history and re-verify through the same code Run uses.
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		v := res.Verdicts[0]
		if !hasSequentialWrites(v.History) {
			continue
		}
		tampered := plantStaleRead(t, v.History)
		bad := verdict(v.Shard, v.Provider, v.Condition, v.Lineage, tampered, history.CheckStrongRegularity)
		if bad.Err == nil {
			t.Fatal("tampered history must fail")
		}
		res.Verdicts = []ShardVerdict{bad}
		out := FormatFailure(res)
		for _, want := range []string{fmt.Sprintf("seed %d", seed), "minimal failing history", v.Shard} {
			if !strings.Contains(out, want) {
				t.Fatalf("failure report missing %q:\n%s", want, out)
			}
		}
		return
	}
	t.Fatal("no seed produced two sequential writes to tamper with")
}

// hasSequentialWrites reports whether the history has two completed writes
// separated in real time (a prerequisite for planting a stale read).
func hasSequentialWrites(h *history.History) bool {
	writes := h.Writes()
	for _, a := range writes {
		for _, b := range writes {
			if a != b && a.Completed() && b.Completed() && a.Returned < b.Invoked {
				return true
			}
		}
	}
	return false
}
