// Package sim is a deterministic fault-schedule simulator for the register
// emulations: a seeded explorer that drives the controlled-mode dsys runtime
// with a PRNG-derived adversarial policy — randomly delaying and reordering
// pending RMWs, crashing clients mid-round, and suspending or crashing up to
// f base objects per shard — while recording every invocation and response
// into an operation history stamped with the scheduler's logical clock. After
// the run, each shard's history is checked against the consistency condition
// its emulation claims (strong regularity for the regular registers, strong
// safety for the safe register, linearizability for configurations known to
// be atomic), and a failing run auto-shrinks its history to a minimal
// violating sub-history.
//
// With a Reconfig plan, the simulator additionally drives dynamic
// reconfiguration as first-class adversary decisions: the scheduling policy
// decides when each planned split, drain or merge starts (KindStartMove),
// when the migration controller crashes between migration steps
// (KindCrashController), and when a standby controller takes the interrupted
// move over and re-drives it from its step ledger (KindResumeController,
// with a deterministic takeover backstop). The clients route every operation
// through the epoch-stamped table (yield-retrying while a write's target is
// still seeding), and each surviving shard's history is stitched across its
// migration lineage before checking; a merge's value-ordering loser becomes
// a pruned branch, checked as its own terminated register. After the run the
// simulator additionally asserts that reconfiguration resolved: no move left
// in flight and no route left Seeding or Draining — the crash-resumability
// claim, falsified if any controller-crash interleaving can strand a
// migration.
//
// With an AutoReshard plan, the scripted move schedule is replaced by the
// self-driving topology controller: the workload is shaped (a hot-key storm,
// a mid-run skew flip, shards going cold), a spared controller task samples
// per-shard completed-op counts on the deterministic schedule and feeds them
// to the autoshard planner, and the emitted splits, merges and drains run
// through the same coordinator — under the same fault adversary. The run-end
// assertions are the convergence claim: the topology settles (no move in
// flight, no route mid-lifecycle), every history still checks out, and the
// controller stayed within its move budget.
//
// Everything the run does is a pure function of Config (the seed in
// particular): Run twice with the same Config and the histories, verdicts and
// Fingerprint are identical, which is what makes failures replayable byte for
// byte (Replay) and explorable at scale in CI (Explore across seed ranges).
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"spacebounds/internal/autoshard"
	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"      // register providers
	_ "spacebounds/internal/register/adaptive" // …
	_ "spacebounds/internal/register/ecreg"    // …
	_ "spacebounds/internal/register/safereg"  // …
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// ShardPlan configures one simulated shard.
type ShardPlan struct {
	// Provider is the register provider name ("adaptive", "abd", "ecreg",
	// "safereg").
	Provider string
	// F and K are the shard's fault tolerance and decode threshold; K is
	// forced to 1 for abd. Zero values default to F=1 and K=2 (K=1 for abd).
	F, K int
	// DataLen is the value size in bytes (default 8; small values keep
	// exploration fast without changing the scheduling space).
	DataLen int
}

// ReconfigPlan enables reconfiguration as adversary decisions: the policy
// releases the planned moves at PRNG-chosen scheduling points
// (KindStartMove), the controller executes them against seeded-random active
// shards (successors of earlier moves included, so lineages chain), and —
// with ControllerCrashes > 0 — the policy crashes the controller between
// migration steps and later activates a standby that resumes the interrupted
// move from its ledger.
type ReconfigPlan struct {
	// Splits is the number of shard splits to perform.
	Splits int
	// Drains is the number of shard drains (fresh-region migrations).
	Drains int
	// Merges is the number of shard merges (two sources into one successor).
	Merges int
	// ControllerCrashes caps the adversary's KindCrashController decisions;
	// ControllerCrashes+1 controller incarnations are spawned so every
	// interrupted move has a resumer.
	ControllerCrashes int
	// Sabotage makes the first Sabotage applied moves fail a PRNG-chosen
	// migration step with a genuine (non-interruption) error, forcing their
	// drivers onto the abort path. Combined with ControllerCrashes this is
	// what puts controller crashes *inside* rollbacks on the schedule: the
	// move stays in flight while aborting, so KindCrashController can land on
	// the rollback's checkpoints and a standby must resume the abort from the
	// ledger.
	Sabotage int
}

// Enabled reports whether any reconfiguration move is planned.
func (p ReconfigPlan) Enabled() bool { return p.Splits > 0 || p.Drains > 0 || p.Merges > 0 }

// Config describes one deterministic simulation run.
type Config struct {
	// Seed drives every random choice: the adversary's schedule and faults
	// and the clients' operation mixes.
	Seed int64
	// Shards lists the simulated shards (default: one shard per provider).
	Shards []ShardPlan
	// Clients is the number of client tasks per shard (default 3).
	Clients int
	// OpsPerClient is the number of operations each client attempts
	// (default 4).
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (default 0.4).
	ReadFraction float64
	// Faults are the adversary's fault rates (zero value: standard mix).
	Faults FaultRates
	// Reconfig schedules dynamic-reconfiguration moves mid-run (zero value:
	// topology fixed, exactly the pre-reconfiguration simulator).
	Reconfig ReconfigPlan
	// AutoReshard replaces the scripted move plan with the self-driving
	// topology controller reacting to a shaped workload (zero value:
	// disabled). Mutually exclusive with Reconfig.
	AutoReshard AutoReshardPlan
	// MaxSteps bounds scheduling decisions as a runaway backstop
	// (default 200000).
	MaxSteps int
	// CheckLinearizable additionally checks every shard's history for
	// linearizability. Only sound for configurations that promise atomicity —
	// the sweep uses it with Clients=1, where operations are sequential and
	// regularity coincides with atomicity.
	CheckLinearizable bool
}

// DefaultProviders are the register providers the default config and the
// exploration sweeps cover.
var DefaultProviders = []string{"adaptive", "abd", "ecreg", "safereg"}

func (c Config) withDefaults() Config {
	if len(c.Shards) == 0 {
		for _, p := range DefaultProviders {
			c.Shards = append(c.Shards, ShardPlan{Provider: p})
		}
	}
	shards := append([]ShardPlan(nil), c.Shards...)
	for i := range shards {
		s := &shards[i]
		if s.F == 0 {
			s.F = 1
		}
		if s.K == 0 {
			s.K = 2
		}
		if s.Provider == "abd" {
			s.K = 1
		}
		if s.DataLen == 0 {
			s.DataLen = 8
		}
	}
	c.Shards = shards
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 4
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.4
	}
	c.Faults = c.Faults.withDefaults(c.Clients * len(c.Shards))
	if c.Reconfig.Enabled() {
		c.Faults = c.Faults.withControllerDefaults(c.Reconfig.ControllerCrashes)
	}
	if c.AutoReshard.Enabled() {
		c.AutoReshard = c.AutoReshard.withDefaults()
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200000
	}
	return c
}

// ShardVerdict is the checker outcome for one shard.
type ShardVerdict struct {
	// Shard and Provider identify the emulation.
	Shard, Provider string
	// Condition names the consistency condition checked.
	Condition string
	// Lineage is the migration ancestry the history was stitched across
	// (just the shard itself for an unreconfigured run).
	Lineage []string
	// History is the shard's recorded (lineage-stitched) history.
	History *history.History
	// Err is nil when the condition holds; otherwise the violation.
	Err error
	// Shrunk is the auto-shrunk minimal violating sub-history (violations
	// only).
	Shrunk *history.History
}

// Result is the outcome of one deterministic run.
type Result struct {
	Seed             int64
	Steps            int
	Reason           dsys.IdleReason
	CrashedObjects   []int
	SuspendedObjects []int
	CrashedClients   []int
	// Faults is the adversary's fault schedule in injection order (controller
	// crash/resume and move-release decisions included).
	Faults []FaultEvent
	// Reconfigs is the applied reconfiguration schedule (completed moves with
	// their epochs and logical times), empty without a Reconfig plan.
	Reconfigs []reconfig.Event
	// Moves is the full reconfiguration ledger: every move's step record,
	// completed, aborted and (if the run got stuck) in-flight ones.
	Moves []reconfig.MoveState
	// ControllerCrashes / ControllerResumes count the adversary's controller
	// crash and takeover decisions (backstop promotions included).
	ControllerCrashes, ControllerResumes int
	// Autoshard holds the autoshard controller's planner counters (zero
	// without an AutoReshard plan).
	Autoshard autoshard.Stats
	// RouteLeaks lists routes left mid-lifecycle (Seeding or Draining) at the
	// end of the run; crash-resumable reconfiguration promises there are
	// none.
	RouteLeaks []string
	// Verdicts holds one entry per shard per checked condition.
	Verdicts []ShardVerdict
	// Fingerprint is a hash over histories, fault schedule, reconfigurations,
	// the move ledger and verdicts; two runs of the same Config must produce
	// the same fingerprint.
	Fingerprint string
}

// Violations returns the verdicts whose condition failed.
func (r *Result) Violations() []ShardVerdict {
	var out []ShardVerdict
	for _, v := range r.Verdicts {
		if v.Err != nil {
			out = append(out, v)
		}
	}
	return out
}

// Unresolved returns the moves the run left in flight: neither completed nor
// cleanly aborted.
func (r *Result) Unresolved() []reconfig.MoveState {
	var out []reconfig.MoveState
	for _, m := range r.Moves {
		if m.InFlight() {
			out = append(out, m)
		}
	}
	return out
}

// Failed reports whether any checked condition was violated, a route was
// left mid-lifecycle, or a move was left unresolved.
func (r *Result) Failed() bool {
	return len(r.Violations()) > 0 || len(r.RouteLeaks) > 0 || len(r.Unresolved()) > 0
}

// conditionFor maps a provider to the consistency condition its emulation
// claims (and the paper proves): the adaptive algorithm and the replicated /
// coded baselines are strongly regular; the Appendix E register is only safe.
func conditionFor(provider string) (string, func(*history.History) error) {
	if provider == "safereg" {
		return "strong safety", history.CheckStrongSafety
	}
	return "strong regularity", history.CheckStrongRegularity
}

// clientStride spaces the client IDs of consecutive shards. Run rejects
// configurations with more clients per shard, which would let two shards'
// IDs collide (and a KindCrashClient decision kill both tasks at once).
const clientStride = 100

// clientID assigns globally unique client IDs: shards are strided so that a
// client's ID also identifies its home shard in histories and timestamps.
func clientID(shardIdx, client int) int { return shardIdx*clientStride + client + 1 }

// simRecorders lazily creates one history recorder per shard name, all on the
// scheduler's logical clock; shards installed by reconfiguration mid-run get
// theirs on first use. In controlled mode only one task runs at a time, so
// the mutex serializes nothing scheduling-relevant — it exists for the race
// detector and the final read from the orchestrating goroutine.
type simRecorders struct {
	mu    sync.Mutex
	clock history.Clock
	recs  map[string]*history.Recorder
}

func (rs *simRecorders) forShard(name string) *history.Recorder {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.recs[name]
	if !ok {
		rec = history.NewRecorder()
		rec.SetClock(rs.clock)
		rs.recs[name] = rec
	}
	return rec
}

func (rs *simRecorders) get(name string) *history.Recorder {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.recs[name]
}

// Run executes one deterministic simulation. The returned error covers
// configuration problems only; consistency violations are reported in the
// Result so that callers can replay and shrink them.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients >= clientStride {
		return nil, fmt.Errorf("sim: at most %d clients per shard (got %d): shard client IDs are strided by %d",
			clientStride-1, cfg.Clients, clientStride)
	}
	if cfg.Reconfig.Enabled() && cfg.AutoReshard.Enabled() {
		return nil, fmt.Errorf("sim: Reconfig and AutoReshard are mutually exclusive — both would drive the coordinator")
	}
	specs := make([]shard.Spec, 0, len(cfg.Shards))
	for i, p := range cfg.Shards {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d-%s", i, p.Provider),
			Algorithm: p.Provider,
			Config:    register.Config{F: p.F, K: p.K, DataLen: p.DataLen},
		})
	}
	adv := newAdversary(cfg.Seed, cfg.Faults)
	set, err := shard.New(specs,
		dsys.WithControlledMode(),
		dsys.WithPolicy(adv),
		dsys.WithMaxSteps(cfg.MaxSteps),
		dsys.WithoutAccounting(),
	)
	if err != nil {
		return nil, err
	}
	cluster := set.Cluster()
	defer cluster.Close()

	// The adversary reads the (possibly changing) shard layout through the
	// router, so its fault budget follows reconfiguration.
	adv.bind(func() []region {
		rr := set.Router().Regions()
		out := make([]region, 0, len(rr))
		for _, r := range rr {
			out = append(out, region{base: r.Base, span: r.Span, f: r.F})
		}
		return out
	})

	recorders := &simRecorders{clock: cluster.LogicalTime, recs: make(map[string]*history.Recorder)}
	for _, sh := range set.Shards() {
		recorders.forShard(sh.Name)
	}

	var completedOps atomic.Int64
	var doneClients atomic.Int64
	totalClients := cfg.Clients * len(cfg.Shards)
	co := reconfig.NewCoordinator(set)

	// Spawn every client before Start so tickets — and therefore the whole
	// schedule — are assigned deterministically. Without a reconfig plan the
	// clients are pinned to their home shard exactly as before; with one they
	// route every operation, because their home shard may be split, merged or
	// drained under them mid-run.
	var handles []*dsys.TaskHandle
	var counts *opCounts
	if cfg.AutoReshard.Enabled() {
		counts = newOpCounts()
	}
	for si, sh := range set.Shards() {
		for cl := 0; cl < cfg.Clients; cl++ {
			id := clientID(si, cl)
			switch {
			case cfg.AutoReshard.Enabled():
				pick := cfg.AutoReshard.picker(sh.Name, cfg.OpsPerClient)
				handles = append(handles, cluster.SpawnScoped(id, 0, cluster.N(),
					routedClientScript(cfg, set, recorders, &completedOps, &doneClients, id, counts, pick)))
			case cfg.Reconfig.Enabled():
				handles = append(handles, cluster.SpawnScoped(id, 0, cluster.N(),
					routedClientScript(cfg, set, recorders, &completedOps, &doneClients, id, nil, defaultKeyMix(sh.Name))))
			default:
				handles = append(handles, cluster.SpawnScoped(id, sh.Base, sh.Span,
					clientScript(cfg, sh.Reg, recorders.forShard(sh.Name), &completedOps, &doneClients, id)))
			}
		}
	}
	var planner *autoshard.Planner
	if cfg.AutoReshard.Enabled() {
		// The controller task is spared from generic client crashes and runs
		// on the schedule like any other task; its planner decisions are a
		// pure function of the op counts the schedule produced.
		planner, err = autoshard.NewPlanner(cfg.AutoReshard.plannerConfig())
		if err != nil {
			return nil, err
		}
		adv.spare(autoshardClientID)
		done := workloadDoneFunc(cluster, &doneClients, totalClients)
		handles = append(handles, cluster.SpawnScoped(autoshardClientID, 0, cluster.N(),
			autoshardScript(set, co, planner, counts, done)))
	}
	var ctrl *controllerState
	if cfg.Reconfig.Enabled() {
		// ControllerCrashes+1 incarnations, spawned up front so tickets stay
		// deterministic: incarnation 0 starts on duty, the rest park until the
		// adversary (or the takeover backstop) promotes them. The generic
		// client-crash move spares them all; KindCrashController is the only
		// way a controller dies.
		ctrl = newControllerState(cfg.Seed, cfg.Reconfig)
		done := workloadDoneFunc(cluster, &doneClients, totalClients)
		for i := 0; i < cfg.Reconfig.ControllerCrashes+1; i++ {
			id := reconfigClientID + i
			adv.spare(id)
			handles = append(handles, cluster.SpawnScoped(id, 0, cluster.N(),
				controllerScript(set, co, ctrl, i, done)))
		}
		adv.bindController(ctrl, func() bool { return co.InFlight() != nil })
	}
	cluster.Start()
	reason := cluster.WaitIdle()

	res := &Result{
		Seed:             cfg.Seed,
		Steps:            cluster.Steps(),
		Reason:           reason,
		CrashedObjects:   cluster.CrashedObjects(),
		SuspendedObjects: cluster.SuspendedObjects(),
		CrashedClients:   cluster.CrashedClients(),
		Faults:           adv.events,
		Reconfigs:        co.Events(),
	}
	if ctrl != nil {
		res.ControllerCrashes, res.ControllerResumes = ctrl.counters()
	}
	// Crash-resumable reconfiguration promises that the run ends with every
	// route settled: a leak here means some controller-crash interleaving
	// stranded a migration.
	for _, name := range set.Router().Names() {
		if st := set.Router().RouteOf(name).State(); st == shard.RouteSeeding || st == shard.RouteDraining {
			leak := fmt.Sprintf("%s:%v", name, st)
			if readers, writers := set.Router().Pins(name); len(readers) > 0 || len(writers) > 0 {
				// Name the clients a stalled drain is waiting on — the first
				// question a leak triage asks.
				leak += fmt.Sprintf(" (read pins %v, write pins %v)", readers, writers)
			}
			res.RouteLeaks = append(res.RouteLeaks, leak)
		}
	}
	cluster.Close()
	for _, h := range handles {
		_ = h.Wait() // crashed clients report ErrHalted; that is their crash
	}
	res.Moves = co.Ledger() // after Wait: interruption flags are settled
	if planner != nil {
		res.Autoshard = planner.Stats()
	}

	// One verdict per surviving leaf shard, its history stitched across its
	// migration lineage (for an unreconfigured run the lineage is the shard
	// itself and stitching is the identity) — plus one per pruned merge
	// branch, whose history ends at the merge that discarded its value.
	checkNames := set.Router().LeafNames()
	checkNames = append(checkNames, set.Router().PrunedBranches()...)
	for _, name := range checkNames {
		sh := set.Shard(name)
		v0 := value.Zero(sh.Reg.Config().DataLen)
		lineage := set.Lineage(name)
		var chain []*history.History
		for _, ancestor := range lineage {
			if rec := recorders.get(ancestor); rec != nil {
				chain = append(chain, rec.History(v0))
			}
		}
		h := history.Merge(v0, chain...)
		provider := sh.Algorithm
		cond, check := conditionFor(provider)
		res.Verdicts = append(res.Verdicts, verdict(name, provider, cond, lineage, h, check))
		if cfg.CheckLinearizable {
			res.Verdicts = append(res.Verdicts,
				verdict(name, provider, "linearizability", lineage, h, history.CheckLinearizability))
		}
	}
	res.Fingerprint = fingerprint(res)
	return res, nil
}

// verdict checks one condition over one history, auto-shrinking violations.
func verdict(name, provider, cond string, lineage []string, h *history.History, check func(*history.History) error) ShardVerdict {
	v := ShardVerdict{Shard: name, Provider: provider, Condition: cond, Lineage: lineage, History: h, Err: check(h)}
	if v.Err != nil {
		v.Shrunk = ShrinkHistory(h, check)
	}
	return v
}

// clientScript builds one fixed-shard client task (the pre-reconfiguration
// behavior): a deterministic per-client mix of writes of globally unique
// values and reads, recorded in the shard's history. Operation errors (a read
// starved by concurrent writes, a halted cluster after a crash) leave the
// operation incomplete in the history, which is exactly how the checkers
// treat an operation whose response never arrived.
func clientScript(cfg Config, reg register.Register, rec *history.Recorder, completed, done *atomic.Int64, id int) func(*dsys.ClientHandle) error {
	dataLen := reg.Config().DataLen
	return func(h *dsys.ClientHandle) error {
		defer done.Add(1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*1000003))
		seq := 0
		for i := 0; i < cfg.OpsPerClient; i++ {
			if rng.Float64() < cfg.ReadFraction {
				op := rec.BeginRead(id)
				v, err := reg.Read(h)
				if err != nil {
					if errors.Is(err, dsys.ErrHalted) {
						return nil
					}
					continue
				}
				rec.EndRead(op, v)
				completed.Add(1)
			} else {
				seq++
				v := value.Sequenced(id, seq, dataLen)
				op := rec.BeginWrite(id, v)
				if err := reg.Write(h, v); err != nil {
					if errors.Is(err, dsys.ErrHalted) {
						return nil
					}
					continue
				}
				rec.EndWrite(op)
				completed.Add(1)
			}
		}
		return nil
	}
}

// defaultKeyMix is the routed clients' standard key distribution: favor keys
// that route near the home shard but roam the whole keyspace, so splits
// re-partition real traffic.
func defaultKeyMix(home string) func(*rand.Rand, int) string {
	keys := []string{home, home, KeySpaceName(0), KeySpaceName(1), KeySpaceName(2), KeySpaceName(3)}
	return func(rng *rand.Rand, _ int) string { return keys[rng.Intn(len(keys))] }
}

// routedClientScript builds one routing client task for reconfiguration and
// autoshard runs: every operation resolves its key — chosen by pick, which
// encodes the workload shape — through the epoch-stamped table, pins the
// route, and records its history on the shard it actually executed on. Writes
// whose target is a still-seeding successor yield to the scheduler and retry
// — the controlled-mode equivalent of the live path's blocking acquire. When
// counts is non-nil, every completed operation is tallied against the shard
// that served it; the autoshard controller samples those tallies.
func routedClientScript(cfg Config, set *shard.Set, recs *simRecorders, completed, done *atomic.Int64, id int, counts *opCounts, pick func(*rand.Rand, int) string) func(*dsys.ClientHandle) error {
	return func(h *dsys.ClientHandle) error {
		defer done.Add(1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*1000003))
		rt := set.Router()
		seq := 0
		for i := 0; i < cfg.OpsPerClient; i++ {
			key := pick(rng, i)
			if rng.Float64() < cfg.ReadFraction {
				ref, fb, err := rt.AcquireRead(id, key)
				if err != nil {
					return nil // router closed with the cluster
				}
				// A dual-epoch read is recorded in the history of the register
				// that answered it: invocations are recorded against both
				// epochs, and the loser stays incomplete (which constrains no
				// checker). This matters for merges — a fallback read answered
				// by the value-ordering loser belongs to the pruned branch's
				// history, not to the successor's stitched lineage.
				rec := recs.forShard(ref.Shard().Name)
				op := rec.BeginRead(id)
				var fbRec *history.Recorder
				var fbOp *history.Op
				if fb != nil {
					fbRec = recs.forShard(fb.Shard().Name)
					fbOp = fbRec.BeginRead(id)
				}
				v, fell, err := shard.ReadRouted(h, ref, fb)
				rt.ReleaseRead(ref, fb, id)
				if err != nil {
					if errors.Is(err, dsys.ErrHalted) {
						return nil
					}
					continue
				}
				served := ref.Shard().Name
				if fell {
					fbRec.EndRead(fbOp, v)
					served = fb.Shard().Name
				} else {
					rec.EndRead(op, v)
				}
				completed.Add(1)
				if counts != nil {
					counts.add(served)
				}
				continue
			}
			var ref *shard.Route
			for {
				r, held, err := rt.TryAcquireWrite(id, key)
				if err != nil {
					return nil
				}
				if !held {
					ref = r
					break
				}
				// The target is seeding: give the migration writer scheduler
				// time and re-route (the next resolve may land on the opened
				// successor).
				if err := h.Yield(); err != nil {
					return nil
				}
			}
			sh := ref.Shard()
			seq++
			v := value.Sequenced(id, seq, sh.Reg.Config().DataLen)
			rec := recs.forShard(sh.Name)
			op := rec.BeginWrite(id, v)
			sub, err := h.Sub(sh.Base, sh.Span)
			if err == nil {
				err = sh.Reg.Write(sub, v)
			}
			rt.ReleaseWrite(ref, id)
			if err != nil {
				if errors.Is(err, dsys.ErrHalted) {
					return nil
				}
				continue
			}
			rec.EndWrite(op)
			completed.Add(1)
			if counts != nil {
				counts.add(sh.Name)
			}
		}
		return nil
	}
}

// KeySpaceName returns the i-th shared key of the reconfiguration keyspace.
func KeySpaceName(i int) string { return fmt.Sprintf("key-%d", i) }

// fingerprint hashes everything observable about the run: per-shard histories
// (operations with their logical intervals and values), the fault schedule,
// the reconfiguration schedule and full move ledger, the controller
// crash/takeover counters, route leaks, the scheduling step count and idle
// reason, and every checker verdict.
func fingerprint(r *Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d reason=%s\n", r.Steps, r.Reason)
	fmt.Fprintf(h, "crashed=%v suspended=%v clients=%v\n", r.CrashedObjects, r.SuspendedObjects, r.CrashedClients)
	fmt.Fprintf(h, "ctrl crashes=%d resumes=%d leaks=%v\n", r.ControllerCrashes, r.ControllerResumes, r.RouteLeaks)
	for _, ev := range r.Faults {
		fmt.Fprintf(h, "fault %s\n", ev)
	}
	for _, ev := range r.Reconfigs {
		fmt.Fprintf(h, "reconfig %s\n", ev)
	}
	for _, m := range r.Moves {
		fmt.Fprintf(h, "ledger %s\n", m)
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(h, "shard %s lineage %v condition %s err=%v\n", v.Shard, v.Lineage, v.Condition, v.Err)
		for _, op := range v.History.Ops {
			fmt.Fprintf(h, "op c%d #%d %v @%d-%d ", op.Client, op.ID, op.Kind, op.Invoked, op.Returned)
			h.Write(op.Value.Bytes())
			fmt.Fprintln(h)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Replay re-executes a seed's schedule and verifies that it reproduces the
// given fingerprint byte for byte. It is how a failure found by an
// exploration sweep is turned into a deterministic reproducer: persist the
// failing Config (usually just the seed) and fingerprint, then Replay in a
// test or debugger as often as needed.
func Replay(cfg Config, wantFingerprint string) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if wantFingerprint != "" && res.Fingerprint != wantFingerprint {
		return res, fmt.Errorf("sim: replay of seed %d diverged: fingerprint %s, want %s",
			cfg.Seed, res.Fingerprint, wantFingerprint)
	}
	return res, nil
}

// Explore runs n seeds starting at baseSeed and returns the failing results.
func Explore(cfg Config, baseSeed int64, n int) ([]*Result, error) {
	var failures []*Result
	for i := 0; i < n; i++ {
		cfg.Seed = baseSeed + int64(i)
		res, err := Run(cfg)
		if err != nil {
			return failures, err
		}
		if res.Failed() {
			failures = append(failures, res)
		}
	}
	return failures, nil
}

// FormatFailure renders a failing result as a replayable report: the seed,
// the fault and reconfiguration schedules, and each violation with its
// shrunken history.
func FormatFailure(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d steps, reason %s, fingerprint %s\n", r.Seed, r.Steps, r.Reason, r.Fingerprint)
	if len(r.Faults) > 0 {
		fmt.Fprintf(&b, "fault schedule:\n")
		for _, ev := range r.Faults {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	if len(r.Reconfigs) > 0 {
		fmt.Fprintf(&b, "reconfiguration schedule:\n")
		for _, ev := range r.Reconfigs {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	if len(r.Moves) > 0 {
		fmt.Fprintf(&b, "move ledger (%d controller crashes, %d takeovers):\n", r.ControllerCrashes, r.ControllerResumes)
		for _, m := range r.Moves {
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	for _, leak := range r.RouteLeaks {
		fmt.Fprintf(&b, "route left mid-lifecycle at run end: %s\n", leak)
	}
	for _, m := range r.Unresolved() {
		fmt.Fprintf(&b, "move left unresolved at run end: %s\n", m)
	}
	for _, v := range r.Violations() {
		fmt.Fprintf(&b, "shard %s (%s) violates %s: %v\n", v.Shard, v.Provider, v.Condition, v.Err)
		if len(v.Lineage) > 1 {
			fmt.Fprintf(&b, "history stitched across lineage %v\n", v.Lineage)
		}
		fmt.Fprintf(&b, "minimal failing history (%d of %d events):\n", len(v.Shrunk.Ops), len(v.History.Ops))
		for _, op := range v.Shrunk.Ops {
			fmt.Fprintf(&b, "  %v\n", op)
		}
	}
	return b.String()
}
