// Package sim is a deterministic fault-schedule simulator for the register
// emulations: a seeded explorer that drives the controlled-mode dsys runtime
// with a PRNG-derived adversarial policy — randomly delaying and reordering
// pending RMWs, crashing clients mid-round, and suspending or crashing up to
// f base objects per shard — while recording every invocation and response
// into an operation history stamped with the scheduler's logical clock. After
// the run, each shard's history is checked against the consistency condition
// its emulation claims (strong regularity for the regular registers, strong
// safety for the safe register, linearizability for configurations known to
// be atomic), and a failing run auto-shrinks its history to a minimal
// violating sub-history.
//
// Everything the run does is a pure function of Config (the seed in
// particular): Run twice with the same Config and the histories, verdicts and
// Fingerprint are identical, which is what makes failures replayable byte for
// byte (Replay) and explorable at scale in CI (Explore across seed ranges).
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"      // register providers
	_ "spacebounds/internal/register/adaptive" // …
	_ "spacebounds/internal/register/ecreg"    // …
	_ "spacebounds/internal/register/safereg"  // …
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// ShardPlan configures one simulated shard.
type ShardPlan struct {
	// Provider is the register provider name ("adaptive", "abd", "ecreg",
	// "safereg").
	Provider string
	// F and K are the shard's fault tolerance and decode threshold; K is
	// forced to 1 for abd. Zero values default to F=1 and K=2 (K=1 for abd).
	F, K int
	// DataLen is the value size in bytes (default 8; small values keep
	// exploration fast without changing the scheduling space).
	DataLen int
}

// Config describes one deterministic simulation run.
type Config struct {
	// Seed drives every random choice: the adversary's schedule and faults
	// and the clients' operation mixes.
	Seed int64
	// Shards lists the simulated shards (default: one shard per provider).
	Shards []ShardPlan
	// Clients is the number of client tasks per shard (default 3).
	Clients int
	// OpsPerClient is the number of operations each client attempts
	// (default 4).
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (default 0.4).
	ReadFraction float64
	// Faults are the adversary's fault rates (zero value: standard mix).
	Faults FaultRates
	// MaxSteps bounds scheduling decisions as a runaway backstop
	// (default 200000).
	MaxSteps int
	// CheckLinearizable additionally checks every shard's history for
	// linearizability. Only sound for configurations that promise atomicity —
	// the sweep uses it with Clients=1, where operations are sequential and
	// regularity coincides with atomicity.
	CheckLinearizable bool
}

// DefaultProviders are the register providers the default config and the
// exploration sweeps cover.
var DefaultProviders = []string{"adaptive", "abd", "ecreg", "safereg"}

func (c Config) withDefaults() Config {
	if len(c.Shards) == 0 {
		for _, p := range DefaultProviders {
			c.Shards = append(c.Shards, ShardPlan{Provider: p})
		}
	}
	shards := append([]ShardPlan(nil), c.Shards...)
	for i := range shards {
		s := &shards[i]
		if s.F == 0 {
			s.F = 1
		}
		if s.K == 0 {
			s.K = 2
		}
		if s.Provider == "abd" {
			s.K = 1
		}
		if s.DataLen == 0 {
			s.DataLen = 8
		}
	}
	c.Shards = shards
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 4
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.4
	}
	c.Faults = c.Faults.withDefaults(c.Clients * len(c.Shards))
	if c.MaxSteps == 0 {
		c.MaxSteps = 200000
	}
	return c
}

// ShardVerdict is the checker outcome for one shard.
type ShardVerdict struct {
	// Shard and Provider identify the emulation.
	Shard, Provider string
	// Condition names the consistency condition checked.
	Condition string
	// History is the shard's recorded history.
	History *history.History
	// Err is nil when the condition holds; otherwise the violation.
	Err error
	// Shrunk is the auto-shrunk minimal violating sub-history (violations
	// only).
	Shrunk *history.History
}

// Result is the outcome of one deterministic run.
type Result struct {
	Seed             int64
	Steps            int
	Reason           dsys.IdleReason
	CrashedObjects   []int
	SuspendedObjects []int
	CrashedClients   []int
	// Faults is the adversary's fault schedule in injection order.
	Faults []FaultEvent
	// Verdicts holds one entry per shard per checked condition.
	Verdicts []ShardVerdict
	// Fingerprint is a hash over histories, fault schedule and verdicts; two
	// runs of the same Config must produce the same fingerprint.
	Fingerprint string
}

// Violations returns the verdicts whose condition failed.
func (r *Result) Violations() []ShardVerdict {
	var out []ShardVerdict
	for _, v := range r.Verdicts {
		if v.Err != nil {
			out = append(out, v)
		}
	}
	return out
}

// Failed reports whether any checked condition was violated.
func (r *Result) Failed() bool { return len(r.Violations()) > 0 }

// conditionFor maps a provider to the consistency condition its emulation
// claims (and the paper proves): the adaptive algorithm and the replicated /
// coded baselines are strongly regular; the Appendix E register is only safe.
func conditionFor(provider string) (string, func(*history.History) error) {
	if provider == "safereg" {
		return "strong safety", history.CheckStrongSafety
	}
	return "strong regularity", history.CheckStrongRegularity
}

// clientStride spaces the client IDs of consecutive shards. Run rejects
// configurations with more clients per shard, which would let two shards'
// IDs collide (and a KindCrashClient decision kill both tasks at once).
const clientStride = 100

// clientID assigns globally unique client IDs: shards are strided so that a
// client's ID also identifies its shard in histories and timestamps.
func clientID(shardIdx, client int) int { return shardIdx*clientStride + client + 1 }

// Run executes one deterministic simulation. The returned error covers
// configuration problems only; consistency violations are reported in the
// Result so that callers can replay and shrink them.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients >= clientStride {
		return nil, fmt.Errorf("sim: at most %d clients per shard (got %d): shard client IDs are strided by %d",
			clientStride-1, cfg.Clients, clientStride)
	}
	specs := make([]shard.Spec, 0, len(cfg.Shards))
	for i, p := range cfg.Shards {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d-%s", i, p.Provider),
			Algorithm: p.Provider,
			Config:    register.Config{F: p.F, K: p.K, DataLen: p.DataLen},
		})
	}
	adv := newAdversary(cfg.Seed, cfg.Faults)
	set, err := shard.New(specs,
		dsys.WithControlledMode(),
		dsys.WithPolicy(adv),
		dsys.WithMaxSteps(cfg.MaxSteps),
		dsys.WithoutAccounting(),
	)
	if err != nil {
		return nil, err
	}
	cluster := set.Cluster()
	defer cluster.Close()

	regions := make([]region, 0, len(set.Shards()))
	for i, sh := range set.Shards() {
		regions = append(regions, region{base: sh.Base, span: sh.Span, f: cfg.Shards[i].F})
	}
	adv.bind(regions)

	// One recorder per shard, stamped with the scheduler's logical clock so
	// that operation intervals are a pure function of the schedule.
	recorders := make([]*history.Recorder, len(set.Shards()))
	for i := range recorders {
		recorders[i] = history.NewRecorder()
		recorders[i].SetClock(cluster.LogicalTime)
	}

	// Spawn every client before Start so tickets — and therefore the whole
	// schedule — are assigned deterministically.
	var handles []*dsys.TaskHandle
	for si, sh := range set.Shards() {
		for cl := 0; cl < cfg.Clients; cl++ {
			id := clientID(si, cl)
			handles = append(handles, cluster.SpawnScoped(id, sh.Base, sh.Span,
				clientScript(cfg, sh.Reg, recorders[si], id)))
		}
	}
	cluster.Start()
	reason := cluster.WaitIdle()

	res := &Result{
		Seed:             cfg.Seed,
		Steps:            cluster.Steps(),
		Reason:           reason,
		CrashedObjects:   cluster.CrashedObjects(),
		SuspendedObjects: cluster.SuspendedObjects(),
		CrashedClients:   cluster.CrashedClients(),
		Faults:           adv.events,
	}
	cluster.Close()
	for _, h := range handles {
		_ = h.Wait() // crashed clients report ErrHalted; that is their crash
	}

	for si, sh := range set.Shards() {
		h := recorders[si].History(value.Zero(cfg.Shards[si].DataLen))
		cond, check := conditionFor(cfg.Shards[si].Provider)
		res.Verdicts = append(res.Verdicts, verdict(sh.Name, cfg.Shards[si].Provider, cond, h, check))
		if cfg.CheckLinearizable {
			res.Verdicts = append(res.Verdicts,
				verdict(sh.Name, cfg.Shards[si].Provider, "linearizability", h, history.CheckLinearizability))
		}
	}
	res.Fingerprint = fingerprint(res)
	return res, nil
}

// verdict checks one condition over one history, auto-shrinking violations.
func verdict(name, provider, cond string, h *history.History, check func(*history.History) error) ShardVerdict {
	v := ShardVerdict{Shard: name, Provider: provider, Condition: cond, History: h, Err: check(h)}
	if v.Err != nil {
		v.Shrunk = ShrinkHistory(h, check)
	}
	return v
}

// clientScript builds one client task: a deterministic per-client mix of
// writes of globally unique values and reads, recorded in the shard's
// history. Operation errors (a read starved by concurrent writes, a halted
// cluster after a crash) leave the operation incomplete in the history, which
// is exactly how the checkers treat an operation whose response never
// arrived.
func clientScript(cfg Config, reg register.Register, rec *history.Recorder, id int) func(*dsys.ClientHandle) error {
	dataLen := reg.Config().DataLen
	return func(h *dsys.ClientHandle) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*1000003))
		seq := 0
		for i := 0; i < cfg.OpsPerClient; i++ {
			if rng.Float64() < cfg.ReadFraction {
				op := rec.BeginRead(id)
				v, err := reg.Read(h)
				if err != nil {
					if errors.Is(err, dsys.ErrHalted) {
						return nil
					}
					continue
				}
				rec.EndRead(op, v)
			} else {
				seq++
				v := value.Sequenced(id, seq, dataLen)
				op := rec.BeginWrite(id, v)
				if err := reg.Write(h, v); err != nil {
					if errors.Is(err, dsys.ErrHalted) {
						return nil
					}
					continue
				}
				rec.EndWrite(op)
			}
		}
		return nil
	}
}

// fingerprint hashes everything observable about the run: per-shard histories
// (operations with their logical intervals and values), the fault schedule,
// the scheduling step count and idle reason, and every checker verdict.
func fingerprint(r *Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d reason=%s\n", r.Steps, r.Reason)
	fmt.Fprintf(h, "crashed=%v suspended=%v clients=%v\n", r.CrashedObjects, r.SuspendedObjects, r.CrashedClients)
	for _, ev := range r.Faults {
		fmt.Fprintf(h, "fault %s\n", ev)
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(h, "shard %s condition %s err=%v\n", v.Shard, v.Condition, v.Err)
		for _, op := range v.History.Ops {
			fmt.Fprintf(h, "op c%d #%d %v @%d-%d ", op.Client, op.ID, op.Kind, op.Invoked, op.Returned)
			h.Write(op.Value.Bytes())
			fmt.Fprintln(h)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Replay re-executes a seed's schedule and verifies that it reproduces the
// given fingerprint byte for byte. It is how a failure found by an
// exploration sweep is turned into a deterministic reproducer: persist the
// failing Config (usually just the seed) and fingerprint, then Replay in a
// test or debugger as often as needed.
func Replay(cfg Config, wantFingerprint string) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if wantFingerprint != "" && res.Fingerprint != wantFingerprint {
		return res, fmt.Errorf("sim: replay of seed %d diverged: fingerprint %s, want %s",
			cfg.Seed, res.Fingerprint, wantFingerprint)
	}
	return res, nil
}

// Explore runs n seeds starting at baseSeed and returns the failing results.
func Explore(cfg Config, baseSeed int64, n int) ([]*Result, error) {
	var failures []*Result
	for i := 0; i < n; i++ {
		cfg.Seed = baseSeed + int64(i)
		res, err := Run(cfg)
		if err != nil {
			return failures, err
		}
		if res.Failed() {
			failures = append(failures, res)
		}
	}
	return failures, nil
}

// FormatFailure renders a failing result as a replayable report: the seed,
// the fault schedule, and each violation with its shrunken history.
func FormatFailure(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d steps, reason %s, fingerprint %s\n", r.Seed, r.Steps, r.Reason, r.Fingerprint)
	if len(r.Faults) > 0 {
		fmt.Fprintf(&b, "fault schedule:\n")
		for _, ev := range r.Faults {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	for _, v := range r.Violations() {
		fmt.Fprintf(&b, "shard %s (%s) violates %s: %v\n", v.Shard, v.Provider, v.Condition, v.Err)
		fmt.Fprintf(&b, "minimal failing history (%d of %d events):\n", len(v.Shrunk.Ops), len(v.History.Ops))
		for _, op := range v.Shrunk.Ops {
			fmt.Fprintf(&b, "  %v\n", op)
		}
	}
	return b.String()
}
