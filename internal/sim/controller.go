package sim

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"

	"spacebounds/internal/dsys"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/shard"
)

// reconfigClientID is the first controller incarnation's client ID; standby
// incarnations follow at +1, +2, … . They are far above every workload
// client, and the generic client-crash move spares them — the controller is
// crashed only through the budgeted KindCrashController decision.
const reconfigClientID = 1 << 20

// promoteAfter is the deterministic takeover backstop: a standby controller
// that has been scheduled this many times while the active incarnation lies
// crashed promotes itself, so an interrupted migration is always eventually
// resumed even when the adversary never rolls KindResumeController. (Held
// writes on a seeding successor would otherwise starve the workload for the
// rest of the run.)
const promoteAfter = 64

// controllerState coordinates the adversary's reconfiguration decisions with
// the controller incarnations. Everything in it is mutated at scheduling
// points only (by the adversary inside Decide, or by the controller task
// holding the run token), so its contents are a pure function of the
// schedule.
type controllerState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	kinds    []reconfig.MoveKind // planned moves in release order
	released int                 // moves released by KindStartMove (or the end-of-workload drain)
	started  int                 // moves handed to the coordinator
	sabotage int                 // applies left to sabotage with an injected failure
	active   int                 // index of the active incarnation
	total    int                 // incarnation count (ControllerCrashes + 1)
	crashed  bool                // the active incarnation was crashed and not yet replaced
	crashes  int
	resumes  int
	finished bool
}

// ctrlView is a consistent snapshot for the controller tasks.
type ctrlView struct {
	active   int
	crashed  bool
	finished bool
}

func newControllerState(seed int64, plan ReconfigPlan) *controllerState {
	kinds := make([]reconfig.MoveKind, 0, plan.Splits+plan.Drains+plan.Merges)
	for s, d, m := plan.Splits, plan.Drains, plan.Merges; s > 0 || d > 0 || m > 0; {
		if s > 0 {
			kinds = append(kinds, reconfig.MoveSplit)
			s--
		}
		if d > 0 {
			kinds = append(kinds, reconfig.MoveDrain)
			d--
		}
		if m > 0 {
			kinds = append(kinds, reconfig.MoveMerge)
			m--
		}
	}
	return &controllerState{
		rng:      rand.New(rand.NewSource(seed ^ 0x5eed4eca)),
		kinds:    kinds,
		sabotage: plan.Sabotage,
		total:    plan.ControllerCrashes + 1,
	}
}

// takeSabotage consumes one sabotage slot and draws the runner call the
// injected failure lands on. The draw comes from the controller's own seeded
// rng, so which step a sabotaged move dies at is part of the deterministic
// schedule. Low call numbers land inside the abort window (every runner call
// of a migrate move before the final retire wait is abortable); a draw past
// the move's call count simply lets the move complete.
func (c *controllerState) takeSabotage() (failAt int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sabotage <= 0 {
		return 0, false
	}
	c.sabotage--
	return 1 + c.rng.Intn(8), true
}

// errSabotage is the injected genuine failure: the driver must classify it as
// a migration error (abort), never as an interruption.
var errSabotage = errors.New("sim: sabotaged migration step")

// sabotageRunner delegates to the incarnation's controlled runner but fails
// the failAt-th runner call with errSabotage, once. Checkpoints count as
// calls, so a sabotaged-and-crashed move's rollback consumes schedule like
// any other work.
type sabotageRunner struct {
	inner  reconfig.Runner
	failAt int
	calls  int
}

func (r *sabotageRunner) step() error {
	r.calls++
	if r.calls == r.failAt {
		return errSabotage
	}
	return nil
}

func (r *sabotageRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.RunOn(sh, fn)
}

func (r *sabotageRunner) Wait(check func() bool) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Wait(check)
}

func (r *sabotageRunner) Checkpoint() error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Checkpoint()
}

func (c *controllerState) view() ctrlView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ctrlView{active: c.active, crashed: c.crashed, finished: c.finished}
}

// release unlocks the next planned move for the controller; it reports
// whether one was still unreleased.
func (c *controllerState) release() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.released >= len(c.kinds) {
		return false
	}
	c.released++
	return true
}

// releaseAll unlocks every remaining move — the end-of-workload drain that
// guarantees the plan's budget is attempted even if the adversary never
// rolled enough KindStartMove decisions.
func (c *controllerState) releaseAll() {
	c.mu.Lock()
	c.released = len(c.kinds)
	c.mu.Unlock()
}

// crashActive marks the active incarnation crashed and returns its client ID,
// provided the crash budget allows it, no crash is already outstanding, a
// standby remains (the last incarnation is immortal so every interrupted move
// has a resumer), and the incarnation is still a live task per alive().
func (c *controllerState) crashActive(alive func(id int) bool) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.finished || c.crashes >= c.total-1 || c.active+1 >= c.total {
		return 0, false
	}
	id := reconfigClientID + c.active
	if !alive(id) {
		return 0, false
	}
	c.crashed = true
	c.crashes++
	return id, true
}

// resumeNext activates the next standby incarnation after a crash and
// returns its client ID.
func (c *controllerState) resumeNext() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.crashed || c.active+1 >= c.total {
		return 0, false
	}
	c.active++
	c.crashed = false
	c.resumes++
	return reconfigClientID + c.active, true
}

// promote is the standby's takeover backstop: incarnation i assumes duty if
// it is still the designated successor of a crashed active incarnation.
func (c *controllerState) promote(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed && c.active+1 == i {
		c.active = i
		c.crashed = false
		c.resumes++
	}
}

// nextMove resolves the next released move against the current topology. A
// move whose kind has no valid target (a merge with no mergeable pair) is
// consumed without a move. The target choice draws from the controller's own
// seeded rng, so resolution is part of the deterministic schedule.
func (c *controllerState) nextMove(set *shard.Set) (reconfig.Move, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.started < c.released {
		kind := c.kinds[c.started]
		c.started++
		leaves := set.Router().ActiveLeafNames()
		switch kind {
		case reconfig.MoveSplit, reconfig.MoveDrain:
			if len(leaves) == 0 {
				continue
			}
			return reconfig.Move{Kind: kind, Shard: leaves[c.rng.Intn(len(leaves))]}, true
		case reconfig.MoveMerge:
			// Merge pairs must share an emulation and value size; pick among
			// the valid pairs in deterministic enumeration order.
			type pair struct{ a, b string }
			var pairs []pair
			for i := 0; i < len(leaves); i++ {
				for j := i + 1; j < len(leaves); j++ {
					sa, sb := set.Shard(leaves[i]), set.Shard(leaves[j])
					if sa.Algorithm == sb.Algorithm && sa.Reg.Config().DataLen == sb.Reg.Config().DataLen {
						pairs = append(pairs, pair{a: leaves[i], b: leaves[j]})
					}
				}
			}
			if len(pairs) == 0 {
				continue
			}
			p := pairs[c.rng.Intn(len(pairs))]
			return reconfig.Move{Kind: reconfig.MoveMerge, Shard: p.a, Shard2: p.b}, true
		}
	}
	return reconfig.Move{}, false
}

// exhausted reports whether every planned move has been consumed.
func (c *controllerState) exhausted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started >= len(c.kinds)
}

// finish marks the controller's work complete, releasing every incarnation.
func (c *controllerState) finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// counters returns the crash/takeover totals for the result and fingerprint.
func (c *controllerState) counters() (crashes, resumes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashes, c.resumes
}

// controllerScript builds one controller incarnation task. Incarnation 0
// starts on duty; the others park, yielding to the scheduler, until a
// KindResumeController decision (or the takeover backstop) promotes them
// after the active incarnation is crashed. On duty the controller first
// resumes any interrupted move from the coordinator's ledger, then executes
// released moves until the plan is exhausted and the workload has wound
// down. Every step — waits included — goes through the scheduler, so whole
// migrations, their interruptions and their resumptions are part of the
// deterministic schedule.
func controllerScript(set *shard.Set, co *reconfig.Coordinator, ctrl *controllerState, incarnation int, workloadDone func() bool) func(*dsys.ClientHandle) error {
	return func(h *dsys.ClientHandle) error {
		runner := reconfig.NewControlledRunner(h)
		stalls := 0
		for {
			st := ctrl.view()
			switch {
			case st.finished || st.active > incarnation:
				// All work done, or this incarnation was skipped over.
				return nil
			case st.active < incarnation:
				// Parked standby. The backstop bounds how long a crashed
				// controller can leave a migration (and the writes held by
				// its seeding successors) dangling.
				if st.crashed && st.active+1 == incarnation {
					stalls++
					if stalls >= promoteAfter {
						ctrl.promote(incarnation)
						continue
					}
				}
				if err := h.Yield(); err != nil {
					return nil
				}
				continue
			}
			// On duty. An interrupted move always comes first: until it is
			// re-driven to completion (or cleanly aborted), its seeding
			// successors hold writes.
			if fl := co.InFlight(); fl != nil {
				if _, _, err := co.Resume(runner); err != nil && reconfig.IsInterruption(err) {
					return nil // crashed mid-resume, or the cluster halted
				}
				continue
			}
			if mv, ok := ctrl.nextMove(set); ok {
				run := runner
				if failAt, ok := ctrl.takeSabotage(); ok {
					// A sabotaged move fails a genuine migration step and must
					// roll back; the rollback's checkpoints are scheduling
					// points the adversary can crash this incarnation on.
					run = &sabotageRunner{inner: runner, failAt: failAt}
				}
				if _, err := co.Apply(run, mv); err != nil && reconfig.IsInterruption(err) {
					return nil
				}
				// A cleanly aborted move (sabotaged, or e.g. a migration read
				// starved by the adversary) was rolled back; move on.
				continue
			}
			if ctrl.exhausted() {
				ctrl.finish()
				return nil
			}
			if workloadDone() {
				// The workload cannot trigger more KindStartMove points;
				// drain the remaining plan so the budget completes.
				ctrl.releaseAll()
				continue
			}
			if err := h.Yield(); err != nil {
				return nil
			}
		}
	}
}

// workloadDoneFunc builds the controller's workload-completion probe: done
// and crashed count disjoint workload clients during the run (a crashed task
// stays parked until Close, so its script's done-increment never fires
// mid-run), so their sum reaching the client count means no live workload
// client remains. Crashed controller incarnations also appear in the
// cluster's crash list and must not count against the workload total.
func workloadDoneFunc(cluster *dsys.Cluster, done *atomic.Int64, totalClients int) func() bool {
	return func() bool {
		crashed := 0
		for _, cl := range cluster.CrashedClients() {
			if cl < reconfigClientID {
				crashed++
			}
		}
		return done.Load()+int64(crashed) >= int64(totalClients)
	}
}
