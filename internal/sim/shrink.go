package sim

import "spacebounds/internal/history"

// ShrinkHistory greedily minimizes a violating history: it repeatedly removes
// operations as long as the check still fails, until no single removal
// preserves the failure. The result is 1-minimal — every remaining event is
// necessary for some violation (not necessarily the original one: removing an
// operation can expose a smaller violation of the same condition, which is
// exactly what a debugging artifact wants). If h does not fail the check it
// is returned unchanged.
//
// Histories are small (tens of operations), so the quadratic number of
// checker calls is cheap; the checkers themselves never mutate the history,
// and the returned history shares the surviving *Op values with h.
func ShrinkHistory(h *history.History, check func(*history.History) error) *history.History {
	if check(h) == nil {
		return h
	}
	ops := append([]*history.Op(nil), h.Ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ops); i++ {
			cand := make([]*history.Op, 0, len(ops)-1)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+1:]...)
			if check(&history.History{V0: h.V0, Ops: cand}) != nil {
				ops = cand
				changed = true
				i--
			}
		}
	}
	return &history.History{V0: h.V0, Ops: ops}
}
