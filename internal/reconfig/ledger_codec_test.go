package reconfig

import (
	"reflect"
	"strings"
	"testing"

	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// TestMoveStateCodecRoundTrip round-trips a fully populated entry and a
// minimal one; the decoded struct must be identical field for field.
func TestMoveStateCodecRoundTrip(t *testing.T) {
	full := MoveState{
		ID:          3,
		Move:        Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"},
		Sources:     []string{"s0", "s1"},
		Successors:  []string{"s0+s1"},
		Winner:      "s1",
		SeedValue:   value.Sequenced(7, 3, dataLen),
		SeedChosen:  true,
		Step:        StepGrowRegions,
		Epoch:       42,
		FlipStep:    99,
		Resumes:     2,
		Interrupted: true,
		AbortReason: "",
	}
	for name, m := range map[string]MoveState{
		"full":     full,
		"minimal":  {ID: 1, Move: Move{Kind: MoveSplit, Shard: "s0"}},
		"aborted":  {ID: 2, Move: Move{Kind: MoveDrain, Shard: "s1"}, Aborted: true, AbortReason: "test abort"},
		"aborting": {ID: 4, Move: Move{Kind: MoveSplit, Shard: "s2"}, Step: StepSeed, Aborting: true, Interrupted: true, AbortReason: "mid-rollback"},
	} {
		got, err := DecodeMoveState(EncodeMoveState(m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%s: round trip diverged:\n got  %+v\n want %+v", name, got, m)
		}
	}
}

// TestMoveStateCodecRejectsCorruption: wrong version, truncated payload, and
// an impossible name count are all decode errors, never silent zero values.
func TestMoveStateCodecRejectsCorruption(t *testing.T) {
	var wrongVersion register.WireWriter
	wrongVersion.Int(99)
	if _, err := DecodeMoveState(wrongVersion.Finish()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: err = %v", err)
	}

	good := EncodeMoveState(MoveState{ID: 1, Move: Move{Kind: MoveSplit, Shard: "s0"}})
	if _, err := DecodeMoveState(good[:len(good)-3]); err == nil {
		t.Fatal("truncated payload decoded without error")
	}

	var badCount register.WireWriter
	badCount.Int(moveStateVersion)
	badCount.Int(1)              // ID
	badCount.Int(int(MoveSplit)) // kind
	badCount.Bytes([]byte("s0"))
	badCount.Bytes(nil)
	badCount.Int(1 << 40) // sources count far beyond the payload size
	if _, err := DecodeMoveState(badCount.Finish()); err == nil || !strings.Contains(err.Error(), "corrupt move record") {
		t.Fatalf("oversized name count: err = %v", err)
	}
}
