// Package reconfig is the epoch-based dynamic-reconfiguration subsystem: it
// executes elastic resharding moves — splitting a shard across fresh
// base-object regions, merging two shards back into one, draining a shard
// onto replacement nodes, adding a dedicated shard for a hot key, removing
// one — against a live shard.Set with state migrated, not lost.
//
// The migration protocol for a split, drain or merge of source shard(s) into
// successors is:
//
//  1. Grow: build the successor registers and extend the cluster with their
//     regions (dsys.ExtendObjects). They are not routed yet.
//  2. Flip: atomically install the successors as seeding routes and mark the
//     sources draining (Router.InstallSuccessors / InstallMergeSuccessor —
//     one epoch). From here on, writes for the sources' keys are held for
//     the successors and reads consult both epochs.
//  3. Drain: wait until no live client has a write pinned to a source.
//     Writes by crashed clients are excluded — they are incomplete
//     operations, which the consistency conditions treat as concurrent with
//     everything after their invocation, so the migration may miss them.
//  4. Seed: the migration writer reads each source's latest value — the
//     drain guarantees it supersedes every completed write — and writes the
//     chosen value into each successor at the fixed register.SeedTS. For a
//     merge the two latest values are ordered by (installation epoch,
//     register timestamp), the same lexicographic rule dual-epoch reads use,
//     with the lexicographically smaller shard name breaking full ties; the
//     winner seeds the single successor and becomes its lineage parent,
//     while the loser's history ends at the merge (a pruned branch). Because
//     writes were held, the seed is each successor's first write; every
//     later client write strictly supersedes it. Seed writes are not
//     recorded in histories: a read returning the migrated value is
//     justified by the original write in the winner's history.
//  5. Activate: mark every successor seeded (writes admitted, reads stop
//     consulting the sources), wait for the sources' fallback reads to
//     drain, retire the source regions.
//
// Every move writes a per-move step ledger (MoveState): the entry records
// the last completed step, the successor names, the flip epoch, the merge
// winner and the chosen seed value. The controller executing a move can die
// at any scheduling point; Coordinator.Resume takes the in-flight entry over
// and re-drives it from its last completed step. Each step is idempotent
// under replay: table work is atomic with respect to controller crashes (no
// scheduling point inside), drain waits simply re-wait, and the seed is an
// idempotent write — the value is recorded in the ledger before the first
// seed RMW is issued (a drained source is not frozen: a crashed client's
// in-flight RMW can still land between interrupted attempts, so resume must
// never re-read), and register.SeedTS fixes the timestamp, so every seed
// attempt installs the identical ⟨timestamp, value⟩ pair no matter how many
// interrupted attempts raced it (see register.SeedWriter).
//
// The executor is mode-agnostic: a Runner supplies the two capabilities that
// differ between the live store and the deterministic simulator — running a
// register operation as the migration client against a region, and waiting
// for a condition. The live runner blocks; the controlled runner yields to
// the scheduler, which keeps simulation runs a pure function of the seed.
package reconfig

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/shard"
	"spacebounds/internal/trace"
	"spacebounds/internal/value"
)

// MoveKind enumerates reconfiguration moves.
type MoveKind int

// Move kinds.
const (
	// MoveSplit replaces one shard by two successors on fresh regions; its
	// keyspace is re-partitioned between them and its latest value is
	// migrated into both.
	MoveSplit MoveKind = iota + 1
	// MoveDrain replaces one shard by a single successor on a fresh region
	// (same routing position): evacuate the nodes, keep the data.
	MoveDrain
	// MoveAdd installs a dedicated shard for exactly one key, forked from the
	// register the key currently routes to.
	MoveAdd
	// MoveRemove drops a dedicated shard; its key rejoins hash routing and
	// the dedicated register's value is discarded with its namespace.
	MoveRemove
	// MoveMerge replaces two shards by a single successor on a fresh region —
	// the inverse of a split. Keys of both sources route to the successor,
	// which is seeded with the value-ordering winner's latest value.
	MoveMerge
)

// String implements fmt.Stringer.
func (k MoveKind) String() string {
	switch k {
	case MoveSplit:
		return "split"
	case MoveDrain:
		return "drain"
	case MoveAdd:
		return "add"
	case MoveRemove:
		return "remove"
	case MoveMerge:
		return "merge"
	default:
		return fmt.Sprintf("move(%d)", int(k))
	}
}

// Move is one reconfiguration move: the kind and the target shard (for
// MoveAdd, the key the dedicated shard will serve; for MoveMerge, the two
// source shards).
type Move struct {
	Kind  MoveKind
	Shard string
	// Shard2 is the second merge source (MoveMerge only).
	Shard2 string
}

// String implements fmt.Stringer.
func (m Move) String() string {
	if m.Kind == MoveMerge {
		return fmt.Sprintf("%v %s+%s", m.Kind, m.Shard, m.Shard2)
	}
	return fmt.Sprintf("%v %s", m.Kind, m.Shard)
}

// Plan is an ordered sequence of moves.
type Plan struct {
	Moves []Move
}

// Event records one applied move for introspection, fingerprints and tests.
type Event struct {
	Kind  MoveKind
	Shard string
	// Shard2 is the second source of a merge ("" otherwise).
	Shard2     string
	Successors []string
	// Epoch is the routing epoch the move's flip installed.
	Epoch int64
	// Step is the cluster's logical time at the flip.
	Step int64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	src := e.Shard
	if e.Shard2 != "" {
		src += "+" + e.Shard2
	}
	return fmt.Sprintf("epoch %d step %d: %v %s -> %v", e.Epoch, e.Step, e.Kind, src, e.Successors)
}

// Stats aggregates the subsystem's counters.
type Stats struct {
	// Epoch is the current routing epoch.
	Epoch int64
	// Splits, Drains, Adds, Removes, Merges count completed moves.
	Splits, Drains, Adds, Removes, Merges int
	// Resumes counts interrupted moves taken over by Resume.
	Resumes int
	// Aborts counts cleanly rolled-back moves.
	Aborts int
	// SeedWrites counts migration-writer replays into successors.
	SeedWrites int
	// FallbackReads counts dual-epoch reads answered by the old epoch.
	FallbackReads int64
	// HeldWrites counts write acquisitions that waited for a seeding
	// successor.
	HeldWrites int64
}

// ErrInterrupted marks a migration step failure that means "the controller
// died", not "the move failed": the ledger keeps the move in flight —
// nothing is rolled back — and Resume may re-drive it. The dsys halt error
// is classified the same way, since a controlled-mode controller crashed by
// the scheduler only observes it when the cluster shuts down.
var ErrInterrupted = errors.New("reconfig: migration interrupted")

// ErrMoveInFlight is returned by Submit while another move is in flight (the
// coordinator serializes moves; resume or finish the current one first).
var ErrMoveInFlight = errors.New("reconfig: a move is already in flight")

// ErrNotMigratable marks a source register that lacks the timestamped read
// migration requires.
var ErrNotMigratable = errors.New("reconfig: register cannot be migrated (no timestamped read)")

// ErrNoSeedWriter marks a successor register that lacks the idempotent seed
// write migration requires.
var ErrNoSeedWriter = errors.New("reconfig: register has no idempotent seed write")

// errSuperseded is returned by a driver whose move was taken over by Resume;
// it must not touch the ledger or the routing table again.
var errSuperseded = errors.New("reconfig: move driver superseded by resume")

// IsInterruption reports whether a move error means the driver itself is
// done for — dead, superseded by a resumer, or halted with the cluster — and
// a *different* driver must Resume the in-flight move. A genuine step
// failure at a stage with no rollback also leaves the move in flight, but
// its error is NOT an interruption: the driver is alive and the move is
// still its responsibility to Resume.
func IsInterruption(err error) bool {
	return errors.Is(err, ErrInterrupted) || errors.Is(err, dsys.ErrHalted) || errors.Is(err, errSuperseded)
}

// Runner supplies the execution context for migration steps. The live store
// and the deterministic simulator differ only here.
type Runner interface {
	// RunOn executes fn as the migration client scoped to sh's object region.
	RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error
	// Wait blocks until check() reports true. Controlled-mode runners yield
	// to the scheduler between checks so the wait is itself schedulable.
	Wait(check func() bool) error
	// Checkpoint is a bare scheduling point: controlled-mode runners yield
	// once so the scheduler can interleave (or crash) the driver between two
	// ledger-recorded stages — the abort rollback uses it to make each of its
	// stages individually interruptible. Live runners return nil immediately.
	Checkpoint() error
}

// liveRunner runs migration steps inline against a live-mode set.
type liveRunner struct {
	set    *shard.Set
	client int
}

// NewLiveRunner returns a Runner for a live-mode set; client is the migration
// writer's client ID (it must not collide with application client IDs, since
// it stamps the seed writes' timestamps).
func NewLiveRunner(set *shard.Set, client int) Runner {
	return &liveRunner{set: set, client: client}
}

// RunOn implements Runner.
func (r *liveRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	return r.set.Run(r.client, sh, fn)
}

// Wait implements Runner: live drains complete in microseconds (pins are
// released as each in-flight quorum round finishes), so a short poll is all
// that is needed.
func (r *liveRunner) Wait(check func() bool) error {
	for !check() {
		time.Sleep(20 * time.Microsecond)
	}
	return nil
}

// Checkpoint implements Runner: live drivers have no scheduler to yield to.
func (r *liveRunner) Checkpoint() error { return nil }

// controlledRunner runs migration steps as a controlled-mode client task,
// yielding to the scheduling policy between condition checks. Everything it
// does is therefore part of the deterministic schedule.
type controlledRunner struct {
	h *dsys.ClientHandle
}

// NewControlledRunner returns a Runner backed by a controlled-mode task's
// whole-cluster handle (the migration steps derive region scopes via Sub).
func NewControlledRunner(h *dsys.ClientHandle) Runner {
	return &controlledRunner{h: h}
}

// RunOn implements Runner.
func (r *controlledRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	sub, err := r.h.Sub(sh.Base, sh.Span)
	if err != nil {
		return err
	}
	return fn(sub)
}

// Wait implements Runner.
func (r *controlledRunner) Wait(check func() bool) error {
	for !check() {
		if err := r.h.Yield(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint implements Runner: one yield, so the stage boundary is a real
// scheduling point the adversary can land a controller crash on.
func (r *controlledRunner) Checkpoint() error { return r.h.Yield() }

// Coordinator executes moves against one shard.Set, writes the per-move step
// ledger, and aggregates events and stats. Moves are serialized — at most one
// is in flight — but an in-flight move whose driver died can be taken over by
// Resume from its last completed step.
type Coordinator struct {
	set *shard.Set

	mu        sync.Mutex
	stats     Stats
	events    []Event
	ledger    []*moveEntry
	inFlight  *moveEntry
	nextID    int
	nextOwner int64

	// met, when non-nil, instruments ledger steps and move outcomes (see
	// SetMetrics). Atomic so attachment never contends with a move in flight.
	met atomic.Pointer[reconfigMetrics]

	// trc, when non-nil, records one trace per move with a span per ledger
	// step (see SetTracer).
	trc atomic.Pointer[trace.Tracer]

	// jour, when non-nil, journals every ledger transition (see SetJournal).
	jour atomic.Pointer[moveJournalHolder]
}

// NewCoordinator returns a coordinator for the set.
func NewCoordinator(set *shard.Set) *Coordinator { return &Coordinator{set: set} }

// Stats returns the aggregated counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	st.Epoch = c.set.Router().Epoch()
	st.FallbackReads = c.set.FallbackReads()
	st.HeldWrites = c.set.Router().HeldWrites()
	return st
}

// Events returns the applied moves in order.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Ledger returns a copy of every move's ledger entry in creation order,
// completed and aborted moves included.
func (c *Coordinator) Ledger() []MoveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MoveState, len(c.ledger))
	for i, en := range c.ledger {
		out[i] = en.MoveState
	}
	return out
}

// InFlight returns a copy of the in-flight move's ledger entry, or nil.
func (c *Coordinator) InFlight() *MoveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inFlight == nil {
		return nil
	}
	st := c.inFlight.MoveState
	return &st
}

// ApplyPlan applies the plan's moves in order, stopping at the first error.
func (c *Coordinator) ApplyPlan(r Runner, p Plan) error {
	for _, mv := range p.Moves {
		if _, err := c.Apply(r, mv); err != nil {
			return fmt.Errorf("reconfig: %v: %w", mv, err)
		}
	}
	return nil
}

// Apply executes one move end to end and returns its event. A move whose
// driver dies mid-way (IsInterruption on the error) stays in the ledger for
// Resume; a move that fails for any other reason is cleanly aborted.
func (c *Coordinator) Apply(r Runner, mv Move) (Event, error) {
	en, err := c.begin(mv)
	if err != nil {
		return Event{}, err
	}
	return c.drive(r, en, en.owner)
}

// Resume takes over the in-flight move, if any, and re-drives it from its
// last completed step. The caller asserts that the previous driver is dead
// (crashed by the scheduler, or its step failed with an interruption); the
// superseded driver can never mutate the ledger or the routing table again.
// It reports whether a move was taken over.
func (c *Coordinator) Resume(r Runner) (bool, Event, error) {
	c.mu.Lock()
	en := c.inFlight
	if en == nil {
		c.mu.Unlock()
		return false, Event{}, nil
	}
	c.nextOwner++
	owner := c.nextOwner
	en.owner = owner
	en.Resumes++
	en.Interrupted = false
	if c.timingStepsLocked() {
		// Restart the step clock: the gap since the interruption is operator
		// time, not step time.
		en.stepStart = time.Now()
	}
	c.stats.Resumes++
	c.recordLocked(en)
	c.mu.Unlock()
	ev, err := c.drive(r, en, owner)
	return true, ev, err
}

// begin validates the move shape and opens its ledger entry.
func (c *Coordinator) begin(mv Move) (*moveEntry, error) {
	var sources []string
	switch mv.Kind {
	case MoveSplit, MoveDrain, MoveRemove:
		if mv.Shard == "" || mv.Shard2 != "" {
			return nil, fmt.Errorf("reconfig: %v move must name exactly one shard", mv.Kind)
		}
		sources = []string{mv.Shard}
	case MoveAdd:
		if mv.Shard == "" || mv.Shard2 != "" {
			return nil, fmt.Errorf("reconfig: add move must name exactly one key")
		}
		// The origin is resolved at flip time and recorded then.
	case MoveMerge:
		if mv.Shard == "" || mv.Shard2 == "" || mv.Shard == mv.Shard2 {
			return nil, fmt.Errorf("reconfig: merge move must name two distinct shards")
		}
		sources = []string{mv.Shard, mv.Shard2}
	default:
		return nil, fmt.Errorf("reconfig: unknown move kind %v", mv.Kind)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inFlight != nil {
		return nil, fmt.Errorf("%w: move %v (resume it first)", ErrMoveInFlight, c.inFlight.Move)
	}
	c.nextID++
	c.nextOwner++
	en := &moveEntry{MoveState: MoveState{ID: c.nextID, Move: mv, Sources: sources}, owner: c.nextOwner}
	if c.timingStepsLocked() {
		en.stepStart = time.Now()
	}
	c.beginTraceLocked(en)
	c.ledger = append(c.ledger, en)
	c.inFlight = en
	c.recordLocked(en)
	return en, nil
}

// drive dispatches a (possibly resumed) move to its kind's executor. An entry
// whose previous driver died mid-rollback resumes the rollback, never the
// forward path: the abort cause is already recorded, and re-running forward
// steps against a half-unwound table would corrupt it.
func (c *Coordinator) drive(r Runner, en *moveEntry, owner int64) (Event, error) {
	if en.Aborting {
		return c.driveAbort(r, en, owner, eventOf(en.MoveState), errors.New(en.AbortReason))
	}
	switch en.Move.Kind {
	case MoveSplit, MoveDrain, MoveMerge:
		return c.driveMigrate(r, en, owner)
	case MoveAdd:
		return c.driveAdd(r, en, owner)
	case MoveRemove:
		return c.driveRemove(r, en, owner)
	default:
		return Event{}, fmt.Errorf("reconfig: unknown move kind %v", en.Move.Kind)
	}
}

// owns reports whether the driver token still owns the entry.
func (c *Coordinator) owns(en *moveEntry, owner int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return en.owner == owner
}

// advance records the completion of a step (plus any entry mutation) unless
// the driver was superseded.
func (c *Coordinator) advance(en *moveEntry, owner int64, step MoveStep, mut func(*MoveState)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if en.owner != owner {
		return false
	}
	if mut != nil {
		mut(&en.MoveState)
	}
	if step > en.Step {
		en.Step = step
		if m := c.met.Load(); m != nil {
			m.observeStep(step, en.stepStart)
		}
		c.traceStepLocked(en, step)
		if c.timingStepsLocked() {
			en.stepStart = time.Now()
		}
	}
	c.recordLocked(en)
	return true
}

// markInterrupted leaves the entry in flight for Resume.
func (c *Coordinator) markInterrupted(en *moveEntry, owner int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if en.owner == owner {
		en.Interrupted = true
		if m := c.met.Load(); m != nil {
			m.countOutcome(en.Move.Kind, "interrupted")
		}
		c.recordLocked(en)
	}
}

// markAborted closes the entry as cleanly rolled back.
func (c *Coordinator) markAborted(en *moveEntry, owner int64, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if en.owner != owner {
		return
	}
	en.Aborted = true
	en.AbortReason = cause.Error()
	if c.inFlight == en {
		c.inFlight = nil
	}
	c.stats.Aborts++
	if m := c.met.Load(); m != nil {
		m.countOutcome(en.Move.Kind, "aborted")
	}
	c.recordLocked(en)
}

// finish closes the entry as done, records the event and bumps the per-kind
// counters. It reports false for a superseded driver.
func (c *Coordinator) finish(en *moveEntry, owner int64, ev Event, seeds int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if en.owner != owner {
		return false
	}
	en.Done = true
	if c.inFlight == en {
		c.inFlight = nil
	}
	c.events = append(c.events, ev)
	c.stats.SeedWrites += seeds
	switch ev.Kind {
	case MoveSplit:
		c.stats.Splits++
	case MoveDrain:
		c.stats.Drains++
	case MoveAdd:
		c.stats.Adds++
	case MoveRemove:
		c.stats.Removes++
	case MoveMerge:
		c.stats.Merges++
	}
	if m := c.met.Load(); m != nil {
		m.countOutcome(en.Move.Kind, "done")
	}
	c.recordLocked(en)
	return true
}

// interrupt marks the entry in flight for Resume and wraps the step failure.
func (c *Coordinator) interrupt(en *moveEntry, owner int64, ev Event, err error) (Event, error) {
	c.markInterrupted(en, owner)
	if IsInterruption(err) {
		return ev, fmt.Errorf("%w: %v interrupted at step %v: %v", ErrInterrupted, en.Move, en.Step, err)
	}
	// A genuine failure at a stage with no rollback (the pre-retire waits,
	// RetireShard) also leaves the entry resumable — but the error must keep
	// its identity. Wrapping it in ErrInterrupted here would tell a live
	// driver it was superseded, and a driver with no standby behind it would
	// walk away from a move that is still its responsibility; the caller
	// distinguishes "I am dead or superseded" (IsInterruption) from "my step
	// failed; the move is interrupted and mine to Resume".
	return ev, fmt.Errorf("%v interrupted at step %v: %w", en.Move, en.Step, err)
}

// stepErr routes a step failure: interruptions leave the entry in flight for
// Resume, everything else aborts via the caller-supplied rollback.
func (c *Coordinator) stepErr(en *moveEntry, owner int64, ev Event, err error, abort func(error) (Event, error)) (Event, error) {
	if IsInterruption(err) {
		return c.interrupt(en, owner, ev, err)
	}
	return abort(err)
}

// beginAbort records that the entry's rollback has started (Aborting plus the
// cause), unless the driver was superseded. Recording happens before any
// unwind work so a driver crashed at any later point leaves an entry Resume
// recognizes as mid-abort and re-drives through driveAbort, never forward.
func (c *Coordinator) beginAbort(en *moveEntry, owner int64, cause error) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if en.owner != owner {
		return false
	}
	if !en.Aborting {
		en.Aborting = true
		en.AbortReason = cause.Error()
		c.recordLocked(en)
	}
	return true
}

// driveAbort executes (or resumes) the rollback of a flipped-but-not-activated
// move: the routing table goes back to its pre-flip state and the successor
// regions are retired. It is safe at any interleaving because writes were held
// for the successors throughout — no client state can have reached them — and
// every stage is idempotent: the router's abort operations gate on route state
// (a repeat is a no-op), and retiring retired objects is harmless. The runner
// checkpoints between stages are real scheduling points, so a controller can
// crash mid-rollback and leave the entry Aborting+Interrupted; Resume finishes
// the rollback from the top, re-running completed stages as no-ops.
func (c *Coordinator) driveAbort(r Runner, en *moveEntry, owner int64, ev Event, cause error) (Event, error) {
	set, rt := c.set, c.set.Router()
	mv := en.Move
	if !c.beginAbort(en, owner, cause) {
		return ev, errSuperseded
	}
	if err := r.Checkpoint(); err != nil {
		return c.interrupt(en, owner, ev, err)
	}
	if !c.owns(en, owner) {
		return ev, errSuperseded
	}
	// Stage 1: roll the routing table back. For an add the origin's write hold
	// is lifted first (ReleaseHold is a no-op when the hold is already gone).
	switch mv.Kind {
	case MoveMerge:
		rt.AbortMerge(mv.Shard, mv.Shard2)
	case MoveAdd:
		if len(en.Sources) > 0 {
			rt.ReleaseHold(en.Sources[0])
		}
		rt.AbortDedicated(mv.Shard)
	default:
		rt.AbortSuccessors(mv.Shard)
	}
	// Stage 2: drain successor readers. The rollback made the successors
	// unroutable, so no new pin can appear — but a dual-epoch reader that
	// pinned a seeding successor before the rollback may still be mid-RMW on
	// its region, and retiring the region out from under it would strand the
	// RMW (and with it the reader's fallback pin on the source) forever.
	// Regions are only ever decommissioned once no live client can be mid-RMW
	// on them; this wait is the abort-path mirror of the forward path's
	// pre-retire drain. Write pins need no wait: a successor is Seeding for
	// its whole abortable window, and seeding routes hold writes off.
	if err := r.Wait(func() bool { return c.readsDrained(en.Successors) }); err != nil {
		return c.interrupt(en, owner, ev, err)
	}
	if !c.owns(en, owner) {
		return ev, errSuperseded
	}
	// Stage 3: decommission the successor regions and close the entry. An add
	// also unregisters the burned route — a dedicated shard's name must equal
	// its key, so the name has to be freed for a retry, not suffixed. The
	// delete fails on a resume that already ran it; that is the idempotence
	// working, not an error.
	for _, name := range en.Successors {
		if sh := set.Region(name); sh != nil {
			_ = set.Cluster().RetireObjects(sh.Base, sh.Span)
		}
	}
	if mv.Kind == MoveAdd {
		_ = rt.DeleteRetiredRoute(mv.Shard)
	}
	c.markAborted(en, owner, cause)
	if mv.Kind == MoveAdd {
		return ev, fmt.Errorf("add of %q aborted: %w", mv.Shard, cause)
	}
	return ev, fmt.Errorf("migration of %v aborted: %w", mv, cause)
}

// freeName returns base, or — when an earlier aborted migration already
// burned it (aborted successors stay registered as retired routes) — the
// first free "base~N" variant, so a shard can always be migrated again after
// an abort.
func freeName(set *shard.Set, base string) string {
	name := base
	for n := 2; set.Router().RouteOf(name) != nil; n++ {
		name = fmt.Sprintf("%s~%d", base, n)
	}
	return name
}

// crashedClients returns the scheduler-crashed client set (empty in live
// mode); drains exclude their unreleasable pins.
func (c *Coordinator) crashedClients() map[int]bool {
	out := make(map[int]bool)
	for _, cl := range c.set.Cluster().CrashedClients() {
		out[cl] = true
	}
	return out
}

// eventOf reconstructs a move's event from its ledger entry, so a resumed
// driver reports the identical event the original flip produced.
func eventOf(st MoveState) Event {
	return Event{
		Kind: st.Move.Kind, Shard: st.Move.Shard, Shard2: st.Move.Shard2,
		Successors: append([]string(nil), st.Successors...),
		Epoch:      st.Epoch, Step: st.FlipStep,
	}
}

// retireRegions decommissions successor regions (and retires their routes,
// when any were installed) after a failed or aborted grow/flip.
func (c *Coordinator) retireRegions(names []string) {
	for _, name := range names {
		sh := c.set.Region(name)
		if sh == nil {
			continue
		}
		c.set.Router().MarkRetired(name) // no-op when the route was never installed
		_ = c.set.Cluster().RetireObjects(sh.Base, sh.Span)
	}
}

// seedInto replays v into the successor at the fixed seed timestamp.
func seedInto(r Runner, succ *shard.Shard, v value.Value) error {
	sw, ok := succ.Reg.(register.SeedWriter)
	if !ok {
		return fmt.Errorf("successor %q (register %s): %w", succ.Name, succ.Reg.Name(), ErrNoSeedWriter)
	}
	return r.RunOn(succ, func(h *dsys.ClientHandle) error { return sw.WriteSeed(h, v) })
}

// writesDrained reports whether every named source's write pins are released
// by all live clients.
func (c *Coordinator) writesDrained(names []string) bool {
	crashed := c.crashedClients()
	for _, name := range names {
		if !c.set.Router().WritesDrained(name, crashed) {
			return false
		}
	}
	return true
}

// readsDrained is writesDrained for read pins.
func (c *Coordinator) readsDrained(names []string) bool {
	crashed := c.crashedClients()
	for _, name := range names {
		if !c.set.Router().ReadsDrained(name, crashed) {
			return false
		}
	}
	return true
}

// asTimestamped is the single capability check for migration sources: the
// dual-epoch read and the value-ordering rule both need the register's
// internal timestamp.
func asTimestamped(sh *shard.Shard) (register.TimestampedReader, error) {
	tr, ok := sh.Reg.(register.TimestampedReader)
	if !ok {
		return nil, fmt.Errorf("shard %q (register %s): %w", sh.Name, sh.Reg.Name(), ErrNotMigratable)
	}
	return tr, nil
}

// seedValue returns the entry's ledger-recorded migrated value.
func (c *Coordinator) seedValue(en *moveEntry) (value.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return en.SeedValue, en.SeedChosen
}

// latestOf reads a source's latest value and timestamp as the migration
// client. The source is drained and unroutable for writes, but NOT frozen —
// a crashed client's in-flight RMW may still land later — which is exactly
// why the chosen value is recorded in the ledger before seeding starts
// instead of being re-read on resume.
func latestOf(r Runner, src *shard.Shard) (value.Value, register.Timestamp, error) {
	tr, err := asTimestamped(src)
	if err != nil {
		return value.Value{}, register.ZeroTS, err
	}
	var v value.Value
	var ts register.Timestamp
	err = r.RunOn(src, func(h *dsys.ClientHandle) error {
		var err error
		v, ts, err = tr.ReadTimestamped(h)
		return err
	})
	return v, ts, err
}

// driveMigrate executes (or resumes) the shared split/drain/merge protocol.
func (c *Coordinator) driveMigrate(r Runner, en *moveEntry, owner int64) (Event, error) {
	set, rt := c.set, c.set.Router()
	mv := en.Move

	// Validate the sources: they must exist and support timestamped reads
	// (dual-epoch reads and the merge ordering rule need the timestamps). A
	// fresh move aborts on a validation failure — nothing has been installed
	// yet. On a post-flip resume such a failure is an internal inconsistency
	// (sources cannot vanish between attempts): the entry is left resumable
	// rather than falsely marked aborted while the table stays flipped.
	invalid := func(cause error) (Event, error) {
		if en.Step >= StepTableFlip {
			return c.interrupt(en, owner, eventOf(en.MoveState), cause)
		}
		c.markAborted(en, owner, cause)
		return Event{}, cause
	}
	srcs := make([]*shard.Shard, len(en.Sources))
	for i, name := range en.Sources {
		sh := set.Shard(name)
		if sh == nil {
			return invalid(fmt.Errorf("%w %q", shard.ErrUnknownShard, name))
		}
		if _, err := asTimestamped(sh); err != nil {
			return invalid(err)
		}
		srcs[i] = sh
	}
	if mv.Kind == MoveMerge {
		if srcs[0].Algorithm != srcs[1].Algorithm {
			// The successor inherits one emulation, and the stitched lineage
			// is checked under that emulation's consistency condition — a
			// cross-emulation merge would smuggle a weaker prefix under a
			// stronger claim. (A re-coding merge is future work; see ROADMAP.)
			return invalid(fmt.Errorf("cannot merge %q (%s) with %q (%s): emulations differ",
				srcs[0].Name, srcs[0].Algorithm, srcs[1].Name, srcs[1].Algorithm))
		}
		if srcs[0].Reg.Config().DataLen != srcs[1].Reg.Config().DataLen {
			return invalid(fmt.Errorf("cannot merge %q (%d-byte values) with %q (%d-byte values)",
				srcs[0].Name, srcs[0].Reg.Config().DataLen, srcs[1].Name, srcs[1].Reg.Config().DataLen))
		}
	}

	// Grow: successor regions exist before the flip so the flip is purely a
	// table swap. The successor inherits the first source's emulation.
	if en.Step < StepGrowRegions {
		var bases []string
		switch mv.Kind {
		case MoveSplit:
			bases = []string{mv.Shard + "/0", mv.Shard + "/1"}
		case MoveDrain:
			bases = []string{mv.Shard + "/0"}
		case MoveMerge:
			bases = []string{mergeName(mv.Shard, mv.Shard2)}
		}
		names := make([]string, 0, len(bases))
		for _, base := range bases {
			sh, err := set.AddRegion(shard.Spec{
				Name:      freeName(set, base),
				Algorithm: srcs[0].Algorithm,
				Config:    srcs[0].Reg.Config(),
			})
			if err != nil {
				c.retireRegions(names)
				c.markAborted(en, owner, err)
				return Event{}, err
			}
			if _, ok := sh.Reg.(register.SeedWriter); !ok {
				err := fmt.Errorf("successor %q (register %s): %w", sh.Name, sh.Reg.Name(), ErrNoSeedWriter)
				c.retireRegions(append(names, sh.Name))
				c.markAborted(en, owner, err)
				return Event{}, err
			}
			names = append(names, sh.Name)
		}
		if !c.advance(en, owner, StepGrowRegions, func(st *MoveState) { st.Successors = names }) {
			return Event{}, errSuperseded
		}
	}
	succs := make([]*shard.Shard, len(en.Successors))
	for i, name := range en.Successors {
		if succs[i] = set.Region(name); succs[i] == nil {
			return Event{}, fmt.Errorf("reconfig: successor region %q vanished", name)
		}
	}

	// Flip.
	if en.Step < StepTableFlip {
		var epoch int64
		var err error
		if mv.Kind == MoveMerge {
			epoch, err = rt.InstallMergeSuccessor(mv.Shard, mv.Shard2, succs[0])
		} else {
			epoch, err = rt.InstallSuccessors(mv.Shard, succs)
		}
		if err != nil {
			c.retireRegions(en.Successors)
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		flipStep := set.Cluster().LogicalTime()
		if !c.advance(en, owner, StepTableFlip, func(st *MoveState) { st.Epoch, st.FlipStep = epoch, flipStep }) {
			return Event{}, errSuperseded
		}
	}
	ev := eventOf(en.MoveState)

	// abort rolls a flipped-but-not-activated move back via the resumable,
	// checkpointed rollback (driveAbort): writes were held for the successors
	// throughout, so no client state can have reached them.
	abort := func(cause error) (Event, error) {
		return c.driveAbort(r, en, owner, ev, cause)
	}

	// Drain in-flight writes on every source.
	if en.Step < StepDrain {
		if err := r.Wait(func() bool { return c.writesDrained(en.Sources) }); err != nil {
			return c.stepErr(en, owner, ev, err, abort)
		}
		if !c.advance(en, owner, StepDrain, nil) {
			return ev, errSuperseded
		}
	}

	// Choose the migrated value and record it in the ledger before issuing
	// any seed RMW. The drained sources are not perfectly frozen — a crashed
	// client's late-landing RMW may still apply between interrupted attempts
	// — so a resumed driver must never re-read: all seed attempts have to
	// write the identical value, or the fixed seed timestamp would pin two
	// different values at once.
	if en.Step < StepChooseValue {
		winner := en.Sources[0]
		var latest value.Value
		if mv.Kind == MoveMerge {
			// Order the two latest values by (installation epoch, timestamp) —
			// the dual-epoch read's rule — breaking full ties toward the
			// lexicographically smaller shard name.
			type cand struct {
				v     value.Value
				ts    register.Timestamp
				epoch int64
				name  string
			}
			cands := make([]cand, len(srcs))
			for i, src := range srcs {
				v, ts, err := latestOf(r, src)
				if err != nil {
					return c.stepErr(en, owner, ev, err, abort)
				}
				cands[i] = cand{v: v, ts: ts, epoch: rt.RouteOf(src.Name).InstalledAt(), name: src.Name}
			}
			win := cands[0]
			for _, cd := range cands[1:] {
				switch {
				case win.epoch != cd.epoch:
					if cd.epoch > win.epoch {
						win = cd
					}
				case win.ts != cd.ts:
					if win.ts.Less(cd.ts) {
						win = cd
					}
				case cd.name < win.name:
					win = cd
				}
			}
			winner, latest = win.name, win.v
			if !c.owns(en, owner) {
				return ev, errSuperseded
			}
			if err := rt.SetMergeWinner(succs[0].Name, winner); err != nil {
				return abort(err)
			}
		} else {
			v, _, err := latestOf(r, srcs[0])
			if err != nil {
				return c.stepErr(en, owner, ev, err, abort)
			}
			latest = v
		}
		if !c.advance(en, owner, StepChooseValue, func(st *MoveState) {
			st.Winner, st.SeedValue, st.SeedChosen = winner, latest, true
		}) {
			return ev, errSuperseded
		}
	}

	// Seed every successor with the recorded value before activating any: the
	// activation below is pure table work and cannot fail, so the move is
	// all-or-nothing.
	if en.Step < StepSeed {
		latest, ok := c.seedValue(en)
		if !ok {
			return abort(fmt.Errorf("ledger entry reached seeding with no recorded value"))
		}
		for _, sh := range succs {
			if err := seedInto(r, sh, latest); err != nil {
				return c.stepErr(en, owner, ev, err, abort)
			}
		}
		if !c.advance(en, owner, StepSeed, nil) {
			return ev, errSuperseded
		}
	}

	// Activate.
	if en.Step < StepActivate {
		if !c.owns(en, owner) {
			return ev, errSuperseded
		}
		for _, sh := range succs {
			rt.MarkSeeded(sh.Name)
		}
		if !c.advance(en, owner, StepActivate, nil) {
			return ev, errSuperseded
		}
	}

	// Retire the drained sources once their fallback readers are gone. Past
	// activation the move can no longer abort — only an interruption (driver
	// death) can stop it, and Resume finishes the retirement.
	if en.Step < StepRetire {
		if err := r.Wait(func() bool { return c.readsDrained(en.Sources) }); err != nil {
			return c.interrupt(en, owner, ev, err)
		}
		if !c.owns(en, owner) {
			return ev, errSuperseded
		}
		for _, name := range en.Sources {
			if err := set.RetireShard(name); err != nil {
				// Leave the entry resumable rather than wedged: it is neither
				// done nor cleanly rolled back.
				return c.interrupt(en, owner, ev, err)
			}
		}
		if !c.advance(en, owner, StepRetire, nil) {
			return ev, errSuperseded
		}
	}
	if !c.finish(en, owner, ev, len(succs)) {
		return ev, errSuperseded
	}
	return ev, nil
}

// driveAdd executes (or resumes) the dedicated-fork protocol: install a
// dedicated shard for exactly the move's key, forked from the register the
// key routes to. The origin keeps serving its other keys (it is not
// drained): the fork point is the origin's latest value at seed time.
func (c *Coordinator) driveAdd(r Runner, en *moveEntry, owner int64) (Event, error) {
	set, rt := c.set, c.set.Router()
	key := en.Move.Shard

	if en.Step < StepGrowRegions {
		origin := set.ForKey(key)
		if _, err := asTimestamped(origin); err != nil {
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		sh, err := set.AddRegion(shard.Spec{Name: key, Algorithm: origin.Algorithm, Config: origin.Reg.Config()})
		if err != nil {
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		if _, ok := sh.Reg.(register.SeedWriter); !ok {
			err := fmt.Errorf("successor %q (register %s): %w", sh.Name, sh.Reg.Name(), ErrNoSeedWriter)
			c.retireRegions([]string{sh.Name})
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		if !c.advance(en, owner, StepGrowRegions, func(st *MoveState) { st.Successors = []string{key} }) {
			return Event{}, errSuperseded
		}
	}
	succ := set.Region(key)
	if succ == nil {
		return Event{}, fmt.Errorf("reconfig: successor region %q vanished", key)
	}

	if en.Step < StepTableFlip {
		originRoute, epoch, err := rt.InstallDedicated(succ)
		if err != nil {
			rt.MarkRetired(succ.Name)
			_ = set.Cluster().RetireObjects(succ.Base, succ.Span)
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		flipStep := set.Cluster().LogicalTime()
		if !c.advance(en, owner, StepTableFlip, func(st *MoveState) {
			st.Sources = []string{originRoute.Shard().Name}
			st.Epoch, st.FlipStep = epoch, flipStep
		}) {
			return Event{}, errSuperseded
		}
	}
	ev := eventOf(en.MoveState)
	originName := en.Sources[0]
	originSh := set.Shard(originName)
	// abort rolls the flipped fork back via the resumable, checkpointed
	// rollback. driveAbort releases the origin's write hold itself, so the
	// pre-hold and post-hold failure paths share one rollback.
	abort := func(cause error) (Event, error) {
		return c.driveAbort(r, en, owner, ev, cause)
	}

	// The fork read must supersede every completed write to the key, and a
	// write pinned to the origin pre-flip could still be in flight. The origin
	// stays routed for its other keys, so it cannot be drained by starvation
	// alone: hold its new write admissions, wait out the in-flight ones, read
	// the settled value, then reopen. Reads are unaffected throughout.
	//
	// The hold is lifted only when the move ends — completion or abort. An
	// interrupted driver leaves it in place: releasing on interruption would
	// admit writes in the gap before Resume takes over, and a gap write still
	// in flight when the resumed driver reads the fork point could complete
	// into the origin after the seed captured an older value. Resume
	// re-asserts the hold (idempotent) and re-waits the drain regardless of
	// the recorded step for the same reason.
	if !c.owns(en, owner) {
		return ev, errSuperseded
	}
	if err := rt.HoldWrites(originName); err != nil {
		return abort(err)
	}
	if err := r.Wait(func() bool { return c.writesDrained([]string{originName}) }); err != nil {
		return c.stepErr(en, owner, ev, err, abort)
	}
	if !c.advance(en, owner, StepDrain, nil) {
		return ev, errSuperseded
	}
	if en.Step < StepChooseValue {
		latest, _, err := latestOf(r, originSh)
		if err != nil {
			return c.stepErr(en, owner, ev, err, abort)
		}
		if !c.advance(en, owner, StepChooseValue, func(st *MoveState) {
			st.Winner, st.SeedValue, st.SeedChosen = originName, latest, true
		}) {
			return ev, errSuperseded
		}
	}
	if en.Step < StepSeed {
		latest, ok := c.seedValue(en)
		if !ok {
			return abort(fmt.Errorf("ledger entry reached seeding with no recorded value"))
		}
		if err := seedInto(r, succ, latest); err != nil {
			return c.stepErr(en, owner, ev, err, abort)
		}
		if !c.advance(en, owner, StepSeed, nil) {
			return ev, errSuperseded
		}
	}
	if en.Step < StepActivate {
		if !c.owns(en, owner) {
			return ev, errSuperseded
		}
		rt.MarkSeeded(succ.Name)
		if !c.advance(en, owner, StepActivate, nil) {
			return ev, errSuperseded
		}
	}
	if !c.finish(en, owner, ev, 1) {
		return ev, errSuperseded
	}
	rt.ReleaseHold(originName)
	return ev, nil
}

// driveRemove executes (or resumes) the drop of a dedicated shard: its key
// rejoins hash routing and the dedicated register is discarded once drained.
func (c *Coordinator) driveRemove(r Runner, en *moveEntry, owner int64) (Event, error) {
	set, rt := c.set, c.set.Router()
	name := en.Move.Shard
	if set.Shard(name) == nil {
		cause := fmt.Errorf("%w %q", shard.ErrUnknownShard, name)
		c.markAborted(en, owner, cause)
		return Event{}, cause
	}

	if en.Step < StepTableFlip {
		epoch, err := rt.UnrouteDedicated(name)
		if err != nil {
			c.markAborted(en, owner, err)
			return Event{}, err
		}
		flipStep := set.Cluster().LogicalTime()
		if !c.advance(en, owner, StepTableFlip, func(st *MoveState) { st.Epoch, st.FlipStep = epoch, flipStep }) {
			return Event{}, errSuperseded
		}
	}
	ev := eventOf(en.MoveState)

	// No rollback exists past the unroute (the key already rehashed); every
	// failure from here is an interruption Resume finishes.
	if en.Step < StepDrain {
		err := r.Wait(func() bool {
			return c.writesDrained([]string{name}) && c.readsDrained([]string{name})
		})
		if err != nil {
			return c.interrupt(en, owner, ev, err)
		}
		if !c.advance(en, owner, StepDrain, nil) {
			return ev, errSuperseded
		}
	}
	if en.Step < StepRetire {
		if !c.owns(en, owner) {
			return ev, errSuperseded
		}
		if err := set.RetireShard(name); err != nil {
			return c.interrupt(en, owner, ev, err)
		}
		// Unregister the route so the key can be forked onto a fresh dedicated
		// shard again later.
		if err := rt.DeleteRetiredRoute(name); err != nil {
			return c.interrupt(en, owner, ev, err)
		}
		if !c.advance(en, owner, StepRetire, nil) {
			return ev, errSuperseded
		}
	}
	if !c.finish(en, owner, ev, 0) {
		return ev, errSuperseded
	}
	return ev, nil
}
