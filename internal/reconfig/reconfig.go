// Package reconfig is the epoch-based dynamic-reconfiguration subsystem: it
// executes elastic resharding moves — splitting a shard across fresh
// base-object regions, draining a shard onto replacement nodes, adding a
// dedicated shard for a hot key, removing one — against a live shard.Set with
// state migrated, not lost.
//
// The migration protocol for a split or drain of shard S into successors
// S/0..S/m is:
//
//  1. Grow: build the successor registers and extend the cluster with their
//     regions (dsys.ExtendObjects). They are not routed yet.
//  2. Flip: atomically install the successors as seeding routes and mark S
//     draining (Router.InstallSuccessors — one epoch). From here on, writes
//     for S's keys are held for the successors and reads consult both
//     epochs, preferring the successor exactly when its register has a
//     nonzero timestamp.
//  3. Drain: wait until no live client has a write pinned to S. Writes by
//     crashed clients are excluded — they are incomplete operations, which
//     the consistency conditions treat as concurrent with everything after
//     their invocation, so the migration may miss them.
//  4. Replay: the migration writer reads S's latest value — the drain
//     guarantees it supersedes every completed write — and writes it into
//     each successor. Because writes were held, the seed is each successor's
//     first write; every later client write strictly supersedes it, so
//     regularity across the boundary reduces to ordinary write ordering
//     inside the successor's register. Seed writes are not recorded in
//     histories: a read returning the migrated value is justified by the
//     original write in the predecessor's history.
//  5. Activate: mark every successor seeded (writes admitted, reads stop
//     consulting S), wait for S's fallback reads to drain, retire S's region
//     (its bits leave the storage accounting with the nodes).
//
// The executor is mode-agnostic: a Runner supplies the two capabilities that
// differ between the live store and the deterministic simulator — running a
// register operation as the migration client against a region, and waiting
// for a condition. The live runner blocks; the controlled runner yields to
// the scheduler, which keeps simulation runs a pure function of the seed.
package reconfig

import (
	"fmt"
	"sync"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// MoveKind enumerates reconfiguration moves.
type MoveKind int

// Move kinds.
const (
	// MoveSplit replaces one shard by two successors on fresh regions; its
	// keyspace is re-partitioned between them and its latest value is
	// migrated into both.
	MoveSplit MoveKind = iota + 1
	// MoveDrain replaces one shard by a single successor on a fresh region
	// (same routing position): evacuate the nodes, keep the data.
	MoveDrain
	// MoveAdd installs a dedicated shard for exactly one key, forked from the
	// register the key currently routes to.
	MoveAdd
	// MoveRemove drops a dedicated shard; its key rejoins hash routing and
	// the dedicated register's value is discarded with its namespace.
	MoveRemove
)

// String implements fmt.Stringer.
func (k MoveKind) String() string {
	switch k {
	case MoveSplit:
		return "split"
	case MoveDrain:
		return "drain"
	case MoveAdd:
		return "add"
	case MoveRemove:
		return "remove"
	default:
		return fmt.Sprintf("move(%d)", int(k))
	}
}

// Move is one reconfiguration move: the kind and the target shard (for
// MoveAdd, the key the dedicated shard will serve).
type Move struct {
	Kind  MoveKind
	Shard string
}

// String implements fmt.Stringer.
func (m Move) String() string { return fmt.Sprintf("%v %s", m.Kind, m.Shard) }

// Plan is an ordered sequence of moves.
type Plan struct {
	Moves []Move
}

// Event records one applied move for introspection, fingerprints and tests.
type Event struct {
	Kind       MoveKind
	Shard      string
	Successors []string
	// Epoch is the routing epoch the move's flip installed.
	Epoch int64
	// Step is the cluster's logical time at the flip.
	Step int64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("epoch %d step %d: %v %s -> %v", e.Epoch, e.Step, e.Kind, e.Shard, e.Successors)
}

// Stats aggregates the subsystem's counters.
type Stats struct {
	// Epoch is the current routing epoch.
	Epoch int64
	// Splits, Drains, Adds, Removes count completed moves.
	Splits, Drains, Adds, Removes int
	// SeedWrites counts migration-writer replays into successors.
	SeedWrites int
	// FallbackReads counts dual-epoch reads answered by the old epoch.
	FallbackReads int64
	// HeldWrites counts write acquisitions that waited for a seeding
	// successor.
	HeldWrites int64
}

// Runner supplies the execution context for migration steps. The live store
// and the deterministic simulator differ only here.
type Runner interface {
	// RunOn executes fn as the migration client scoped to sh's object region.
	RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error
	// Wait blocks until check() reports true. Controlled-mode runners yield
	// to the scheduler between checks so the wait is itself schedulable.
	Wait(check func() bool) error
}

// liveRunner runs migration steps inline against a live-mode set.
type liveRunner struct {
	set    *shard.Set
	client int
}

// NewLiveRunner returns a Runner for a live-mode set; client is the migration
// writer's client ID (it must not collide with application client IDs, since
// it stamps the seed writes' timestamps).
func NewLiveRunner(set *shard.Set, client int) Runner {
	return &liveRunner{set: set, client: client}
}

// RunOn implements Runner.
func (r *liveRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	return r.set.Run(r.client, sh, fn)
}

// Wait implements Runner: live drains complete in microseconds (pins are
// released as each in-flight quorum round finishes), so a short poll is all
// that is needed.
func (r *liveRunner) Wait(check func() bool) error {
	for !check() {
		time.Sleep(20 * time.Microsecond)
	}
	return nil
}

// controlledRunner runs migration steps as a controlled-mode client task,
// yielding to the scheduling policy between condition checks. Everything it
// does is therefore part of the deterministic schedule.
type controlledRunner struct {
	h *dsys.ClientHandle
}

// NewControlledRunner returns a Runner backed by a controlled-mode task's
// whole-cluster handle (the migration steps derive region scopes via Sub).
func NewControlledRunner(h *dsys.ClientHandle) Runner {
	return &controlledRunner{h: h}
}

// RunOn implements Runner.
func (r *controlledRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	sub, err := r.h.Sub(sh.Base, sh.Span)
	if err != nil {
		return err
	}
	return fn(sub)
}

// Wait implements Runner.
func (r *controlledRunner) Wait(check func() bool) error {
	for !check() {
		if err := r.h.Yield(); err != nil {
			return err
		}
	}
	return nil
}

// Coordinator executes moves against one shard.Set and aggregates events and
// stats. Moves are serialized (each atomically rewrites part of the routing
// table).
type Coordinator struct {
	set *shard.Set

	mu     sync.Mutex
	stats  Stats
	events []Event
}

// NewCoordinator returns a coordinator for the set.
func NewCoordinator(set *shard.Set) *Coordinator { return &Coordinator{set: set} }

// Stats returns the aggregated counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	st.Epoch = c.set.Router().Epoch()
	st.FallbackReads = c.set.FallbackReads()
	st.HeldWrites = c.set.Router().HeldWrites()
	return st
}

// Events returns the applied moves in order.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// ApplyPlan applies the plan's moves in order, stopping at the first error.
func (c *Coordinator) ApplyPlan(r Runner, p Plan) error {
	for _, mv := range p.Moves {
		if _, err := c.Apply(r, mv); err != nil {
			return fmt.Errorf("reconfig: %v: %w", mv, err)
		}
	}
	return nil
}

// Apply executes one move and returns its event.
func (c *Coordinator) Apply(r Runner, mv Move) (Event, error) {
	switch mv.Kind {
	case MoveSplit:
		return c.migrate(r, mv.Shard, 2, MoveSplit)
	case MoveDrain:
		return c.migrate(r, mv.Shard, 1, MoveDrain)
	case MoveAdd:
		return c.add(r, mv.Shard)
	case MoveRemove:
		return c.remove(r, mv.Shard)
	default:
		return Event{}, fmt.Errorf("reconfig: unknown move kind %v", mv.Kind)
	}
}

// freeName returns base, or — when an earlier aborted migration already
// burned it (aborted successors stay registered as retired routes) — the
// first free "base~N" variant, so a shard can always be migrated again after
// an abort.
func freeName(set *shard.Set, base string) string {
	name := base
	for n := 2; set.Router().RouteOf(name) != nil; n++ {
		name = fmt.Sprintf("%s~%d", base, n)
	}
	return name
}

// crashedClients returns the scheduler-crashed client set (empty in live
// mode); drains exclude their unreleasable pins.
func (c *Coordinator) crashedClients() map[int]bool {
	out := make(map[int]bool)
	for _, cl := range c.set.Cluster().CrashedClients() {
		out[cl] = true
	}
	return out
}

// record appends an event and bumps the per-kind counter.
func (c *Coordinator) record(ev Event, seeds int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	c.stats.SeedWrites += seeds
	switch ev.Kind {
	case MoveSplit:
		c.stats.Splits++
	case MoveDrain:
		c.stats.Drains++
	case MoveAdd:
		c.stats.Adds++
	case MoveRemove:
		c.stats.Removes++
	}
}

// migrate is the shared split/drain protocol: replace shard `name` by
// `successors` fresh regions with its latest value replayed into each.
func (c *Coordinator) migrate(r Runner, name string, successors int, kind MoveKind) (Event, error) {
	set, rt := c.set, c.set.Router()
	if err := rt.BeginMove(); err != nil {
		return Event{}, err
	}
	defer rt.EndMove()

	old := set.Shard(name)
	if old == nil {
		return Event{}, fmt.Errorf("unknown shard %q", name)
	}
	if _, ok := old.Reg.(register.TimestampedReader); !ok {
		return Event{}, fmt.Errorf("shard %q: register %s cannot be migrated (no timestamped read)", name, old.Reg.Name())
	}

	// Grow: successor regions exist before the flip so the flip is purely a
	// table swap.
	succs := make([]*shard.Shard, 0, successors)
	retireSuccs := func() {
		for _, sh := range succs {
			rt.MarkRetired(sh.Name)
			_ = set.Cluster().RetireObjects(sh.Base, sh.Span)
		}
	}
	for i := 0; i < successors; i++ {
		sh, err := set.AddRegion(shard.Spec{
			Name:      freeName(set, fmt.Sprintf("%s/%d", name, i)),
			Algorithm: old.Algorithm,
			Config:    old.Reg.Config(),
		})
		if err != nil {
			retireSuccs()
			return Event{}, err
		}
		succs = append(succs, sh)
	}

	// Flip.
	epoch, err := rt.InstallSuccessors(name, succs)
	if err != nil {
		retireSuccs()
		return Event{}, err
	}
	ev := Event{Kind: kind, Shard: name, Epoch: epoch, Step: set.Cluster().LogicalTime()}
	for _, sh := range succs {
		ev.Successors = append(ev.Successors, sh.Name)
	}
	abort := func(cause error) (Event, error) {
		rt.AbortSuccessors(name)
		for _, sh := range succs {
			_ = set.Cluster().RetireObjects(sh.Base, sh.Span)
		}
		return ev, fmt.Errorf("migration of %q aborted: %w", name, cause)
	}

	// Drain in-flight writes, then replay the latest value.
	if err := r.Wait(func() bool { return rt.WritesDrained(name, c.crashedClients()) }); err != nil {
		return abort(err)
	}
	var latest value.Value
	if err := r.RunOn(old, func(h *dsys.ClientHandle) error {
		var err error
		latest, err = old.Reg.Read(h)
		return err
	}); err != nil {
		return abort(err)
	}

	// Seed every successor before activating any: the activation below is
	// pure table work and cannot fail, so the move is all-or-nothing.
	for _, sh := range succs {
		sh := sh
		if err := r.RunOn(sh, func(h *dsys.ClientHandle) error {
			return sh.Reg.Write(h, latest)
		}); err != nil {
			return abort(err)
		}
	}
	for _, sh := range succs {
		rt.MarkSeeded(sh.Name)
	}

	// Retire the drained predecessor once its fallback readers are gone.
	if err := r.Wait(func() bool { return rt.ReadsDrained(name, c.crashedClients()) }); err != nil {
		return ev, err
	}
	if err := set.RetireShard(name); err != nil {
		return ev, err
	}
	c.record(ev, len(succs))
	return ev, nil
}

// add installs a dedicated shard for exactly `key`, forked from the register
// the key routes to today. The origin keeps serving its other keys (it is not
// drained): the fork point is the origin's latest value at seed time.
func (c *Coordinator) add(r Runner, key string) (Event, error) {
	set, rt := c.set, c.set.Router()
	if err := rt.BeginMove(); err != nil {
		return Event{}, err
	}
	defer rt.EndMove()

	origin := set.ForKey(key)
	sh, err := set.AddRegion(shard.Spec{Name: key, Algorithm: origin.Algorithm, Config: origin.Reg.Config()})
	if err != nil {
		return Event{}, err
	}
	originRoute, epoch, err := rt.InstallDedicated(sh)
	if err != nil {
		rt.MarkRetired(sh.Name)
		_ = set.Cluster().RetireObjects(sh.Base, sh.Span)
		return Event{}, err
	}
	ev := Event{Kind: MoveAdd, Shard: key, Successors: []string{sh.Name}, Epoch: epoch, Step: set.Cluster().LogicalTime()}
	abort := func(cause error) (Event, error) {
		rt.AbortDedicated(sh.Name)
		_ = set.Cluster().RetireObjects(sh.Base, sh.Span)
		// Free the key for a retry: a dedicated shard's name must equal its
		// key, so the burned route has to be unregistered, not suffixed.
		_ = rt.DeleteRetiredRoute(sh.Name)
		return ev, fmt.Errorf("add of %q aborted: %w", key, cause)
	}

	// The fork read must supersede every completed write to the key, and a
	// write pinned to the origin pre-flip could still be in flight. The origin
	// stays routed for its other keys, so it cannot be drained by starvation
	// alone: hold its new write admissions, wait out the in-flight ones, read
	// the settled value, then reopen. Reads are unaffected throughout.
	originName := originRoute.Shard().Name
	if err := rt.HoldWrites(originName); err != nil {
		return abort(err)
	}
	defer rt.ReleaseHold(originName)
	if err := r.Wait(func() bool { return rt.WritesDrained(originName, c.crashedClients()) }); err != nil {
		return abort(err)
	}
	var latest value.Value
	if err := r.RunOn(originRoute.Shard(), func(h *dsys.ClientHandle) error {
		var err error
		latest, err = originRoute.Shard().Reg.Read(h)
		return err
	}); err != nil {
		return abort(err)
	}
	if err := r.RunOn(sh, func(h *dsys.ClientHandle) error { return sh.Reg.Write(h, latest) }); err != nil {
		return abort(err)
	}
	rt.MarkSeeded(sh.Name)
	c.record(ev, 1)
	return ev, nil
}

// remove drops a dedicated shard: its key rejoins hash routing and the
// dedicated register is discarded once drained.
func (c *Coordinator) remove(r Runner, name string) (Event, error) {
	set, rt := c.set, c.set.Router()
	if err := rt.BeginMove(); err != nil {
		return Event{}, err
	}
	defer rt.EndMove()

	sh := set.Shard(name)
	if sh == nil {
		return Event{}, fmt.Errorf("unknown shard %q", name)
	}
	epoch, err := rt.UnrouteDedicated(name)
	if err != nil {
		return Event{}, err
	}
	ev := Event{Kind: MoveRemove, Shard: name, Epoch: epoch, Step: set.Cluster().LogicalTime()}
	drained := func() bool {
		crashed := c.crashedClients()
		return rt.WritesDrained(name, crashed) && rt.ReadsDrained(name, crashed)
	}
	if err := r.Wait(drained); err != nil {
		return ev, err
	}
	if err := set.RetireShard(name); err != nil {
		return ev, err
	}
	// Unregister the route so the key can be forked onto a fresh dedicated
	// shard again later.
	if err := rt.DeleteRetiredRoute(name); err != nil {
		return ev, err
	}
	c.record(ev, 0)
	return ev, nil
}
