package reconfig

import (
	"fmt"
)

// MoveJournal is the durability hook for the move ledger: every ledger
// transition re-records the entry's full encoded state keyed by its ID, so
// the journal needs to keep only the latest record per move to reconstruct
// the ledger. The coordinator encodes the record itself (EncodeMoveState);
// the journal stores opaque bytes and never imports this package.
type MoveJournal interface {
	RecordMove(id int, encoded []byte)
}

// moveJournalHolder wraps the interface so one atomic pointer swap attaches
// or detaches it (same pattern as the metrics registry).
type moveJournalHolder struct{ j MoveJournal }

// SetJournal attaches a move journal (nil detaches). Attach before applying
// moves; transitions racing the attachment may not be recorded.
func (c *Coordinator) SetJournal(j MoveJournal) {
	if j == nil {
		c.jour.Store(nil)
		return
	}
	c.jour.Store(&moveJournalHolder{j: j})
}

// recordLocked journals the entry's current state. Callers hold c.mu, which
// is what orders records with ledger transitions.
func (c *Coordinator) recordLocked(en *moveEntry) {
	if h := c.jour.Load(); h != nil {
		h.j.RecordMove(en.ID, EncodeMoveState(en.MoveState))
	}
}

// RestoreLedger rebuilds the move ledger from journaled records, in ID order.
// It is called once, on an empty coordinator, before any move is applied.
//
// Restoration is conservative about what survives a full process restart with
// the *initial* layout. A completed or table-flipped move changed the routing
// table and region set in ways a fresh process does not reproduce, so:
//
//   - any Done entry is an error — the journal proves the layout diverged
//     from the initial one; reopen with the final layout or remove the WAL;
//   - an entry that was mid-rollback (Aborting) is finalized as aborted: its
//     successor regions died with the process before any client state could
//     reach them, and the fresh process rebuilds the pre-move table, which is
//     exactly the state the rollback was driving toward;
//   - an in-flight entry at StepTableFlip or later is an error for the same
//     reason (writes may live only in successor regions that no longer
//     exist);
//   - an in-flight entry at StepGrowRegions is aborted here: its successor
//     regions died with the process, but the routing table never flipped, so
//     the pre-move layout is intact and the abort is clean;
//   - an in-flight entry at StepPlanned stays interrupted and re-drivable;
//   - aborted entries are kept as history.
func (c *Coordinator) RestoreLedger(states []MoveState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ledger) != 0 {
		return fmt.Errorf("reconfig: RestoreLedger on a non-empty ledger")
	}
	for _, m := range states {
		switch {
		case m.Done:
			return fmt.Errorf("reconfig: journal records completed move %d (%v); the journaled layout diverged from the initial one — reopen with the final layout or remove the WAL", m.ID, m.Move)
		case !m.Aborted && m.Aborting:
			// The driver died mid-rollback. The restart finished the rollback
			// wholesale: the successor regions died with the process, no client
			// state ever reached them (writes were held for the successors
			// throughout the abort window), and the fresh process rebuilds the
			// pre-move table. Finalize the abort and keep it as history.
			m.Aborted = true
			m.Interrupted = false
		case !m.Aborted && m.Step >= StepTableFlip:
			return fmt.Errorf("reconfig: journal records move %d (%v) past the table flip (step %v); its regions did not survive the restart — remove the WAL to start over", m.ID, m.Move, m.Step)
		case !m.Aborted && m.Step == StepGrowRegions:
			// The successor regions died with the process but the table never
			// flipped: abort cleanly and journal the abort.
			m.Aborted = true
			m.Interrupted = false
			m.AbortReason = "not resumable across process restart: successor regions were lost"
		}
		en := &moveEntry{MoveState: m}
		c.ledger = append(c.ledger, en)
		if m.ID > c.nextID {
			c.nextID = m.ID
		}
		if m.Aborted {
			c.stats.Aborts++
		}
		c.stats.Resumes += m.Resumes
		if en.InFlight() {
			if c.inFlight != nil {
				return fmt.Errorf("reconfig: journal records two in-flight moves (%d and %d)", c.inFlight.ID, en.ID)
			}
			en.Interrupted = true
			c.inFlight = en
		}
		c.recordLocked(en)
	}
	return nil
}
