package reconfig

import (
	"strings"
	"sync"
	"testing"
)

// recMoveJournal records every journaled ledger transition, latest-last.
type recMoveJournal struct {
	mu      sync.Mutex
	records map[int][][]byte
}

func (j *recMoveJournal) RecordMove(id int, encoded []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.records == nil {
		j.records = map[int][][]byte{}
	}
	j.records[id] = append(j.records[id], append([]byte(nil), encoded...))
}

func (j *recMoveJournal) latest(id int) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	recs := j.records[id]
	if len(recs) == 0 {
		return nil
	}
	return recs[len(recs)-1]
}

// TestJournalRecordsMoveTransitions: with a journal attached, a real split
// journals every ledger transition and the final record decodes as Done.
// Detaching stops recording.
func TestJournalRecordsMoveTransitions(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	j := &recMoveJournal{}
	co.SetJournal(j)
	if _, err := co.Apply(NewLiveRunner(set, 1<<28), Move{Kind: MoveSplit, Shard: "s0"}); err != nil {
		t.Fatal(err)
	}
	rec := j.latest(1)
	if rec == nil {
		t.Fatal("journal saw no records for move 1")
	}
	m, err := DecodeMoveState(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done || m.ID != 1 || m.Move.Kind != MoveSplit {
		t.Fatalf("final record = %+v, want Done split #1", m)
	}

	co.SetJournal(nil)
	if _, err := co.Apply(NewLiveRunner(set, 1<<28), Move{Kind: MoveDrain, Shard: "s1"}); err != nil {
		t.Fatal(err)
	}
	if j.latest(2) != nil {
		t.Fatal("detached journal still received records")
	}
}

// TestRestoreLedgerRules exercises each restoration rule: completed and
// table-flipped entries refuse restoration, grow-stage entries abort cleanly,
// planned entries stay interrupted and in flight, aborted history is kept,
// and malformed journals (two in-flight, non-empty ledger) are rejected.
func TestRestoreLedgerRules(t *testing.T) {
	restore := func(t *testing.T, states ...MoveState) (*Coordinator, *recMoveJournal, error) {
		t.Helper()
		set := newSet(t, 2)
		t.Cleanup(func() { set.Close() })
		co := NewCoordinator(set)
		j := &recMoveJournal{}
		co.SetJournal(j)
		return co, j, co.RestoreLedger(states)
	}
	split := Move{Kind: MoveSplit, Shard: "s0"}

	t.Run("done is an error", func(t *testing.T) {
		_, _, err := restore(t, MoveState{ID: 1, Move: split, Done: true, Step: StepRetire})
		if err == nil || !strings.Contains(err.Error(), "completed move") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("past table flip is an error", func(t *testing.T) {
		_, _, err := restore(t, MoveState{ID: 1, Move: split, Step: StepTableFlip})
		if err == nil || !strings.Contains(err.Error(), "past the table flip") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("grow stage aborts cleanly", func(t *testing.T) {
		co, j, err := restore(t, MoveState{ID: 1, Move: split, Step: StepGrowRegions, Interrupted: true})
		if err != nil {
			t.Fatal(err)
		}
		if fl := co.InFlight(); fl != nil {
			t.Fatalf("in-flight after auto-abort: %+v", fl)
		}
		led := co.Ledger()
		if len(led) != 1 || !led[0].Aborted || !strings.Contains(led[0].AbortReason, "successor regions were lost") {
			t.Fatalf("ledger = %+v", led)
		}
		if co.Stats().Aborts != 1 {
			t.Fatalf("Aborts = %d, want 1", co.Stats().Aborts)
		}
		// The abort itself was re-journaled.
		m, err := DecodeMoveState(j.latest(1))
		if err != nil || !m.Aborted {
			t.Fatalf("journaled record = %+v, %v", m, err)
		}
	})
	t.Run("planned stays interrupted and re-drivable", func(t *testing.T) {
		co, _, err := restore(t,
			MoveState{ID: 1, Move: split, Aborted: true, AbortReason: "old history", Resumes: 2},
			MoveState{ID: 3, Move: split, Sources: []string{"s0"}, Step: StepPlanned},
		)
		if err != nil {
			t.Fatal(err)
		}
		fl := co.InFlight()
		if fl == nil || fl.ID != 3 || !fl.Interrupted {
			t.Fatalf("in-flight = %+v, want interrupted move 3", fl)
		}
		if got := co.Stats(); got.Aborts != 1 || got.Resumes != 2 {
			t.Fatalf("stats = %+v", got)
		}
		// The restored entry is re-drivable: resuming completes the split.
		resumed, ev, err := co.Resume(NewLiveRunner(co.set, 1<<28))
		if err != nil || !resumed || ev.Kind != MoveSplit {
			t.Fatalf("Resume = %v, %+v, %v", resumed, ev, err)
		}
	})
	t.Run("two in-flight is an error", func(t *testing.T) {
		_, _, err := restore(t,
			MoveState{ID: 1, Move: split, Step: StepPlanned},
			MoveState{ID: 2, Move: split, Step: StepPlanned},
		)
		if err == nil || !strings.Contains(err.Error(), "two in-flight moves") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("non-empty ledger is an error", func(t *testing.T) {
		co, _, err := restore(t, MoveState{ID: 1, Move: split, Aborted: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := co.RestoreLedger(nil); err == nil || !strings.Contains(err.Error(), "non-empty ledger") {
			t.Fatalf("second restore: err = %v", err)
		}
	})
}
