package reconfig

import (
	"time"

	"spacebounds/internal/trace"
)

// SetTracer attaches (or, with nil, detaches) a tracer. Each move then gets
// its own trace — moves are rare and operator-initiated, so every one is
// traced regardless of the op sampling rate — with one StageReconfig span per
// completed ledger step, noted with the step name. Scraping /debug/trace
// while a migration runs shows which step a stalled move is stuck in.
func (c *Coordinator) SetTracer(tr *trace.Tracer) { c.trc.Store(tr) }

// Tracer returns the attached tracer, or nil.
func (c *Coordinator) Tracer() *trace.Tracer { return c.trc.Load() }

// beginTraceLocked opens a fresh trace for a newly begun move. Caller holds
// c.mu.
func (c *Coordinator) beginTraceLocked(en *moveEntry) {
	if tr := c.trc.Load(); tr != nil {
		en.traceCtx = trace.Context{Trace: tr.SpanID()}
	}
}

// traceStepLocked records one completed ledger step as a StageReconfig span
// on the move's trace. Caller holds c.mu; en.stepStart is the instant the
// previous step completed (zero when the move predates instrumentation).
func (c *Coordinator) traceStepLocked(en *moveEntry, step MoveStep) {
	tr := c.trc.Load()
	if tr == nil || !en.traceCtx.Sampled() || en.stepStart.IsZero() {
		return
	}
	tr.Record(trace.Span{
		Trace:    en.traceCtx.Trace,
		ID:       tr.SpanID(),
		Parent:   en.traceCtx.Span,
		Stage:    trace.StageReconfig,
		Shard:    en.Move.Shard,
		Note:     step.String(),
		Start:    en.stepStart,
		Duration: time.Since(en.stepStart),
	})
}

// timingStepsLocked reports whether step completion times are being consumed
// (by the metrics layer, the tracer, or both), so the step clock should run.
func (c *Coordinator) timingStepsLocked() bool {
	return c.met.Load() != nil || c.trc.Load() != nil
}
