package reconfig

import (
	"fmt"
	"strings"
	"time"

	"spacebounds/internal/trace"
	"spacebounds/internal/value"
)

// MoveStep enumerates the migration protocol's steps in execution order. The
// per-move ledger records the last *completed* step, so a controller crash at
// any point leaves a record from which Resume can re-drive the move
// idempotently: every step is either atomic with respect to controller
// crashes (pure table work executed between scheduling points) or replayable
// (waits re-wait, and the seed re-writes the ledger-recorded value at the
// fixed seed timestamp).
type MoveStep int

// Migration steps. Not every move uses every step: add skips Retire (its
// origin lives on), remove skips GrowRegions and Seed (nothing is migrated).
const (
	// StepPlanned: the ledger entry exists; nothing has been executed.
	StepPlanned MoveStep = iota
	// StepGrowRegions: successor regions are built and recorded in the entry.
	StepGrowRegions
	// StepTableFlip: the routing table atomically installed the successors
	// (seeding) and marked the sources draining.
	StepTableFlip
	// StepDrain: no live client holds a write pinned to any source.
	StepDrain
	// StepChooseValue: the migrated value (and, for a merge, the
	// value-ordering winner) is read from the drained sources and recorded in
	// the entry. Recording happens before any seed RMW is issued: a crashed
	// client's late-landing RMW may still change a drained source between
	// interrupted attempts, so re-reading at resume could choose a different
	// value — every attempt that ever seeds must seed the recorded one.
	StepChooseValue
	// StepSeed: every successor received the recorded value at the fixed seed
	// timestamp.
	StepSeed
	// StepActivate: successors are active (writes admitted, reads single-epoch).
	StepActivate
	// StepRetire: sources are drained of readers and their regions retired;
	// the move is complete.
	StepRetire
)

// String implements fmt.Stringer.
func (s MoveStep) String() string {
	switch s {
	case StepPlanned:
		return "planned"
	case StepGrowRegions:
		return "grow-regions"
	case StepTableFlip:
		return "table-flip"
	case StepDrain:
		return "drain"
	case StepChooseValue:
		return "choose-value"
	case StepSeed:
		return "seed"
	case StepActivate:
		return "activate"
	case StepRetire:
		return "retire"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// MoveState is one ledger entry: everything Resume needs to re-drive an
// interrupted move from its last completed step, plus the outcome counters
// tests and fingerprints pin. It is the in-memory stand-in for a persisted
// migration log record.
type MoveState struct {
	// ID numbers ledger entries in creation order, starting at 1.
	ID int
	// Move is the move being executed.
	Move Move
	// Sources are the shard names being migrated away from (two for a merge;
	// for an add, the origin route resolved at flip time).
	Sources []string
	// Successors are the successor shard names, recorded when their regions
	// are grown.
	Successors []string
	// Winner is the merge value-ordering winner (empty for other kinds until
	// the value is chosen, equal to Sources[0] for single-source moves after
	// it).
	Winner string
	// SeedValue is the recorded migrated value, fixed before the first seed
	// RMW is issued so every (re-)seed attempt writes the identical value.
	SeedValue value.Value
	// SeedChosen reports whether SeedValue has been recorded (the zero value
	// is a legal register value, so presence needs its own flag).
	SeedChosen bool
	// Step is the last completed step.
	Step MoveStep
	// Epoch is the routing epoch the table flip installed (0 before the flip).
	Epoch int64
	// FlipStep is the cluster's logical time at the flip.
	FlipStep int64
	// Resumes counts how many times an interrupted execution of this move was
	// taken over by Resume.
	Resumes int
	// Interrupted marks a move whose driver died (the step failed with an
	// interruption, not a migration error); the entry stays in flight and
	// Resume may take it over.
	Interrupted bool
	// Aborting marks a move whose rollback has started but not finished: the
	// abort cause is recorded (AbortReason), and the table and successor
	// regions may be partway unwound. The entry stays in flight; a driver that
	// dies mid-abort leaves it Aborting+Interrupted, and Resume re-drives the
	// rollback (idempotent table unwind, then region retirement) instead of
	// the forward path.
	Aborting bool
	// Aborted marks a cleanly rolled-back move: the table is back to the
	// pre-flip state and the successor regions are retired.
	Aborted bool
	// AbortReason is the cause of the abort ("" otherwise).
	AbortReason string
	// Done marks a completed move.
	Done bool
}

// InFlight reports whether the move is neither completed nor aborted.
func (m MoveState) InFlight() bool { return !m.Done && !m.Aborted }

// String implements fmt.Stringer; ledger lines feed the run fingerprint.
func (m MoveState) String() string {
	status := "in-flight"
	switch {
	case m.Done:
		status = "done"
	case m.Aborted:
		status = "aborted(" + m.AbortReason + ")"
	case m.Aborting:
		status = "aborting(" + m.AbortReason + ")"
	case m.Interrupted:
		status = "interrupted"
	}
	return fmt.Sprintf("move %d: %v sources=%v successors=%v winner=%q step=%v epoch=%d resumes=%d %s",
		m.ID, m.Move, m.Sources, m.Successors, m.Winner, m.Step, m.Epoch, m.Resumes, status)
}

// moveEntry is the coordinator's mutable ledger record: the public MoveState
// plus the driver-ownership token that keeps a superseded driver (a crashed
// controller unwinding at shutdown) from mutating the ledger or the routing
// table after a resumed driver took the move over.
type moveEntry struct {
	MoveState
	owner int64

	// stepStart is the instant the entry's last step completed (or the move
	// began / resumed); the metrics and trace layers use it to time the next
	// step. Zero when neither is attached.
	stepStart time.Time

	// traceCtx is the move's trace, opened at begin when a tracer is
	// attached; each completed step records a StageReconfig span on it.
	traceCtx trace.Context
}

// mergeName returns the canonical successor name of a merge move.
func mergeName(a, b string) string { return strings.Join([]string{a, b}, "+") }
