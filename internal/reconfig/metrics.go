package reconfig

import (
	"time"

	"spacebounds/internal/metrics"
)

// Metric families emitted by the reconfiguration subsystem: how long each
// ledger step takes and how moves end. Together they make migration stalls
// visible while a move is still in flight — the one-shot Stats struct only
// reports after the fact.
const (
	metricStepSeconds = "spacebounds_reconfig_step_seconds"
	metricMovesTotal  = "spacebounds_reconfig_moves_total"
)

// reconfigMetrics holds the coordinator's instrumentation handles.
type reconfigMetrics struct {
	reg *metrics.Registry
}

// SetMetrics attaches a registry to the coordinator: every completed ledger
// step observes its latency (labeled by step name) and every move that
// finishes, aborts, or is interrupted bumps an outcome counter (labeled by
// move kind). Passing nil detaches.
func (c *Coordinator) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		c.met.Store(nil)
		return
	}
	// Eagerly register the families so they appear on the scrape page (and in
	// the doc-sync walk) before the first move runs.
	reg.Histogram(metricStepSeconds, "migration ledger step latency by step", metrics.LatencyBuckets(), metrics.L("step", StepTableFlip.String()))
	reg.Counter(metricMovesTotal, "reconfiguration moves by kind and outcome", metrics.L("kind", MoveSplit.String()), metrics.L("outcome", "done"))
	c.met.Store(&reconfigMetrics{reg: reg})
}

// observeStep records one completed ledger step. start is the instant the
// previous step completed (or the move began); a zero start — a move planned
// before metrics were attached, or resumed from an interrupted driver — is
// skipped rather than recorded as an absurd latency.
func (m *reconfigMetrics) observeStep(step MoveStep, start time.Time) {
	if start.IsZero() {
		return
	}
	m.reg.Histogram(metricStepSeconds, "migration ledger step latency by step", metrics.LatencyBuckets(), metrics.L("step", step.String())).ObserveSince(start)
}

// countOutcome records how a move ended: "done", "aborted", or "interrupted"
// (interrupted moves stay in the ledger for Resume, so one move may count
// several interruptions before its final done/aborted).
func (m *reconfigMetrics) countOutcome(kind MoveKind, outcome string) {
	m.reg.Counter(metricMovesTotal, "reconfiguration moves by kind and outcome", metrics.L("kind", kind.String()), metrics.L("outcome", outcome)).Inc()
}
