package reconfig

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

const dataLen = 32

func newSet(t *testing.T, shards int) *shard.Set {
	t.Helper()
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: dataLen},
		})
	}
	set, err := shard.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestSplitMigratesLatestValue splits a quiet shard and checks that reads of
// its keys — through either successor — return the pre-split value, that the
// old region is retired, and that storage accounting stays summation-exact.
func TestSplitMigratesLatestValue(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(7, 3, dataLen)
	if err := set.Write(7, "s0", want); err != nil {
		t.Fatal(err)
	}
	ev, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 2 || ev.Successors[0] != "s0/0" || ev.Successors[1] != "s0/1" {
		t.Fatalf("successors = %v", ev.Successors)
	}
	if ev.Epoch == 0 {
		t.Fatal("split installed no epoch")
	}

	// The old region must be retired and report zero storage.
	if got := set.Router().RouteOf("s0").State(); got != shard.RouteRetired {
		t.Fatalf("old route state = %v, want retired", got)
	}
	snap := set.StorageSnapshot()
	if bits := set.ShardBits(snap, "s0"); bits != 0 {
		t.Fatalf("retired shard still reports %d bits", bits)
	}
	sum := 0
	for _, sh := range set.Shards() {
		sum += set.ShardBits(snap, sh.Name)
	}
	if sum != snap.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, snap.BaseObjectBits)
	}

	// Keys that used to route to s0 (its name most directly) must read the
	// migrated value through the new epoch.
	got, err := set.Read(9, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-split read = %v, want %v", got, want)
	}
	// Both successors were seeded.
	for _, name := range ev.Successors {
		got, err := set.Read(10, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("successor %s read %v, want %v", name, got, want)
		}
	}
	st := co.Stats()
	if st.Splits != 1 || st.SeedWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDrainReplacesRegion drains a shard onto a fresh region: same routing
// position, new base objects, value preserved.
func TestDrainReplacesRegion(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(3, 1, dataLen)
	if err := set.Write(3, "s1", want); err != nil {
		t.Fatal(err)
	}
	oldBase := set.Shard("s1").Base
	ev, err := co.Apply(runner, Move{Kind: MoveDrain, Shard: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 1 {
		t.Fatalf("drain produced %d successors", len(ev.Successors))
	}
	succ := set.Shard(ev.Successors[0])
	if succ.Base == oldBase {
		t.Fatal("drain reused the old region")
	}
	got, err := set.Read(4, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-drain read = %v, want %v", got, want)
	}
	if len(set.Cluster().RetiredObjects()) != set.Shard("s1").Span {
		t.Fatalf("retired objects = %v", set.Cluster().RetiredObjects())
	}
}

// TestSplitUnderConcurrentLoad splits a shard while writers and readers hammer
// its keys: zero failed operations, and afterwards every key reads the latest
// value its writer wrote.
func TestSplitUnderConcurrentLoad(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	const writers = 4
	const opsPerWriter = 200
	var failed atomic.Int64
	var wg sync.WaitGroup
	keys := []string{"s0", "alpha", "beta", "gamma"}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := keys[w%len(keys)]
			for i := 1; i <= opsPerWriter; i++ {
				if err := set.Write(w+1, key, value.Sequenced(w+1, i, dataLen)); err != nil {
					failed.Add(1)
					return
				}
				if _, err := set.Read(100+w, key); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err != nil {
		t.Fatalf("split under load: %v", err)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d operations failed during the live split", n)
	}
	// Each key must now read the final value of some writer that used it
	// (several writers share a key; any of their final values is the latest
	// depending on interleaving — check the read decodes to a legal one).
	for w, key := range keys[:writers] {
		got, err := set.Read(200+w, key)
		if err != nil {
			t.Fatalf("final read %q: %v", key, err)
		}
		legal := false
		for w2 := 0; w2 < writers; w2++ {
			for i := 1; i <= opsPerWriter; i++ {
				if got.Equal(value.Sequenced(w2+1, i, dataLen)) {
					legal = true
				}
			}
		}
		if !legal && !got.Equal(value.Zero(dataLen)) {
			t.Fatalf("final read of %q returned a value never written: %v", key, got)
		}
	}
}

// TestAddAndRemoveDedicatedShard forks a hot key onto its own shard and drops
// it again.
func TestAddAndRemoveDedicatedShard(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	origin := set.ForKey("hot")
	seedVal := value.Sequenced(1, 1, dataLen)
	if err := set.Write(1, "hot", seedVal); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
		t.Fatal(err)
	}
	if set.ForKey("hot").Name != "hot" {
		t.Fatalf("key routes to %q after add", set.ForKey("hot").Name)
	}
	got, err := set.Read(2, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seedVal) {
		t.Fatalf("dedicated shard read %v, want forked %v", got, seedVal)
	}
	// Writes to the dedicated key no longer touch the origin register.
	if err := set.Write(1, "hot", value.Sequenced(1, 2, dataLen)); err != nil {
		t.Fatal(err)
	}
	originVal, err := set.ReadValue(3, origin)
	if err != nil {
		t.Fatal(err)
	}
	if !originVal.Equal(seedVal) {
		t.Fatalf("origin register changed after dedicated write: %v", originVal)
	}

	if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "hot"}); err != nil {
		t.Fatal(err)
	}
	if set.ForKey("hot").Name == "hot" {
		t.Fatal("key still routes to the removed dedicated shard")
	}
	// The namespace was dropped: the key reads the origin's register again.
	got, err = set.Read(4, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seedVal) {
		t.Fatalf("post-remove read = %v, want origin value %v", got, seedVal)
	}
	st := co.Stats()
	if st.Adds != 1 || st.Removes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMoveValidation exercises the error paths.
func TestMoveValidation(t *testing.T) {
	set := newSet(t, 1)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "nope"}); err == nil {
		t.Fatal("split of unknown shard accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "s0"}); err == nil {
		t.Fatal("remove of non-dedicated shard accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err == nil {
		t.Fatal("re-split of a retired shard accepted")
	}
	// Splitting a successor (chained reconfiguration) must work.
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0/1"}); err != nil {
		t.Fatalf("chained split: %v", err)
	}
	lineage := set.Lineage("s0/1/0")
	want := []string{"s0", "s0/1", "s0/1/0"}
	if len(lineage) != len(want) {
		t.Fatalf("lineage = %v, want %v", lineage, want)
	}
	for i := range want {
		if lineage[i] != want[i] {
			t.Fatalf("lineage = %v, want %v", lineage, want)
		}
	}
}

// TestAbortedSplitCanBeRetried makes the migration read fail (too many
// crashed nodes on the old shard), checks the clean rollback — the shard
// keeps serving once nodes return — and requires that a retried split
// succeeds even though the aborted attempt burned the successor names.
func TestAbortedSplitCanBeRetried(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(5, 1, dataLen)
	if err := set.Write(5, "s0", want); err != nil {
		t.Fatal(err)
	}
	// F=1, n=4: two crashed nodes make the quorum of 3 unformable, so the
	// migration read fails fast and the move aborts.
	sh := set.Shard("s0")
	for node := 0; node < 2; node++ {
		if err := set.Cluster().CrashObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err == nil {
		t.Fatal("split with an unformable quorum must abort")
	}
	if got := set.Router().RouteOf("s0").State(); got != shard.RouteActive {
		t.Fatalf("aborted split left s0 in state %v, want active", got)
	}
	for node := 0; node < 2; node++ {
		if err := set.Cluster().RestartObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	// The rolled-back shard still serves, and the retry must not collide with
	// the aborted attempt's burned successor names.
	ev, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"})
	if err != nil {
		t.Fatalf("retried split after abort: %v", err)
	}
	for _, name := range ev.Successors {
		got, err := set.Read(9, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("successor %s read %v, want %v", name, got, want)
		}
	}
	if st := co.Stats(); st.Splits != 1 {
		t.Fatalf("stats after abort+retry = %+v", st)
	}
}

// TestAddDrainsOriginWrites pins the fork-read ordering: a write that was
// admitted to the origin before the fork flip must be visible in the
// dedicated shard's seed. The origin's writes are held and drained while the
// migration writer reads, so a slow in-flight write cannot be lost.
func TestAddDrainsOriginWrites(t *testing.T) {
	for round := 0; round < 20; round++ {
		set := newSet(t, 1)
		co := NewCoordinator(set)
		runner := NewLiveRunner(set, 1<<28)

		last := value.Sequenced(1, round+1, dataLen)
		done := make(chan error, 1)
		go func() { done <- set.Write(1, "hot", last) }()
		if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
			set.Close()
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			set.Close()
			t.Fatal(err)
		}
		got, err := set.Read(2, "hot")
		if err != nil {
			set.Close()
			t.Fatal(err)
		}
		// The concurrent write either landed before the fork (the seed carries
		// it) or was held and re-routed to the dedicated shard — either way a
		// completed write must be readable, never lost.
		if !got.Equal(last) {
			set.Close()
			t.Fatalf("round %d: completed write lost across fork: read %v, want %v", round, got, last)
		}
		set.Close()
	}
}

// TestDedicatedShardCanBeReAdded removes a dedicated shard and forks the same
// key again: the remove must free the name (it equals the key, so it cannot
// be suffixed like split successors).
func TestDedicatedShardCanBeReAdded(t *testing.T) {
	set := newSet(t, 1)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	for round := 1; round <= 3; round++ {
		if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
			t.Fatalf("add round %d: %v", round, err)
		}
		want := value.Sequenced(round, 1, dataLen)
		if err := set.Write(round, "hot", want); err != nil {
			t.Fatal(err)
		}
		got, err := set.Read(10+round, "hot")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: dedicated read %v, want %v", round, got, want)
		}
		if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "hot"}); err != nil {
			t.Fatalf("remove round %d: %v", round, err)
		}
	}
	if st := co.Stats(); st.Adds != 3 || st.Removes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}
