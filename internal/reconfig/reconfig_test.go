package reconfig

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"spacebounds/internal/dsys"

	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

const dataLen = 32

func newSet(t *testing.T, shards int) *shard.Set {
	t.Helper()
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: dataLen},
		})
	}
	set, err := shard.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestSplitMigratesLatestValue splits a quiet shard and checks that reads of
// its keys — through either successor — return the pre-split value, that the
// old region is retired, and that storage accounting stays summation-exact.
func TestSplitMigratesLatestValue(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(7, 3, dataLen)
	if err := set.Write(7, "s0", want); err != nil {
		t.Fatal(err)
	}
	ev, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 2 || ev.Successors[0] != "s0/0" || ev.Successors[1] != "s0/1" {
		t.Fatalf("successors = %v", ev.Successors)
	}
	if ev.Epoch == 0 {
		t.Fatal("split installed no epoch")
	}

	// The old region must be retired and report zero storage.
	if got := set.Router().RouteOf("s0").State(); got != shard.RouteRetired {
		t.Fatalf("old route state = %v, want retired", got)
	}
	snap := set.StorageSnapshot()
	if bits := set.ShardBits(snap, "s0"); bits != 0 {
		t.Fatalf("retired shard still reports %d bits", bits)
	}
	sum := 0
	for _, sh := range set.Shards() {
		sum += set.ShardBits(snap, sh.Name)
	}
	if sum != snap.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, snap.BaseObjectBits)
	}

	// Keys that used to route to s0 (its name most directly) must read the
	// migrated value through the new epoch.
	got, err := set.Read(9, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-split read = %v, want %v", got, want)
	}
	// Both successors were seeded.
	for _, name := range ev.Successors {
		got, err := set.Read(10, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("successor %s read %v, want %v", name, got, want)
		}
	}
	st := co.Stats()
	if st.Splits != 1 || st.SeedWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDrainReplacesRegion drains a shard onto a fresh region: same routing
// position, new base objects, value preserved.
func TestDrainReplacesRegion(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(3, 1, dataLen)
	if err := set.Write(3, "s1", want); err != nil {
		t.Fatal(err)
	}
	oldBase := set.Shard("s1").Base
	ev, err := co.Apply(runner, Move{Kind: MoveDrain, Shard: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 1 {
		t.Fatalf("drain produced %d successors", len(ev.Successors))
	}
	succ := set.Shard(ev.Successors[0])
	if succ.Base == oldBase {
		t.Fatal("drain reused the old region")
	}
	got, err := set.Read(4, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-drain read = %v, want %v", got, want)
	}
	if len(set.Cluster().RetiredObjects()) != set.Shard("s1").Span {
		t.Fatalf("retired objects = %v", set.Cluster().RetiredObjects())
	}
}

// TestSplitUnderConcurrentLoad splits a shard while writers and readers hammer
// its keys: zero failed operations, and afterwards every key reads the latest
// value its writer wrote.
func TestSplitUnderConcurrentLoad(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	const writers = 4
	const opsPerWriter = 200
	var failed atomic.Int64
	var wg sync.WaitGroup
	keys := []string{"s0", "alpha", "beta", "gamma"}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := keys[w%len(keys)]
			for i := 1; i <= opsPerWriter; i++ {
				if err := set.Write(w+1, key, value.Sequenced(w+1, i, dataLen)); err != nil {
					failed.Add(1)
					return
				}
				if _, err := set.Read(100+w, key); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err != nil {
		t.Fatalf("split under load: %v", err)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d operations failed during the live split", n)
	}
	// Each key must now read the final value of some writer that used it
	// (several writers share a key; any of their final values is the latest
	// depending on interleaving — check the read decodes to a legal one).
	for w, key := range keys[:writers] {
		got, err := set.Read(200+w, key)
		if err != nil {
			t.Fatalf("final read %q: %v", key, err)
		}
		legal := false
		for w2 := 0; w2 < writers; w2++ {
			for i := 1; i <= opsPerWriter; i++ {
				if got.Equal(value.Sequenced(w2+1, i, dataLen)) {
					legal = true
				}
			}
		}
		if !legal && !got.Equal(value.Zero(dataLen)) {
			t.Fatalf("final read of %q returned a value never written: %v", key, got)
		}
	}
}

// TestAddAndRemoveDedicatedShard forks a hot key onto its own shard and drops
// it again.
func TestAddAndRemoveDedicatedShard(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	origin := set.ForKey("hot")
	seedVal := value.Sequenced(1, 1, dataLen)
	if err := set.Write(1, "hot", seedVal); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
		t.Fatal(err)
	}
	if set.ForKey("hot").Name != "hot" {
		t.Fatalf("key routes to %q after add", set.ForKey("hot").Name)
	}
	got, err := set.Read(2, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seedVal) {
		t.Fatalf("dedicated shard read %v, want forked %v", got, seedVal)
	}
	// Writes to the dedicated key no longer touch the origin register.
	if err := set.Write(1, "hot", value.Sequenced(1, 2, dataLen)); err != nil {
		t.Fatal(err)
	}
	originVal, err := set.ReadValue(3, origin)
	if err != nil {
		t.Fatal(err)
	}
	if !originVal.Equal(seedVal) {
		t.Fatalf("origin register changed after dedicated write: %v", originVal)
	}

	if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "hot"}); err != nil {
		t.Fatal(err)
	}
	if set.ForKey("hot").Name == "hot" {
		t.Fatal("key still routes to the removed dedicated shard")
	}
	// The namespace was dropped: the key reads the origin's register again.
	got, err = set.Read(4, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seedVal) {
		t.Fatalf("post-remove read = %v, want origin value %v", got, seedVal)
	}
	st := co.Stats()
	if st.Adds != 1 || st.Removes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMoveValidation exercises the error paths.
func TestMoveValidation(t *testing.T) {
	set := newSet(t, 1)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "nope"}); err == nil {
		t.Fatal("split of unknown shard accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "s0"}); err == nil {
		t.Fatal("remove of non-dedicated shard accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err == nil {
		t.Fatal("re-split of a retired shard accepted")
	}
	// Splitting a successor (chained reconfiguration) must work.
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0/1"}); err != nil {
		t.Fatalf("chained split: %v", err)
	}
	lineage := set.Lineage("s0/1/0")
	want := []string{"s0", "s0/1", "s0/1/0"}
	if len(lineage) != len(want) {
		t.Fatalf("lineage = %v, want %v", lineage, want)
	}
	for i := range want {
		if lineage[i] != want[i] {
			t.Fatalf("lineage = %v, want %v", lineage, want)
		}
	}
}

// TestAbortedSplitCanBeRetried makes the migration read fail (too many
// crashed nodes on the old shard), checks the clean rollback — the shard
// keeps serving once nodes return — and requires that a retried split
// succeeds even though the aborted attempt burned the successor names.
func TestAbortedSplitCanBeRetried(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(5, 1, dataLen)
	if err := set.Write(5, "s0", want); err != nil {
		t.Fatal(err)
	}
	// F=1, n=4: two crashed nodes make the quorum of 3 unformable, so the
	// migration read fails fast and the move aborts.
	sh := set.Shard("s0")
	for node := 0; node < 2; node++ {
		if err := set.Cluster().CrashObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"}); err == nil {
		t.Fatal("split with an unformable quorum must abort")
	}
	if got := set.Router().RouteOf("s0").State(); got != shard.RouteActive {
		t.Fatalf("aborted split left s0 in state %v, want active", got)
	}
	for node := 0; node < 2; node++ {
		if err := set.Cluster().RestartObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	// The rolled-back shard still serves, and the retry must not collide with
	// the aborted attempt's burned successor names.
	ev, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0"})
	if err != nil {
		t.Fatalf("retried split after abort: %v", err)
	}
	for _, name := range ev.Successors {
		got, err := set.Read(9, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("successor %s read %v, want %v", name, got, want)
		}
	}
	if st := co.Stats(); st.Splits != 1 {
		t.Fatalf("stats after abort+retry = %+v", st)
	}
}

// TestAddDrainsOriginWrites pins the fork-read ordering: a write that was
// admitted to the origin before the fork flip must be visible in the
// dedicated shard's seed. The origin's writes are held and drained while the
// migration writer reads, so a slow in-flight write cannot be lost.
func TestAddDrainsOriginWrites(t *testing.T) {
	for round := 0; round < 20; round++ {
		set := newSet(t, 1)
		co := NewCoordinator(set)
		runner := NewLiveRunner(set, 1<<28)

		last := value.Sequenced(1, round+1, dataLen)
		done := make(chan error, 1)
		go func() { done <- set.Write(1, "hot", last) }()
		if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
			set.Close()
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			set.Close()
			t.Fatal(err)
		}
		got, err := set.Read(2, "hot")
		if err != nil {
			set.Close()
			t.Fatal(err)
		}
		// The concurrent write either landed before the fork (the seed carries
		// it) or was held and re-routed to the dedicated shard — either way a
		// completed write must be readable, never lost.
		if !got.Equal(last) {
			set.Close()
			t.Fatalf("round %d: completed write lost across fork: read %v, want %v", round, got, last)
		}
		set.Close()
	}
}

// TestDedicatedShardCanBeReAdded removes a dedicated shard and forks the same
// key again: the remove must free the name (it equals the key, so it cannot
// be suffixed like split successors).
func TestDedicatedShardCanBeReAdded(t *testing.T) {
	set := newSet(t, 1)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	for round := 1; round <= 3; round++ {
		if _, err := co.Apply(runner, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
			t.Fatalf("add round %d: %v", round, err)
		}
		want := value.Sequenced(round, 1, dataLen)
		if err := set.Write(round, "hot", want); err != nil {
			t.Fatal(err)
		}
		got, err := set.Read(10+round, "hot")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: dedicated read %v, want %v", round, got, want)
		}
		if _, err := co.Apply(runner, Move{Kind: MoveRemove, Shard: "hot"}); err != nil {
			t.Fatalf("remove round %d: %v", round, err)
		}
	}
	if st := co.Stats(); st.Adds != 3 || st.Removes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMergeCombinesShards merges two written shards and checks the value-
// ordering rule, routing, lineage, pruned-branch accounting and the ledger.
func TestMergeCombinesShards(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	// s0 gets two writes (ts 2), s1 one (ts 1): both routes are epoch-0
	// installs, so the timestamp decides and s0's value wins.
	if err := set.Write(1, "s0", value.Sequenced(1, 1, dataLen)); err != nil {
		t.Fatal(err)
	}
	want := value.Sequenced(1, 2, dataLen)
	if err := set.Write(1, "s0", want); err != nil {
		t.Fatal(err)
	}
	loserVal := value.Sequenced(2, 1, dataLen)
	if err := set.Write(2, "s1", loserVal); err != nil {
		t.Fatal(err)
	}

	ev, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 1 || ev.Successors[0] != "s0+s1" {
		t.Fatalf("successors = %v", ev.Successors)
	}
	// Both sources retired; every key — the old shard names included — now
	// routes to the single successor.
	for _, name := range []string{"s0", "s1"} {
		if got := set.Router().RouteOf(name).State(); got != shard.RouteRetired {
			t.Fatalf("source %s state = %v, want retired", name, got)
		}
		if got := set.ForKey(name).Name; got != "s0+s1" {
			t.Fatalf("ForKey(%q) = %s, want s0+s1", name, got)
		}
	}
	got, err := set.Read(9, "s0+s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("merged read = %v, want winner value %v", got, want)
	}
	// Lineage follows the winner; the loser is a pruned branch.
	lineage := set.Lineage("s0+s1")
	if len(lineage) != 2 || lineage[0] != "s0" || lineage[1] != "s0+s1" {
		t.Fatalf("lineage = %v, want [s0 s0+s1]", lineage)
	}
	pruned := set.Router().PrunedBranches()
	if len(pruned) != 1 || pruned[0] != "s1" {
		t.Fatalf("pruned branches = %v, want [s1]", pruned)
	}
	st := co.Stats()
	if st.Merges != 1 || st.SeedWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ledger := co.Ledger()
	if len(ledger) != 1 || !ledger[0].Done || ledger[0].Winner != "s0" || ledger[0].Step != StepRetire {
		t.Fatalf("ledger = %+v", ledger)
	}
	if co.InFlight() != nil {
		t.Fatal("completed move still in flight")
	}
	// Storage stays summation-exact across the merge.
	snap, perShard := set.StorageBreakdown()
	sum := 0
	for _, bits := range perShard {
		sum += bits
	}
	if sum != snap.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, snap.BaseObjectBits)
	}
}

// TestMergeOrderingPrefersNewerEpoch pins the (epoch, timestamp) rule: a
// source installed in a later epoch wins even when the other source holds a
// higher register timestamp.
func TestMergeOrderingPrefersNewerEpoch(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	// s0 accumulates a high timestamp; s1 is drained onto s1/0 (installed at a
	// later epoch) carrying a low-timestamp value.
	for i := 1; i <= 3; i++ {
		if err := set.Write(1, "s0", value.Sequenced(1, i, dataLen)); err != nil {
			t.Fatal(err)
		}
	}
	want := value.Sequenced(2, 1, dataLen)
	if err := set.Write(2, "s1", want); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveDrain, Shard: "s1"}); err != nil {
		t.Fatal(err)
	}
	ev, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1/0"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := set.Read(9, ev.Successors[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("merged read = %v, want later-epoch value %v", got, want)
	}
	ledger := co.Ledger()
	if w := ledger[len(ledger)-1].Winner; w != "s1/0" {
		t.Fatalf("winner = %q, want s1/0", w)
	}
}

// TestMergeValidation exercises the merge error paths.
func TestMergeValidation(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s0"}); err == nil {
		t.Fatal("self-merge accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "nope"}); err == nil {
		t.Fatal("merge with unknown shard accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0"}); err == nil {
		t.Fatal("merge without second source accepted")
	}
	if _, err := co.Apply(runner, Move{Kind: MoveSplit, Shard: "s0", Shard2: "s1"}); err == nil {
		t.Fatal("split with second source accepted")
	}
	// Failed validations must not leave ledger entries in flight.
	if co.InFlight() != nil {
		t.Fatalf("in-flight entry after validation failures: %+v", co.InFlight())
	}
	// A merged pair cannot be re-merged.
	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"}); err == nil {
		t.Fatal("re-merge of retired shards accepted")
	}
}

// interruptRunner delegates to an inner runner but fails with ErrInterrupted
// after a fixed number of runner calls — a deterministic stand-in for a
// controller that dies at an arbitrary migration step.
type interruptRunner struct {
	inner Runner
	left  int
}

func (r *interruptRunner) step() error {
	if r.left <= 0 {
		return ErrInterrupted
	}
	r.left--
	return nil
}

func (r *interruptRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.RunOn(sh, fn)
}

func (r *interruptRunner) Wait(check func() bool) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Wait(check)
}

func (r *interruptRunner) Checkpoint() error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Checkpoint()
}

// TestInterruptedMovesResumeAtEveryStep kills the driver after every possible
// number of runner calls, for every move kind, and requires that Resume
// re-drives the interrupted move to completion with the migrated value
// intact and no route left mid-lifecycle — the crash-resumability claim,
// checked exhaustively at the unit level (the simulator explores the same
// property under adversarial schedules).
func TestInterruptedMovesResumeAtEveryStep(t *testing.T) {
	moves := []struct {
		name string
		prep func(t *testing.T, set *shard.Set, co *Coordinator, r Runner)
		mv   Move
		key  string // key to read back afterwards
	}{
		{name: "split", mv: Move{Kind: MoveSplit, Shard: "s0"}, key: "s0"},
		{name: "drain", mv: Move{Kind: MoveDrain, Shard: "s0"}, key: "s0"},
		{name: "merge", mv: Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"}, key: "s0"},
		{
			name: "add",
			mv:   Move{Kind: MoveAdd, Shard: "hot"},
			key:  "hot",
		},
		{
			name: "remove",
			prep: func(t *testing.T, set *shard.Set, co *Coordinator, r Runner) {
				if _, err := co.Apply(r, Move{Kind: MoveAdd, Shard: "hot"}); err != nil {
					t.Fatal(err)
				}
			},
			mv:  Move{Kind: MoveRemove, Shard: "hot"},
			key: "hot",
		},
	}
	for _, tc := range moves {
		t.Run(tc.name, func(t *testing.T) {
			for budget := 0; budget < 32; budget++ {
				set := newSet(t, 2)
				co := NewCoordinator(set)
				clean := NewLiveRunner(set, 1<<28)
				if tc.prep != nil {
					tc.prep(t, set, co, clean)
				}
				want := value.Sequenced(7, budget+1, dataLen)
				if err := set.Write(7, tc.key, want); err != nil {
					set.Close()
					t.Fatal(err)
				}
				_, err := co.Apply(&interruptRunner{inner: clean, left: budget}, tc.mv)
				if err == nil {
					// The budget outlasted the move: the protocol has no more
					// interruption points to test.
					set.Close()
					return
				}
				if !IsInterruption(err) {
					set.Close()
					t.Fatalf("budget %d: non-interruption error: %v", budget, err)
				}
				fl := co.InFlight()
				if fl == nil || !fl.Interrupted {
					set.Close()
					t.Fatalf("budget %d: interrupted move not in flight: %+v", budget, fl)
				}
				// An interrupted add must keep the origin's writes held: a
				// write admitted before Resume re-drives the move could still
				// be in flight when the fork point is read, and the seed
				// would miss it.
				if tc.name == "add" && len(fl.Sources) == 1 {
					if _, held, err := set.Router().TryAcquireWrite(99, fl.Sources[0]); err != nil || !held {
						set.Close()
						t.Fatalf("budget %d: interrupted add left origin %q unheld (held=%v err=%v)",
							budget, fl.Sources[0], held, err)
					}
				}
				resumed, _, err := co.Resume(clean)
				if err != nil || !resumed {
					set.Close()
					t.Fatalf("budget %d: resume = %v, %v", budget, resumed, err)
				}
				if co.InFlight() != nil {
					set.Close()
					t.Fatalf("budget %d: move still in flight after resume", budget)
				}
				// The migrated (or surviving) value must read back, and no
				// route may be left seeding or draining.
				got, err := set.Read(9, tc.key)
				if err != nil {
					set.Close()
					t.Fatalf("budget %d: post-resume read: %v", budget, err)
				}
				if tc.name != "remove" && !got.Equal(want) {
					set.Close()
					t.Fatalf("budget %d: post-resume read = %v, want %v", budget, got, want)
				}
				for _, name := range set.Router().Names() {
					st := set.Router().RouteOf(name).State()
					if st == shard.RouteSeeding || st == shard.RouteDraining {
						set.Close()
						t.Fatalf("budget %d: route %s left %v after resume", budget, name, st)
					}
				}
				ledger := co.Ledger()
				last := ledger[len(ledger)-1]
				if !last.Done || last.Resumes != 1 {
					set.Close()
					t.Fatalf("budget %d: ledger entry = %+v", budget, last)
				}
				set.Close()
			}
			t.Fatal("interruption budget never outlasted the move; raise the sweep bound")
		})
	}
}

// TestResumeWithoutInFlightMove is a no-op.
func TestResumeWithoutInFlightMove(t *testing.T) {
	set := newSet(t, 1)
	defer set.Close()
	co := NewCoordinator(set)
	resumed, _, err := co.Resume(NewLiveRunner(set, 1<<28))
	if resumed || err != nil {
		t.Fatalf("Resume on empty ledger = %v, %v", resumed, err)
	}
}

// TestMergeAbortRollsBack makes the merge's migration read fail (unformable
// quorum on one source) and checks the clean rollback: both sources active,
// the successor retired, the ledger entry aborted, and a retry succeeding
// after the nodes return.
func TestMergeAbortRollsBack(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	want := value.Sequenced(5, 1, dataLen)
	if err := set.Write(5, "s0", want); err != nil {
		t.Fatal(err)
	}
	sh := set.Shard("s0")
	for node := 0; node < 2; node++ {
		if err := set.Cluster().CrashObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"}); err == nil {
		t.Fatal("merge with an unformable quorum must abort")
	}
	for _, name := range []string{"s0", "s1"} {
		if got := set.Router().RouteOf(name).State(); got != shard.RouteActive {
			t.Fatalf("aborted merge left %s in state %v, want active", name, got)
		}
	}
	ledger := co.Ledger()
	if len(ledger) != 1 || !ledger[0].Aborted || ledger[0].AbortReason == "" {
		t.Fatalf("ledger = %+v", ledger)
	}
	// An aborted merge pruned nothing: neither source's history ends here.
	if pruned := set.Router().PrunedBranches(); len(pruned) != 0 {
		t.Fatalf("aborted merge reports pruned branches: %v", pruned)
	}
	if st := co.Stats(); st.Aborts != 1 || st.Merges != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for node := 0; node < 2; node++ {
		if err := set.Cluster().RestartObject(sh.Base + node); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := co.Apply(runner, Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"})
	if err != nil {
		t.Fatalf("retried merge after abort: %v", err)
	}
	got, err := set.Read(9, ev.Successors[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-retry merged read = %v, want %v", got, want)
	}
}

// TestApplyPlanAndEvents drives a plan through the coordinator and checks the
// event log and ledger rendering (the strings feed simulator fingerprints, so
// every status shape must render).
func TestApplyPlanAndEvents(t *testing.T) {
	set := newSet(t, 2)
	defer set.Close()
	co := NewCoordinator(set)
	runner := NewLiveRunner(set, 1<<28)

	plan := Plan{Moves: []Move{
		{Kind: MoveSplit, Shard: "s0"},
		{Kind: MoveMerge, Shard: "s0/0", Shard2: "s0/1"},
	}}
	if err := co.ApplyPlan(runner, plan); err != nil {
		t.Fatal(err)
	}
	evs := co.Events()
	if len(evs) != 2 || evs[0].Kind != MoveSplit || evs[1].Kind != MoveMerge {
		t.Fatalf("events = %v", evs)
	}
	if evs[1].String() == "" || evs[1].Shard2 != "s0/1" {
		t.Fatalf("merge event = %+v", evs[1])
	}
	if err := co.ApplyPlan(runner, Plan{Moves: []Move{{Kind: MoveKind(99)}}}); err == nil {
		t.Fatal("unknown move kind accepted")
	}
	for _, m := range co.Ledger() {
		if m.String() == "" {
			t.Fatalf("empty ledger rendering for %+v", m)
		}
	}
	for _, mv := range []Move{{Kind: MoveSplit, Shard: "x"}, {Kind: MoveMerge, Shard: "a", Shard2: "b"}} {
		if mv.String() == "" {
			t.Fatalf("empty move rendering for %+v", mv)
		}
	}
	for _, k := range []MoveKind{MoveSplit, MoveDrain, MoveAdd, MoveRemove, MoveMerge, MoveKind(99)} {
		if k.String() == "" {
			t.Fatalf("empty kind rendering for %d", int(k))
		}
	}
	for _, s := range []MoveStep{StepPlanned, StepGrowRegions, StepTableFlip, StepDrain, StepSeed, StepActivate, StepRetire, MoveStep(99)} {
		if s.String() == "" {
			t.Fatalf("empty step rendering for %d", int(s))
		}
	}
}

// TestControlledRunnerDrivesMove applies a split through the controlled-mode
// runner: the migration runs as a scheduled client task, every wait yields to
// the policy, and the move completes under the fair scheduler.
func TestControlledRunnerDrivesMove(t *testing.T) {
	specs := []shard.Spec{
		{Name: "s0", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: dataLen}},
		{Name: "s1", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: dataLen}},
	}
	set, err := shard.New(specs, dsys.WithControlledMode(), dsys.WithoutAccounting())
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	cluster := set.Cluster()
	co := NewCoordinator(set)

	var ev Event
	th := cluster.SpawnScoped(1<<20, 0, cluster.N(), func(h *dsys.ClientHandle) error {
		r := NewControlledRunner(h)
		var err error
		ev, err = co.Apply(r, Move{Kind: MoveSplit, Shard: "s0"})
		return err
	})
	cluster.Start()
	if reason := cluster.WaitIdle(); reason != dsys.IdleQuiesced {
		t.Fatalf("idle reason = %v", reason)
	}
	cluster.Close()
	if err := th.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(ev.Successors) != 2 {
		t.Fatalf("controlled split event = %+v", ev)
	}
	if st := co.Stats(); st.Splits != 1 || st.SeedWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResumeSeedsRecordedValueNotRereadValue pins the ledger-recorded seed:
// a drained source is not frozen — a crashed client's in-flight RMW can
// still land between interrupted attempts — so a resumed driver must seed
// the value the ledger recorded before the first seed RMW was issued, never
// a re-read one (two different values at the fixed seed timestamp would be
// undecodable). The test interrupts a split right after the value was
// chosen, mutates the drained source directly (the late-landing RMW), and
// requires the successors to carry the originally recorded value.
func TestResumeSeedsRecordedValueNotRereadValue(t *testing.T) {
	for budget := 0; budget < 32; budget++ {
		set := newSet(t, 2)
		co := NewCoordinator(set)
		clean := NewLiveRunner(set, 1<<28)

		recorded := value.Sequenced(7, 1, dataLen)
		if err := set.Write(7, "s0", recorded); err != nil {
			set.Close()
			t.Fatal(err)
		}
		_, err := co.Apply(&interruptRunner{inner: clean, left: budget}, Move{Kind: MoveSplit, Shard: "s0"})
		if err == nil {
			set.Close()
			return // budget outlasted the move: every choose-point was tested
		}
		if !IsInterruption(err) {
			set.Close()
			t.Fatalf("budget %d: non-interruption error: %v", budget, err)
		}
		fl := co.InFlight()
		if fl == nil {
			set.Close()
			t.Fatalf("budget %d: no in-flight move", budget)
		}
		if fl.Step < StepChooseValue {
			set.Close()
			continue // value not chosen yet; a later re-read is legitimate
		}
		if !fl.SeedChosen || !fl.SeedValue.Equal(recorded) {
			set.Close()
			t.Fatalf("budget %d: ledger recorded %v (chosen=%v), want %v",
				budget, fl.SeedValue, fl.SeedChosen, recorded)
		}
		// The late-landing RMW of a crashed client: the drained source's
		// register changes under the interrupted move.
		late := value.Sequenced(8, 9, dataLen)
		if err := set.WriteValue(8, set.Shard("s0"), late); err != nil {
			set.Close()
			t.Fatal(err)
		}
		if resumed, _, err := co.Resume(clean); err != nil || !resumed {
			set.Close()
			t.Fatalf("budget %d: resume = %v, %v", budget, resumed, err)
		}
		for _, name := range []string{"s0/0", "s0/1"} {
			got, err := set.Read(9, name)
			if err != nil {
				set.Close()
				t.Fatalf("budget %d: read %s: %v", budget, name, err)
			}
			if !got.Equal(recorded) {
				set.Close()
				t.Fatalf("budget %d: successor %s carries %v, want the recorded %v",
					budget, name, got, recorded)
			}
		}
		set.Close()
	}
	t.Fatal("interruption budget never outlasted the move; raise the sweep bound")
}

// TestMergeRejectsMixedEmulations pins the coordinator-level capability
// check: merging shards with different register emulations is refused (the
// successor inherits one emulation and the stitched lineage is checked under
// its condition, so a weaker prefix must not be smuggled in).
func TestMergeRejectsMixedEmulations(t *testing.T) {
	set, err := shard.New([]shard.Spec{
		{Name: "a", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: dataLen}},
		{Name: "b", Algorithm: "safereg", Config: register.Config{F: 1, K: 2, DataLen: dataLen}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	co := NewCoordinator(set)
	if _, err := co.Apply(NewLiveRunner(set, 1<<28), Move{Kind: MoveMerge, Shard: "a", Shard2: "b"}); err == nil {
		t.Fatal("cross-emulation merge accepted")
	}
	for _, name := range []string{"a", "b"} {
		if got := set.Router().RouteOf(name).State(); got != shard.RouteActive {
			t.Fatalf("rejected merge left %s %v", name, got)
		}
	}
	if co.InFlight() != nil {
		t.Fatal("rejected merge left an in-flight entry")
	}
}

// abortInterruptRunner fails the failAt-th runner call with a genuine
// (non-interruption) error — forcing the driver onto the abort path — and then
// interrupts after budget further runner calls, so the sweep below can kill
// the driver at every checkpoint of the rollback itself.
type abortInterruptRunner struct {
	inner  Runner
	failAt int // 1-based runner call that fails with errBoom
	budget int // runner calls allowed after the failure before ErrInterrupted
	calls  int
	failed bool
}

var errBoom = errors.New("injected migration failure")

func (r *abortInterruptRunner) step() error {
	r.calls++
	if !r.failed {
		if r.calls == r.failAt {
			r.failed = true
			return errBoom
		}
		return nil
	}
	if r.budget <= 0 {
		return ErrInterrupted
	}
	r.budget--
	return nil
}

func (r *abortInterruptRunner) RunOn(sh *shard.Shard, fn func(h *dsys.ClientHandle) error) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.RunOn(sh, fn)
}

func (r *abortInterruptRunner) Wait(check func() bool) error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Wait(check)
}

func (r *abortInterruptRunner) Checkpoint() error {
	if err := r.step(); err != nil {
		return err
	}
	return r.inner.Checkpoint()
}

// TestAbortInterruptedMidRollbackResumes closes the gap the per-step
// interruption sweep left open: the rollback itself is a multi-stage protocol
// now (record the abort, unwind the table, retire the successors), and a
// controller can die between any two of its stages. The sweep injects a
// genuine migration failure at every runner call of every abortable move kind
// and then kills the driver after every possible number of rollback calls;
// Resume must recognize the mid-abort entry (Aborting) and finish the
// rollback — never re-drive the forward path — leaving the sources active,
// the topology writable, and the move retryable.
func TestAbortInterruptedMidRollbackResumes(t *testing.T) {
	moves := []struct {
		name string
		mv   Move
		key  string
	}{
		{name: "split", mv: Move{Kind: MoveSplit, Shard: "s0"}, key: "s0"},
		{name: "drain", mv: Move{Kind: MoveDrain, Shard: "s0"}, key: "s0"},
		{name: "merge", mv: Move{Kind: MoveMerge, Shard: "s0", Shard2: "s1"}, key: "s0"},
		{name: "add", mv: Move{Kind: MoveAdd, Shard: "hot"}, key: "hot"},
	}
	for _, tc := range moves {
		t.Run(tc.name, func(t *testing.T) {
			midAbort := 0 // interruptions that landed inside the rollback
		sweep:
			for failAt := 1; failAt <= 64; failAt++ {
				for budget := 0; budget < 4; budget++ {
					set := newSet(t, 2)
					co := NewCoordinator(set)
					clean := NewLiveRunner(set, 1<<28)
					want := value.Sequenced(7, failAt*8+budget+1, dataLen)
					if err := set.Write(7, tc.key, want); err != nil {
						set.Close()
						t.Fatal(err)
					}
					r := &abortInterruptRunner{inner: clean, failAt: failAt, budget: budget}
					_, err := co.Apply(r, tc.mv)
					if !r.failed {
						// failAt outlasted the move's runner calls: every
						// failure point of this kind has been swept.
						if err != nil {
							set.Close()
							t.Fatalf("failAt %d: clean run failed: %v", failAt, err)
						}
						set.Close()
						break sweep
					}
					aborted := true
					if IsInterruption(err) {
						fl := co.InFlight()
						if fl == nil || !fl.Interrupted {
							set.Close()
							t.Fatalf("failAt %d budget %d: interrupted move not in flight: %+v", failAt, budget, fl)
						}
						if fl.Aborting {
							// Driver died mid-rollback. Resume must finish the
							// rollback and surface the abort cause as a
							// non-interruption error.
							midAbort++
							resumed, _, rerr := co.Resume(clean)
							if !resumed || rerr == nil || IsInterruption(rerr) {
								set.Close()
								t.Fatalf("failAt %d budget %d: resume of mid-abort move = %v, %v", failAt, budget, resumed, rerr)
							}
						} else {
							// The injected failure landed past the abort window
							// (after activation every failure is a driver
							// death); Resume completes the move forward.
							aborted = false
							resumed, _, rerr := co.Resume(clean)
							if !resumed || rerr != nil {
								set.Close()
								t.Fatalf("failAt %d budget %d: resume past point of no return = %v, %v", failAt, budget, resumed, rerr)
							}
						}
					} else if fl := co.InFlight(); fl != nil {
						// The genuine failure landed on a stage with no
						// rollback (the pre-retire wait): the entry stays
						// resumable but the error keeps its identity — the
						// driver is alive and the move is still its to finish.
						if !errors.Is(err, errBoom) || !fl.Interrupted {
							set.Close()
							t.Fatalf("failAt %d budget %d: in-flight failure lost its cause: %v (%+v)", failAt, budget, err, fl)
						}
						if fl.Aborting {
							midAbort++
							resumed, _, rerr := co.Resume(clean)
							if !resumed || rerr == nil || IsInterruption(rerr) {
								set.Close()
								t.Fatalf("failAt %d budget %d: resume of mid-abort move = %v, %v", failAt, budget, resumed, rerr)
							}
						} else {
							aborted = false
							resumed, _, rerr := co.Resume(clean)
							if !resumed || rerr != nil {
								set.Close()
								t.Fatalf("failAt %d budget %d: resume past point of no return = %v, %v", failAt, budget, resumed, rerr)
							}
						}
					} else if !errors.Is(err, errBoom) {
						set.Close()
						t.Fatalf("failAt %d budget %d: abort lost its cause: %v", failAt, budget, err)
					}
					if co.InFlight() != nil {
						set.Close()
						t.Fatalf("failAt %d budget %d: move still in flight: %+v", failAt, budget, co.InFlight())
					}
					ledger := co.Ledger()
					last := ledger[len(ledger)-1]
					if aborted && (!last.Aborted || !strings.Contains(last.AbortReason, "injected")) {
						set.Close()
						t.Fatalf("failAt %d budget %d: ledger entry = %+v", failAt, budget, last)
					}
					if !aborted && !last.Done {
						set.Close()
						t.Fatalf("failAt %d budget %d: ledger entry = %+v", failAt, budget, last)
					}
					// No route may be left mid-lifecycle, and the rolled-back
					// (or completed) topology must serve reads and writes —
					// for an aborted add this doubles as the proof the
					// origin's write hold was released.
					for _, name := range set.Router().Names() {
						st := set.Router().RouteOf(name).State()
						if st == shard.RouteSeeding || st == shard.RouteDraining {
							set.Close()
							t.Fatalf("failAt %d budget %d: route %s left %v", failAt, budget, name, st)
						}
					}
					got, err := set.Read(9, tc.key)
					if err != nil || !got.Equal(want) {
						set.Close()
						t.Fatalf("failAt %d budget %d: post-rollback read = %v, %v (want %v)", failAt, budget, got, err, want)
					}
					after := value.Sequenced(11, failAt*8+budget+2, dataLen)
					if err := set.Write(11, tc.key, after); err != nil {
						set.Close()
						t.Fatalf("failAt %d budget %d: post-rollback write: %v", failAt, budget, err)
					}
					if aborted {
						// The aborted move must be retryable on the restored
						// topology (burned names freed or suffixed away).
						if _, err := co.Apply(clean, tc.mv); err != nil {
							set.Close()
							t.Fatalf("failAt %d budget %d: retry after abort: %v", failAt, budget, err)
						}
					}
					set.Close()
				}
			}
			if midAbort < 2 {
				t.Fatalf("sweep never interrupted the rollback at both checkpoints (midAbort=%d); the abort path lost its scheduling points", midAbort)
			}
		})
	}
}
