package reconfig

import (
	"fmt"

	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// The move ledger's wire codec. Reconfig encodes its own records — the WAL
// below it stores opaque payloads keyed by ledger ID — so the journal layer
// never needs to import this package. The format rides on the same
// deterministic big-endian WireWriter/WireReader framing as the RMW codecs.

// moveStateVersion guards the record layout; bump it on any field change.
// Version 2 added the Aborting flag (mid-rollback moves became resumable).
const moveStateVersion = 2

// EncodeMoveState serializes one ledger entry.
func EncodeMoveState(m MoveState) []byte {
	var w register.WireWriter
	w.Int(moveStateVersion)
	w.Int(m.ID)
	w.Int(int(m.Move.Kind))
	w.Bytes([]byte(m.Move.Shard))
	w.Bytes([]byte(m.Move.Shard2))
	w.Int(len(m.Sources))
	for _, s := range m.Sources {
		w.Bytes([]byte(s))
	}
	w.Int(len(m.Successors))
	for _, s := range m.Successors {
		w.Bytes([]byte(s))
	}
	w.Bytes([]byte(m.Winner))
	w.Bool(m.SeedChosen)
	w.Bytes(m.SeedValue.Bytes())
	w.Int(int(m.Step))
	w.Int(int(m.Epoch))
	w.Int(int(m.FlipStep))
	w.Int(m.Resumes)
	w.Bool(m.Interrupted)
	w.Bool(m.Aborting)
	w.Bool(m.Aborted)
	w.Bytes([]byte(m.AbortReason))
	w.Bool(m.Done)
	return w.Finish()
}

// DecodeMoveState rebuilds a ledger entry from EncodeMoveState's output.
func DecodeMoveState(payload []byte) (MoveState, error) {
	r := register.NewWireReader(payload)
	if v := r.Int(); v != moveStateVersion {
		if err := r.Finish(); err != nil {
			return MoveState{}, err
		}
		return MoveState{}, fmt.Errorf("reconfig: unsupported move record version %d", v)
	}
	// Each listed name costs at least its 8-byte length prefix, so a count
	// beyond the payload size can only come from corruption; reject it before
	// allocating.
	names := func() ([]string, error) {
		n := r.Int()
		if n == 0 {
			return nil, nil
		}
		if n < 0 || n > len(payload)/8 {
			return nil, fmt.Errorf("reconfig: corrupt move record: name count %d", n)
		}
		out := make([]string, n)
		for i := range out {
			out[i] = string(r.Bytes())
		}
		return out, nil
	}
	var m MoveState
	var err error
	m.ID = r.Int()
	m.Move.Kind = MoveKind(r.Int())
	m.Move.Shard = string(r.Bytes())
	m.Move.Shard2 = string(r.Bytes())
	if m.Sources, err = names(); err != nil {
		return MoveState{}, err
	}
	if m.Successors, err = names(); err != nil {
		return MoveState{}, err
	}
	m.Winner = string(r.Bytes())
	m.SeedChosen = r.Bool()
	if b := r.Bytes(); len(b) > 0 || m.SeedChosen {
		m.SeedValue = value.FromBytes(b)
	}
	m.Step = MoveStep(r.Int())
	m.Epoch = int64(r.Int())
	m.FlipStep = int64(r.Int())
	m.Resumes = r.Int()
	m.Interrupted = r.Bool()
	m.Aborting = r.Bool()
	m.Aborted = r.Bool()
	m.AbortReason = string(r.Bytes())
	m.Done = r.Bool()
	if err := r.Finish(); err != nil {
		return MoveState{}, err
	}
	return m, nil
}
