package storagecost

import (
	"strings"
	"testing"

	"spacebounds/internal/oracle"
)

// staticReporter is a test Reporter backed by a fixed slice.
type staticReporter []BlockInfo

func (s staticReporter) StorageBlocks() []BlockInfo { return s }

func block(kind LocationKind, locID int, w oracle.WriteID, index, bits int) BlockInfo {
	return BlockInfo{
		Location: Location{Kind: kind, ID: locID},
		Source:   oracle.SourceTag{Write: w, Index: index},
		Bits:     bits,
	}
}

func TestCollectAggregates(t *testing.T) {
	w1 := oracle.WriteID{Client: 1, Seq: 1}
	w2 := oracle.WriteID{Client: 2, Seq: 1}
	reporters := []Reporter{
		staticReporter{
			block(BaseObject, 0, w1, 1, 100),
			block(BaseObject, 0, w2, 1, 50),
		},
		staticReporter{
			block(BaseObject, 1, w1, 2, 100),
		},
		staticReporter{
			block(Client, 1, w1, 3, 100), // writer's own client: excluded from outside bits
			block(Channel, 2, w2, 2, 70), // writer's own channel: excluded from outside bits
			block(Client, 3, w2, 3, 30),  // another client's state: counted
		},
		nil,
	}
	snap := Collect(reporters, nil)
	if snap.TotalBits != 100+50+100+100+70+30 {
		t.Fatalf("TotalBits = %d", snap.TotalBits)
	}
	if snap.BaseObjectBits != 250 || snap.ClientBits != 130 || snap.ChannelBits != 70 {
		t.Fatalf("breakdown = base %d / client %d / channel %d", snap.BaseObjectBits, snap.ClientBits, snap.ChannelBits)
	}
	if snap.PerObjectBits[0] != 150 || snap.PerObjectBits[1] != 100 {
		t.Fatalf("PerObjectBits = %v", snap.PerObjectBits)
	}
	if snap.PerWriteBits[w1] != 300 || snap.PerWriteBits[w2] != 150 {
		t.Fatalf("PerWriteBits = %v", snap.PerWriteBits)
	}
	// Outside bits: w1 has indices 1 (100) and 2 (100) outside client 1 = 200;
	// w2 has index 1 (50) at bo0 and index 3 (30) at client 3 = 80.
	if snap.PerWriteOutsideBits[w1] != 200 {
		t.Fatalf("PerWriteOutsideBits[w1] = %d, want 200", snap.PerWriteOutsideBits[w1])
	}
	if snap.PerWriteOutsideBits[w2] != 80 {
		t.Fatalf("PerWriteOutsideBits[w2] = %d, want 80", snap.PerWriteOutsideBits[w2])
	}
	if !strings.Contains(snap.String(), "total=450b") {
		t.Fatalf("String() = %q", snap.String())
	}
}

func TestCollectDistinctIndexSemantics(t *testing.T) {
	// Two instances of the same ⟨write, index⟩ in the storage: total bits
	// counts both, but ||S(t,w)|| counts the index once (Definition 6).
	w := oracle.WriteID{Client: 5, Seq: 2}
	reporters := []Reporter{staticReporter{
		block(BaseObject, 0, w, 1, 40),
		block(BaseObject, 1, w, 1, 40),
		block(BaseObject, 2, w, 2, 40),
	}}
	snap := Collect(reporters, nil)
	if snap.TotalBits != 120 {
		t.Fatalf("TotalBits = %d, want 120", snap.TotalBits)
	}
	if snap.PerWriteOutsideBits[w] != 80 {
		t.Fatalf("PerWriteOutsideBits = %d, want 80 (distinct indices only)", snap.PerWriteOutsideBits[w])
	}
}

func TestCollectWriterOfOverride(t *testing.T) {
	w := oracle.WriteID{Client: 9, Seq: 1}
	reporters := []Reporter{staticReporter{
		block(Client, 4, w, 1, 10),
	}}
	// With the override saying client 4 performs w, the block is at the
	// writer's own client and must be excluded from outside bits.
	snap := Collect(reporters, func(oracle.WriteID) int { return 4 })
	if snap.PerWriteOutsideBits[w] != 0 {
		t.Fatalf("PerWriteOutsideBits = %d, want 0", snap.PerWriteOutsideBits[w])
	}
}

func TestFullAndHeavyLightClassification(t *testing.T) {
	w1 := oracle.WriteID{Client: 1, Seq: 1}
	w2 := oracle.WriteID{Client: 2, Seq: 1}
	reporters := []Reporter{staticReporter{
		block(BaseObject, 0, w1, 1, 600),
		block(BaseObject, 1, w2, 1, 100),
	}}
	snap := Collect(reporters, nil)
	full := snap.Full(500)
	if !full[0] || full[1] {
		t.Fatalf("Full(500) = %v", full)
	}
	outstanding := []oracle.WriteID{w1, w2}
	const dBits, ell = 1000, 500
	heavy := snap.HeavyWrites(outstanding, dBits, ell)
	light := snap.LightWrites(outstanding, dBits, ell)
	if len(heavy) != 1 || heavy[0] != w1 {
		t.Fatalf("HeavyWrites = %v", heavy)
	}
	if len(light) != 1 || light[0] != w2 {
		t.Fatalf("LightWrites = %v", light)
	}
}

func TestAccountant(t *testing.T) {
	acc := NewAccountant(true)
	w := oracle.WriteID{Client: 1, Seq: 1}
	for i, bits := range []int{100, 400, 200} {
		snap := Collect([]Reporter{staticReporter{block(BaseObject, i%2, w, 1, bits)}}, nil)
		acc.Observe(snap)
	}
	if acc.Samples() != 3 {
		t.Fatalf("Samples = %d", acc.Samples())
	}
	if acc.MaxTotalBits() != 400 || acc.MaxBaseObjectBits() != 400 {
		t.Fatalf("max = %d / %d, want 400", acc.MaxTotalBits(), acc.MaxBaseObjectBits())
	}
	if acc.Last() == nil || acc.Last().TotalBits != 200 {
		t.Fatalf("Last = %v", acc.Last())
	}
	peaks := acc.PeakPerObject()
	if peaks[0] != 200 || peaks[1] != 400 {
		t.Fatalf("PeakPerObject = %v", peaks)
	}
	series := acc.Series()
	if len(series) != 3 || series[1] != 400 {
		t.Fatalf("Series = %v", series)
	}
}

func TestAccountantZeroValueUsable(t *testing.T) {
	var acc Accountant
	acc.Observe(Collect(nil, nil))
	if acc.MaxTotalBits() != 0 || acc.Samples() != 1 {
		t.Fatalf("zero-value accountant misbehaved: %d samples, max %d", acc.Samples(), acc.MaxTotalBits())
	}
	if len(acc.Series()) != 0 {
		t.Fatal("zero-value accountant recorded a series")
	}
}

func TestLocationStrings(t *testing.T) {
	if BaseObject.String() != "base-object" || Client.String() != "client" || Channel.String() != "channel" {
		t.Fatal("unexpected LocationKind strings")
	}
	if LocationKind(99).String() == "" {
		t.Fatal("unknown LocationKind rendered empty")
	}
	if (Location{Kind: BaseObject, ID: 3}).String() != "base-object#3" {
		t.Fatalf("Location.String() = %q", Location{Kind: BaseObject, ID: 3}.String())
	}
}
