// Package storagecost implements the storage-cost model of the paper
// (Definition 2) and the derived quantities the lower-bound proof works with
// (Definition 6, the sets C⁻ℓ, C⁺ℓ and Fℓ, and Observation 1).
//
// Storage cost counts the bits of code blocks stored at base objects, at
// clients, and carried by pending RMWs ("in the channel"); meta-data such as
// timestamps is explicitly not counted. Every block instance is attributed
// to its source ⟨write, block index⟩ via oracle.SourceTag, which is what lets
// the accountant compute per-write contributions ||S(t, w)|| and lets the
// adversary decide which base objects to freeze.
package storagecost

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"spacebounds/internal/oracle"
)

// LocationKind says where a block instance is stored.
type LocationKind int

// Location kinds. Base objects are the shared fault-prone memory; Client
// covers blocks a client holds locally; Channel covers parameters of pending
// RMWs that have been triggered but have not yet taken effect.
// DurableLog and DurableSnapshot are the durability axis: bytes a node's
// write-ahead log and its snapshots occupy on disk. They are deliberately a
// separate axis from the paper's three — Definition 2 counts the bits of an
// *emulation's* code blocks in volatile components, while the journal is an
// engineering artifact below the model — so durable bits never contribute to
// TotalBits or per-write attribution; they are summed into their own fields.
const (
	BaseObject LocationKind = iota + 1
	Client
	Channel
	DurableLog
	DurableSnapshot
)

// String implements fmt.Stringer.
func (k LocationKind) String() string {
	switch k {
	case BaseObject:
		return "base-object"
	case Client:
		return "client"
	case Channel:
		return "channel"
	case DurableLog:
		return "durable-log"
	case DurableSnapshot:
		return "durable-snapshot"
	default:
		return fmt.Sprintf("location(%d)", int(k))
	}
}

// Location identifies a storage component: a base object, a client, or the
// channel (pending RMWs) associated with a client.
type Location struct {
	Kind LocationKind
	ID   int
}

// String implements fmt.Stringer.
func (l Location) String() string { return fmt.Sprintf("%v#%d", l.Kind, l.ID) }

// BlockInfo describes one stored block instance: where it is, which write's
// oracle produced it and with which index, and how many bits it occupies.
type BlockInfo struct {
	Location Location
	Source   oracle.SourceTag
	Bits     int
}

// Reporter is implemented by anything that stores code blocks — base object
// states, pending RMW parameters, client-local buffers. The returned slice
// must describe every block instance currently held.
type Reporter interface {
	StorageBlocks() []BlockInfo
}

// Snapshot is the storage state of the system at one instant.
type Snapshot struct {
	// Blocks lists every stored block instance.
	Blocks []BlockInfo
	// TotalBits is the storage cost of Definition 2: the sum of block sizes.
	TotalBits int
	// BaseObjectBits / ClientBits / ChannelBits break TotalBits down by kind.
	BaseObjectBits int
	ClientBits     int
	ChannelBits    int
	// PerObjectBits maps base object ID to the bits it stores.
	PerObjectBits map[int]int
	// DurableLogBits / DurableSnapshotBits are the durability axis: bits the
	// write-ahead log and snapshots occupy on disk. They are NOT part of
	// TotalBits — Definition 2 charges the emulation's volatile components
	// only — and carry no per-write attribution.
	DurableLogBits      int
	DurableSnapshotBits int
	// PerObjectDurableBits maps base object ID to its durable (log+snapshot)
	// bits; framing bytes not attributable to one object use ID -1.
	PerObjectDurableBits map[int]int
	// PerWriteBits maps a write to the total bits of blocks it sourced,
	// wherever stored.
	PerWriteBits map[oracle.WriteID]int
	// PerWriteOutsideBits maps a write w performed by client c_j to
	// ||S(t, w)||: the bits of blocks sourced by w in *distinct block
	// numbers*, stored anywhere except at c_j itself (Definition 6).
	PerWriteOutsideBits map[oracle.WriteID]int
}

// DurableBits returns the total bits of the durability axis: log plus
// snapshot bytes on disk.
func (s *Snapshot) DurableBits() int { return s.DurableLogBits + s.DurableSnapshotBits }

// Collect builds a snapshot from reporters. writerOf maps a write to the
// client performing it, which is needed to exclude a writer's own client
// state from its ||S(t,w)|| count; if writerOf is nil, the write's Client
// field is used.
func Collect(reporters []Reporter, writerOf func(oracle.WriteID) int) *Snapshot {
	snap := &Snapshot{
		PerObjectBits:        make(map[int]int),
		PerObjectDurableBits: make(map[int]int),
		PerWriteBits:         make(map[oracle.WriteID]int),
		PerWriteOutsideBits:  make(map[oracle.WriteID]int),
	}
	// Distinct block numbers per write for the outside-bits computation: the
	// paper's ||S(t,w)|| sums size(i) over the set of indices i present, not
	// over instances.
	outsideIndices := make(map[oracle.WriteID]map[int]int) // write -> index -> bits
	for _, r := range reporters {
		if r == nil {
			continue
		}
		for _, b := range r.StorageBlocks() {
			snap.Blocks = append(snap.Blocks, b)
			// Durable bits live on their own axis: listed in Blocks for
			// inspection, summed into the Durable* fields, but excluded from
			// TotalBits and per-write attribution (Definition 2 counts only
			// the emulation's volatile components).
			if b.Location.Kind == DurableLog || b.Location.Kind == DurableSnapshot {
				if b.Location.Kind == DurableLog {
					snap.DurableLogBits += b.Bits
				} else {
					snap.DurableSnapshotBits += b.Bits
				}
				snap.PerObjectDurableBits[b.Location.ID] += b.Bits
				continue
			}
			snap.TotalBits += b.Bits
			switch b.Location.Kind {
			case BaseObject:
				snap.BaseObjectBits += b.Bits
				snap.PerObjectBits[b.Location.ID] += b.Bits
			case Client:
				snap.ClientBits += b.Bits
			case Channel:
				snap.ChannelBits += b.Bits
			}
			snap.PerWriteBits[b.Source.Write] += b.Bits
			writer := b.Source.Write.Client
			if writerOf != nil {
				writer = writerOf(b.Source.Write)
			}
			ownClient := (b.Location.Kind == Client || b.Location.Kind == Channel) && b.Location.ID == writer
			if !ownClient {
				m, ok := outsideIndices[b.Source.Write]
				if !ok {
					m = make(map[int]int)
					outsideIndices[b.Source.Write] = m
				}
				if b.Bits > m[b.Source.Index] {
					m[b.Source.Index] = b.Bits
				}
			}
		}
	}
	for w, indices := range outsideIndices {
		total := 0
		for _, bits := range indices {
			total += bits
		}
		snap.PerWriteOutsideBits[w] = total
	}
	return snap
}

// Full returns the set Fℓ: the IDs of base objects storing at least ell bits
// of code blocks (the objects the adversary freezes).
func (s *Snapshot) Full(ell int) map[int]bool {
	full := make(map[int]bool)
	for id, bits := range s.PerObjectBits {
		if bits >= ell {
			full[id] = true
		}
	}
	return full
}

// HeavyWrites returns C⁺ℓ restricted to the given outstanding writes: those
// whose outside-client contribution exceeds D-ell bits (Definition 6 and the
// C⁺ definition in Section 4). dBits is D, the value size in bits.
func (s *Snapshot) HeavyWrites(outstanding []oracle.WriteID, dBits, ell int) []oracle.WriteID {
	var heavy []oracle.WriteID
	for _, w := range outstanding {
		if s.PerWriteOutsideBits[w] > dBits-ell {
			heavy = append(heavy, w)
		}
	}
	return heavy
}

// LightWrites returns C⁻ℓ restricted to the given outstanding writes: those
// whose outside-client contribution is at most D-ell bits.
func (s *Snapshot) LightWrites(outstanding []oracle.WriteID, dBits, ell int) []oracle.WriteID {
	var light []oracle.WriteID
	for _, w := range outstanding {
		if s.PerWriteOutsideBits[w] <= dBits-ell {
			light = append(light, w)
		}
	}
	return light
}

// String renders a compact human-readable summary.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "storage: total=%db base=%db client=%db channel=%db", s.TotalBits, s.BaseObjectBits, s.ClientBits, s.ChannelBits)
	if d := s.DurableBits(); d > 0 {
		fmt.Fprintf(&b, " durable=%db(log=%db,snap=%db)", d, s.DurableLogBits, s.DurableSnapshotBits)
	}
	ids := make([]int, 0, len(s.PerObjectBits))
	for id := range s.PerObjectBits {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, " bo%d=%db", id, s.PerObjectBits[id])
	}
	return b.String()
}

// Accountant tracks storage cost over a run: it records samples and maintains
// the maximum observed cost, which is the run's storage cost per
// Definition 2 ("the maximum storage cost at any point t in any run").
// The zero value is ready to use.
type Accountant struct {
	mu sync.Mutex

	samples        int
	maxTotal       int
	maxBase        int
	maxDurable     int
	maxAtSample    int
	lastSnapshot   *Snapshot
	perObjectPeak  map[int]int
	totalsOverTime []int
	keepSeries     bool
}

// NewAccountant returns an accountant. If keepSeries is true it retains the
// full time series of total bits (used by experiments that plot storage over
// time); otherwise it keeps only aggregates.
func NewAccountant(keepSeries bool) *Accountant {
	return &Accountant{perObjectPeak: make(map[int]int), keepSeries: keepSeries}
}

// Observe records a snapshot.
func (a *Accountant) Observe(s *Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.perObjectPeak == nil {
		a.perObjectPeak = make(map[int]int)
	}
	a.samples++
	a.lastSnapshot = s
	if s.TotalBits > a.maxTotal {
		a.maxTotal = s.TotalBits
		a.maxAtSample = a.samples
	}
	if s.BaseObjectBits > a.maxBase {
		a.maxBase = s.BaseObjectBits
	}
	if d := s.DurableBits(); d > a.maxDurable {
		a.maxDurable = d
	}
	for id, bits := range s.PerObjectBits {
		if bits > a.perObjectPeak[id] {
			a.perObjectPeak[id] = bits
		}
	}
	if a.keepSeries {
		a.totalsOverTime = append(a.totalsOverTime, s.TotalBits)
	}
}

// MaxTotalBits returns the maximum total storage cost observed.
func (a *Accountant) MaxTotalBits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxTotal
}

// MaxBaseObjectBits returns the maximum bits observed across base objects
// only (the quantity the paper's algorithm bounds refer to).
func (a *Accountant) MaxBaseObjectBits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxBase
}

// MaxDurableBits returns the maximum durable (log+snapshot) bits observed.
// This axis is disjoint from MaxTotalBits: durability is an engineering cost
// below the paper's model, not part of Definition 2.
func (a *Accountant) MaxDurableBits() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxDurable
}

// Samples returns the number of snapshots observed.
func (a *Accountant) Samples() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.samples
}

// Last returns the most recent snapshot, or nil if none was observed.
func (a *Accountant) Last() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSnapshot
}

// PeakPerObject returns a copy of the peak bits observed per base object.
func (a *Accountant) PeakPerObject() map[int]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]int, len(a.perObjectPeak))
	for k, v := range a.perObjectPeak {
		out[k] = v
	}
	return out
}

// Series returns the recorded time series of total bits (empty unless the
// accountant was built with keepSeries=true).
func (a *Accountant) Series() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.totalsOverTime))
	copy(out, a.totalsOverTime)
	return out
}
