package wal

import (
	"time"

	"spacebounds/internal/metrics"
)

// Metric families emitted by the write-ahead log. All are node-side: a
// spacenode exports its own journal, an in-process store exports one family
// set per attached journal (they share series if they share a registry).
const (
	metricAppendSeconds  = "spacebounds_wal_append_seconds"
	metricFsyncSeconds   = "spacebounds_wal_fsync_seconds"
	metricReplaySeconds  = "spacebounds_wal_replay_seconds"
	metricAppendsTotal   = "spacebounds_wal_appends_total"
	metricFsyncsTotal    = "spacebounds_wal_fsyncs_total"
	metricSnapshotsTotal = "spacebounds_wal_snapshots_total"
	metricReplayedTotal  = "spacebounds_wal_replayed_records_total"
	metricLogBytes       = "spacebounds_wal_log_bytes"
	metricSnapshotBytes  = "spacebounds_wal_snapshot_bytes"
)

// walMetrics holds the journal's instrumentation handles; swapped in
// atomically by SetMetrics (same pattern as the cluster's).
type walMetrics struct {
	appendSec *metrics.Histogram
	fsyncSec  *metrics.Histogram
	replaySec *metrics.Histogram
	appends   *metrics.Counter
	fsyncs    *metrics.Counter
	snapshots *metrics.Counter
	replayed  *metrics.Counter
	logBytes  *metrics.Gauge
	snapBytes *metrics.Gauge
}

// now returns the wall clock only when metrics are attached, so the disabled
// path never calls time.Now.
func (m *walMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// SetMetrics attaches a metrics registry to the journal: appends, fsyncs,
// snapshots, and replays observe latency and volume from then on. All
// families register eagerly so they appear on the scrape page (and in the
// doc-sync walk) before the first append. Passing nil detaches.
func (j *Journal) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		j.met.Store(nil)
		return
	}
	j.met.Store(&walMetrics{
		appendSec: reg.Histogram(metricAppendSeconds, "WAL append latency (encode, frame, write, policy fsync)", metrics.LatencyBuckets()),
		fsyncSec:  reg.Histogram(metricFsyncSeconds, "WAL fsync latency", metrics.LatencyBuckets()),
		replaySec: reg.Histogram(metricReplaySeconds, "WAL recovery replay duration", metrics.LatencyBuckets()),
		appends:   reg.Counter(metricAppendsTotal, "records appended to the WAL"),
		fsyncs:    reg.Counter(metricFsyncsTotal, "WAL fsyncs issued"),
		snapshots: reg.Counter(metricSnapshotsTotal, "snapshots taken (each truncates the log)"),
		replayed:  reg.Counter(metricReplayedTotal, "log records scanned by recovery replays"),
		logBytes:  reg.Gauge(metricLogBytes, "current WAL segment bytes on disk"),
		snapBytes: reg.Gauge(metricSnapshotBytes, "current snapshot bytes on disk"),
	})
}
