package wal

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/trace"
)

// SetTracer attaches (or, with nil, detaches) a tracer. Sampled applies then
// record a StageWALAppend span per journaled RMW and a StageWALFsync child
// when the append trips the sync policy. Untraced appends take one atomic
// load extra.
func (j *Journal) SetTracer(tr *trace.Tracer) {
	j.trc.Store(tr)
}

// Tracer returns the attached tracer, or nil.
func (j *Journal) Tracer() *trace.Tracer { return j.trc.Load() }

// RecordApplyTraced implements dsys.TracedJournal: journal one applied
// mutating RMW carrying the apply's trace context. The append span parents
// under the node-side apply span (or, in-process, under the quorum round),
// so an assembled trace shows how much of an op's latency was durability.
func (j *Journal) RecordApplyTraced(object int, rmw dsys.RMW, tc trace.Context) {
	tr := j.trc.Load()
	if tr == nil || !tc.Sampled() {
		j.RecordApply(object, rmw)
		return
	}
	payload, ok := j.encodeApply(object, rmw)
	if !ok {
		return
	}
	m := j.met.Load()
	start := m.now()
	sp := tr.Start(tc, trace.StageWALAppend)
	j.jmu.Lock()
	j.traceTR, j.traceTC = tr, sp.Context()
	j.appendLocked(record{typ: recApply, object: object, payload: payload})
	j.traceTR, j.traceTC = nil, trace.Context{}
	j.jmu.Unlock()
	sp.Done()
	if m != nil {
		m.appendSec.ObserveSince(start)
		m.appends.Inc()
	}
}

// compile-time check: the journal satisfies the traced-journal upgrade, so
// dsys.SetJournal routes sampled applies through RecordApplyTraced.
var _ dsys.TracedJournal = (*Journal)(nil)
