package wal_test

import (
	"fmt"
	"strings"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/metrics"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/value"
	"spacebounds/internal/wal"
)

// metricValue reads one sample of a no-label family off the registry's
// Prometheus export.
func metricValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestMetricsObserveJournalActivity: with a registry attached, appends,
// fsyncs, replays, and snapshots show up in the WAL metric families; the
// replay summary line renders every counter; and the error/skip getters
// report a healthy journal.
func TestMetricsObserveJournalActivity(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	// A huge snapshot cadence keeps the background snapshotter quiet: the
	// only snapshot is the explicit one, so the post-snapshot record is
	// guaranteed to survive in the log for the replay below.
	n, _ := openNode(t, dir, wal.Config{SyncEvery: 1, SnapshotEvery: 1 << 30})
	n.j.SetMetrics(reg)
	n.write(t, 1, "m-one")
	n.write(t, 1, "m-two")
	if err := n.j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// One record past the snapshot: the log gauge stays non-zero after the
	// truncation and the reopen below has something to replay.
	n.write(t, 1, "m-extra")
	n.close(t)

	for _, name := range []string{
		"spacebounds_wal_appends_total",
		"spacebounds_wal_fsyncs_total",
		"spacebounds_wal_snapshots_total",
		"spacebounds_wal_log_bytes",
		"spacebounds_wal_snapshot_bytes",
	} {
		if got := metricValue(t, reg, name); got <= 0 {
			t.Errorf("%s = %v, want > 0", name, got)
		}
	}

	// A reopening journal observes its replay on the same registry.
	reg2 := metrics.NewRegistry()
	j, err := wal.Open(wal.Config{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	j.SetMetrics(reg2)
	reg2reg, err := abd.New(register.Config{F: 1, K: 1, DataLen: dataLen})
	if err != nil {
		t.Fatal(err)
	}
	states, err := reg2reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		t.Fatal(err)
	}
	c := dsys.NewCluster(states, dsys.WithLiveMode())
	stats, err := j.Replay(c)
	if err != nil {
		t.Fatal(err)
	}
	j.Attach(c)
	n2 := &node{reg: reg2reg, c: c, j: j}
	defer n2.close(t)
	if got := stats.String(); !strings.Contains(got, "records=") || !strings.Contains(got, "applied=") {
		t.Fatalf("ReplayStats.String() = %q", got)
	}
	if got := metricValue(t, reg2, "spacebounds_wal_replayed_records_total"); got <= 0 {
		t.Fatalf("replayed_records_total = %v, want > 0", got)
	}
	// Detach: must not panic on subsequent activity.
	n2.j.SetMetrics(nil)
	n2.write(t, 2, "m-three")

	if err := n2.j.Err(); err != nil {
		t.Fatalf("Err() = %v on a healthy journal", err)
	}
	if got := n2.j.SkippedUnknownRMWs(); got != 0 {
		t.Fatalf("SkippedUnknownRMWs = %d, want 0", got)
	}
}
