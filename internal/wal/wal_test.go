package wal_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/value"
	"spacebounds/internal/wal"
)

const dataLen = 8

// node bundles one "process": a register emulation, its live cluster, and
// the journal recording it.
type node struct {
	reg *abd.Register
	c   *dsys.Cluster
	j   *wal.Journal
}

// openNode builds a fresh cluster from initial states, replays the journal
// directory into it, and attaches the journal — the full recovery path a
// restarting process runs.
func openNode(t *testing.T, dir string, cfg wal.Config) (*node, wal.ReplayStats) {
	t.Helper()
	reg, err := abd.New(register.Config{F: 1, K: 1, DataLen: dataLen})
	if err != nil {
		t.Fatalf("abd.New: %v", err)
	}
	states, err := reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		t.Fatalf("InitialStates: %v", err)
	}
	c := dsys.NewCluster(states, dsys.WithLiveMode())
	cfg.Dir = dir
	j, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	stats, err := j.Replay(c)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	j.Attach(c)
	return &node{reg: reg, c: c, j: j}, stats
}

func (n *node) close(t *testing.T) {
	t.Helper()
	n.c.Close()
	if err := n.j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
}

func (n *node) write(t *testing.T, client int, s string) {
	t.Helper()
	v := value.FromString(s, dataLen)
	if err := n.c.RunScoped(client, 0, n.c.N(), func(h *dsys.ClientHandle) error {
		return n.reg.Write(h, v)
	}); err != nil {
		t.Fatalf("write %q: %v", s, err)
	}
}

func (n *node) read(t *testing.T, client int) value.Value {
	t.Helper()
	var out value.Value
	if err := n.c.RunScoped(client, 0, n.c.N(), func(h *dsys.ClientHandle) error {
		v, err := n.reg.Read(h)
		out = v
		return err
	}); err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func wantValue(t *testing.T, got value.Value, s string) {
	t.Helper()
	if want := value.FromString(s, dataLen); !got.Equal(want) {
		t.Fatalf("read %v, want %v", got, want)
	}
}

func TestReplayRestoresWrites(t *testing.T) {
	dir := t.TempDir()
	n, stats := openNode(t, dir, wal.Config{})
	if stats.Records != 0 || stats.Applied != 0 {
		t.Fatalf("fresh journal replayed %+v", stats)
	}
	n.write(t, 1, "alpha")
	n.write(t, 1, "beta")
	n.write(t, 2, "gamma")
	n.close(t)

	// A fresh "process": empty cluster, same directory.
	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.Applied == 0 {
		t.Fatalf("replay applied nothing: %+v", stats)
	}
	wantValue(t, n2.read(t, 3), "gamma")
}

func TestReopenWithoutCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{SyncEvery: 1})
	n.write(t, 1, "durable")
	// No Close: simulate a crash by abandoning the journal (the file was
	// fsynced by the SyncEvery=1 policy, so the record must survive).
	n.c.Close()

	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.Applied == 0 {
		t.Fatalf("replay applied nothing: %+v", stats)
	}
	wantValue(t, n2.read(t, 2), "durable")
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	n.write(t, 1, "first")
	n.write(t, 1, "second")
	n.close(t)

	// Append half a frame to the active segment: a crash mid-append.
	seg := findSegments(t, dir)
	f, err := os.OpenFile(seg[len(seg)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n2, stats := openNode(t, dir, wal.Config{})
	if stats.Applied == 0 {
		t.Fatalf("replay applied nothing: %+v", stats)
	}
	wantValue(t, n2.read(t, 2), "second")
	// The torn bytes are gone: appending works and a further reopen is clean.
	n2.write(t, 1, "third")
	n2.close(t)
	n3, _ := openNode(t, dir, wal.Config{})
	defer n3.close(t)
	wantValue(t, n3.read(t, 2), "third")
}

func TestCorruptRecordIsDetected(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	n.write(t, 1, "payload")
	n.close(t)

	seg := findSegments(t, dir)
	raw, err := os.ReadFile(seg[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file: the CRC must catch it, and the
	// journal must truncate everything from the damaged frame on.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	n2, _ := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	// No assertion on the value — what matters is that Open and Replay do
	// not panic and the prefix before the corruption replays cleanly.
}

func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	for i, s := range []string{"one", "two", "three", "four"} {
		n.write(t, i+1, s)
	}
	logBefore := n.j.LogBytes()
	if logBefore == 0 {
		t.Fatal("no log bytes before snapshot")
	}
	if err := n.j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n.j.SnapshotBytes() == 0 {
		t.Fatal("no snapshot bytes after snapshot")
	}
	if got := n.j.LogBytes(); got >= logBefore {
		t.Fatalf("log not truncated: %d >= %d bytes", got, logBefore)
	}
	// Post-snapshot writes land in the fresh segment.
	n.write(t, 9, "five")
	n.close(t)

	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.SnapshotObjects == 0 {
		t.Fatalf("snapshot restored no objects: %+v", stats)
	}
	wantValue(t, n2.read(t, 10), "five")
}

func TestCrashBetweenSnapshotAndTruncationRecovers(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	n.write(t, 1, "kept")
	if err := n.j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	n.write(t, 1, "later")
	n.close(t)

	// Resurrect a stale pre-snapshot segment alongside the snapshot, as a
	// crash between the snapshot rename and the segment deletion would leave
	// it. Records in it are ≤ the snapshot boundary and must be deduplicated.
	stale := filepath.Join(dir, "wal-0000000000000001.log")
	if _, err := os.Stat(stale); err == nil {
		t.Skip("segment 1 still present; nothing to resurrect")
	}
	segs := findSegments(t, dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = raw
	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.Skipped != 0 {
		// Dedup working is fine; just assert correctness below.
		t.Logf("replay stats: %+v", stats)
	}
	wantValue(t, n2.read(t, 2), "later")
}

func TestSnapshotDedupAcrossReplay(t *testing.T) {
	// Snapshot, write more, crash, replay: the snapshot-covered records must
	// not double-apply. ABD applies are idempotent-by-timestamp so a double
	// apply would not corrupt values — instead, assert the dedup directly via
	// the replay stats against a journal whose pre-snapshot segments we put
	// back by hand.
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	n.write(t, 1, "pre")
	segs := findSegments(t, dir)
	preSeg, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	preName := filepath.Base(segs[0])
	if err := n.j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	n.write(t, 1, "post")
	n.close(t)

	// Put the deleted pre-snapshot segment back.
	if err := os.WriteFile(filepath.Join(dir, preName), preSeg, 0o644); err != nil {
		t.Fatal(err)
	}
	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.Skipped == 0 {
		t.Fatalf("expected snapshot dedup to skip resurrected records: %+v", stats)
	}
	wantValue(t, n2.read(t, 2), "post")
}

func TestReplayObjectRebuildsFromDisk(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	defer n.close(t)
	n.write(t, 1, "before")
	const victim = 0
	if err := n.c.CrashObject(victim); err != nil {
		t.Fatalf("CrashObject: %v", err)
	}
	n.write(t, 1, "during") // quorum 2 of 3 still forms

	states, err := n.reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := n.j.ReplayObject(n.c, victim, states[victim])
	if err != nil {
		t.Fatalf("ReplayObject: %v", err)
	}
	if stats.Applied == 0 {
		t.Fatalf("object replay applied nothing: %+v", stats)
	}
	if err := n.c.RestartObject(victim); err != nil {
		t.Fatalf("RestartObject: %v", err)
	}
	wantValue(t, n.read(t, 2), "during")
	if !n.j.Covered(victim) {
		t.Fatal("journal does not report the victim as covered")
	}
}

func TestMoveRecordsKeepLatest(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j.RecordMove(1, []byte("v1-old"))
	j.RecordMove(2, []byte("v2"))
	j.RecordMove(1, []byte("v1-new"))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	moves := j2.Moves()
	if len(moves) != 2 {
		t.Fatalf("got %d moves, want 2", len(moves))
	}
	if moves[0].ID != 1 || string(moves[0].Payload) != "v1-new" {
		t.Fatalf("move 1 = %d %q", moves[0].ID, moves[0].Payload)
	}
	if moves[1].ID != 2 || string(moves[1].Payload) != "v2" {
		t.Fatalf("move 2 = %d %q", moves[1].ID, moves[1].Payload)
	}
}

func TestDurableBlocksSummationExact(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	defer n.close(t)
	n.write(t, 1, "blocks")
	n.j.RecordMove(7, []byte("ledger-entry"))
	if err := n.j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	n.write(t, 1, "more")

	var logBits, snapBits int64
	for _, b := range n.j.DurableBlocks() {
		switch b.Location.Kind.String() {
		case "durable-log":
			logBits += int64(b.Bits)
		case "durable-snapshot":
			snapBits += int64(b.Bits)
		default:
			t.Fatalf("unexpected block kind %v", b.Location.Kind)
		}
	}
	if want := n.j.LogBytes() * 8; logBits != want {
		t.Fatalf("log blocks sum to %d bits, journal reports %d", logBits, want)
	}
	if want := n.j.SnapshotBytes() * 8; snapBits != want {
		t.Fatalf("snapshot blocks sum to %d bits, journal reports %d", snapBits, want)
	}
	// On-disk reality must match the accounting.
	var diskLog, diskSnap int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasSuffix(e.Name(), ".log"):
			diskLog += info.Size()
		case strings.HasSuffix(e.Name(), ".snap"):
			diskSnap += info.Size()
		}
	}
	if diskLog != n.j.LogBytes() {
		t.Fatalf("disk log bytes %d, accounted %d", diskLog, n.j.LogBytes())
	}
	if diskSnap != n.j.SnapshotBytes() {
		t.Fatalf("disk snapshot bytes %d, accounted %d", diskSnap, n.j.SnapshotBytes())
	}
}

func TestBackgroundSnapshotFires(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{SnapshotEvery: 4})
	defer n.close(t)
	for i, s := range []string{"a", "b", "c", "d", "e", "f"} {
		n.write(t, i+1, s)
	}
	// The snapshotter runs asynchronously; Snapshot() serializes behind it
	// and guarantees at least one has completed by the time it returns.
	if err := n.j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n.j.SnapshotBytes() == 0 {
		t.Fatal("no snapshot despite SnapshotEvery=4 and 6 writes")
	}
}

func findSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	if len(out) == 0 {
		t.Fatal("no segments found")
	}
	return out
}
