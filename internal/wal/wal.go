// Package wal gives a node durable state: an append-only, CRC-framed
// write-ahead log of every mutating RMW the node applies, plus periodic
// snapshots that bound log length. A process that crashes at any point —
// mid-append, mid-snapshot, mid-truncation — reopens the directory and
// replays to a prefix-consistent state: the snapshot's per-object states plus
// exactly the logged suffix of applies, each applied once (records the
// snapshot already covers are deduplicated by per-object sequence number).
//
// The journal sits below the paper's model: Definition 2 charges the
// emulation's volatile code blocks, so log and snapshot bytes are accounted
// on the separate durable axis of the storage accountant, never in TotalBits.
//
// Layering: wal implements dsys.Journal (applied RMWs are reported from
// inside each object's apply critical section, so log order matches apply
// order per object) and reconfig.MoveJournal (ledger transitions arrive as
// opaque encoded records keyed by move ID; only the latest per ID matters).
// It imports dsys and register, never reconfig.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"spacebounds/internal/dsys"
	"spacebounds/internal/oracle"
	"spacebounds/internal/register"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/trace"
)

// Config configures a journal.
type Config struct {
	// Dir is the journal directory (created if missing). One node per
	// directory.
	Dir string
	// SyncEvery batches fsyncs: the log is fsynced every SyncEvery appends.
	// 1 (the default) fsyncs every append — an acknowledged write is durable.
	// Larger values trade a bounded tail-loss window for throughput.
	SyncEvery int
	// SnapshotEvery triggers a background snapshot (and log truncation) every
	// SnapshotEvery appends. Default 4096.
	SnapshotEvery int
}

// ledgerID is the pseudo-object ID durable bytes not attributable to one
// base object are charged to: record framing for move-ledger records and
// snapshot file overhead.
const ledgerID = -1

const defaultSnapshotEvery = 4096

// segment is one log file: its path, the first sequence number it may
// contain, and its per-object byte footprint (frame bytes included; move
// records charge ledgerID).
type segment struct {
	path     string
	firstSeq uint64
	bytes    map[int]int64
}

// Journal is one node's write-ahead log plus snapshot state. It is safe for
// concurrent use; appends serialize on an internal mutex that is always
// innermost (RecordApply runs under an object's apply lock).
type Journal struct {
	cfg Config

	// cl is the cluster replayed into / snapshotted from; set by Attach.
	cl *dsys.Cluster

	// jmu guards the append path and all accounting below. Lock order:
	// an object's apply lock (liveMu or the controlled-mode cluster lock)
	// may be held when jmu is taken, never the reverse.
	jmu          sync.Mutex
	f            *os.File
	segments     []*segment // ascending firstSeq; last is the active file
	nextSeq      uint64
	lastSeq      map[int]uint64 // per object, seq of its latest log record
	moves        map[int][]byte // latest encoded move-ledger record per ID
	sinceSync    int
	sinceSnap    int
	snapFile     string
	snapBoundary map[int]uint64 // per object, last seq the snapshot covers
	snapBytes    map[int]int64  // per object, snapshot bytes (ledgerID: overhead)
	unknownRMWs  int            // mutating RMWs skipped for lack of a codec
	err          error          // first write error, latched
	closed       bool

	// snapMu serializes snapshots and whole-journal replays against each
	// other. It is outermost: never taken while holding jmu or a cluster
	// lock.
	snapMu sync.Mutex

	snapC chan struct{}
	stopC chan struct{}
	wg    sync.WaitGroup

	met atomic.Pointer[walMetrics]
	trc atomic.Pointer[trace.Tracer]

	// traceTR/traceTC, meaningful only while jmu is held, carry the trace
	// context of the append in progress so syncLocked can parent the fsync
	// span it records under the append span (see RecordApplyTraced).
	traceTR *trace.Tracer
	traceTC trace.Context
}

// Open opens (or initializes) the journal directory, scanning snapshots and
// segments to rebuild accounting and truncating a torn tail on the active
// segment. It does not touch any cluster: call Replay to restore state, then
// Attach to start journaling new applies.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if cfg.SyncEvery <= 1 {
		cfg.SyncEvery = 1
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %v", err)
	}
	j := &Journal{
		cfg:          cfg,
		nextSeq:      1,
		lastSeq:      make(map[int]uint64),
		moves:        make(map[int][]byte),
		snapBoundary: make(map[int]uint64),
		snapBytes:    make(map[int]int64),
		snapC:        make(chan struct{}, 1),
		stopC:        make(chan struct{}),
	}
	if err := j.load(); err != nil {
		return nil, err
	}
	return j, nil
}

// load scans the directory: adopt the newest valid snapshot, scan segments in
// order (rebuilding per-object accounting and truncating a torn tail on the
// last one), and open the active segment for append.
func (j *Journal) load() error {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	var segPaths, snapPaths []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case isTempName(name):
			// A crash mid-snapshot leaves a .tmp; it was never adopted.
			os.Remove(filepath.Join(j.cfg.Dir, name))
		case isSegmentName(name):
			segPaths = append(segPaths, name)
		case isSnapshotName(name):
			snapPaths = append(snapPaths, name)
		}
	}
	sort.Strings(segPaths) // fixed-width hex: lexicographic == numeric
	sort.Strings(snapPaths)

	// Adopt the newest snapshot that parses; older ones (a crash between
	// adopting a new snapshot and removing its predecessor) are removed.
	for i := len(snapPaths) - 1; i >= 0; i-- {
		path := filepath.Join(j.cfg.Dir, snapPaths[i])
		if j.snapFile == "" {
			snap, err := readSnapshotFile(path)
			if err == nil {
				j.snapFile = path
				for _, en := range snap.objects {
					j.snapBoundary[en.obj] = en.lastSeq
					j.snapBytes[en.obj] = en.size()
					if en.lastSeq >= j.nextSeq {
						j.nextSeq = en.lastSeq + 1
					}
				}
				j.snapBytes[ledgerID] = snap.overheadBytes
				for id, payload := range snap.moves {
					j.moves[id] = payload
				}
				if snap.rotSeq >= j.nextSeq {
					j.nextSeq = snap.rotSeq
				}
				continue
			}
			// The newest snapshot is unreadable (torn rename is impossible,
			// but disk corruption is not): fall back to the previous one —
			// the log segments it covered are still on disk.
		}
		os.Remove(path)
	}

	// Scan segments ascending. Only the last may have a torn tail (it was the
	// active file at crash time); corruption anywhere else is a hard error.
	for i, name := range segPaths {
		path := filepath.Join(j.cfg.Dir, name)
		first, ok := parseSeqName(name, segmentPrefix, segmentSuffix)
		if !ok {
			return fmt.Errorf("wal: bad segment name %q", name)
		}
		seg := &segment{path: path, firstSeq: first, bytes: make(map[int]int64)}
		last := i == len(segPaths)-1
		validLen, err := scanSegment(path, func(r record, frameLen int) error {
			j.noteRecord(seg, r, frameLen)
			return nil
		})
		if err != nil {
			if !last {
				return fmt.Errorf("wal: segment %s: %v", name, err)
			}
			// Torn tail on the active segment: everything past the last
			// whole, checksummed frame was never acknowledged as durable.
			if terr := os.Truncate(path, validLen); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %v", name, terr)
			}
		}
		j.segments = append(j.segments, seg)
	}

	if len(j.segments) == 0 {
		if err := j.newSegmentLocked(); err != nil {
			return err
		}
		return nil
	}
	active := j.segments[len(j.segments)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	j.f = f
	return nil
}

// noteRecord folds one scanned record into the accounting maps.
func (j *Journal) noteRecord(seg *segment, r record, frameLen int) {
	if r.seq >= j.nextSeq {
		j.nextSeq = r.seq + 1
	}
	switch r.typ {
	case recApply:
		seg.bytes[r.object] += int64(frameLen)
		if r.seq > j.lastSeq[r.object] {
			j.lastSeq[r.object] = r.seq
		}
	case recMove:
		seg.bytes[ledgerID] += int64(frameLen)
		j.moves[r.moveID] = append([]byte(nil), r.payload...)
	}
}

// newSegmentLocked creates and opens a fresh active segment starting at the
// current nextSeq. Caller holds jmu (or is initializing).
func (j *Journal) newSegmentLocked() error {
	name := fmt.Sprintf("%s%016x%s", segmentPrefix, j.nextSeq, segmentSuffix)
	path := filepath.Join(j.cfg.Dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	if err := syncDir(j.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.segments = append(j.segments, &segment{path: path, firstSeq: j.nextSeq, bytes: make(map[int]int64)})
	return nil
}

// RecordApply implements dsys.Journal: journal one applied mutating RMW.
// Called under the object's apply lock, which is what makes the log order
// match the apply order per object. Read-only RMWs are skipped — they carry
// no state change to replay.
func (j *Journal) RecordApply(object int, rmw dsys.RMW) {
	payload, ok := j.encodeApply(object, rmw)
	if !ok {
		return
	}
	m := j.met.Load()
	start := m.now()
	j.jmu.Lock()
	j.appendLocked(record{typ: recApply, object: object, payload: payload})
	j.jmu.Unlock()
	if m != nil {
		m.appendSec.ObserveSince(start)
		m.appends.Inc()
	}
}

// encodeApply encodes one applied RMW into its journal payload, reporting
// false (and accounting or latching as appropriate) when there is nothing to
// journal: unknown codec, read-only kind, or an encode failure.
func (j *Journal) encodeApply(object int, rmw dsys.RMW) ([]byte, bool) {
	kind, ok := register.KindOf(rmw)
	if !ok {
		j.jmu.Lock()
		j.unknownRMWs++
		j.jmu.Unlock()
		return nil, false
	}
	if register.KindReadOnly(kind) {
		return nil, false
	}
	env, err := register.EncodeEnvelope(dsys.OpID{}, object, rmw)
	if err != nil {
		j.latch(err)
		return nil, false
	}
	payload, err := env.MarshalBinary()
	if err != nil {
		j.latch(err)
		return nil, false
	}
	return payload, true
}

// RecordMove implements reconfig.MoveJournal: journal one move-ledger
// transition. The coordinator re-records the full entry on every transition,
// so only the latest record per ID is live; older ones fall away at the next
// snapshot.
func (j *Journal) RecordMove(id int, encoded []byte) {
	m := j.met.Load()
	start := m.now()
	j.jmu.Lock()
	j.moves[id] = append([]byte(nil), encoded...)
	j.appendLocked(record{typ: recMove, moveID: id, payload: encoded})
	j.jmu.Unlock()
	if m != nil {
		m.appendSec.ObserveSince(start)
		m.appends.Inc()
	}
}

// appendLocked frames, writes, and — per the sync policy — fsyncs one
// record. Caller holds jmu. Errors latch: the journal keeps accepting calls
// but writes nothing more, and Err reports the first failure.
func (j *Journal) appendLocked(r record) {
	if j.err != nil || j.closed {
		return
	}
	r.seq = j.nextSeq
	j.nextSeq++
	frame := encodeFrame(r)
	if _, err := j.f.Write(frame); err != nil {
		j.err = fmt.Errorf("wal: append: %v", err)
		return
	}
	seg := j.segments[len(j.segments)-1]
	if r.typ == recMove {
		seg.bytes[ledgerID] += int64(len(frame))
	} else {
		seg.bytes[r.object] += int64(len(frame))
		j.lastSeq[r.object] = r.seq
	}
	if m := j.met.Load(); m != nil {
		m.logBytes.Set(j.logBytesLocked())
	}
	j.sinceSync++
	if j.sinceSync >= j.cfg.SyncEvery {
		j.syncLocked()
	}
	j.sinceSnap++
	if j.sinceSnap >= j.cfg.SnapshotEvery {
		j.sinceSnap = 0
		select {
		case j.snapC <- struct{}{}:
		default:
		}
	}
}

// syncLocked fsyncs the active segment. Caller holds jmu. When the append in
// progress carries a trace context (traceTR set by RecordApplyTraced), the
// fsync records a StageWALFsync span under the append span — the fsync is
// charged to whichever traced append tripped the sync policy, even though it
// covers every append batched since the last sync.
func (j *Journal) syncLocked() {
	if j.err != nil || j.closed || j.sinceSync == 0 {
		return
	}
	m := j.met.Load()
	start := m.now()
	var fsp trace.Pending
	if j.traceTR != nil {
		fsp = j.traceTR.Start(j.traceTC, trace.StageWALFsync)
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("wal: fsync: %v", err)
		return
	}
	fsp.Done()
	j.sinceSync = 0
	if m != nil {
		m.fsyncSec.ObserveSince(start)
		m.fsyncs.Inc()
	}
}

// Sync forces an fsync of the active segment (a no-op if nothing is
// unsynced).
func (j *Journal) Sync() error {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	j.syncLocked()
	return j.err
}

// latch records the journal's first error.
func (j *Journal) latch(err error) {
	j.jmu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.jmu.Unlock()
}

// Err returns the journal's first write error, if any. A store should treat
// a non-nil Err as loss of the durability guarantee, not of availability.
func (j *Journal) Err() error {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	return j.err
}

// SkippedUnknownRMWs counts mutating RMWs that could not be journaled for
// lack of a registered codec (zero in any store built from this module's
// providers).
func (j *Journal) SkippedUnknownRMWs() int {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	return j.unknownRMWs
}

// Attach connects the journal to a cluster: new applies are journaled from
// here on, and the background snapshotter starts. Call after Replay.
func (j *Journal) Attach(c *dsys.Cluster) {
	j.cl = c
	c.SetJournal(j)
	j.wg.Add(1)
	go j.snapshotLoop()
}

// Close stops the snapshotter, flushes and fsyncs the log, and closes the
// active segment. Call after the cluster has quiesced (no in-flight applies:
// the facade closes its shard set first).
func (j *Journal) Close() error {
	select {
	case <-j.stopC:
	default:
		close(j.stopC)
	}
	j.wg.Wait()
	j.jmu.Lock()
	defer j.jmu.Unlock()
	if j.closed {
		return j.err
	}
	j.syncLocked()
	j.closed = true
	if j.f != nil {
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("wal: close: %v", err)
		}
	}
	return j.err
}

// logBytesLocked sums segment bytes. Caller holds jmu.
func (j *Journal) logBytesLocked() int64 {
	var total int64
	for _, seg := range j.segments {
		for _, b := range seg.bytes {
			total += b
		}
	}
	return total
}

// snapBytesLocked sums snapshot bytes. Caller holds jmu.
func (j *Journal) snapBytesLocked() int64 {
	var total int64
	for _, b := range j.snapBytes {
		total += b
	}
	return total
}

// LogBytes returns the journal's current log footprint in bytes.
func (j *Journal) LogBytes() int64 {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	return j.logBytesLocked()
}

// SnapshotBytes returns the journal's current snapshot footprint in bytes.
func (j *Journal) SnapshotBytes() int64 {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	return j.snapBytesLocked()
}

// DurableBlocks implements dsys.Journal: the on-disk footprint, one block per
// (axis, object). Framing and ledger bytes are charged to the ledgerID
// pseudo-object, so the per-object and total sums stay summation-exact.
func (j *Journal) DurableBlocks() []storagecost.BlockInfo {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	var out []storagecost.BlockInfo
	logPer := make(map[int]int64)
	for _, seg := range j.segments {
		for obj, b := range seg.bytes {
			logPer[obj] += b
		}
	}
	for obj, b := range logPer {
		if b == 0 {
			continue
		}
		out = append(out, storagecost.BlockInfo{
			Location: storagecost.Location{Kind: storagecost.DurableLog, ID: obj},
			Source:   oracle.SourceTag{},
			Bits:     int(b) * 8,
		})
	}
	for obj, b := range j.snapBytes {
		if b == 0 {
			continue
		}
		out = append(out, storagecost.BlockInfo{
			Location: storagecost.Location{Kind: storagecost.DurableSnapshot, ID: obj},
			Source:   oracle.SourceTag{},
			Bits:     int(b) * 8,
		})
	}
	return out
}

// MoveRecord is one journaled move-ledger entry: the move's ID and its
// latest encoded MoveState (opaque to this package).
type MoveRecord struct {
	ID      int
	Payload []byte
}

// Moves returns the latest journaled record per move, in ID order. The
// facade decodes these and hands them to the reconfiguration coordinator's
// ledger restore.
func (j *Journal) Moves() []MoveRecord {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	ids := make([]int, 0, len(j.moves))
	for id := range j.moves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]MoveRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, MoveRecord{ID: id, Payload: append([]byte(nil), j.moves[id]...)})
	}
	return out
}

// Covered reports whether the journal holds any durable state for the object
// (a snapshot entry or at least one log record). A node restarting from this
// journal can serve the object's reads from replay alone iff Covered.
func (j *Journal) Covered(object int) bool {
	j.jmu.Lock()
	defer j.jmu.Unlock()
	if _, ok := j.snapBoundary[object]; ok {
		return true
	}
	_, ok := j.lastSeq[object]
	return ok
}

// syncDir fsyncs a directory so a just-created or renamed file's directory
// entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %v", err)
	}
	return nil
}
