package wal_test

import (
	"context"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/trace"
	"spacebounds/internal/value"
	"spacebounds/internal/wal"
)

// TestTracedAppliesRecordSpans drives sampled and unsampled writes through an
// attached journal and checks the traced-journal contract: a sampled apply
// records a wal-append span on the op's trace with the fsync as its child
// (SyncEvery is 1, so every append trips the barrier), an unsampled apply
// records nothing, and both are journaled identically — tracing never changes
// what recovery replays.
func TestTracedAppliesRecordSpans(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, wal.Config{})
	tr := trace.New(trace.Options{Sample: 1, Proc: "wal-test"})
	n.j.SetTracer(tr)
	if n.j.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}

	tc := trace.Context{Trace: tr.SpanID(), Span: tr.SpanID()}
	v := value.FromString("traced", dataLen)
	if err := n.c.RunScoped(1, 0, n.c.N(), func(h *dsys.ClientHandle) error {
		h = h.WithContext(trace.NewContext(context.Background(), tc))
		return n.reg.Write(h, v)
	}); err != nil {
		t.Fatalf("traced write: %v", err)
	}

	appends := make(map[uint64]bool) // wal-append span IDs on our trace
	fsyncs := 0
	for _, s := range tr.Snapshot() {
		if s.Trace != tc.Trace {
			t.Errorf("span %016x on trace %016x, want %016x", s.ID, s.Trace, tc.Trace)
			continue
		}
		switch s.Stage {
		case trace.StageWALAppend:
			appends[s.ID] = true
			if s.Parent != tc.Span {
				t.Errorf("wal-append parent = %016x, want the apply span %016x", s.Parent, tc.Span)
			}
		case trace.StageWALFsync:
			fsyncs++
		}
	}
	if len(appends) == 0 {
		t.Fatal("no wal-append spans for a sampled apply")
	}
	if fsyncs == 0 {
		t.Fatal("no wal-fsync spans with SyncEvery=1")
	}
	for _, s := range tr.Snapshot() {
		if s.Stage == trace.StageWALFsync && !appends[s.Parent] {
			t.Errorf("wal-fsync parent = %016x, not a wal-append span", s.Parent)
		}
	}

	// An unsampled apply journals without recording.
	before := len(tr.Snapshot())
	n.write(t, 2, "plain")
	if after := len(tr.Snapshot()); after != before {
		t.Errorf("unsampled apply recorded %d spans", after-before)
	}

	// Both writes survive: a fresh node replays them indistinguishably.
	n.close(t)
	n2, stats := openNode(t, dir, wal.Config{})
	defer n2.close(t)
	if stats.Applied == 0 {
		t.Fatalf("replay applied %d records, want the journaled writes back", stats.Applied)
	}
}
