package wal_test

import (
	"os"
	"path/filepath"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/value"
	"spacebounds/internal/wal"
)

// buildSeedSegment produces the bytes of a real segment: a few writes through
// a live cluster with the journal attached.
func buildSeedSegment(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	reg, err := abd.New(register.Config{F: 1, K: 1, DataLen: dataLen})
	if err != nil {
		f.Fatal(err)
	}
	states, err := reg.InitialStates(value.Zero(dataLen))
	if err != nil {
		f.Fatal(err)
	}
	c := dsys.NewCluster(states, dsys.WithLiveMode())
	j, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	j.Attach(c)
	for _, s := range []string{"seed-a", "seed-b"} {
		v := value.FromString(s, dataLen)
		if err := c.RunScoped(1, 0, c.N(), func(h *dsys.ClientHandle) error {
			return reg.Write(h, v)
		}); err != nil {
			f.Fatal(err)
		}
	}
	j.RecordMove(1, []byte("seed-move"))
	c.Close()
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			return raw
		}
	}
	f.Fatal("no segment produced")
	return nil
}

// FuzzWALReplay feeds arbitrary bytes to the journal as a segment file and as
// a snapshot file. Whatever the damage — torn writes, flipped bits, hostile
// length prefixes — Open must either succeed (truncating a torn tail) or
// return an error; Replay must apply a clean prefix or return an error; and a
// second Open of the same directory must succeed (tail repair converges).
// Panics and unbounded allocations are the bugs this hunts.
func FuzzWALReplay(f *testing.F) {
	seed := buildSeedSegment(f)
	f.Add(seed, false)
	f.Add(seed[:len(seed)/2], false)
	f.Add(seed[:len(seed)-3], false)
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0, 0, 200}, false)
	f.Add(seed, true)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, true)

	f.Fuzz(func(t *testing.T, data []byte, asSnapshot bool) {
		dir := t.TempDir()
		name := "wal-0000000000000001.log"
		if asSnapshot {
			name = "snap-0000000000000001.snap"
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		replayInto := func() {
			j, err := wal.Open(wal.Config{Dir: dir})
			if err != nil {
				return // refused cleanly
			}
			defer j.Close()
			reg, err := abd.New(register.Config{F: 1, K: 1, DataLen: dataLen})
			if err != nil {
				t.Fatal(err)
			}
			states, err := reg.InitialStates(value.Zero(dataLen))
			if err != nil {
				t.Fatal(err)
			}
			c := dsys.NewCluster(states, dsys.WithLiveMode())
			defer c.Close()
			_, _ = j.Replay(c) // error is fine; panic is not
			_ = j.Moves()
		}
		replayInto()
		// Second open: the torn-tail truncation (or snapshot rejection) of
		// the first pass must leave a directory that opens cleanly.
		j, err := wal.Open(wal.Config{Dir: dir})
		if err != nil {
			t.Fatalf("second Open after repair: %v", err)
		}
		j.Close()
	})
}
