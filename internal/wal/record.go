package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"spacebounds/internal/dsys"
)

// Log file framing. Every record is one self-checking frame:
//
//	u32 len(body)
//	u32 crc32-IEEE(body)
//	body: u8 type | u64 seq | type-specific payload
//
// An apply record's payload is a dsys.Envelope (which carries the target
// object and the RMW's codec kind + parameters); a move record's payload is
// u64 ledger ID followed by the coordinator's opaque encoded MoveState. A
// short or checksum-failing frame marks the end of valid data: on the active
// segment that is a torn tail from a crash mid-append and is truncated away;
// on any other segment it is corruption and refuses the journal.

const (
	recApply = 1
	recMove  = 2

	frameHeader = 8 // len + crc
	bodyHeader  = 9 // type + seq

	// maxBody bounds a single record; a larger length prefix is treated as
	// corruption rather than an allocation request.
	maxBody = 1 << 28

	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
	tempSuffix     = ".tmp"
)

// ErrCorrupt reports an unreadable record or snapshot outside the repairable
// torn-tail position.
var ErrCorrupt = errors.New("wal: corrupt record")

// record is one decoded log record.
type record struct {
	typ     byte
	seq     uint64
	object  int    // recApply: target base object (global ID)
	moveID  int    // recMove: ledger ID
	payload []byte // recApply: envelope bytes; recMove: encoded MoveState
}

// encodeFrame frames a record for appending. The record's seq must be set.
func encodeFrame(r record) []byte {
	body := make([]byte, 0, bodyHeader+8+len(r.payload))
	body = append(body, r.typ)
	body = binary.BigEndian.AppendUint64(body, r.seq)
	if r.typ == recMove {
		body = binary.BigEndian.AppendUint64(body, uint64(r.moveID))
	}
	body = append(body, r.payload...)
	frame := make([]byte, 0, frameHeader+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	return append(frame, body...)
}

// decodeBody parses a checksum-verified record body.
func decodeBody(body []byte) (record, error) {
	if len(body) < bodyHeader {
		return record{}, fmt.Errorf("%w: body of %d bytes", ErrCorrupt, len(body))
	}
	r := record{typ: body[0], seq: binary.BigEndian.Uint64(body[1:9])}
	rest := body[bodyHeader:]
	switch r.typ {
	case recApply:
		env, err := dsys.UnmarshalEnvelope(rest)
		if err != nil {
			return record{}, fmt.Errorf("%w: apply record: %v", ErrCorrupt, err)
		}
		r.object = env.Object
		r.payload = rest
	case recMove:
		if len(rest) < 8 {
			return record{}, fmt.Errorf("%w: move record of %d bytes", ErrCorrupt, len(rest))
		}
		r.moveID = int(int64(binary.BigEndian.Uint64(rest[:8])))
		r.payload = rest[8:]
	default:
		return record{}, fmt.Errorf("%w: record type %d", ErrCorrupt, r.typ)
	}
	return r, nil
}

// scanSegment reads a segment front to back, calling fn for each whole,
// checksum-passing record. It returns the byte offset of the end of valid
// data; err is non-nil if anything after that offset remains (torn tail or
// corruption — the caller decides which it is by the segment's position), or
// if fn failed.
func scanSegment(path string, fn func(r record, frameLen int) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var off int64
	header := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return off, nil
			}
			return off, fmt.Errorf("%w: short frame header at offset %d", ErrCorrupt, off)
		}
		bodyLen := binary.BigEndian.Uint32(header[:4])
		crc := binary.BigEndian.Uint32(header[4:8])
		if bodyLen > maxBody {
			return off, fmt.Errorf("%w: frame of %d bytes at offset %d", ErrCorrupt, bodyLen, off)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(f, body); err != nil {
			return off, fmt.Errorf("%w: short frame body at offset %d", ErrCorrupt, off)
		}
		if crc32.ChecksumIEEE(body) != crc {
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodeBody(body)
		if err != nil {
			return off, fmt.Errorf("%v at offset %d", err, off)
		}
		frameLen := frameHeader + int(bodyLen)
		if err := fn(rec, frameLen); err != nil {
			return off, err
		}
		off += int64(frameLen)
	}
}

func isSegmentName(name string) bool {
	return strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix)
}

func isSnapshotName(name string) bool {
	return strings.HasPrefix(name, snapshotPrefix) && strings.HasSuffix(name, snapshotSuffix)
}

func isTempName(name string) bool { return strings.HasSuffix(name, tempSuffix) }

// parseSeqName extracts the 16-digit hex sequence number from a segment or
// snapshot file name.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(mid) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
