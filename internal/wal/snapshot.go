package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// Snapshot file layout (big-endian, one trailing CRC over everything before
// it):
//
//	u8  version
//	u64 rotSeq — the log rotation point this snapshot was taken at
//	u32 nObjects, then per object:
//	    u64 object | u64 lastSeq | u16 len(kind) kind | u32 len(state) state
//	u32 nMoves, then per move:
//	    u64 id | u32 len(payload) payload
//	u32 crc32-IEEE of all preceding bytes
//
// A snapshot is written to a .tmp file, fsynced, renamed into place, and the
// directory fsynced — it exists atomically or not at all. The snapshot
// ordering invariant is rotate-first: the active segment is rotated *before*
// object states are read, so every record in pre-rotation segments is
// reflected in the snapshot's states (the journal records an apply from
// inside the same critical section that mutates the state) and those
// segments can be deleted afterwards.

const snapshotVersion = 1

type snapObject struct {
	obj     int
	lastSeq uint64
	kind    string
	state   []byte
}

// size is the object's byte footprint inside the snapshot file, for the
// durable-axis accounting.
func (e snapObject) size() int64 { return int64(8 + 8 + 2 + len(e.kind) + 4 + len(e.state)) }

type snapFileData struct {
	rotSeq        uint64
	objects       []snapObject
	moves         map[int][]byte
	overheadBytes int64 // header + move records + trailer (charged to ledgerID)
}

func encodeSnapshotFile(s snapFileData) []byte {
	b := []byte{snapshotVersion}
	b = binary.BigEndian.AppendUint64(b, s.rotSeq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.objects)))
	for _, en := range s.objects {
		b = binary.BigEndian.AppendUint64(b, uint64(en.obj))
		b = binary.BigEndian.AppendUint64(b, en.lastSeq)
		b = binary.BigEndian.AppendUint16(b, uint16(len(en.kind)))
		b = append(b, en.kind...)
		b = binary.BigEndian.AppendUint32(b, uint32(len(en.state)))
		b = append(b, en.state...)
	}
	ids := make([]int, 0, len(s.moves))
	for id := range s.moves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = binary.BigEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.BigEndian.AppendUint64(b, uint64(id))
		b = binary.BigEndian.AppendUint32(b, uint32(len(s.moves[id])))
		b = append(b, s.moves[id]...)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func readSnapshotFile(path string) (snapFileData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return snapFileData{}, err
	}
	if len(raw) < 4 {
		return snapFileData{}, fmt.Errorf("%w: snapshot of %d bytes", ErrCorrupt, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return snapFileData{}, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	cur := snapCursor{b: body}
	if v := cur.u8(); v != snapshotVersion {
		return snapFileData{}, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, v)
	}
	s := snapFileData{rotSeq: cur.u64(), moves: make(map[int][]byte)}
	nObjects := cur.u32()
	if uint64(nObjects)*18 > uint64(len(body)) {
		return snapFileData{}, fmt.Errorf("%w: snapshot object count %d", ErrCorrupt, nObjects)
	}
	for i := uint32(0); i < nObjects && cur.err == nil; i++ {
		en := snapObject{
			obj:     int(int64(cur.u64())),
			lastSeq: cur.u64(),
		}
		en.kind = string(cur.take(int(cur.u16())))
		en.state = append([]byte(nil), cur.take(int(cur.u32()))...)
		s.objects = append(s.objects, en)
	}
	nMoves := cur.u32()
	if uint64(nMoves)*12 > uint64(len(body)) {
		return snapFileData{}, fmt.Errorf("%w: snapshot move count %d", ErrCorrupt, nMoves)
	}
	for i := uint32(0); i < nMoves && cur.err == nil; i++ {
		id := int(int64(cur.u64()))
		s.moves[id] = append([]byte(nil), cur.take(int(cur.u32()))...)
	}
	if cur.err != nil {
		return snapFileData{}, cur.err
	}
	if cur.off != len(body) {
		return snapFileData{}, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(body)-cur.off)
	}
	var objBytes int64
	for _, en := range s.objects {
		objBytes += en.size()
	}
	// Everything that is not a per-object entry — header, move records,
	// trailer — is charged to the ledger pseudo-object.
	s.overheadBytes = int64(len(raw)) - objBytes
	return s, nil
}

// snapCursor is a bounds-checked reader over the snapshot body.
type snapCursor struct {
	b   []byte
	off int
	err error
}

func (c *snapCursor) take(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		if c.err == nil {
			c.err = fmt.Errorf("%w: truncated snapshot at offset %d", ErrCorrupt, c.off)
		}
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *snapCursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *snapCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *snapCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *snapCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// snapshotLoop is the background snapshotter: it wakes every SnapshotEvery
// appends and on Close.
func (j *Journal) snapshotLoop() {
	defer j.wg.Done()
	for {
		select {
		case <-j.stopC:
			return
		case <-j.snapC:
			if err := j.snapshotOnce(); err != nil {
				j.latch(err)
			}
		}
	}
}

// Snapshot forces a snapshot and log truncation now. The journal must be
// attached to a cluster.
func (j *Journal) Snapshot() error {
	return j.snapshotOnce()
}

// snapshotOnce takes one snapshot. Phases, with their locks:
//
//  1. Under jmu: fsync and rotate the log, copy the move map and the list of
//     now-frozen segments. Every record in those segments has seq < rotSeq.
//  2. No jmu: read each covered object's state under its apply lock (via
//     dsys.ReadObjectState; the callback briefly takes jmu for the object's
//     lastSeq — apply-lock→jmu is the normal append order). Rotation
//     happened first, so each state reflects at least every pre-rotation
//     record of that object.
//  3. Write the snapshot file atomically (.tmp, fsync, rename, dir fsync).
//  4. Under jmu: adopt the snapshot, drop the frozen segments from
//     accounting, then delete them and the previous snapshot file.
//
// A crash between any two phases recovers cleanly: the old snapshot and all
// segments are still complete until the rename, and after it the frozen
// segments are redundant (replay deduplicates by per-object sequence).
func (j *Journal) snapshotOnce() error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	cl := j.cl
	if cl == nil {
		return fmt.Errorf("wal: snapshot before Attach")
	}

	// Phase 1: rotate.
	j.jmu.Lock()
	if j.err != nil || j.closed {
		err := j.err
		j.jmu.Unlock()
		return err
	}
	if len(j.segments) == 1 && len(j.segments[0].bytes) == 0 {
		// Nothing appended since the last rotation: the existing snapshot
		// (if any) is already current, and rotating would collide with the
		// empty active segment's name.
		j.jmu.Unlock()
		return nil
	}
	j.syncLocked()
	if err := j.f.Close(); err != nil {
		j.jmu.Unlock()
		return fmt.Errorf("wal: rotate: %v", err)
	}
	rotSeq := j.nextSeq
	frozen := append([]*segment(nil), j.segments...)
	if err := j.newSegmentLocked(); err != nil {
		j.jmu.Unlock()
		return err
	}
	j.segments = j.segments[len(j.segments)-1:] // keep only the new active
	moves := make(map[int][]byte, len(j.moves))
	for id, p := range j.moves {
		moves[id] = append([]byte(nil), p...)
	}
	covered := make(map[int]bool, len(j.lastSeq)+len(j.snapBoundary))
	for obj := range j.lastSeq {
		covered[obj] = true
	}
	for obj := range j.snapBoundary {
		covered[obj] = true
	}
	oldSnap := j.snapFile
	j.jmu.Unlock()

	// Phase 2: collect states.
	objs := make([]int, 0, len(covered))
	for obj := range covered {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	data := snapFileData{rotSeq: rotSeq, moves: moves}
	var encErr error
	for _, obj := range objs {
		en := snapObject{obj: obj}
		err := cl.ReadObjectState(obj, func(s dsys.State) {
			en.kind, en.state, encErr = register.EncodeState(s)
			j.jmu.Lock()
			en.lastSeq = j.lastSeq[obj]
			j.jmu.Unlock()
		})
		if err != nil {
			// Unknown or retired: the object no longer exists, so its durable
			// state is dropped with the frozen segments.
			continue
		}
		if encErr != nil {
			return fmt.Errorf("wal: snapshot object %d: %v", obj, encErr)
		}
		data.objects = append(data.objects, en)
	}

	// Phase 3: write atomically.
	name := fmt.Sprintf("%s%016x%s", snapshotPrefix, rotSeq, snapshotSuffix)
	path := filepath.Join(j.cfg.Dir, name)
	raw := encodeSnapshotFile(data)
	tmp := path + tempSuffix
	if err := writeFileSync(tmp, raw); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot rename: %v", err)
	}
	if err := syncDir(j.cfg.Dir); err != nil {
		return err
	}

	// Phase 4: adopt, then discard what it replaced.
	var objBytes int64
	j.jmu.Lock()
	j.snapFile = path
	j.snapBoundary = make(map[int]uint64, len(data.objects))
	j.snapBytes = make(map[int]int64, len(data.objects)+1)
	for _, en := range data.objects {
		j.snapBoundary[en.obj] = en.lastSeq
		j.snapBytes[en.obj] = en.size()
		objBytes += en.size()
	}
	// Header, move records, and trailer are charged to the ledger
	// pseudo-object — the same split readSnapshotFile reconstructs.
	j.snapBytes[ledgerID] = int64(len(raw)) - objBytes
	m := j.met.Load()
	if m != nil {
		m.logBytes.Set(j.logBytesLocked())
		m.snapBytes.Set(j.snapBytesLocked())
	}
	j.jmu.Unlock()
	if m != nil {
		m.snapshots.Inc()
	}
	for _, seg := range frozen {
		os.Remove(seg.path)
	}
	if oldSnap != "" && oldSnap != path {
		os.Remove(oldSnap)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %v", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	return nil
}
