package wal

import (
	"errors"
	"fmt"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// ReplayStats summarizes one recovery replay.
type ReplayStats struct {
	// SnapshotObjects counts object states restored from the snapshot.
	SnapshotObjects int
	// Records counts log records scanned.
	Records int
	// Applied counts apply records replayed onto object states.
	Applied int
	// Skipped counts records already covered by the snapshot (dedup) or
	// addressed to retired objects.
	Skipped int
	// Unknown counts records and snapshot entries for objects the cluster
	// does not have (a layout smaller than the journaled one).
	Unknown int
	// Moves counts journaled move-ledger records carried (latest per ID).
	Moves int
}

// String renders the one-line replay summary operators grep for.
func (s ReplayStats) String() string {
	return fmt.Sprintf("snapshot_objects=%d records=%d applied=%d skipped=%d unknown=%d moves=%d",
		s.SnapshotObjects, s.Records, s.Applied, s.Skipped, s.Unknown, s.Moves)
}

// Replay restores the whole journal into a freshly built cluster: snapshot
// states first, then every logged apply the snapshot does not already cover,
// in log order, deduplicated by per-object sequence number. Call before
// Attach and before the cluster serves any traffic. Replaying the same
// journal into the same fresh cluster twice yields the same states — replay
// is idempotent from a fixed starting point, which is what crash-during-
// recovery needs (recovery that crashes restarts from the unchanged log).
func (j *Journal) Replay(c *dsys.Cluster) (ReplayStats, error) {
	m := j.met.Load()
	start := time.Now()
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	var stats ReplayStats

	j.jmu.Lock()
	snapFile := j.snapFile
	boundary := make(map[int]uint64, len(j.snapBoundary))
	for obj, seq := range j.snapBoundary {
		boundary[obj] = seq
	}
	segs := append([]*segment(nil), j.segments...)
	stats.Moves = len(j.moves)
	j.jmu.Unlock()

	if snapFile != "" {
		snap, err := readSnapshotFile(snapFile)
		if err != nil {
			return stats, fmt.Errorf("wal: replay: %v", err)
		}
		for _, en := range snap.objects {
			st, err := register.DecodeState(en.kind, en.state)
			if err != nil {
				return stats, fmt.Errorf("wal: replay object %d: %v", en.obj, err)
			}
			switch err := c.RestoreObjectState(en.obj, st); {
			case err == nil:
				stats.SnapshotObjects++
			case errors.Is(err, dsys.ErrUnknownObject):
				stats.Unknown++
			case errors.Is(err, dsys.ErrRetiredObject):
				stats.Skipped++
			default:
				return stats, fmt.Errorf("wal: replay object %d: %v", en.obj, err)
			}
		}
	}

	for i, seg := range segs {
		active := i == len(segs)-1
		err := j.replaySegment(c, seg.path, active, boundary, &stats)
		if err != nil {
			return stats, err
		}
	}
	if m != nil {
		m.replaySec.ObserveSince(start)
		m.replayed.Add(int64(stats.Records))
	}
	return stats, nil
}

// replaySegment scans one segment and applies its apply records with
// seq > boundary[object]. Scan errors on the active segment mean a torn tail
// (already truncated at Open for the crash-recovery path, but a live replay
// may race fresh appends) and end the segment cleanly; anywhere else they
// are corruption.
func (j *Journal) replaySegment(c *dsys.Cluster, path string, active bool, boundary map[int]uint64, stats *ReplayStats) error {
	_, err := scanSegment(path, func(r record, frameLen int) error {
		if r.typ != recApply {
			return nil
		}
		stats.Records++
		if r.seq <= boundary[r.object] {
			stats.Skipped++
			return nil
		}
		env, err := dsys.UnmarshalEnvelope(r.payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rmw, err := register.DecodeRMW(env)
		if err != nil {
			return fmt.Errorf("wal: replay: %v", err)
		}
		switch _, err := c.ReplayApply(r.object, rmw); {
		case err == nil:
			stats.Applied++
		case errors.Is(err, dsys.ErrUnknownObject):
			stats.Unknown++
		case errors.Is(err, dsys.ErrRetiredObject):
			stats.Skipped++
		default:
			return err
		}
		return nil
	})
	if err != nil && !(active && errors.Is(err, ErrCorrupt)) {
		return fmt.Errorf("wal: replay %s: %v", path, err)
	}
	return nil
}

// ReplayObject rebuilds one object from disk while it is crashed: the given
// fresh (initial) state is installed, the snapshot's state for the object —
// if any — is restored over it, and the object's logged suffix is applied on
// top. This is the live-restart path: the in-memory state is deliberately
// discarded and rebuilt from durable data alone, so a restart in a
// long-running process exercises exactly what a process restart would.
// The object must be crashed (no concurrent applies) and the journal
// attached; the log is fsynced first so the scan sees every acknowledged
// record.
func (j *Journal) ReplayObject(c *dsys.Cluster, object int, fresh dsys.State) (ReplayStats, error) {
	m := j.met.Load()
	start := time.Now()
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	var stats ReplayStats

	j.jmu.Lock()
	j.syncLocked()
	err := j.err
	snapFile := j.snapFile
	boundary := j.snapBoundary[object]
	segs := append([]*segment(nil), j.segments...)
	j.jmu.Unlock()
	if err != nil {
		return stats, err
	}

	restored := false
	if snapFile != "" {
		snap, err := readSnapshotFile(snapFile)
		if err != nil {
			return stats, fmt.Errorf("wal: replay: %v", err)
		}
		for _, en := range snap.objects {
			if en.obj != object {
				continue
			}
			st, err := register.DecodeState(en.kind, en.state)
			if err != nil {
				return stats, fmt.Errorf("wal: replay object %d: %v", object, err)
			}
			if err := c.RestoreObjectState(object, st); err != nil {
				return stats, err
			}
			stats.SnapshotObjects++
			restored = true
			break
		}
	}
	if !restored {
		if err := c.RestoreObjectState(object, fresh); err != nil {
			return stats, err
		}
	}

	only := map[int]uint64{object: boundary}
	for i, seg := range segs {
		active := i == len(segs)-1
		if err := j.replayObjectSegment(c, seg.path, active, object, only, &stats); err != nil {
			return stats, err
		}
	}
	if m != nil {
		m.replaySec.ObserveSince(start)
		m.replayed.Add(int64(stats.Records))
	}
	return stats, nil
}

// replayObjectSegment is replaySegment restricted to one object.
func (j *Journal) replayObjectSegment(c *dsys.Cluster, path string, active bool, object int, boundary map[int]uint64, stats *ReplayStats) error {
	_, err := scanSegment(path, func(r record, frameLen int) error {
		if r.typ != recApply || r.object != object {
			return nil
		}
		stats.Records++
		if r.seq <= boundary[r.object] {
			stats.Skipped++
			return nil
		}
		env, err := dsys.UnmarshalEnvelope(r.payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rmw, err := register.DecodeRMW(env)
		if err != nil {
			return fmt.Errorf("wal: replay: %v", err)
		}
		if _, err := c.ReplayApply(r.object, rmw); err != nil {
			return err
		}
		stats.Applied++
		return nil
	})
	// The active segment's tail may be mid-append by other, live objects;
	// everything for the crashed object was fsynced before the scan started,
	// so stopping at the first torn frame loses nothing of it.
	if err != nil && !(active && errors.Is(err, ErrCorrupt)) {
		return fmt.Errorf("wal: replay %s: %v", path, err)
	}
	return nil
}
