package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZero(t *testing.T) {
	v := Zero(16)
	if !v.IsZero() {
		t.Fatal("Zero value is not zero")
	}
	if v.SizeBytes() != 16 || v.SizeBits() != 128 {
		t.Fatalf("Zero(16) has size %dB/%db, want 16B/128b", v.SizeBytes(), v.SizeBits())
	}
}

func TestFromBytesCopies(t *testing.T) {
	src := []byte{1, 2, 3}
	v := FromBytes(src)
	src[0] = 9
	if v.Bytes()[0] != 1 {
		t.Fatal("FromBytes did not copy its input")
	}
	out := v.Bytes()
	out[1] = 9
	if v.Bytes()[1] != 2 {
		t.Fatal("Bytes did not return a copy")
	}
}

func TestFromString(t *testing.T) {
	v := FromString("hi", 8)
	b := v.Bytes()
	if b[0] != 'h' || b[1] != 'i' || b[7] != 0 {
		t.Fatalf("FromString produced %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromString with oversized string did not panic")
		}
	}()
	FromString("too long", 3)
}

func TestEqual(t *testing.T) {
	a := FromBytes([]byte{1, 2, 3})
	b := FromBytes([]byte{1, 2, 3})
	c := FromBytes([]byte{1, 2, 4})
	if !a.Equal(b) {
		t.Fatal("identical values not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different values reported Equal")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(42)), 64)
	b := Random(rand.New(rand.NewSource(42)), 64)
	if !a.Equal(b) {
		t.Fatal("Random with the same seed produced different values")
	}
	c := Random(rand.New(rand.NewSource(43)), 64)
	if a.Equal(c) {
		t.Fatal("Random with different seeds produced identical values")
	}
}

func TestSequencedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for writer := 0; writer < 8; writer++ {
		for seq := 0; seq < 8; seq++ {
			v := Sequenced(writer, seq, 128)
			if v.SizeBytes() != 128 {
				t.Fatalf("Sequenced size %d, want 128", v.SizeBytes())
			}
			fp := v.Fingerprint()
			if seen[fp] {
				t.Fatalf("Sequenced(%d,%d) collides with an earlier value", writer, seq)
			}
			seen[fp] = true
		}
	}
}

func TestSequencedDeterministic(t *testing.T) {
	a := Sequenced(3, 7, 100)
	b := Sequenced(3, 7, 100)
	if !a.Equal(b) {
		t.Fatal("Sequenced is not deterministic")
	}
}

func TestFingerprintMatchesEquality(t *testing.T) {
	prop := func(a, b []byte) bool {
		va, vb := FromBytes(a), FromBytes(b)
		if va.Equal(vb) {
			return va.Fingerprint() == vb.Fingerprint()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("fingerprint inconsistent with equality: %v", err)
	}
}

func TestStringForms(t *testing.T) {
	if s := FromBytes(nil).String(); s != "v(empty)" {
		t.Fatalf("empty value String = %q", s)
	}
	if s := FromBytes([]byte{1}).String(); s == "" {
		t.Fatal("String returned empty for non-empty value")
	}
}
