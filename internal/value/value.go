// Package value defines the register value domain V of the paper.
//
// A register stores values of a fixed size D = 8 * len(bytes) bits. The
// package provides constructors, equality, deterministic pseudo-random value
// generation for workloads and tests, and bit-size accounting that the
// storage-cost model (Definition 2 in the paper) relies on.
package value

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
)

// Value is an element of the register domain V: an immutable byte string of a
// fixed length agreed upon by all clients of a register instance.
type Value struct {
	data []byte
}

// Zero returns the initial register value v0: all-zero bytes of the given
// size. The paper's v0 is an arbitrary distinguished element of V; all-zeros
// is a convenient canonical choice.
func Zero(sizeBytes int) Value {
	return Value{data: make([]byte, sizeBytes)}
}

// FromBytes builds a Value from the given bytes. The slice is copied so the
// Value is immutable from the caller's perspective.
func FromBytes(b []byte) Value {
	d := make([]byte, len(b))
	copy(d, b)
	return Value{data: d}
}

// FromString builds a Value from a string, padded with zero bytes to
// sizeBytes. It panics if the string is longer than sizeBytes; register
// domains are fixed-size, so callers must size their values up front.
func FromString(s string, sizeBytes int) Value {
	if len(s) > sizeBytes {
		panic(fmt.Sprintf("value: string of length %d exceeds domain size %d", len(s), sizeBytes))
	}
	d := make([]byte, sizeBytes)
	copy(d, s)
	return Value{data: d}
}

// Random returns a deterministic pseudo-random Value of the given size drawn
// from the provided source. Used by workload generators and property tests.
func Random(rng *rand.Rand, sizeBytes int) Value {
	d := make([]byte, sizeBytes)
	if _, err := rng.Read(d); err != nil {
		// rand.Rand.Read never fails; the check satisfies errcheck-style review.
		panic(fmt.Sprintf("value: rand read failed: %v", err))
	}
	return Value{data: d}
}

// Sequenced returns a deterministic value of the given size derived from a
// (writer, sequence) pair. Distinct pairs yield distinct values with
// overwhelming probability, which experiments use to tell concurrent writes
// apart without coordinating value choice.
func Sequenced(writer, seq int, sizeBytes int) Value {
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[0:8], uint64(writer))
	binary.BigEndian.PutUint64(seed[8:16], uint64(seq))
	d := make([]byte, sizeBytes)
	var counter uint64
	for off := 0; off < sizeBytes; off += sha256.Size {
		var block [24]byte
		copy(block[:16], seed[:])
		binary.BigEndian.PutUint64(block[16:], counter)
		sum := sha256.Sum256(block[:])
		copy(d[off:], sum[:])
		counter++
	}
	return Value{data: d}
}

// Bytes returns a copy of the value's bytes.
func (v Value) Bytes() []byte {
	d := make([]byte, len(v.data))
	copy(d, v.data)
	return d
}

// SizeBytes returns the length of the value in bytes.
func (v Value) SizeBytes() int { return len(v.data) }

// SizeBits returns D, the length of the value in bits.
func (v Value) SizeBits() int { return 8 * len(v.data) }

// IsZero reports whether every byte of the value is zero (i.e. the value is
// the canonical v0 of its domain).
func (v Value) IsZero() bool {
	for _, b := range v.data {
		if b != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two values are byte-wise identical.
func (v Value) Equal(other Value) bool { return bytes.Equal(v.data, other.data) }

// String renders a short fingerprint of the value for logs and traces.
func (v Value) String() string {
	if len(v.data) == 0 {
		return "v(empty)"
	}
	sum := sha256.Sum256(v.data)
	return fmt.Sprintf("v(%dB:%s)", len(v.data), hex.EncodeToString(sum[:4]))
}

// Fingerprint returns a stable 64-bit digest of the value, used by history
// checkers to compare returned and written values cheaply.
func (v Value) Fingerprint() uint64 {
	sum := sha256.Sum256(v.data)
	return binary.BigEndian.Uint64(sum[:8])
}
