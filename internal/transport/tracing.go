package transport

import (
	"time"

	"spacebounds/internal/trace"
)

// WithTracer attaches a tracer to the client: rounds whose context carries a
// sampled trace stamp it into every request envelope (the version-2 wire
// extension) and record one StageRPC span per served response frame, noted
// with the node address. Untraced rounds emit byte-identical version-1 frames.
func WithTracer(tr *trace.Tracer) ClientOption {
	return func(o *clientOptions) { o.tracer = tr }
}

// WithServerTracer attaches a tracer to the server: requests arriving with a
// wire trace context record a StageApply span parented under the client's RPC
// span, and the journal's WAL stages parent under the apply in turn. Requests
// without a trace context cost one field comparison.
func WithServerTracer(tr *trace.Tracer) ServerOption {
	return func(o *serverOptions) { o.tracer = tr }
}

// recordRPC closes a served frame's RPC span (no-op for untraced calls).
// Frames failed by a connection shutdown are not recorded — like the RPC
// latency histogram, the span series means served responses.
func (cc *clientConn) recordRPC(call *pendingCall) {
	if cc.tr == nil || call.sp.Trace == 0 {
		return
	}
	sp := call.sp
	sp.Duration = time.Since(sp.Start)
	cc.tr.Record(sp)
	cc.tr.Exemplar(metricRPCSeconds, trace.Context{Trace: sp.Trace}, sp.Duration)
}
