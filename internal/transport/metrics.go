package transport

import (
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/metrics"
)

// Metric families emitted by the transport. Client-side series are labeled by
// node address so a flapping or slow node stands out; server-side series are
// labeled by response status so fault statuses (object-down, recovering, ...)
// are countable without log scraping.
const (
	metricRPCSeconds     = "spacebounds_transport_rpc_seconds"
	metricRedialsTotal   = "spacebounds_transport_redials_total"
	metricInflightFrames = "spacebounds_transport_inflight_frames"
	metricServerSeconds  = "spacebounds_transport_server_request_seconds"
	metricServerTotal    = "spacebounds_transport_server_requests_total"
)

// WithMetrics instruments the client against the registry: per-node RPC
// latency (request frame out to response frame in), redials, and in-flight
// frames. Series are created at Dial, so every configured node appears on the
// scrape page even before its first round.
func WithMetrics(reg *metrics.Registry) ClientOption {
	return func(o *clientOptions) { o.metrics = reg }
}

// nodeMetrics is the client's per-node instrumentation.
type nodeMetrics struct {
	rpc      *metrics.Histogram
	redials  *metrics.Counter
	inflight *metrics.Gauge
}

// newNodeMetrics builds the per-node series; nil registry yields nil (every
// use site is nil-checked or nil-safe).
func newNodeMetrics(reg *metrics.Registry, addr string) *nodeMetrics {
	if reg == nil {
		return nil
	}
	node := metrics.L("node", addr)
	return &nodeMetrics{
		rpc:      reg.Histogram(metricRPCSeconds, "request-to-response latency of one frame by node", metrics.LatencyBuckets(), node),
		redials:  reg.Counter(metricRedialsTotal, "connection dial attempts beyond the first by node", node),
		inflight: reg.Gauge(metricInflightFrames, "request frames awaiting a response by node", node),
	}
}

// observeResponse records a frame's completion: the in-flight gauge drops and,
// if the call carries a start instant, its latency is observed. Failed frames
// (connection shutdown) are not timed — the latency series means served
// responses, not timeouts.
func (nm *nodeMetrics) observeResponse(call *pendingCall, ok bool) {
	if nm == nil {
		return
	}
	nm.inflight.Add(-1)
	if ok && !call.start.IsZero() {
		nm.rpc.ObserveSince(call.start)
	}
}

// serverMetrics is the server's instrumentation (see WithServerMetrics).
type serverMetrics struct {
	reg     *metrics.Registry
	latency *metrics.Histogram
}

// WithServerMetrics instruments the server against the registry: request
// service latency and a per-status response counter.
func WithServerMetrics(reg *metrics.Registry) ServerOption {
	return func(o *serverOptions) {
		if reg == nil {
			return
		}
		o.metrics = &serverMetrics{
			reg:     reg,
			latency: reg.Histogram(metricServerSeconds, "server-side request service latency", metrics.LatencyBuckets()),
		}
		// Eagerly register the counter family so it appears on the scrape page
		// before the first request.
		reg.Counter(metricServerTotal, "requests served by response status", metrics.L("status", dsys.StatusOK.String()))
	}
}

// observeServe records one served request.
func (sm *serverMetrics) observeServe(start time.Time, status dsys.Status) {
	if sm == nil {
		return
	}
	sm.latency.ObserveSince(start)
	sm.reg.Counter(metricServerTotal, "requests served by response status", metrics.L("status", status.String())).Inc()
}
