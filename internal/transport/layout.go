package transport

import (
	"fmt"

	"spacebounds/internal/register"
	"spacebounds/internal/shard"
)

// Placement maps a global base-object ID to the node hosting it. Client and
// servers must agree on the placement; it is pure configuration, derived on
// both sides from the same Layout.
type Placement func(object int) int

// RoundRobin places object i on node i mod nodes. With node count at least a
// shard's span (n = 2f+k), consecutive objects of one shard land on distinct
// nodes, so killing a single node costs each shard at most one base object —
// within the f the quorum system tolerates.
func RoundRobin(nodes int) Placement {
	return func(object int) int { return object % nodes }
}

// Layout describes a homogeneous sharded deployment compactly enough to pass
// on a command line. spacenode and the spacebench client both expand it with
// Specs(), so the two sides derive identical shard base offsets and object
// placements without any runtime coordination.
type Layout struct {
	// Algorithm is the register provider name ("adaptive", "abd", "ecreg",
	// "safereg").
	Algorithm string
	// Shards is the number of shards.
	Shards int
	// F and K parameterize each shard's space bound n = 2f+k.
	F, K int
	// ValueSize is each shard's value size in bytes.
	ValueSize int
}

// Specs expands the layout into shard specs ("shard-0" ... "shard-N-1").
func (l Layout) Specs() ([]shard.Spec, error) {
	if l.Shards < 1 {
		return nil, fmt.Errorf("transport: layout needs at least one shard, got %d", l.Shards)
	}
	specs := make([]shard.Spec, l.Shards)
	for i := range specs {
		specs[i] = shard.Spec{
			Name:      fmt.Sprintf("shard-%d", i),
			Algorithm: l.Algorithm,
			Config:    register.Config{F: l.F, K: l.K, DataLen: l.ValueSize},
		}
	}
	return specs, nil
}

// Span returns the number of base objects per shard (n = 2f+k).
func (l Layout) Span() int { return 2*l.F + l.K }

// TotalObjects returns the number of base objects across all shards.
func (l Layout) TotalObjects() int { return l.Shards * l.Span() }

// HostedBy returns the predicate selecting the objects RoundRobin(nodes)
// places on the given node — what a spacenode passes to WithHosts.
func (l Layout) HostedBy(nodes, node int) func(object int) bool {
	return func(object int) bool { return object%nodes == node }
}
