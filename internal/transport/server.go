package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/trace"
)

type serverOptions struct {
	hosts    func(object int) bool
	recovery bool
	metrics  *serverMetrics
	tracer   *trace.Tracer
}

// ServerOption configures a Server.
type ServerOption func(*serverOptions)

// WithHosts restricts the server to the base objects the predicate accepts;
// envelopes for other objects are answered StatusNotHosted. By default the
// server hosts every object of its cluster.
func WithHosts(hosts func(object int) bool) ServerOption {
	return func(o *serverOptions) { o.hosts = hosts }
}

// WithRecovery starts the server in recovery mode: read-only RMW kinds are
// refused per object (StatusRecovering) until a mutating RMW has applied to
// that object. A process restarted after a crash lost its in-memory base
// objects; refusing reads until a fresh write lands keeps a recovered node
// from serving stale (empty) state into a quorum, for every provider — once
// a write with a current timestamp applies, answering can only raise the
// timestamps the round observes.
func WithRecovery() ServerOption {
	return func(o *serverOptions) { o.recovery = true }
}

// MarkRepaired marks one base object as repaired without waiting for a
// mutating RMW: a node that replayed the object's state from its write-ahead
// log before serving already holds current (not empty) state, so read
// refusal would only add unavailability. Out-of-range IDs are ignored.
// A no-op unless the server runs with WithRecovery.
func (s *Server) MarkRepaired(object int) {
	if object >= 0 && object < len(s.repaired) {
		s.repaired[object].Store(true)
	}
}

// Server hosts a cluster's base objects behind the TCP frame protocol. Each
// accepted connection gets a reader loop and a pipelined frame sender, so
// requests from one client interleave with responses to others without
// head-of-line blocking on slow consumers.
type Server struct {
	cluster *dsys.Cluster
	opts    serverOptions

	// repaired[i] flips once object i has applied a mutating RMW; recovery
	// mode gates read-only kinds on it.
	repaired []atomic.Bool

	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer wraps a local cluster. The cluster is borrowed: closing the
// server does not close it.
func NewServer(cluster *dsys.Cluster, opts ...ServerOption) *Server {
	o := serverOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{
		cluster:  cluster,
		opts:     o,
		repaired: make([]atomic.Bool, cluster.N()),
		conns:    make(map[net.Conn]struct{}),
	}
	return s
}

// Listen binds the address (use "127.0.0.1:0" for an ephemeral port) and
// starts accepting connections. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return nil, net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	sender := newFrameSender(conn)
	defer sender.close()
	br := bufio.NewReader(conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		if len(frame) < 8 {
			return
		}
		reqID := binary.BigEndian.Uint64(frame[:8])
		var start time.Time
		if s.opts.metrics != nil {
			start = time.Now()
		}
		resp := s.serve(frame[8:])
		s.opts.metrics.observeServe(start, resp.Status)
		out := binary.BigEndian.AppendUint64(make([]byte, 0, 32+len(resp.Payload)+len(resp.Detail)), reqID)
		out, err = resp.AppendBinary(out)
		if err != nil {
			return
		}
		if err := sender.send(out); err != nil {
			return
		}
	}
}

// serve executes one request envelope against the cluster and builds the
// response. Faults are reported as typed statuses, never by dropping the
// request — the client decides whether the round can still reach quorum.
func (s *Server) serve(body []byte) dsys.Response {
	env, err := dsys.UnmarshalEnvelope(body)
	if err != nil {
		return dsys.Response{Status: dsys.StatusBadRequest, Detail: err.Error()}
	}
	resp := dsys.Response{Op: env.Op, Object: env.Object}
	if s.opts.hosts != nil && !s.opts.hosts(env.Object) {
		resp.Status = dsys.StatusNotHosted
		return resp
	}
	rmw, err := register.DecodeRMW(env)
	if err != nil {
		resp.Status = dsys.StatusBadRequest
		resp.Detail = err.Error()
		return resp
	}
	readOnly := register.KindReadOnly(env.Kind)
	if s.opts.recovery && readOnly &&
		env.Object >= 0 && env.Object < len(s.repaired) && !s.repaired[env.Object].Load() {
		resp.Status = dsys.StatusRecovering
		return resp
	}
	// A wire trace context opens the node-side apply span: it parents under
	// the client's RPC span by the envelope's span word, and the journal's
	// WAL stages parent under it in turn.
	var tc trace.Context
	var sp trace.Pending
	if tr := s.opts.tracer; tr != nil && env.Trace != 0 {
		sp = tr.Start(trace.Context{Trace: env.Trace, Span: env.Span}, trace.StageApply)
		sp.Span.Note = env.Kind
		tc = sp.Context()
	}
	out, err := s.cluster.ApplyOneTraced(env.Object, rmw, tc)
	sp.Done()
	if err != nil {
		switch {
		case errors.Is(err, dsys.ErrUnknownObject):
			resp.Status = dsys.StatusUnknownObject
		case errors.Is(err, dsys.ErrRetiredObject):
			resp.Status = dsys.StatusRetired
		case errors.Is(err, dsys.ErrObjectDown):
			resp.Status = dsys.StatusObjectDown
		case errors.Is(err, dsys.ErrHalted):
			resp.Status = dsys.StatusHalted
		default:
			resp.Status = dsys.StatusBadRequest
			resp.Detail = err.Error()
		}
		return resp
	}
	if !readOnly && env.Object >= 0 && env.Object < len(s.repaired) {
		s.repaired[env.Object].Store(true)
	}
	payload, err := register.EncodeResponse(env.Kind, out)
	if err != nil {
		resp.Status = dsys.StatusBadRequest
		resp.Detail = fmt.Sprintf("encode response: %v", err)
		return resp
	}
	resp.Status = dsys.StatusOK
	resp.Payload = payload
	return resp
}

// Close stops accepting, closes every connection, and waits for the handler
// goroutines. The backing cluster is left running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}
