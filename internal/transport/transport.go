// Package transport moves RMW envelopes between clients and the processes
// hosting base objects. It provides the Transport seam of the redesigned
// invocation API — dsys.RoundInvoker plus teardown — and two implementations:
//
//   - Loopback: in-process. Every RMW and response is round-tripped through
//     its registered codec and the binary envelope layout, then applied by the
//     local cluster's own engine — live or controlled. Controlled mode thereby
//     stays deterministic and in-process (the policy still decides when each
//     RMW takes effect); the loopback only proves, and prices, the wire
//     encoding on the hot path.
//   - Client/Server (tcp.go, server.go): a thin length-prefixed TCP transport
//     with per-node connection reuse, write pipelining that coalesces
//     concurrent rounds into batched socket writes, and context deadlines.
//
// A remote shard.Set (shard.NewRemote) binds the register emulations to a
// Transport, which is how the same algorithms, workload generator, and
// history checkers run against a real multi-process cluster.
package transport

import (
	"context"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// Transport delivers quorum rounds of RMW envelopes to base objects and can
// be shut down. dsys.NewRemoteCluster closes a Transport it is given when the
// cluster itself is closed.
type Transport interface {
	dsys.RoundInvoker
	Close() error
}

// Loopback is the in-process Transport: rounds are served by the backing
// cluster's own engine, with every RMW and response passed through the full
// envelope wire format (codec encode, binary marshal, unmarshal, decode), so
// the in-process path exercises — and benchmarks — exactly the bytes the TCP
// transport would move. The backing cluster is borrowed, not owned: closing
// the loopback does not close it.
type Loopback struct {
	c *dsys.Cluster
}

var _ Transport = (*Loopback)(nil)

// NewLoopback wraps a local cluster.
func NewLoopback(c *dsys.Cluster) *Loopback { return &Loopback{c: c} }

// InvokeRound implements dsys.RoundInvoker.
func (l *Loopback) InvokeRound(ctx context.Context, client int, targets []int, makeRMW func(obj int) dsys.RMW, quorum int) (map[int]any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var codecErr error
	kinds := make(map[int]string, len(targets))
	var resp map[int]any
	var invokeErr error
	runErr := l.c.RunScoped(client, 0, l.c.N(), func(h *dsys.ClientHandle) error {
		resp, invokeErr = h.Invoke(targets, func(obj int) dsys.RMW {
			rmw := makeRMW(obj)
			decoded, kind, err := roundTripRMW(client, obj, rmw)
			if err != nil {
				// A kind without a codec cannot cross a wire; surface the
				// error after the round and let the original RMW apply so the
				// engine's quorum bookkeeping stays consistent.
				if codecErr == nil {
					codecErr = err
				}
				return rmw
			}
			kinds[obj] = kind
			return decoded
		}, quorum)
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	if codecErr != nil {
		return nil, codecErr
	}
	out := make(map[int]any, len(resp))
	for obj, r := range resp {
		v, err := roundTripResponse(client, obj, kinds[obj], r)
		if err != nil {
			return nil, err
		}
		out[obj] = v
	}
	return out, invokeErr
}

// roundTripRMW passes an RMW through the full wire path: codec encode,
// envelope marshal, unmarshal, codec decode. It returns the decoded RMW and
// its wire kind.
func roundTripRMW(client, obj int, rmw dsys.RMW) (dsys.RMW, string, error) {
	env, err := register.EncodeEnvelope(dsys.OpID{Client: client}, obj, rmw)
	if err != nil {
		return nil, "", err
	}
	wire, err := env.MarshalBinary()
	if err != nil {
		return nil, "", err
	}
	got, err := dsys.UnmarshalEnvelope(wire)
	if err != nil {
		return nil, "", err
	}
	decoded, err := register.DecodeRMW(got)
	if err != nil {
		return nil, "", err
	}
	return decoded, got.Kind, nil
}

// roundTripResponse passes an Apply response through the full wire path.
func roundTripResponse(client, obj int, kind string, resp any) (any, error) {
	payload, err := register.EncodeResponse(kind, resp)
	if err != nil {
		return nil, err
	}
	r := dsys.Response{Op: dsys.OpID{Client: client}, Object: obj, Status: dsys.StatusOK, Payload: payload}
	wire, err := r.MarshalBinary()
	if err != nil {
		return nil, err
	}
	got, err := dsys.UnmarshalResponse(wire)
	if err != nil {
		return nil, err
	}
	return register.DecodeResponse(kind, got.Payload)
}

// Close implements Transport. The backing cluster has its own owner, so
// closing the loopback is a no-op.
func (l *Loopback) Close() error { return nil }
