package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The wire protocol is length-prefixed frames over TCP:
//
//	u32 length | payload
//
// where the payload of a request frame is `u64 requestID | dsys.Envelope`
// and of a response frame `u64 requestID | dsys.Response`. Request IDs are
// chosen by the client and only need to be unique per connection; they are
// what lets many quorum rounds share one pipelined connection.

// maxFrameLen bounds a single frame; anything larger indicates a corrupt or
// hostile stream.
const maxFrameLen = 64 << 20

// ErrFrame reports a malformed frame on the wire.
var ErrFrame = errors.New("transport: malformed frame")

// appendFrame appends the u32 length prefix and payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// readFrame reads one length-prefixed frame and returns its payload in a
// fresh slice.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: length %d exceeds limit", ErrFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// frameSender serializes frame writes onto one connection through a single
// writer goroutine. Senders enqueue complete frames; the writer drains
// whatever has accumulated, writes it through one buffered writer, and
// flushes once per drained batch — so frames enqueued by concurrent quorum
// rounds while a flush is in progress coalesce into a single socket write,
// the connection-level analogue of the batched quorum engine's group commit.
type frameSender struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	err    error

	done chan struct{}
}

// newFrameSender starts the writer goroutine for conn.
func newFrameSender(conn net.Conn) *frameSender {
	s := &frameSender{conn: conn, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// send enqueues one frame payload (without length prefix) for writing. It
// fails once the sender is closed or the connection has errored.
func (s *frameSender) send(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.err != nil {
			return s.err
		}
		return net.ErrClosed
	}
	s.queue = append(s.queue, payload)
	s.cond.Signal()
	return nil
}

// close stops the writer after it has drained already-enqueued frames. It
// does not close the connection; the owner does.
func (s *frameSender) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// fail latches a write error and stops accepting frames.
func (s *frameSender) fail(err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *frameSender) run() {
	defer close(s.done)
	bw := bufio.NewWriter(s.conn)
	var hdr [4]byte
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()

		for _, payload := range batch {
			binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
			if _, err := bw.Write(hdr[:]); err != nil {
				s.fail(err)
				return
			}
			if _, err := bw.Write(payload); err != nil {
				s.fail(err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			s.fail(err)
			return
		}
	}
}
