package transport_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/shard"
	"spacebounds/internal/transport"
	"spacebounds/internal/value"

	// Link all four providers: their registers and wire codecs.
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
)

// allAlgorithms covers every provider, each with erasure coding where the
// algorithm supports k > 1.
var allAlgorithms = []struct {
	name string
	f, k int
}{
	{"abd", 1, 1},
	{"safereg", 1, 1},
	{"ecreg", 1, 2},
	{"adaptive", 1, 2},
}

func specsFor(t *testing.T) []shard.Spec {
	t.Helper()
	specs := make([]shard.Spec, len(allAlgorithms))
	for i, a := range allAlgorithms {
		specs[i] = shard.Spec{
			Name:      fmt.Sprintf("%s-shard", a.name),
			Algorithm: a.name,
			Config:    register.Config{F: a.f, K: a.k, DataLen: 64},
		}
	}
	return specs
}

// exerciseRemote writes and reads every shard of the remote set and verifies
// read-your-write through whatever transport backs it.
func exerciseRemote(t *testing.T, rs *shard.Set) {
	t.Helper()
	for i, sh := range rs.Shards() {
		want := value.Sequenced(i+1, 1, 64)
		if err := rs.WriteValue(i+1, sh, want); err != nil {
			t.Fatalf("%s: write: %v", sh.Name, err)
		}
		got, err := rs.ReadValue(i+1, sh)
		if err != nil {
			t.Fatalf("%s: read: %v", sh.Name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: read %v, wrote %v", sh.Name, got, want)
		}
	}
}

// TestLoopbackRemoteSet runs the four register emulations over the loopback
// transport: every RMW and response crosses the wire format, the local live
// engine applies them.
func TestLoopbackRemoteSet(t *testing.T) {
	backing, err := shard.New(specsFor(t))
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	rs, err := shard.NewRemote(specsFor(t), transport.NewLoopback(backing.Cluster()))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	exerciseRemote(t, rs)
}

// startServer serves the backing cluster on an ephemeral port.
func startServer(t *testing.T, backing *shard.Set, opts ...transport.ServerOption) (*transport.Server, string) {
	t.Helper()
	srv := transport.NewServer(backing.Cluster(), opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String()
}

// TestTCPRemoteSet runs the four register emulations against a real TCP
// server hosting all base objects in one process.
func TestTCPRemoteSet(t *testing.T) {
	backing, err := shard.New(specsFor(t))
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	_, addr := startServer(t, backing)

	cli, err := transport.Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.NewRemote(specsFor(t), cli)
	if err != nil {
		t.Fatal(err)
	}
	exerciseRemote(t, rs)
	// Closing the remote set must close the transport it owns.
	rs.Close()
	if _, err := cli.InvokeRound(context.Background(), 1, []int{0}, mkReadRMW(t), 1); err == nil {
		t.Fatalf("invoke on closed client succeeded")
	}
}

// mkReadRMW builds abd read RMWs through the codec registry (the provider's
// RMW types are unexported).
func mkReadRMW(t *testing.T) func(obj int) dsys.RMW {
	t.Helper()
	c, ok := register.CodecByKind("abd.read")
	if !ok {
		t.Fatal("abd.read codec not registered")
	}
	return func(obj int) dsys.RMW {
		rmw, err := c.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		return rmw
	}
}

// mkUpdateRMW builds abd update RMWs carrying a chunk.
func mkUpdateRMW(t *testing.T) func(obj int) dsys.RMW {
	t.Helper()
	c, ok := register.CodecByKind("abd.update")
	if !ok {
		t.Fatal("abd.update codec not registered")
	}
	var w register.WireWriter
	w.Chunk(register.Chunk{TS: register.Timestamp{Num: 3, Client: 1}})
	payload := w.Finish()
	return func(obj int) dsys.RMW {
		rmw, err := c.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		return rmw
	}
}

// abdSpec is a single 3-object abd shard.
func abdSpec() []shard.Spec {
	return []shard.Spec{{Name: "s", Algorithm: "abd", Config: register.Config{F: 1, K: 1, DataLen: 64}}}
}

// TestRecoveryModeGatesReads starts the server in recovery mode: read-only
// RMW kinds are refused per object until a mutating RMW has applied there.
func TestRecoveryModeGatesReads(t *testing.T) {
	backing, err := shard.New(abdSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	_, addr := startServer(t, backing, transport.WithRecovery())

	cli, err := transport.Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	targets := []int{0, 1, 2}

	// Reads are refused while every object is unrepaired.
	if _, err := cli.InvokeRound(ctx, 1, targets, mkReadRMW(t), 2); !errors.Is(err, dsys.ErrQuorumUnavailable) {
		t.Fatalf("read round on recovering node: err = %v, want ErrQuorumUnavailable", err)
	}
	// A mutating round applies and repairs the objects...
	if _, err := cli.InvokeRound(ctx, 1, targets, mkUpdateRMW(t), 3); err != nil {
		t.Fatalf("update round: %v", err)
	}
	// ...after which reads are served again.
	resp, err := cli.InvokeRound(ctx, 1, targets, mkReadRMW(t), 3)
	if err != nil {
		t.Fatalf("read round after repair: %v", err)
	}
	for obj, raw := range resp {
		c, ok := raw.(register.Chunk)
		if !ok {
			t.Fatalf("object %d: response %T, want Chunk", obj, raw)
		}
		if c.TS.Num != 3 {
			t.Fatalf("object %d: TS.Num = %d, want 3", obj, c.TS.Num)
		}
	}
}

// TestPartialHostingStatus verifies the NotHosted status path: a server
// hosting only its placement's objects refuses the rest, and a client with
// the matching placement never sends them there.
func TestPartialHostingStatus(t *testing.T) {
	backing, err := shard.New(abdSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	// Host only object 0 on this server.
	_, addr := startServer(t, backing, transport.WithHosts(func(obj int) bool { return obj == 0 }))

	cli, err := transport.Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	// Object 0 is served; objects 1 and 2 come back NotHosted, so a quorum of
	// 2 cannot form and the partial result carries object 0 only.
	resp, err := cli.InvokeRound(ctx, 1, []int{0, 1, 2}, mkUpdateRMW(t), 2)
	if !errors.Is(err, dsys.ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want ErrQuorumUnavailable", err)
	}
	if _, ok := resp[0]; !ok || len(resp) != 1 {
		t.Fatalf("partial responses = %v, want exactly object 0", resp)
	}
}

// TestContextCancellation verifies a canceled context fails the round
// immediately with the quorum sentinel on TCP and the context error on
// loopback.
func TestContextCancellation(t *testing.T) {
	backing, err := shard.New(abdSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	lb := transport.NewLoopback(backing.Cluster())
	if _, err := lb.InvokeRound(ctx, 1, []int{0}, mkReadRMW(t), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("loopback: err = %v, want context.Canceled", err)
	}

	_, addr := startServer(t, backing)
	cli, err := transport.Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.InvokeRound(ctx, 1, []int{0, 1, 2}, mkReadRMW(t), 2); !errors.Is(err, dsys.ErrQuorumUnavailable) {
		t.Fatalf("tcp: err = %v, want ErrQuorumUnavailable", err)
	}
}

// TestServerDownQuorum verifies that rounds against a dead address fail fast
// with the quorum sentinel and a RemoteError cause, and that errors.Is still
// reaches ErrStuck (the pre-redesign sentinel the simulator tests use).
func TestServerDownQuorum(t *testing.T) {
	cli, err := transport.Dial([]string{"127.0.0.1:1"}, transport.WithDialTimeout(200_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.InvokeRound(context.Background(), 1, []int{0, 1, 2}, mkReadRMW(t), 2)
	if !errors.Is(err, dsys.ErrQuorumUnavailable) {
		t.Fatalf("err = %v, want ErrQuorumUnavailable", err)
	}
	if !errors.Is(err, dsys.ErrStuck) {
		t.Fatalf("err = %v, want it to also match ErrStuck", err)
	}
}

// TestShardSentinels spot-checks the errors.Is-able sentinels on the shard
// facade.
func TestShardSentinels(t *testing.T) {
	backing, err := shard.New(abdSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	if err := backing.RetireShard("nope"); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("RetireShard: err = %v, want ErrUnknownShard", err)
	}
	if err := backing.CrashNode("nope", 0); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("CrashNode: err = %v, want ErrUnknownShard", err)
	}
}

// TestLayoutPlacementAgreement verifies that client placement and server
// hosting predicates derived from one Layout agree, and that a span-n shard
// lands on n distinct nodes when nodes >= span.
func TestLayoutPlacementAgreement(t *testing.T) {
	l := transport.Layout{Algorithm: "abd", Shards: 3, F: 1, K: 1, ValueSize: 64}
	specs, err := l.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || l.TotalObjects() != 9 {
		t.Fatalf("specs = %d, total = %d", len(specs), l.TotalObjects())
	}
	const nodes = 4
	p := transport.RoundRobin(nodes)
	for obj := 0; obj < l.TotalObjects(); obj++ {
		node := p(obj)
		hosted := 0
		for n := 0; n < nodes; n++ {
			if l.HostedBy(nodes, n)(obj) {
				hosted++
				if n != node {
					t.Fatalf("object %d: placed on %d but hosted by %d", obj, node, n)
				}
			}
		}
		if hosted != 1 {
			t.Fatalf("object %d hosted by %d nodes", obj, hosted)
		}
	}
	// Each shard's objects must land on span distinct nodes, so one node
	// failure costs at most one object per shard.
	for s := 0; s < l.Shards; s++ {
		seen := map[int]bool{}
		for i := 0; i < l.Span(); i++ {
			seen[p(s*l.Span()+i)] = true
		}
		if len(seen) != l.Span() {
			t.Fatalf("shard %d spread over %d nodes, want %d", s, len(seen), l.Span())
		}
	}
}

// TestTCPMultiNode splits one abd shard's three objects across three server
// processes' worth of clusters... not quite: one backing cluster, three
// servers each hosting one object, a client placing by round-robin. This
// exercises the real fan-out path: one round, three connections, and a kill
// of one server still leaves 2-of-3 quorums formable.
func TestTCPMultiNode(t *testing.T) {
	backing, err := shard.New(abdSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()

	const nodes = 3
	addrs := make([]string, nodes)
	srvs := make([]*transport.Server, nodes)
	for n := 0; n < nodes; n++ {
		node := n
		srvs[n], addrs[n] = startServer(t, backing,
			transport.WithHosts(func(obj int) bool { return obj%nodes == node }))
	}
	cli, err := transport.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.NewRemote(abdSpec(), cli)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	sh := rs.Shards()[0]

	want := value.Sequenced(1, 1, 64)
	if err := rs.WriteValue(1, sh, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Kill one node: 2-of-3 quorums must still form.
	_ = srvs[2].Close()
	got, err := rs.ReadValue(1, sh)
	if err != nil {
		t.Fatalf("read with one node down: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("read %v, want %v", got, want)
	}
	want2 := value.Sequenced(1, 2, 64)
	if err := rs.WriteValue(1, sh, want2); err != nil {
		t.Fatalf("write with one node down: %v", err)
	}
	got, err = rs.ReadValue(1, sh)
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	if !got.Equal(want2) {
		t.Fatalf("read %v, want %v", got, want2)
	}
}
