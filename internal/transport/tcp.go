package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/metrics"
	"spacebounds/internal/register"
	"spacebounds/internal/trace"
)

// RemoteError wraps a failure attributed to a specific node, so callers can
// tell which side of the wire failed while errors.Is still reaches the
// underlying dsys sentinel (ErrObjectDown, ErrRetiredObject, ErrRecovering,
// ErrHalted, ...).
type RemoteError struct {
	Node string
	Err  error
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("transport: node %s: %v", e.Node, e.Err) }

// Unwrap exposes the underlying sentinel to errors.Is / errors.As.
func (e *RemoteError) Unwrap() error { return e.Err }

// Client defaults.
const (
	// DefaultRoundTimeout bounds one quorum round when the caller's context
	// carries no deadline. A round outliving it returns ErrQuorumUnavailable
	// with whatever responses arrived; stragglers still take effect remotely,
	// exactly like RMWs applied after a client was rescheduled.
	DefaultRoundTimeout = 5 * time.Second
	// DefaultDialTimeout bounds one connection attempt.
	DefaultDialTimeout = 2 * time.Second
	// DefaultRedialBackoff is how long a node is considered down after a
	// failed dial before the next attempt; rounds in between fail fast on
	// that node instead of queueing on the dialer.
	DefaultRedialBackoff = 500 * time.Millisecond
)

type clientOptions struct {
	placement     Placement
	roundTimeout  time.Duration
	dialTimeout   time.Duration
	redialBackoff time.Duration
	metrics       *metrics.Registry
	tracer        *trace.Tracer
}

// ClientOption configures a Client.
type ClientOption func(*clientOptions)

// WithPlacement overrides the object→node placement (default: round-robin
// over the address list).
func WithPlacement(p Placement) ClientOption { return func(o *clientOptions) { o.placement = p } }

// WithRoundTimeout overrides the default per-round deadline applied when the
// caller's context has none. Zero disables the default (rounds then wait for
// the context alone).
func WithRoundTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.roundTimeout = d }
}

// WithDialTimeout overrides the per-connection dial timeout.
func WithDialTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.dialTimeout = d }
}

// nodeSlot is the per-node connection state. Each node has its own mutex so
// rounds touching healthy nodes never serialize behind a dial to a dead one.
type nodeSlot struct {
	mu        sync.Mutex
	conn      *clientConn
	downUntil time.Time
	dialed    bool // a dial has been attempted; later attempts count as redials
}

// Client is the TCP Transport: one pipelined connection per node, reused
// across rounds and redialed on failure. It implements dsys.RoundInvoker, so
// dsys.NewRemoteCluster (and shard.NewRemote above it) plug it in directly.
type Client struct {
	addrs  []string
	opts   clientOptions
	slots  []*nodeSlot
	nms    []*nodeMetrics // per-node instrumentation; nil entries when disabled
	reqSeq atomic.Uint64
	closed atomic.Bool
}

var _ Transport = (*Client)(nil)

// Dial creates a client for the given node addresses. Connections are opened
// lazily on first use, so Dial itself never blocks on the network.
func Dial(addrs []string, opts ...ClientOption) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no node addresses")
	}
	o := clientOptions{
		roundTimeout:  DefaultRoundTimeout,
		dialTimeout:   DefaultDialTimeout,
		redialBackoff: DefaultRedialBackoff,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.placement == nil {
		o.placement = RoundRobin(len(addrs))
	}
	slots := make([]*nodeSlot, len(addrs))
	nms := make([]*nodeMetrics, len(addrs))
	for i := range slots {
		slots[i] = &nodeSlot{}
		nms[i] = newNodeMetrics(o.metrics, addrs[i])
	}
	return &Client{addrs: addrs, opts: o, slots: slots, nms: nms}, nil
}

// clientConn is one live connection: a pipelined frame sender plus a reader
// goroutine dispatching responses to the rounds that sent the requests.
type clientConn struct {
	addr   string
	conn   net.Conn
	sender *frameSender
	nm     *nodeMetrics  // nil when metrics are disabled
	tr     *trace.Tracer // nil when tracing is disabled

	pmu     sync.Mutex
	pending map[uint64]*pendingCall
	dead    atomic.Bool
}

// pendingCall routes one request's response back to its round.
type pendingCall struct {
	obj   int
	kind  string
	ch    chan<- roundMsg
	start time.Time  // send instant; zero unless metrics are enabled
	sp    trace.Span // prepared RPC span; zero Trace unless the round is sampled
}

// roundMsg is one per-object outcome delivered to a waiting round: either a
// wire response or a connection-level failure.
type roundMsg struct {
	obj  int
	kind string
	resp dsys.Response
	err  error
}

// getConn returns the node's live connection, dialing if necessary. A failed
// dial marks the node down for the redial backoff so concurrent rounds fail
// fast instead of stacking up behind the dialer.
func (c *Client) getConn(ctx context.Context, node int) (*clientConn, error) {
	slot := c.slots[node]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.conn != nil && !slot.conn.dead.Load() {
		return slot.conn, nil
	}
	if now := time.Now(); now.Before(slot.downUntil) {
		return nil, fmt.Errorf("%w: node %s in redial backoff", dsys.ErrRemote, c.addrs[node])
	}
	nm := c.nms[node]
	if slot.dialed && nm != nil {
		nm.redials.Inc()
	}
	slot.dialed = true
	d := net.Dialer{Timeout: c.opts.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addrs[node])
	if err != nil {
		slot.downUntil = time.Now().Add(c.opts.redialBackoff)
		return nil, err
	}
	cc := &clientConn{
		addr:    c.addrs[node],
		conn:    conn,
		sender:  newFrameSender(conn),
		nm:      nm,
		tr:      c.opts.tracer,
		pending: make(map[uint64]*pendingCall),
	}
	go cc.readLoop()
	slot.conn = cc
	return cc, nil
}

// register enrolls a request for response dispatch.
func (cc *clientConn) register(reqID uint64, call *pendingCall) {
	cc.pmu.Lock()
	cc.pending[reqID] = call
	cc.pmu.Unlock()
	if cc.nm != nil {
		cc.nm.inflight.Add(1)
	}
}

// deregister removes a request; late responses for it are dropped, exactly
// like responses to a client that has moved on (the RMW still took effect).
// The in-flight gauge drops only if the call was still pending — a response
// (take) or connection failure (shutdown) may have accounted for it already.
func (cc *clientConn) deregister(reqID uint64) {
	cc.pmu.Lock()
	call, ok := cc.pending[reqID]
	delete(cc.pending, reqID)
	cc.pmu.Unlock()
	if ok {
		cc.nm.observeResponse(call, false)
	}
}

// take removes and returns the pending call for a response frame, recording
// its latency.
func (cc *clientConn) take(reqID uint64) *pendingCall {
	cc.pmu.Lock()
	call := cc.pending[reqID]
	delete(cc.pending, reqID)
	cc.pmu.Unlock()
	if call != nil {
		cc.nm.observeResponse(call, true)
		cc.recordRPC(call)
	}
	return call
}

// shutdown marks the connection dead and fails every pending call. Each
// round channel has capacity for all its requests, so these sends never
// block even if the round has already returned.
func (cc *clientConn) shutdown(err error) {
	if !cc.dead.CompareAndSwap(false, true) {
		return
	}
	cc.sender.fail(err)
	_ = cc.conn.Close()
	cc.pmu.Lock()
	pending := cc.pending
	cc.pending = make(map[uint64]*pendingCall)
	cc.pmu.Unlock()
	for _, call := range pending {
		cc.nm.observeResponse(call, false)
		call.ch <- roundMsg{obj: call.obj, kind: call.kind, err: &RemoteError{Node: cc.addr, Err: err}}
	}
}

// readLoop dispatches response frames until the connection fails.
func (cc *clientConn) readLoop() {
	br := bufio.NewReader(cc.conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			cc.shutdown(err)
			return
		}
		if len(frame) < 8 {
			cc.shutdown(fmt.Errorf("%w: response frame of %d bytes", ErrFrame, len(frame)))
			return
		}
		reqID := binary.BigEndian.Uint64(frame[:8])
		resp, err := dsys.UnmarshalResponse(frame[8:])
		if err != nil {
			cc.shutdown(err)
			return
		}
		if call := cc.take(reqID); call != nil {
			call.ch <- roundMsg{obj: call.obj, kind: call.kind, resp: resp}
		}
	}
}

// sentRequest tracks one dispatched request for end-of-round deregistration.
type sentRequest struct {
	conn  *clientConn
	reqID uint64
}

// InvokeRound implements dsys.RoundInvoker: it ships one envelope per target
// to the hosting nodes over the pipelined connections and waits until quorum
// OK responses have arrived, the context expires, or every dispatched request
// has failed. Targets are global object IDs; the result map is keyed by them.
func (c *Client) InvokeRound(ctx context.Context, client int, targets []int, makeRMW func(obj int) dsys.RMW, quorum int) (map[int]any, error) {
	if c.closed.Load() {
		return nil, net.ErrClosed
	}
	if _, has := ctx.Deadline(); !has && c.opts.roundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.roundTimeout)
		defer cancel()
	}

	// A sampled round stamps its trace context into every envelope: each
	// request gets a fresh RPC span ID on the wire, so the node's apply (and
	// WAL) spans parent under the per-node RPC span recorded here.
	var tc trace.Context
	if c.opts.tracer != nil {
		tc = trace.FromContext(ctx)
	}

	ch := make(chan roundMsg, len(targets))
	sent := make([]sentRequest, 0, len(targets))
	dispatched := 0
	var lastErr error
	op := dsys.OpID{Client: client}
	for _, obj := range targets {
		rmw := makeRMW(obj)
		env, err := register.EncodeEnvelope(op, obj, rmw)
		if err != nil {
			// No codec for this RMW type: a programming error, not a fault.
			return nil, err
		}
		if tc.Sampled() {
			env.Trace = tc.Trace
			env.Span = c.opts.tracer.SpanID()
		}
		node := c.opts.placement(obj)
		if node < 0 || node >= len(c.addrs) {
			return nil, fmt.Errorf("%w: object %d placed on node %d of %d", dsys.ErrRemote, obj, node, len(c.addrs))
		}
		cc, err := c.getConn(ctx, node)
		if err != nil {
			lastErr = &RemoteError{Node: c.addrs[node], Err: err}
			continue
		}
		reqID := c.reqSeq.Add(1)
		frame := binary.BigEndian.AppendUint64(make([]byte, 0, 40+len(env.Kind)+len(env.Payload)), reqID)
		frame, err = env.AppendBinary(frame)
		if err != nil {
			return nil, err
		}
		call := &pendingCall{obj: obj, kind: env.Kind, ch: ch}
		if cc.nm != nil {
			call.start = time.Now()
		}
		if tc.Sampled() {
			call.sp = trace.Span{
				Trace: tc.Trace, ID: env.Span, Parent: tc.Span,
				Stage: trace.StageRPC, Note: cc.addr, Start: time.Now(),
			}
		}
		cc.register(reqID, call)
		if err := cc.sender.send(frame); err != nil {
			cc.deregister(reqID)
			lastErr = &RemoteError{Node: cc.addr, Err: err}
			continue
		}
		sent = append(sent, sentRequest{conn: cc, reqID: reqID})
		dispatched++
	}
	defer func() {
		// Stragglers past the quorum (or past a timeout) are dropped; their
		// RMWs still take effect remotely, as the model prescribes.
		for _, s := range sent {
			s.conn.deregister(s.reqID)
		}
	}()

	resp := make(map[int]any, dispatched)
	received := 0
	for received < dispatched && len(resp) < quorum {
		select {
		case m := <-ch:
			received++
			if m.err != nil {
				lastErr = m.err
				continue
			}
			if m.resp.Status != dsys.StatusOK {
				lastErr = &RemoteError{Node: "", Err: m.resp.Status.Err()}
				continue
			}
			v, err := register.DecodeResponse(m.kind, m.resp.Payload)
			if err != nil {
				lastErr = err
				continue
			}
			resp[m.obj] = v
		case <-ctx.Done():
			return resp, fmt.Errorf("%w: %d of %d responses when round ended (%v)",
				dsys.ErrQuorumUnavailable, len(resp), quorum, ctx.Err())
		}
	}
	if len(resp) < quorum {
		if lastErr != nil {
			return resp, fmt.Errorf("%w: only %d of %d required responses available (last failure: %v)",
				dsys.ErrQuorumUnavailable, len(resp), quorum, lastErr)
		}
		return resp, fmt.Errorf("%w: only %d of %d required responses available",
			dsys.ErrQuorumUnavailable, len(resp), quorum)
	}
	return resp, nil
}

// Close implements Transport: it tears down every connection. In-flight
// rounds fail with connection errors.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, slot := range c.slots {
		slot.mu.Lock()
		if slot.conn != nil {
			slot.conn.shutdown(net.ErrClosed)
			slot.conn = nil
		}
		slot.mu.Unlock()
	}
	return nil
}
