package transport_test

import (
	"testing"

	"spacebounds/internal/shard"
	"spacebounds/internal/trace"
	"spacebounds/internal/transport"
)

// TestTCPTracingStitchesAcrossProcesses runs a traced remote set against a
// TCP server with its own tracer — the two-recorder shape of a real
// deployment — and asserts the cross-process contract: the client records op,
// round, and rpc spans; the server records apply spans on the *client's*
// trace IDs, parented under client rpc span IDs it never saw except on the
// wire; and an untraced client leaves the server recorder empty (v1 frames
// carry no context).
func TestTCPTracingStitchesAcrossProcesses(t *testing.T) {
	backing, err := shard.New(specsFor(t))
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	srvTr := trace.New(trace.Options{Sample: 1, Proc: "server", Node: 0})
	_, addr := startServer(t, backing, transport.WithServerTracer(srvTr))

	cliTr := trace.New(trace.Options{Sample: 1, Proc: "client", Node: -1})
	cli, err := transport.Dial([]string{addr}, transport.WithTracer(cliTr))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shard.NewRemote(specsFor(t), cli)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rs.SetTracer(cliTr)
	exerciseRemote(t, rs)

	rpcIDs := make(map[uint64]bool)
	traces := make(map[uint64]bool)
	var rounds, rpcs int
	for _, s := range cliTr.Snapshot() {
		switch s.Stage {
		case trace.StageOp:
			traces[s.Trace] = true
		case trace.StageRound:
			rounds++
		case trace.StageRPC:
			rpcs++
			rpcIDs[s.ID] = true
			if s.Note != addr {
				t.Errorf("rpc span noted %q, want the node address %q", s.Note, addr)
			}
		}
	}
	if len(traces) == 0 || rounds == 0 || rpcs == 0 {
		t.Fatalf("client recorded %d traces, %d rounds, %d rpcs; want all three stages",
			len(traces), rounds, rpcs)
	}
	if _, ok := cliTr.Exemplars()["spacebounds_transport_rpc_seconds"]; !ok {
		t.Error("no rpc latency exemplar on the client tracer")
	}

	applies := 0
	for _, s := range srvTr.Snapshot() {
		if s.Stage != trace.StageApply {
			t.Errorf("server recorded a %s span; servers only own the apply stage", s.Stage)
			continue
		}
		applies++
		if !traces[s.Trace] {
			t.Errorf("apply span on trace %016x, which no client op started", s.Trace)
		}
		if !rpcIDs[s.Parent] {
			t.Errorf("apply span parent %016x is not a client rpc span", s.Parent)
		}
	}
	if applies == 0 {
		t.Fatal("server recorded no apply spans from traced requests")
	}

	// An untraced client sends v1 frames: the server's recorder stays quiet.
	cli2, err := transport.Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := shard.NewRemote(specsFor(t), cli2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	before := len(srvTr.Snapshot())
	exerciseRemote(t, rs2)
	if after := len(srvTr.Snapshot()); after != before {
		t.Errorf("untraced client produced %d server spans", after-before)
	}
}
