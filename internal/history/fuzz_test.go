package history

import "testing"

// decodeFuzzHistory turns a byte string into a small register history with
// distinct written values (write i writes value i+1; value 0 is v0). Each
// operation consumes 4 bytes: kind/client, value selector, invocation offset,
// duration (0 = incomplete). Times are cumulative so invocation order matches
// slice order, as Recorder guarantees.
func decodeFuzzHistory(data []byte) *History {
	const maxOps = 10
	var ops []*Op
	now := int64(1)
	writes := 0
	for i := 0; i+4 <= len(data) && len(ops) < maxOps; i += 4 {
		kindByte, valByte, invByte, durByte := data[i], data[i+1], data[i+2], data[i+3]
		now += int64(invByte%5) + 1
		op := &Op{ID: len(ops) + 1, Client: int(kindByte>>1) % 4, Invoked: now}
		if durByte%8 != 0 {
			op.Returned = now + int64(durByte%16) + 1
		}
		if kindByte&1 == 0 {
			writes++
			op.Kind = Write
			op.Value = val(writes)
		} else {
			op.Kind = Read
			op.Value = val(int(valByte) % (maxOps + 2))
		}
		ops = append(ops, op)
	}
	return &History{V0: val(0), Ops: ops}
}

// FuzzCheckers drives all three safety checkers plus the linearizability
// checker over arbitrary small histories and asserts the invariants that must
// hold regardless of input: no checker panics, verdicts are deterministic,
// and the condition hierarchy is respected (linearizable => strongly regular
// => weakly regular; strong regularity also implies strong safety's write
// serialization exists, but incomplete-op handling differs, so only the
// documented chain is asserted).
func FuzzCheckers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 1, 0, 1, 1})                         // write then read
	f.Add([]byte{0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1}) // two writes, two reads
	f.Add([]byte{0, 0, 0, 0, 1, 9, 0, 1})                         // read of never-written value
	f.Add([]byte{0, 0, 1, 0, 1, 0, 1, 1})                         // incomplete write
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeFuzzHistory(data)
		lin := CheckLinearizability(h)
		strong := CheckStrongRegularity(h)
		weak := CheckWeakRegularity(h)
		safe := CheckStrongSafety(h)
		_ = safe
		if lin2 := CheckLinearizability(h); (lin == nil) != (lin2 == nil) {
			t.Fatalf("linearizability verdict not deterministic: %v vs %v", lin, lin2)
		}
		if lin == nil && strong != nil {
			t.Fatalf("linearizable history failed strong regularity: %v\nhistory: %v", strong, h.Ops)
		}
		if strong == nil && weak != nil {
			t.Fatalf("strongly regular history failed weak regularity: %v\nhistory: %v", weak, h.Ops)
		}
	})
}
