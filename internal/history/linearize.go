package history

import "fmt"

// CheckLinearizability checks whether the history is linearizable (atomic)
// with respect to the sequential specification of a read/write register
// initialized to V0: there must be a total order of operations, consistent
// with real-time precedence, in which every read returns the value of the
// latest preceding write (or V0 if none precedes it).
//
// The checker is a Wing & Gong-style search: it tries to linearize one
// operation at a time, always choosing among the minimal operations (those
// not real-time-preceded by any other unlinearized completed operation),
// pruning branches where a read cannot return the current register value, and
// memoizing visited (linearized-set, register-value) states so each state is
// explored once. Incomplete operations need no response to be justified:
// incomplete writes may be linearized at any point after their invocation or
// dropped entirely, and incomplete reads are unconstrained and ignored.
//
// Unlike the regularity checkers, it does not assume distinct written values;
// reads are validated against the actual register contents at their
// linearization point.
//
// Atomicity is the condition the paper's strongest configurations aim for;
// the simulator applies this checker to configurations known to produce
// atomic histories (e.g. a single client per register, where regularity and
// atomicity coincide). Worst-case cost is exponential in the number of
// overlapping operations; histories recorded by the simulator are small.
func CheckLinearizability(h *History) error {
	// Candidate operations: everything except incomplete reads, which
	// returned nothing and therefore constrain nothing.
	var ops []*Op
	for _, op := range h.Ops {
		if op.Kind == Read && !op.Completed() {
			continue
		}
		ops = append(ops, op)
	}
	n := len(ops)
	if n == 0 {
		return nil
	}
	mustCount := 0 // completed operations; all of them must be linearized
	for _, op := range ops {
		if op.Completed() {
			mustCount++
		}
	}

	// DFS state: bitmask of linearized ops + index of the write currently in
	// the register (-1 = V0). maskWords is the mask in fixed-width words so it
	// can be stringified into a memoization key.
	words := (n + 63) / 64
	type frame struct {
		mask []uint64
		last int // index into ops of the latest linearized write, -1 = v0
		done int // completed ops linearized so far
	}
	has := func(mask []uint64, i int) bool { return mask[i/64]&(1<<(uint(i)%64)) != 0 }
	keyOf := func(mask []uint64, last int) string {
		b := make([]byte, 0, words*8+4)
		for _, w := range mask {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(w>>uint(s)))
			}
		}
		b = append(b, byte(last), byte(last>>8), byte(last>>16), byte(last>>24))
		return string(b)
	}
	seen := make(map[string]bool)
	stack := []frame{{mask: make([]uint64, words), last: -1}}
	seen[keyOf(stack[0].mask, -1)] = true

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.done == mustCount {
			return nil
		}
		// An op is a valid next linearization point iff no other unlinearized
		// completed op returned before it was invoked.
		for i := 0; i < n; i++ {
			if has(f.mask, i) {
				continue
			}
			op := ops[i]
			minimal := true
			for j := 0; j < n && minimal; j++ {
				if j == i || has(f.mask, j) {
					continue
				}
				if ops[j].Completed() && ops[j].Returned < op.Invoked {
					minimal = false
				}
			}
			if !minimal {
				continue
			}
			next := f
			if op.Kind == Read {
				cur := h.V0
				if f.last >= 0 {
					cur = ops[f.last].Value
				}
				if !op.Value.Equal(cur) {
					continue // this read cannot go here
				}
			} else {
				next.last = i
			}
			mask := make([]uint64, words)
			copy(mask, f.mask)
			mask[i/64] |= 1 << (uint(i) % 64)
			next.mask = mask
			if op.Completed() {
				next.done = f.done + 1
			}
			k := keyOf(mask, next.last)
			if seen[k] {
				continue
			}
			seen[k] = true
			stack = append(stack, next)
		}
	}
	return &Violation{Condition: "linearizability",
		Detail: fmt.Sprintf("no linearization of the %d operations respects real-time order and the register specification", n)}
}
