package history

import "testing"

// partitionFuzz splits h's operations into parts sub-histories using the
// fuzz bytes as the assignment function — the shape of per-epoch recording,
// where each operation lands in exactly one epoch's recorder but the epochs'
// logical-time ranges interleave arbitrarily (a merge move's two predecessor
// branches record concurrently).
func partitionFuzz(h *History, data []byte, parts int) []*History {
	out := make([]*History, parts)
	for i := range out {
		out[i] = &History{V0: h.V0}
	}
	for i, op := range h.Ops {
		sel := i
		if len(data) > 0 {
			sel = int(data[i%len(data)]) + i
		}
		out[sel%parts].Ops = append(out[sel%parts].Ops, op)
	}
	return out
}

// FuzzHistoryMerge fuzzes history.Merge over randomly interleaved per-epoch
// partitions of arbitrary small histories — the two-source merge shape
// included (two interleaved predecessor branches plus a successor suffix) —
// and asserts the stitching invariants: the merged history is sorted and
// well-formed, reassembles exactly the original operation sequence, is
// insensitive to input order and duplicated inputs (shared ancestors), and
// therefore draws exactly the original checker verdicts.
func FuzzHistoryMerge(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0, 0, 1, 1, 1, 0, 1, 1}, uint8(2))                         // write then read, split in two
	f.Add([]byte{0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1}, uint8(3)) // two-source shape + successor
	f.Add([]byte{0, 0, 0, 0, 1, 9, 0, 1, 0, 3, 2, 0}, uint8(4))             // includes an incomplete write
	f.Fuzz(func(t *testing.T, data []byte, nparts uint8) {
		base := decodeFuzzHistory(data)
		if err := base.WellFormed(); err != nil {
			t.Fatalf("generator produced a malformed history: %v", err)
		}
		parts := int(nparts)%4 + 2
		split := partitionFuzz(base, data, parts)
		merged := Merge(base.V0, split...)

		// Sorted, strictly monotonic (the generator's invocation times are
		// strictly increasing, so stitching must reproduce them exactly), and
		// well-formed.
		if err := merged.WellFormed(); err != nil {
			t.Fatalf("merged history malformed: %v\nops: %v", err, merged.Ops)
		}
		if len(merged.Ops) != len(base.Ops) {
			t.Fatalf("merge lost operations: %d != %d", len(merged.Ops), len(base.Ops))
		}
		for i := range base.Ops {
			if merged.Ops[i] != base.Ops[i] {
				t.Fatalf("merge reordered op %d: %v != %v", i, merged.Ops[i], base.Ops[i])
			}
		}

		// Input order must not matter for time-distinct operations, and a
		// repeated input (two stitched branches sharing an ancestor history)
		// must not duplicate operations.
		reversed := make([]*History, 0, len(split)+1)
		for i := len(split) - 1; i >= 0; i-- {
			reversed = append(reversed, split[i])
		}
		reversed = append(reversed, split[0], nil)
		again := Merge(base.V0, reversed...)
		if len(again.Ops) != len(base.Ops) {
			t.Fatalf("permuted/duplicated merge has %d ops, want %d", len(again.Ops), len(base.Ops))
		}
		for i := range base.Ops {
			if again.Ops[i] != base.Ops[i] {
				t.Fatalf("permuted merge reordered op %d", i)
			}
		}

		// Checker-accepted exactly when the unsplit history is: stitching a
		// partition back together must not change any verdict.
		checks := []struct {
			name string
			fn   func(*History) error
		}{
			{"linearizability", CheckLinearizability},
			{"strong regularity", CheckStrongRegularity},
			{"weak regularity", CheckWeakRegularity},
			{"strong safety", CheckStrongSafety},
		}
		for _, c := range checks {
			want, got := c.fn(base), c.fn(merged)
			if (want == nil) != (got == nil) {
				t.Fatalf("%s verdict changed across merge: base %v, merged %v\nops: %v",
					c.name, want, got, base.Ops)
			}
		}
	})
}
