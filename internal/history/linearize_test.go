package history

import (
	"testing"

	"spacebounds/internal/value"
)

// val returns a distinct 4-byte value for index i; index 0 is the initial
// value v0.
func val(i int) value.Value {
	return value.FromBytes([]byte{byte(i), byte(i >> 8), 0, 0})
}

// op builds a history operation with explicit logical times. ret == 0 means
// the operation never returned.
func op(id, client int, kind OpKind, v value.Value, inv, ret int64) *Op {
	return &Op{ID: id, Client: client, Kind: kind, Value: v, Invoked: inv, Returned: ret}
}

func hist(ops ...*Op) *History { return &History{V0: val(0), Ops: ops} }

func TestLinearizableSequentialHistory(t *testing.T) {
	h := hist(
		op(1, 1, Write, val(1), 1, 2),
		op(2, 1, Read, val(1), 3, 4),
		op(3, 1, Write, val(2), 5, 6),
		op(4, 1, Read, val(2), 7, 8),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("sequential history should be linearizable: %v", err)
	}
}

func TestLinearizabilityInitialValueRead(t *testing.T) {
	h := hist(
		op(1, 1, Read, val(0), 1, 2),
		op(2, 2, Write, val(1), 3, 4),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("v0 read before any write should pass: %v", err)
	}
	bad := hist(
		op(1, 2, Write, val(1), 1, 2),
		op(2, 1, Read, val(0), 3, 4),
	)
	if err := CheckLinearizability(bad); err == nil {
		t.Fatal("v0 read after a completed write must fail")
	}
}

func TestLinearizabilityNewOldInversion(t *testing.T) {
	// Classic regular-but-not-atomic run: two sequential reads during nothing
	// (after the write completes) observing new then old value.
	h := hist(
		op(1, 1, Write, val(1), 1, 2),
		op(2, 2, Write, val(2), 3, 4),
		op(3, 3, Read, val(2), 5, 6),
		op(4, 3, Read, val(1), 7, 8),
	)
	if err := CheckLinearizability(h); err == nil {
		t.Fatal("new/old read inversion must not be linearizable")
	}
	// Strong regularity also rejects it (read 4 skips write 2 which precedes
	// it and follows write 1), so this doubles as an agreement check.
	if err := CheckStrongRegularity(h); err == nil {
		t.Fatal("new/old inversion with sequential writes also violates strong regularity")
	}
}

func TestLinearizabilityConcurrentReadsEitherValue(t *testing.T) {
	// A read concurrent with a write may return old or new value.
	for _, v := range []value.Value{val(0), val(1)} {
		h := hist(
			op(1, 1, Write, val(1), 1, 5),
			op(2, 2, Read, v, 2, 3),
		)
		if err := CheckLinearizability(h); err != nil {
			t.Fatalf("read concurrent with write returning %v should pass: %v", v, err)
		}
	}
}

func TestLinearizabilityIncompleteOps(t *testing.T) {
	// An incomplete write may take effect (a later read sees it)…
	h := hist(
		op(1, 1, Write, val(1), 1, 0),
		op(2, 2, Read, val(1), 2, 3),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("read of an incomplete write's value should pass: %v", err)
	}
	// …or not take effect at all.
	h = hist(
		op(1, 1, Write, val(1), 1, 0),
		op(2, 2, Read, val(0), 2, 3),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("incomplete write may be dropped: %v", err)
	}
	// Incomplete reads constrain nothing.
	h = hist(
		op(1, 1, Write, val(1), 1, 2),
		op(2, 2, Read, val(0), 3, 0),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("incomplete read should be ignored: %v", err)
	}
}

func TestLinearizabilityValueNeverWritten(t *testing.T) {
	h := hist(
		op(1, 1, Write, val(1), 1, 2),
		op(2, 2, Read, val(9), 3, 4),
	)
	if err := CheckLinearizability(h); err == nil {
		t.Fatal("read of a never-written value must fail")
	}
}

func TestLinearizabilityInterleavedClients(t *testing.T) {
	// Two writers and a reader fully overlapping: many interleavings valid.
	h := hist(
		op(1, 1, Write, val(1), 1, 10),
		op(2, 2, Write, val(2), 2, 9),
		op(3, 3, Read, val(1), 3, 8),
		op(4, 3, Read, val(2), 11, 12),
	)
	if err := CheckLinearizability(h); err != nil {
		t.Fatalf("overlapping writes permit either read order: %v", err)
	}
}

func TestRecorderExternalClock(t *testing.T) {
	now := int64(0)
	rec := NewRecorder()
	rec.SetClock(func() int64 { return now })
	w := rec.BeginWrite(1, val(1))
	now = 5
	rec.EndWrite(w)
	r := rec.BeginRead(2)
	now = 7
	rec.EndRead(r, val(1))
	h := rec.History(val(0))
	if len(h.Ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(h.Ops))
	}
	// Timestamps follow the external clock, strictly increasing even when the
	// clock stands still (EndWrite at 5, BeginRead still at 5 -> 6).
	wop, rop := h.Ops[0], h.Ops[1]
	if wop.Invoked != 1 || wop.Returned != 5 {
		t.Fatalf("write interval = [%d,%d], want [1,5]", wop.Invoked, wop.Returned)
	}
	if rop.Invoked != 6 || rop.Returned != 7 {
		t.Fatalf("read interval = [%d,%d], want [6,7]", rop.Invoked, rop.Returned)
	}
	if !wop.Precedes(rop) {
		t.Fatal("write must precede read under the logical clock")
	}
}
