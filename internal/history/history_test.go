package history

import (
	"testing"

	"spacebounds/internal/value"
)

func v(s string) value.Value { return value.FromString(s, 32) }

func TestRecorderOrdering(t *testing.T) {
	r := NewRecorder()
	w1 := r.BeginWrite(1, v("a"))
	r.EndWrite(w1)
	rd := r.BeginRead(2)
	r.EndRead(rd, v("a"))
	w2 := r.BeginWrite(1, v("b"))

	h := r.History(value.Zero(16))
	if len(h.Ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(h.Ops))
	}
	if !w1.Precedes(rd) {
		t.Fatal("w1 should precede rd")
	}
	if w2.Completed() {
		t.Fatal("w2 should be outstanding")
	}
	if w1.Precedes(w2) != true {
		t.Fatal("w1 should precede w2")
	}
	if rd.Precedes(w1) {
		t.Fatal("rd should not precede w1")
	}
	if len(h.Writes()) != 2 || len(h.CompletedReads()) != 1 {
		t.Fatalf("Writes/CompletedReads = %d/%d", len(h.Writes()), len(h.CompletedReads()))
	}
	if w1.String() == "" || Write.String() != "write" || Read.String() != "read" {
		t.Fatal("string forms broken")
	}
}

// sequentialHistory builds: write(a); read->a; write(b); read->b.
func sequentialHistory() *History {
	r := NewRecorder()
	w1 := r.BeginWrite(1, v("a"))
	r.EndWrite(w1)
	rd1 := r.BeginRead(2)
	r.EndRead(rd1, v("a"))
	w2 := r.BeginWrite(1, v("b"))
	r.EndWrite(w2)
	rd2 := r.BeginRead(2)
	r.EndRead(rd2, v("b"))
	return r.History(value.Zero(16))
}

func TestCheckersAcceptSequentialHistory(t *testing.T) {
	h := sequentialHistory()
	if err := CheckWeakRegularity(h); err != nil {
		t.Errorf("weak regularity: %v", err)
	}
	if err := CheckStrongRegularity(h); err != nil {
		t.Errorf("strong regularity: %v", err)
	}
	if err := CheckStrongSafety(h); err != nil {
		t.Errorf("strong safety: %v", err)
	}
}

func TestWeakRegularityViolations(t *testing.T) {
	// Stale read: write(a) completes, write(b) completes, then a read returns a.
	r := NewRecorder()
	w1 := r.BeginWrite(1, v("a"))
	r.EndWrite(w1)
	w2 := r.BeginWrite(1, v("b"))
	r.EndWrite(w2)
	rd := r.BeginRead(2)
	r.EndRead(rd, v("a"))
	h := r.History(value.Zero(16))
	if err := CheckWeakRegularity(h); err == nil {
		t.Error("stale read accepted by weak regularity")
	}

	// Unwritten value.
	r = NewRecorder()
	rd = r.BeginRead(2)
	r.EndRead(rd, v("ghost"))
	if err := CheckWeakRegularity(r.History(value.Zero(16))); err == nil {
		t.Error("read of never-written value accepted")
	}

	// v0 after a completed write.
	r = NewRecorder()
	w := r.BeginWrite(1, v("a"))
	r.EndWrite(w)
	rd = r.BeginRead(2)
	r.EndRead(rd, value.Zero(16))
	if err := CheckWeakRegularity(r.History(value.Zero(16))); err == nil {
		t.Error("read of v0 after a completed write accepted")
	}

	// Read returning a value whose write started after the read returned.
	r = NewRecorder()
	rd = r.BeginRead(2)
	r.EndRead(rd, v("future"))
	w = r.BeginWrite(1, v("future"))
	r.EndWrite(w)
	if err := CheckWeakRegularity(r.History(value.Zero(16))); err == nil {
		t.Error("read from the future accepted")
	}
}

func TestWeakRegularityAllowsConcurrentChoice(t *testing.T) {
	// write(a) is concurrent with the read; the read may return either v0 or a.
	r := NewRecorder()
	w := r.BeginWrite(1, v("a"))
	rd := r.BeginRead(2)
	r.EndRead(rd, v("a"))
	r.EndWrite(w)
	if err := CheckWeakRegularity(r.History(value.Zero(16))); err != nil {
		t.Errorf("concurrent read rejected: %v", err)
	}

	r = NewRecorder()
	w = r.BeginWrite(1, v("a"))
	rd = r.BeginRead(2)
	r.EndRead(rd, value.Zero(16))
	r.EndWrite(w)
	if err := CheckWeakRegularity(r.History(value.Zero(16))); err != nil {
		t.Errorf("concurrent read returning v0 rejected: %v", err)
	}
}

func TestStrongRegularityDetectsDisagreement(t *testing.T) {
	// Two writes concurrent with each other; both complete. Two later reads
	// disagree on their order: rd1 returns b (so a is before b), rd2 returns a
	// (so b is before a). Weak regularity holds for each read separately, but
	// no single write order explains both.
	r := NewRecorder()
	wa := r.BeginWrite(1, v("a"))
	wb := r.BeginWrite(2, v("b"))
	r.EndWrite(wa)
	r.EndWrite(wb)
	rd1 := r.BeginRead(3)
	r.EndRead(rd1, v("b"))
	rd2 := r.BeginRead(4)
	r.EndRead(rd2, v("a"))
	h := r.History(value.Zero(16))
	if err := CheckWeakRegularity(h); err != nil {
		t.Fatalf("weak regularity should hold: %v", err)
	}
	if err := CheckStrongRegularity(h); err == nil {
		t.Error("strong regularity accepted reads that disagree on the write order")
	}
}

func TestStrongSafety(t *testing.T) {
	// A read concurrent with a write may return garbage under safe semantics.
	r := NewRecorder()
	w := r.BeginWrite(1, v("a"))
	rd := r.BeginRead(2)
	r.EndRead(rd, v("garbage-not-written"))
	r.EndWrite(w)
	if err := CheckStrongSafety(r.History(value.Zero(16))); err != nil {
		t.Errorf("safe semantics should allow arbitrary values under concurrency: %v", err)
	}
	// ... but the same garbage read without concurrency is a violation.
	r = NewRecorder()
	w = r.BeginWrite(1, v("a"))
	r.EndWrite(w)
	rd = r.BeginRead(2)
	r.EndRead(rd, v("garbage-not-written"))
	if err := CheckStrongSafety(r.History(value.Zero(16))); err == nil {
		t.Error("write-free garbage read accepted by strong safety")
	}
	// A write-free read must return the latest preceding write.
	r = NewRecorder()
	w1 := r.BeginWrite(1, v("a"))
	r.EndWrite(w1)
	w2 := r.BeginWrite(1, v("b"))
	r.EndWrite(w2)
	rd = r.BeginRead(2)
	r.EndRead(rd, v("a"))
	if err := CheckStrongSafety(r.History(value.Zero(16))); err == nil {
		t.Error("stale write-free read accepted by strong safety")
	}
	// Returning v0 with no preceding writes is fine.
	r = NewRecorder()
	rd = r.BeginRead(2)
	r.EndRead(rd, value.Zero(16))
	if err := CheckStrongSafety(r.History(value.Zero(16))); err != nil {
		t.Errorf("v0 read rejected: %v", err)
	}
	// Returning v0 after a completed write (write-free read) is a violation.
	r = NewRecorder()
	w = r.BeginWrite(1, v("a"))
	r.EndWrite(w)
	rd = r.BeginRead(2)
	r.EndRead(rd, value.Zero(16))
	if err := CheckStrongSafety(r.History(value.Zero(16))); err == nil {
		t.Error("v0 read after completed write accepted by strong safety")
	}
}

func TestViolationError(t *testing.T) {
	viol := &Violation{Condition: "weak regularity", Detail: "detail", Read: &Op{ID: 1, Kind: Read}}
	if viol.Error() == "" {
		t.Fatal("empty violation message")
	}
}
