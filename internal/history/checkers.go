package history

import "fmt"

// CheckWeakRegularity checks the MWRegWeak condition of Shao et al. [14]
// (the condition the paper's lower bound is stated for): for every completed
// read there is a linearization of that read together with all writes that
// respects real-time precedence and the register's sequential specification.
//
// With distinct written values this is equivalent to requiring, for every
// completed read rd returning v:
//
//   - v was written by some write w with ¬(rd ≺ w), and no other write w'
//     satisfies w ≺ w' ≺ rd (otherwise w' would have to be linearized between
//     w and rd, contradicting the sequential specification); or
//   - v = v0 and no write completes before rd is invoked.
//
// It returns nil if the condition holds and a *Violation otherwise.
func CheckWeakRegularity(h *History) error {
	for _, rd := range h.CompletedReads() {
		if err := checkReadRegular(h, rd); err != nil {
			return err
		}
	}
	return nil
}

func checkReadRegular(h *History, rd *Op) error {
	w := h.writeOfValue(rd.Value)
	if w == nil {
		if !rd.Value.Equal(h.V0) {
			return &Violation{Condition: "weak regularity", Read: rd, Detail: "read returned a value never written"}
		}
		// v0 is only allowed if no write completed before the read started.
		for _, wr := range h.Writes() {
			if wr.Precedes(rd) {
				return &Violation{Condition: "weak regularity", Read: rd,
					Detail: fmt.Sprintf("read returned the initial value although %v completed before it", wr)}
			}
		}
		return nil
	}
	if rd.Precedes(w) {
		return &Violation{Condition: "weak regularity", Read: rd,
			Detail: fmt.Sprintf("read returned the value of %v, which was invoked only after the read returned", w)}
	}
	for _, wr := range h.Writes() {
		if wr == w {
			continue
		}
		if w.Precedes(wr) && wr.Precedes(rd) {
			return &Violation{Condition: "weak regularity", Read: rd,
				Detail: fmt.Sprintf("read skipped %v, which completely follows the returned write %v and precedes the read", wr, w)}
		}
	}
	return nil
}

// CheckStrongRegularity checks the MWRegWO condition ("write order"): weak
// regularity plus the requirement that all reads can be explained by one
// common serialization of the writes. With distinct values this reduces to
// the following constraint graph over writes being acyclic:
//
//   - w1 -> w2 whenever w1 ≺ w2 in real time; and
//   - w' -> w(rd) for every completed read rd returning the value of w(rd)
//     and every other write w' that completed before rd was invoked (those
//     writes must be serialized before the write the read observed).
//
// A topological order of this graph is a single write order under which every
// read returns the latest preceding relevant write, which is the witness
// MWRegWO asks for. The function returns nil if the condition holds.
func CheckStrongRegularity(h *History) error {
	if err := CheckWeakRegularity(h); err != nil {
		return err
	}
	writes := h.Writes()
	index := make(map[*Op]int, len(writes))
	for i, w := range writes {
		index[w] = i
	}
	adj := make([][]int, len(writes))
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		adj[from] = append(adj[from], to)
	}
	for i, w1 := range writes {
		for j, w2 := range writes {
			if i != j && w1.Precedes(w2) {
				addEdge(i, j)
			}
		}
	}
	for _, rd := range h.CompletedReads() {
		w := h.writeOfValue(rd.Value)
		if w == nil {
			// Initial value: every write that completed before the read must
			// not exist (weak regularity already guarantees this).
			continue
		}
		for _, other := range h.Writes() {
			if other != w && other.Precedes(rd) {
				addEdge(index[other], index[w])
			}
		}
	}
	if cyc := findCycle(adj); cyc != nil {
		names := make([]string, len(cyc))
		for i, idx := range cyc {
			names[i] = writes[idx].String()
		}
		return &Violation{Condition: "strong regularity", Read: nil,
			Detail: fmt.Sprintf("no single write order can explain all reads; conflicting constraints among %v", names)}
	}
	return nil
}

// CheckStrongSafety checks the strongly safe condition of Appendix A: there
// is a linearization of the writes such that every read with no concurrent
// writes returns the value of the last write serialized before it (or v0).
// Reads that are concurrent with some write are unconstrained. With distinct
// values this again reduces to acyclicity of a constraint graph.
func CheckStrongSafety(h *History) error {
	writes := h.Writes()
	index := make(map[*Op]int, len(writes))
	for i, w := range writes {
		index[w] = i
	}
	adj := make([][]int, len(writes))
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		adj[from] = append(adj[from], to)
	}
	for i, w1 := range writes {
		for j, w2 := range writes {
			if i != j && w1.Precedes(w2) {
				addEdge(i, j)
			}
		}
	}
	for _, rd := range h.CompletedReads() {
		if hasConcurrentWrite(h, rd) {
			continue
		}
		w := h.writeOfValue(rd.Value)
		if w == nil {
			if !rd.Value.Equal(h.V0) {
				return &Violation{Condition: "strong safety", Read: rd, Detail: "read returned a value never written"}
			}
			for _, wr := range writes {
				if wr.Precedes(rd) {
					return &Violation{Condition: "strong safety", Read: rd,
						Detail: fmt.Sprintf("write-free read returned v0 although %v precedes it", wr)}
				}
			}
			continue
		}
		if !w.Precedes(rd) {
			return &Violation{Condition: "strong safety", Read: rd,
				Detail: fmt.Sprintf("write-free read returned %v, which does not precede it", w)}
		}
		for _, other := range writes {
			if other != w && other.Precedes(rd) {
				addEdge(index[other], index[w])
			}
		}
	}
	if cyc := findCycle(adj); cyc != nil {
		return &Violation{Condition: "strong safety", Read: nil,
			Detail: fmt.Sprintf("no write serialization satisfies all write-free reads (cycle of length %d)", len(cyc))}
	}
	return nil
}

// hasConcurrentWrite reports whether any write is concurrent with rd.
func hasConcurrentWrite(h *History, rd *Op) bool {
	for _, w := range h.Writes() {
		if !w.Precedes(rd) && !rd.Precedes(w) {
			return true
		}
	}
	return false
}

// findCycle returns some cycle in the directed graph (as a list of vertex
// indices) or nil if the graph is acyclic.
func findCycle(adj [][]int) []int {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		state[u] = inStack
		for _, v := range adj[u] {
			switch state[v] {
			case unvisited:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case inStack:
				// Reconstruct the cycle v -> ... -> u -> v.
				cycle = []int{v}
				for x := u; x != v && x != -1; x = parent[x] {
					cycle = append(cycle, x)
				}
				return true
			}
		}
		state[u] = done
		return false
	}
	for i := range adj {
		if state[i] == unvisited && dfs(i) {
			return cycle
		}
	}
	return nil
}
