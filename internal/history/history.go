// Package history records high-level register operation histories and checks
// them against the consistency conditions the paper works with: weak
// regularity (MWRegWeak), strong regularity (MWRegWO), and strong safety
// (Appendix A). The checkers assume that distinct write operations write
// distinct values, which the workload generators guarantee; this makes the
// "which write produced this returned value" relation unambiguous.
package history

import (
	"fmt"
	"sort"
	"sync"

	"spacebounds/internal/value"
)

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds.
const (
	Write OpKind = iota + 1
	Read
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Op is one recorded high-level operation. Invoked and Returned are logical
// times drawn from a shared monotonic counter: if op1.Returned < op2.Invoked
// then op1 precedes op2 in real time.
type Op struct {
	ID       int
	Client   int
	Kind     OpKind
	Value    value.Value // written value, or value returned by a read
	Invoked  int64
	Returned int64 // 0 while outstanding
}

// Completed reports whether the operation has returned.
func (o *Op) Completed() bool { return o.Returned != 0 }

// Precedes reports whether o completed before other was invoked (the ≺r
// relation of Appendix A).
func (o *Op) Precedes(other *Op) bool {
	return o.Completed() && o.Returned < other.Invoked
}

// String implements fmt.Stringer.
func (o *Op) String() string {
	return fmt.Sprintf("%v[c%d#%d %v @%d-%d]", o.Kind, o.Client, o.ID, o.Value, o.Invoked, o.Returned)
}

// Recorder collects operations as they are invoked and return. It is safe for
// concurrent use by many client goroutines.
type Recorder struct {
	mu      sync.Mutex
	counter int64
	nextID  int
	ops     []*Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) tick() int64 {
	r.counter++
	return r.counter
}

// BeginWrite records the invocation of a write of v by the given client.
func (r *Recorder) BeginWrite(client int, v value.Value) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	op := &Op{ID: r.nextID, Client: client, Kind: Write, Value: v, Invoked: r.tick()}
	r.ops = append(r.ops, op)
	return op
}

// EndWrite records the return of a write.
func (r *Recorder) EndWrite(op *Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Returned = r.tick()
}

// BeginRead records the invocation of a read by the given client.
func (r *Recorder) BeginRead(client int) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	op := &Op{ID: r.nextID, Client: client, Kind: Read, Invoked: r.tick()}
	r.ops = append(r.ops, op)
	return op
}

// EndRead records the return of a read together with the value it returned.
func (r *Recorder) EndRead(op *Op, v value.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Value = v
	op.Returned = r.tick()
}

// History returns an immutable view of the recorded operations together with
// the initial value v0.
func (r *Recorder) History(v0 value.Value) *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := make([]*Op, len(r.ops))
	copy(ops, r.ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoked < ops[j].Invoked })
	return &History{V0: v0, Ops: ops}
}

// History is a recorded run: the initial value and all operations.
type History struct {
	V0  value.Value
	Ops []*Op
}

// Writes returns all write operations in invocation order.
func (h *History) Writes() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Kind == Write {
			out = append(out, op)
		}
	}
	return out
}

// CompletedReads returns all completed read operations in invocation order.
func (h *History) CompletedReads() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Kind == Read && op.Completed() {
			out = append(out, op)
		}
	}
	return out
}

// writeOfValue returns the write whose value matches v, or nil if no write
// wrote v (which for our workloads means v must be the initial value).
func (h *History) writeOfValue(v value.Value) *Op {
	for _, op := range h.Ops {
		if op.Kind == Write && op.Value.Equal(v) {
			return op
		}
	}
	return nil
}

// Violation describes a consistency violation found by a checker.
type Violation struct {
	Condition string
	Read      *Op
	Detail    string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated: %s (read %v)", v.Condition, v.Detail, v.Read)
}
