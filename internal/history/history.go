// Package history records high-level register operation histories and checks
// them against the consistency conditions the paper works with: weak
// regularity (MWRegWeak), strong regularity (MWRegWO), and strong safety
// (Appendix A). The checkers assume that distinct write operations write
// distinct values, which the workload generators guarantee; this makes the
// "which write produced this returned value" relation unambiguous.
package history

import (
	"fmt"
	"sort"
	"sync"

	"spacebounds/internal/value"
)

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds.
const (
	Write OpKind = iota + 1
	Read
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Op is one recorded high-level operation. Invoked and Returned are logical
// times drawn from a shared monotonic counter: if op1.Returned < op2.Invoked
// then op1 precedes op2 in real time.
type Op struct {
	ID       int
	Client   int
	Kind     OpKind
	Value    value.Value // written value, or value returned by a read
	Invoked  int64
	Returned int64 // 0 while outstanding
}

// Completed reports whether the operation has returned.
func (o *Op) Completed() bool { return o.Returned != 0 }

// Precedes reports whether o completed before other was invoked (the ≺r
// relation of Appendix A).
func (o *Op) Precedes(other *Op) bool {
	return o.Completed() && o.Returned < other.Invoked
}

// String implements fmt.Stringer.
func (o *Op) String() string {
	return fmt.Sprintf("%v[c%d#%d %v @%d-%d]", o.Kind, o.Client, o.ID, o.Value, o.Invoked, o.Returned)
}

// Clock is a source of logical time for a Recorder. It must be monotonically
// non-decreasing; the recorder itself guarantees that consecutive recorded
// events get strictly increasing timestamps by advancing past ties, so a
// coarse clock (one that stands still between scheduler steps) is fine.
type Clock func() int64

// Recorder collects operations as they are invoked and return. It is safe for
// concurrent use by many client goroutines.
//
// By default events are stamped with an internal counter: a logical clock
// that totally orders the recorder's own events but bears no relation to the
// run's schedule. When the recording is driven by a deterministic scheduler —
// the fault-schedule simulator in particular — the arrival order at this
// mutex is itself scheduler-controlled, and SetClock aligns the timestamps
// with the scheduler's step counter so that recorded intervals, and therefore
// checker verdicts, are a pure function of the schedule. Wall-clock time is
// deliberately never used: it would make two runs of the same schedule
// disagree about which operations overlap.
type Recorder struct {
	mu     sync.Mutex
	last   int64
	clock  Clock
	nextID int
	ops    []*Op
}

// NewRecorder returns an empty recorder using its internal logical counter.
func NewRecorder() *Recorder { return &Recorder{} }

// SetClock installs an external logical time source. It must be called before
// recording starts.
func (r *Recorder) SetClock(c Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = c
}

// tick returns the next event timestamp: the external clock's reading when
// one is installed, advanced past the previous stamp so that the recorder's
// event order stays a strict total order even under a coarse clock.
func (r *Recorder) tick() int64 {
	var t int64
	if r.clock != nil {
		t = r.clock()
	}
	if t <= r.last {
		t = r.last + 1
	}
	r.last = t
	return t
}

// BeginWrite records the invocation of a write of v by the given client.
func (r *Recorder) BeginWrite(client int, v value.Value) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	op := &Op{ID: r.nextID, Client: client, Kind: Write, Value: v, Invoked: r.tick()}
	r.ops = append(r.ops, op)
	return op
}

// EndWrite records the return of a write.
func (r *Recorder) EndWrite(op *Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Returned = r.tick()
}

// BeginRead records the invocation of a read by the given client.
func (r *Recorder) BeginRead(client int) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	op := &Op{ID: r.nextID, Client: client, Kind: Read, Invoked: r.tick()}
	r.ops = append(r.ops, op)
	return op
}

// EndRead records the return of a read together with the value it returned.
func (r *Recorder) EndRead(op *Op, v value.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Value = v
	op.Returned = r.tick()
}

// History returns an immutable view of the recorded operations together with
// the initial value v0.
func (r *Recorder) History(v0 value.Value) *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := make([]*Op, len(r.ops))
	copy(ops, r.ops)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Invoked != ops[j].Invoked {
			return ops[i].Invoked < ops[j].Invoked
		}
		// Invocation times are strictly increasing per recorder, but keep the
		// order deterministic even for histories assembled by hand.
		return ops[i].ID < ops[j].ID
	})
	return &History{V0: v0, Ops: ops}
}

// History is a recorded run: the initial value and all operations.
type History struct {
	V0  value.Value
	Ops []*Op
}

// Merge stitches several histories of one logical register into one: the
// reconfiguration subsystem records each epoch of a migrated shard in its own
// recorder, and checking the shard end-to-end means checking the union of its
// lineage's histories. Operations are merged in invocation order; ties (the
// recorders share a coarse logical clock) are broken by the order histories
// are passed in, which callers make deterministic by passing lineages oldest
// first.
//
// The inputs need not be time-disjoint: a merge move's two predecessors
// record interleaved histories, and since dual-epoch reads are recorded
// against the register that answered them, one epoch's history can overlap
// its neighbors' in logical time. Merge therefore guarantees only — and
// exactly — that the output is sorted by invocation time, that each input's
// internal order is preserved under ties (stable), and that an operation
// appearing in several inputs (shared ancestors of two stitched branches) is
// emitted once. Migration seed writes are deliberately not recorded anywhere:
// a read returning a migrated value is justified by the original write in
// the winner's history, so the distinct-written-values assumption of the
// checkers survives stitching.
func Merge(v0 value.Value, hs ...*History) *History {
	var ops []*Op
	seen := make(map[*Op]bool)
	for _, h := range hs {
		if h == nil {
			continue
		}
		for _, op := range h.Ops {
			if seen[op] {
				continue
			}
			seen[op] = true
			ops = append(ops, op)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoked < ops[j].Invoked })
	return &History{V0: v0, Ops: ops}
}

// WellFormed checks the structural invariants every recorded (or stitched)
// history must satisfy: operations sorted by invocation time, strictly
// positive invocation stamps, and completed operations returning strictly
// after they were invoked. Merge preserves well-formedness; the fuzz harness
// pins that.
func (h *History) WellFormed() error {
	last := int64(0)
	for i, op := range h.Ops {
		if op.Invoked <= 0 {
			return fmt.Errorf("op %d (%v) has non-positive invocation time", i, op)
		}
		if op.Invoked < last {
			return fmt.Errorf("op %d (%v) invoked before its predecessor (%d < %d)", i, op, op.Invoked, last)
		}
		if op.Completed() && op.Returned <= op.Invoked {
			return fmt.Errorf("op %d (%v) returned at or before invocation", i, op)
		}
		last = op.Invoked
	}
	return nil
}

// Writes returns all write operations in invocation order.
func (h *History) Writes() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Kind == Write {
			out = append(out, op)
		}
	}
	return out
}

// CompletedReads returns all completed read operations in invocation order.
func (h *History) CompletedReads() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Kind == Read && op.Completed() {
			out = append(out, op)
		}
	}
	return out
}

// writeOfValue returns the write whose value matches v, or nil if no write
// wrote v (which for our workloads means v must be the initial value).
func (h *History) writeOfValue(v value.Value) *Op {
	for _, op := range h.Ops {
		if op.Kind == Write && op.Value.Equal(v) {
			return op
		}
	}
	return nil
}

// Violation describes a consistency violation found by a checker.
type Violation struct {
	Condition string
	Read      *Op
	Detail    string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated: %s (read %v)", v.Condition, v.Detail, v.Read)
}
