package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "T", Title: "title", Caption: "caption", Header: []string{"a", "bee"}}
	tbl.AddRow(1, "x")
	tbl.AddRow(22, "yy")
	text := tbl.Format()
	if !strings.Contains(text, "T — title") || !strings.Contains(text, "caption") || !strings.Contains(text, "22") {
		t.Fatalf("Format output missing content:\n%s", text)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | bee |") || !strings.Contains(md, "| 22 | yy |") {
		t.Fatalf("Markdown output missing content:\n%s", md)
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("expected 8 experiments, got %d", len(all))
	}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" || e.PaperSource == "" {
			t.Fatalf("incomplete experiment descriptor %+v", e)
		}
	}
	if ByID("e4") == nil || ByID("E4").ID != "E4" {
		t.Fatal("ByID lookup failed")
	}
	if ByID("nope") != nil {
		t.Fatal("ByID returned a non-existent experiment")
	}
}

// TestExperimentsRunSmall runs the fast experiments end to end and sanity
// checks the expected invariants inside their outputs.
func TestE2E5E7Invariants(t *testing.T) {
	for _, id := range []string{"E2", "E5", "E7"} {
		exp := ByID(id)
		tbl, err := exp.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if id == "E2" || id == "E5" {
			for _, row := range tbl.Rows {
				if row[len(row)-1] != "true" {
					t.Errorf("%s row reports a mismatch: %v", id, row)
				}
			}
		}
	}
}

func TestE4AdversaryInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary sweep skipped in -short mode")
	}
	tbl, err := ByID("E4").Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		algo, c, pinned, meets, writesDone := row[0], row[1], row[2], row[4], row[7]
		if strings.HasPrefix(algo, "safe") {
			// The safe register's storage never moves from n·D/k = 1.50 KiB,
			// so for large enough c it falls below the regular-register
			// target — the Appendix E separation.
			if pinned != "1.50" {
				t.Errorf("safe register storage changed under the adversary: %v", row)
			}
			if c == "16" && meets != "false" {
				t.Errorf("safe register at c=16 should sit below the regular-register bound: %v", row)
			}
			continue
		}
		if c == "12" || c == "16" {
			// At very high concurrency relative to n the adversary dynamics
			// are reported but not asserted (a write occasionally escapes by
			// having its blocks overwritten, which the theorem permits).
			continue
		}
		if meets != "true" {
			t.Errorf("%s did not meet the lower bound: %v", algo, row)
		}
		if writesDone != "0" {
			t.Errorf("%s completed writes under the adversary: %v", algo, row)
		}
	}
}

func TestE6TraceProducesEvents(t *testing.T) {
	events, res, err := TraceAdversary(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	if res.Concurrency != 4 || res.Steps == 0 {
		t.Fatalf("unexpected trace summary %+v", res)
	}
	tbl, err := ByID("E6").Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("E6 produced no rows")
	}
}
