// Package experiments regenerates the paper's analytic results as measured
// tables (see DESIGN.md's experiment index E1-E8). Each experiment returns a
// Table that cmd/spacebench prints and that the benchmark harness in the
// repository root exercises.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Caption)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	b.WriteString("\n")
	return b.String()
}

// Experiment couples an experiment ID with its driver.
type Experiment struct {
	ID          string
	Title       string
	PaperSource string
	Run         func() (*Table, error)
}

// All returns every experiment in the suite, in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Adaptive storage vs. concurrency", PaperSource: "Theorem 2, Corollary 3", Run: E1AdaptiveStorageVsConcurrency},
		{ID: "E2", Title: "Adaptive quiescent storage", PaperSource: "Theorem 2 (final clause), Lemma 8", Run: E2QuiescentStorage},
		{ID: "E3", Title: "Replication vs. coding vs. adaptive", PaperSource: "Section 1, Corollary 2", Run: E3StorageComparison},
		{ID: "E4", Title: "Adversarial lower bound", PaperSource: "Theorem 1, Lemma 3", Run: E4AdversaryLowerBound},
		{ID: "E5", Title: "Safe register storage", PaperSource: "Appendix E, Lemma 17", Run: E5SafeRegisterStorage},
		{ID: "E6", Title: "Adversary schedule trace (Figure 3)", PaperSource: "Figure 3", Run: E6AdversaryTrace},
		{ID: "E7", Title: "Ablation over the code parameter k", PaperSource: "Section 5 (choice of k)", Run: E7KAblation},
		{ID: "E8", Title: "Operation latency in RMW rounds", PaperSource: "Section 2 (liveness)", Run: E8OperationLatency},
	}
}

// ByID returns the experiment with the given ID (case-insensitive), or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			exp := e
			return &exp
		}
	}
	return nil
}
