package experiments

import (
	"fmt"

	"spacebounds/internal/adversary"
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/workload"
)

// Default experiment parameters. They are deliberately modest so that the
// whole suite runs in seconds; the shapes of the results do not depend on
// the absolute sizes.
const (
	defaultDataLen = 1024 // 1 KiB values => D = 8192 bits
	smallDataLen   = 256
)

func kib(bits int) string { return fmt.Sprintf("%.2f", float64(bits)/8192) }

// E1AdaptiveStorageVsConcurrency sweeps the concurrency level c and reports
// the adaptive algorithm's peak base-object storage against the Theorem 2
// expression min((c+1)(2f+k)D/k, (2f+k)·2D).
func E1AdaptiveStorageVsConcurrency() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Adaptive register: peak storage vs. write concurrency (Theorem 2)",
		Caption: "D = 8 KiB values; peak measured over a fair schedule of c concurrent writers, 2 writes each.",
		Header:  []string{"f", "k", "n", "c", "peak KiB", "bound KiB", "plateau KiB", "within bound"},
	}
	for _, fk := range []struct{ f, k int }{{1, 1}, {2, 2}, {4, 4}} {
		for _, c := range []int{1, 2, 4, 8, 12, 16} {
			reg, err := adaptive.New(register.Config{F: fk.f, K: fk.k, DataLen: defaultDataLen})
			if err != nil {
				return nil, err
			}
			cfg := reg.Config()
			res, err := workload.Run(reg, workload.Spec{Writers: c, WritesPerWriter: 2})
			if err != nil {
				return nil, err
			}
			d := cfg.DataBits()
			pieceBits := d / cfg.K
			plateau := cfg.N() * 2 * cfg.K * pieceBits // every object holds at most 2D bits
			bound := plateau
			// The (c+1)(2f+k)D/k expression of Theorem 2 applies while the
			// concurrency stays below the code parameter; beyond that the
			// replication plateau is the operative bound.
			if c < cfg.K {
				if concBound := (c + 1) * cfg.N() * pieceBits; concBound < bound {
					bound = concBound
				}
			}
			t.AddRow(fk.f, fk.k, cfg.N(), c, kib(res.MaxBaseObjectBits), kib(bound), kib(plateau), res.MaxBaseObjectBits <= bound)
		}
	}
	return t, nil
}

// E2QuiescentStorage verifies the final clause of Theorem 2: after a finite
// number of writes all complete, storage returns to (2f+k)·D/k bits.
func E2QuiescentStorage() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Adaptive register: storage after writes quiesce (Theorem 2, Lemma 8)",
		Caption: "Expected quiescent storage is (2f+k)·D/k bits, one piece per base object.",
		Header:  []string{"f", "k", "writers", "writes/wr", "peak KiB", "quiescent KiB", "expected KiB", "match"},
	}
	for _, fk := range []struct{ f, k, writers int }{{1, 2, 2}, {2, 2, 4}, {2, 4, 4}, {3, 3, 6}} {
		reg, err := adaptive.New(register.Config{F: fk.f, K: fk.k, DataLen: defaultDataLen})
		if err != nil {
			return nil, err
		}
		cfg := reg.Config()
		res, err := workload.Run(reg, workload.Spec{Writers: fk.writers, WritesPerWriter: 3})
		if err != nil {
			return nil, err
		}
		// One piece of ceil(DataLen/k) bytes per base object.
		want := cfg.N() * 8 * ((cfg.DataLen + cfg.K - 1) / cfg.K)
		t.AddRow(fk.f, fk.k, fk.writers, 3, kib(res.MaxBaseObjectBits), kib(res.QuiescentBaseObjectBits), kib(want),
			res.QuiescentBaseObjectBits == want)
	}
	return t, nil
}

// E3StorageComparison compares the peak storage of ABD replication, the pure
// erasure-coded baseline, and the adaptive algorithm as concurrency grows —
// the trade-off the introduction describes and Corollary 2 formalizes.
func E3StorageComparison() (*Table, error) {
	const f = 2
	t := &Table{
		ID:    "E3",
		Title: "Peak storage (KiB) vs. concurrency: replication vs. pure coding vs. adaptive (f=2, k=f, D=8 KiB)",
		Caption: "Replication is flat at (2f+1)·D; the coded baseline grows as Θ(c·D); " +
			"the adaptive algorithm follows the coded line while c < k and then plateaus at its replication-style cap.",
		Header: []string{"c", "abd (repl)", "ecreg (coded)", "adaptive", "adaptive/abd", "ecreg/adaptive"},
	}
	for _, c := range []int{1, 2, 4, 8, 12, 16} {
		abdReg, err := abd.New(register.Config{F: f, K: 1, DataLen: defaultDataLen})
		if err != nil {
			return nil, err
		}
		ecReg, err := ecreg.New(register.Config{F: f, K: f, DataLen: defaultDataLen})
		if err != nil {
			return nil, err
		}
		adReg, err := adaptive.New(register.Config{F: f, K: f, DataLen: defaultDataLen})
		if err != nil {
			return nil, err
		}
		spec := workload.Spec{Writers: c, WritesPerWriter: 2}
		abdRes, err := workload.Run(abdReg, spec)
		if err != nil {
			return nil, err
		}
		ecRes, err := workload.Run(ecReg, spec)
		if err != nil {
			return nil, err
		}
		adRes, err := workload.Run(adReg, spec)
		if err != nil {
			return nil, err
		}
		t.AddRow(c, kib(abdRes.MaxBaseObjectBits), kib(ecRes.MaxBaseObjectBits), kib(adRes.MaxBaseObjectBits),
			fmt.Sprintf("%.2f", float64(adRes.MaxBaseObjectBits)/float64(abdRes.MaxBaseObjectBits)),
			fmt.Sprintf("%.2f", float64(ecRes.MaxBaseObjectBits)/float64(adRes.MaxBaseObjectBits)))
	}
	return t, nil
}

// E4AdversaryLowerBound runs the Theorem 1 adversary against the coded
// baseline, the adaptive algorithm, and the safe register, and compares the
// storage it extracts with the analytic target min(f+1, c)·D/2.
func E4AdversaryLowerBound() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Adversary Ad (ℓ = D/2): pinned storage vs. the Ω(min(f,c)·D) target (f=k=8, D=2 KiB)",
		Caption: "Regular registers (ecreg, adaptive) are pinned at or above the target with no write completing; " +
			"the safe register's storage stays at n·D/k, demonstrating the bound does not apply to safe semantics.",
		Header: []string{"algorithm", "c", "pinned KiB", "target KiB", "meets bound", "|F|", "|C+|", "writes done"},
	}
	const f, k = 8, 8
	mk := func(name string) (register.Register, error) {
		cfg := register.Config{F: f, K: k, DataLen: 2 * smallDataLen}
		switch name {
		case "ecreg":
			return ecreg.New(cfg)
		case "adaptive":
			return adaptive.New(cfg)
		case "safe":
			return safereg.New(cfg)
		}
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
	for _, name := range []string{"ecreg", "adaptive", "safe"} {
		for _, c := range []int{1, 4, 8, 12, 16} {
			reg, err := mk(name)
			if err != nil {
				return nil, err
			}
			res, err := adversary.Run(reg, c, 0)
			if err != nil {
				return nil, err
			}
			t.AddRow(reg.Name(), c, kib(res.PinnedBaseObjectBits), kib(res.LowerBoundBits), res.MeetsBound(),
				res.FullObjects, res.HeavyWrites, res.CompletedWrites)
		}
	}
	return t, nil
}

// E5SafeRegisterStorage verifies Lemma 17: the safe register's storage is
// exactly n·D/k bits independent of concurrency.
func E5SafeRegisterStorage() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Safe register: storage vs. concurrency (Lemma 17)",
		Caption: "Storage is n·D/k bits at every point in every run, independent of c.",
		Header:  []string{"f", "k", "c", "peak KiB", "expected KiB", "match"},
	}
	for _, fk := range []struct{ f, k int }{{1, 2}, {2, 2}, {2, 4}} {
		for _, c := range []int{1, 4, 8} {
			reg, err := safereg.New(register.Config{F: fk.f, K: fk.k, DataLen: defaultDataLen})
			if err != nil {
				return nil, err
			}
			cfg := reg.Config()
			res, err := workload.Run(reg, workload.Spec{Writers: c, WritesPerWriter: 2})
			if err != nil {
				return nil, err
			}
			want := cfg.N() * cfg.DataBits() / cfg.K
			t.AddRow(fk.f, fk.k, c, kib(res.MaxBaseObjectBits), kib(want), res.MaxBaseObjectBits == want)
		}
	}
	return t, nil
}

// E6AdversaryTrace replays a Figure 3-style schedule: four concurrent writers
// against the coded baseline under Ad, reporting every scheduling event.
func E6AdversaryTrace() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Adversary schedule trace (Figure 3 scenario: 4 writers, ℓ = D/2)",
		Caption: "Each row is one scheduling decision of Ad against the coded baseline (f=k=4).",
		Header:  []string{"step", "event", "object", "client", "operation"},
	}
	events, res, err := TraceAdversary(4)
	if err != nil {
		return nil, err
	}
	limit := len(events)
	if limit > 40 {
		limit = 40
	}
	for _, ev := range events[:limit] {
		obj, op := fmt.Sprint(ev.Object), fmt.Sprint(ev.Op)
		if ev.Kind != dsys.TraceApply {
			obj, op = "-", "-"
		}
		t.AddRow(ev.Step, string(ev.Kind), obj, ev.Client, op)
	}
	t.Caption += fmt.Sprintf(" Run pinned after %d steps with %s of storage (target %s KiB).",
		res.Steps, kib(res.PinnedBaseObjectBits)+" KiB", kib(res.LowerBoundBits))
	return t, nil
}

// TraceAdversary runs Ad against a small coded register with the given number
// of writers and returns the scheduling trace together with the run summary.
// The adversarytrace example uses it to narrate Figure 3.
func TraceAdversary(writers int) ([]dsys.TraceEvent, *adversary.Result, error) {
	cfg := register.Config{F: 4, K: 4, DataLen: smallDataLen}
	reg, err := ecreg.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	vcfg, err := cfg.Validate()
	if err != nil {
		return nil, nil, err
	}
	var events []dsys.TraceEvent
	states, err := reg.InitialStates(workload.WriterValue(vcfg, 0, 0))
	if err != nil {
		return nil, nil, err
	}
	dBits := vcfg.DataBits()
	cluster := dsys.NewCluster(states,
		dsys.WithPolicy(adversary.NewPolicy(dBits/2)),
		dsys.WithDataBits(dBits),
		dsys.WithMaxSteps(200*writers*vcfg.N()),
		dsys.WithTracer(func(ev dsys.TraceEvent) { events = append(events, ev) }),
	)
	defer cluster.Close()
	for c := 1; c <= writers; c++ {
		c := c
		cluster.Spawn(c, func(h *dsys.ClientHandle) error {
			return reg.Write(h, workload.WriterValue(vcfg, c, 1))
		})
	}
	cluster.Start()
	reason := cluster.WaitIdle()
	snap := cluster.SampleStorage()
	short := dBits / 2
	target := writers
	if vcfg.F+1 < target {
		target = vcfg.F + 1
	}
	res := &adversary.Result{
		Algorithm:            reg.Name(),
		F:                    vcfg.F,
		K:                    vcfg.K,
		Concurrency:          writers,
		DataBits:             dBits,
		EllBits:              dBits / 2,
		PinnedBaseObjectBits: snap.BaseObjectBits,
		PinnedTotalBits:      snap.TotalBits,
		LowerBoundBits:       target * short,
		FullObjects:          len(snap.Full(dBits / 2)),
		Steps:                cluster.Steps(),
		Reason:               reason,
	}
	return events, res, nil
}

// E7KAblation sweeps the code parameter k for fixed f, showing the trade-off
// the paper discusses after Theorem 2: larger k lowers the quiescent storage
// (2f+k)·D/k but raises the concurrency threshold at which the algorithm
// falls back to replication.
func E7KAblation() (*Table, error) {
	const f = 2
	t := &Table{
		ID:      "E7",
		Title:   "Adaptive register: ablation over k (f = 2, D = 8 KiB, c = 6)",
		Caption: "Quiescent storage follows (2f+k)·D/k; the peak under concurrency is capped by the replication plateau (2f+k)·2D.",
		Header:  []string{"k", "n", "quiescent KiB", "(2f+k)D/k KiB", "peak KiB", "plateau KiB"},
	}
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		reg, err := adaptive.New(register.Config{F: f, K: k, DataLen: defaultDataLen})
		if err != nil {
			return nil, err
		}
		cfg := reg.Config()
		res, err := workload.Run(reg, workload.Spec{Writers: 6, WritesPerWriter: 2})
		if err != nil {
			return nil, err
		}
		pieceBits := 8 * ((cfg.DataLen + k - 1) / k)
		quiescentWant := cfg.N() * pieceBits
		plateau := cfg.N() * 2 * cfg.K * pieceBits
		t.AddRow(k, cfg.N(), kib(res.QuiescentBaseObjectBits), kib(quiescentWant), kib(res.MaxBaseObjectBits), kib(plateau))
	}
	return t, nil
}

// E8OperationLatency compares the scheduling cost of the algorithms: RMW
// rounds per write (3 for adaptive, 2 for ABD and the safe register) and
// whether reads terminate under write concurrency (FW-termination vs.
// wait-freedom).
func E8OperationLatency() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Liveness and cost per operation (4 writers x 2 writes, 2 readers x 2 reads, reads concurrent with writes)",
		Caption: "Steps are scheduling decisions of the controlled runtime; 'reads done' shows wait-free readers always finish while FW-terminating readers may retry until writes stop.",
		Header:  []string{"algorithm", "write rounds", "read rounds", "completed writes", "completed reads", "steps", "steps/op"},
	}
	type entry struct {
		name        string
		reg         register.Register
		writeRounds string
		readRounds  string
	}
	mk := func() ([]entry, error) {
		cfg := register.Config{F: 2, K: 2, DataLen: smallDataLen}
		ad, err := adaptive.New(cfg)
		if err != nil {
			return nil, err
		}
		ec, err := ecreg.New(cfg)
		if err != nil {
			return nil, err
		}
		sf, err := safereg.New(cfg)
		if err != nil {
			return nil, err
		}
		ab, err := abd.New(register.Config{F: 2, K: 1, DataLen: smallDataLen})
		if err != nil {
			return nil, err
		}
		return []entry{
			{"adaptive", ad, "3", ">=1 (FW)"},
			{"ecreg", ec, "3", ">=1 (FW)"},
			{"abd", ab, "2", "1"},
			{"safe", sf, "2", "1"},
		}, nil
	}
	entries, err := mk()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		res, err := workload.Run(e.reg, workload.Spec{
			Writers:         4,
			WritesPerWriter: 2,
			Readers:         2,
			ReadsPerReader:  2,
			Policy:          dsys.NewRandomPolicy(11),
		})
		if err != nil {
			return nil, err
		}
		ops := res.CompletedWrites + res.CompletedReads
		perOp := "-"
		if ops > 0 {
			perOp = fmt.Sprintf("%.1f", float64(res.Steps)/float64(ops))
		}
		t.AddRow(e.reg.Name(), e.writeRounds, e.readRounds, res.CompletedWrites, res.CompletedReads, res.Steps, perOp)
	}
	return t, nil
}
