package shard

import (
	"time"

	"spacebounds/internal/metrics"
)

// Metric families emitted by the sharding layer. Both are labeled by shard
// and lane (write/read) so group-commit behavior is visible per direction.
const (
	metricBatchWaitSeconds = "spacebounds_shard_batch_wait_seconds"
	metricBatchSizeOps     = "spacebounds_shard_batch_size_ops"
)

// SetMetrics attaches a registry to the set: the underlying cluster starts
// observing quorum rounds (labeled by shard name rather than raw base object
// IDs), and every batcher starts observing batch-wait and batch-size
// distributions. Regions added later by AddRegion are labeled and
// instrumented as they appear. Passing nil detaches new regions' metrics but
// leaves already-attached batchers alone; in practice the registry is set
// once at open time.
func (s *Set) SetMetrics(reg *metrics.Registry) {
	s.met.Store(reg)
	s.cluster.SetMetrics(reg)
	if reg == nil {
		return
	}
	s.rmu.Lock()
	regions := append([]*Shard(nil), s.regions...)
	s.rmu.Unlock()
	for _, sh := range regions {
		s.cluster.LabelRegion(sh.Base, sh.Name)
	}
	s.bmu.RLock()
	defer s.bmu.RUnlock()
	for name, b := range s.batchers {
		b.setMetrics(reg, name)
	}
}

// batcherMetrics is a batcher's per-lane instrumentation; swapped in
// atomically so enabling metrics never blocks an in-flight batch.
type batcherMetrics struct {
	writeWait, readWait *metrics.Histogram
	writeSize, readSize *metrics.Histogram
}

// setMetrics attaches batch-wait and batch-size histograms for the shard.
func (b *Batcher) setMetrics(reg *metrics.Registry, shard string) {
	sl := metrics.L("shard", shard)
	waitHelp := "time an operation waits in the batch lane before its shared round dispatches"
	sizeHelp := "operations carried per shared quorum round"
	b.met.Store(&batcherMetrics{
		writeWait: reg.Histogram(metricBatchWaitSeconds, waitHelp, metrics.LatencyBuckets(), sl, metrics.L("lane", "write")),
		readWait:  reg.Histogram(metricBatchWaitSeconds, waitHelp, metrics.LatencyBuckets(), sl, metrics.L("lane", "read")),
		writeSize: reg.Histogram(metricBatchSizeOps, sizeHelp, metrics.CountBuckets(), sl, metrics.L("lane", "write")),
		readSize:  reg.Histogram(metricBatchSizeOps, sizeHelp, metrics.CountBuckets(), sl, metrics.L("lane", "read")),
	})
}

// observeBatch records one dispatched batch: its size and each member's
// lane-queue wait. Members enqueued before metrics were attached carry a zero
// timestamp and are skipped rather than recorded as an absurd wait.
func (m *batcherMetrics) observeBatch(isWrite bool, batch []*batchReq, now time.Time) {
	wait, size := m.readWait, m.readSize
	if isWrite {
		wait, size = m.writeWait, m.writeSize
	}
	size.Observe(float64(len(batch)))
	for _, r := range batch {
		if !r.enq.IsZero() {
			wait.Observe(now.Sub(r.enq).Seconds())
		}
	}
}
