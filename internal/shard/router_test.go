package shard_test

import (
	"fmt"
	"testing"

	"spacebounds/internal/register"
	_ "spacebounds/internal/register/adaptive"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// TestForKeyGoldenMapping pins the FNV-1a key→shard mapping bit for bit: the
// router replaced the static map of PR 1, and any future routing refactor
// that silently remapped keys would shift every deployment's data placement.
// The expected indices were computed once from hash/fnv and are frozen here.
func TestForKeyGoldenMapping(t *testing.T) {
	golden := map[int]map[string]int{
		2: {
			"": 1, "user-0": 1, "user-1": 0, "user-42": 1,
			"key-0": 1, "key-1": 0, "key-7": 0,
			"alpha": 1, "beta": 1, "gamma": 0, "delta": 1,
			"the-quick-brown-fox": 1, "\x00\x01": 0,
		},
		4: {
			"": 1, "user-0": 3, "user-1": 0, "user-42": 3,
			"key-0": 1, "key-1": 2, "key-7": 0,
			"alpha": 3, "beta": 3, "gamma": 2, "delta": 1,
			"the-quick-brown-fox": 3, "\x00\x01": 2,
		},
		8: {
			"": 5, "user-0": 7, "user-1": 4, "user-42": 3,
			"key-0": 1, "key-1": 6, "key-7": 4,
			"alpha": 3, "beta": 7, "gamma": 2, "delta": 1,
			"the-quick-brown-fox": 3, "\x00\x01": 2,
		},
	}
	for n, want := range golden {
		set, err := shard.New(specsNamed(n, "shard-%d"))
		if err != nil {
			t.Fatal(err)
		}
		for key, idx := range want {
			if got := set.ForKey(key).Name; got != fmt.Sprintf("shard-%d", idx) {
				t.Errorf("n=%d ForKey(%q) = %s, want shard-%d", n, key, got, idx)
			}
		}
		set.Close()
	}
}

func specsNamed(n int, format string) []shard.Spec {
	specs := make([]shard.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf(format, i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: 16},
		})
	}
	return specs
}

// TestForKeyEdgeCases covers the routing corner cases: the empty key (a valid
// hashed key, not an error), a key exactly equal to a shard name (exact match
// beats the hash), and a key equal to a shard name with different case (no
// match — names are case-sensitive, so it hashes).
func TestForKeyEdgeCases(t *testing.T) {
	set, err := shard.New(specsNamed(4, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Empty key: deterministic hash routing, never a panic or nil.
	if a, b := set.ForKey(""), set.ForKey(""); a == nil || a != b {
		t.Fatalf("ForKey(\"\") unstable: %v vs %v", a, b)
	}
	// A write under the empty key round-trips like any other key.
	if err := set.Write(1, "", value.Sequenced(1, 1, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Read(2, ""); err != nil {
		t.Fatal(err)
	}

	// Exact shard names route to themselves, whatever they would hash to.
	for _, sh := range set.Shards() {
		if got := set.ForKey(sh.Name); got != sh {
			t.Errorf("ForKey(%q) = %s, want exact match", sh.Name, got.Name)
		}
	}
	// Case matters: "S0" is not the shard "s0", it is an ordinary hashed key.
	if got := set.ForKey("S0"); got == nil {
		t.Fatal("ForKey(\"S0\") returned nil")
	}

	// Stability across sets: the same topology always routes a key the same
	// way (no per-process randomization).
	other, err := shard.New(specsNamed(4, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("stable-%d", i)
		if a, b := set.ForKey(key).Name, other.ForKey(key).Name; a != b {
			t.Fatalf("ForKey(%q) differs across sets: %s vs %s", key, a, b)
		}
	}
}
