package shard_test

import (
	"fmt"
	"testing"

	"spacebounds/internal/register"
	_ "spacebounds/internal/register/adaptive"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// TestForKeyGoldenMapping pins the FNV-1a key→shard mapping bit for bit: the
// router replaced the static map of PR 1, and any future routing refactor
// that silently remapped keys would shift every deployment's data placement.
// The expected indices were computed once from hash/fnv and are frozen here.
func TestForKeyGoldenMapping(t *testing.T) {
	golden := map[int]map[string]int{
		2: {
			"": 1, "user-0": 1, "user-1": 0, "user-42": 1,
			"key-0": 1, "key-1": 0, "key-7": 0,
			"alpha": 1, "beta": 1, "gamma": 0, "delta": 1,
			"the-quick-brown-fox": 1, "\x00\x01": 0,
		},
		4: {
			"": 1, "user-0": 3, "user-1": 0, "user-42": 3,
			"key-0": 1, "key-1": 2, "key-7": 0,
			"alpha": 3, "beta": 3, "gamma": 2, "delta": 1,
			"the-quick-brown-fox": 3, "\x00\x01": 2,
		},
		8: {
			"": 5, "user-0": 7, "user-1": 4, "user-42": 3,
			"key-0": 1, "key-1": 6, "key-7": 4,
			"alpha": 3, "beta": 7, "gamma": 2, "delta": 1,
			"the-quick-brown-fox": 3, "\x00\x01": 2,
		},
	}
	for n, want := range golden {
		set, err := shard.New(specsNamed(n, "shard-%d"))
		if err != nil {
			t.Fatal(err)
		}
		for key, idx := range want {
			if got := set.ForKey(key).Name; got != fmt.Sprintf("shard-%d", idx) {
				t.Errorf("n=%d ForKey(%q) = %s, want shard-%d", n, key, got, idx)
			}
		}
		set.Close()
	}
}

func specsNamed(n int, format string) []shard.Spec {
	specs := make([]shard.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf(format, i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: 16},
		})
	}
	return specs
}

// TestForKeyEdgeCases covers the routing corner cases: the empty key (a valid
// hashed key, not an error), a key exactly equal to a shard name (exact match
// beats the hash), and a key equal to a shard name with different case (no
// match — names are case-sensitive, so it hashes).
func TestForKeyEdgeCases(t *testing.T) {
	set, err := shard.New(specsNamed(4, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Empty key: deterministic hash routing, never a panic or nil.
	if a, b := set.ForKey(""), set.ForKey(""); a == nil || a != b {
		t.Fatalf("ForKey(\"\") unstable: %v vs %v", a, b)
	}
	// A write under the empty key round-trips like any other key.
	if err := set.Write(1, "", value.Sequenced(1, 1, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Read(2, ""); err != nil {
		t.Fatal(err)
	}

	// Exact shard names route to themselves, whatever they would hash to.
	for _, sh := range set.Shards() {
		if got := set.ForKey(sh.Name); got != sh {
			t.Errorf("ForKey(%q) = %s, want exact match", sh.Name, got.Name)
		}
	}
	// Case matters: "S0" is not the shard "s0", it is an ordinary hashed key.
	if got := set.ForKey("S0"); got == nil {
		t.Fatal("ForKey(\"S0\") returned nil")
	}

	// Stability across sets: the same topology always routes a key the same
	// way (no per-process randomization).
	other, err := shard.New(specsNamed(4, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("stable-%d", i)
		if a, b := set.ForKey(key).Name, other.ForKey(key).Name; a != b {
			t.Fatalf("ForKey(%q) differs across sets: %s vs %s", key, a, b)
		}
	}
}

// TestMergeRouteGoldenMapping pins the post-merge key→shard mapping bit for
// bit, alongside the epoch-0 golden above: merging shard-1 and shard-2 of a
// 4-shard table must redirect exactly the keys that hashed to either source
// onto the single successor — split-tree descent in reverse — and leave every
// other key's placement untouched.
func TestMergeRouteGoldenMapping(t *testing.T) {
	set, err := shard.New(specsNamed(4, "shard-%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rt := set.Router()

	succ, err := set.AddRegion(shard.Spec{
		Name:      "shard-1+shard-2",
		Algorithm: "adaptive",
		Config:    register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InstallMergeSuccessor("shard-1", "shard-2", succ); err != nil {
		t.Fatal(err)
	}
	rt.MarkSeeded(succ.Name)

	// Frozen from the epoch-0 golden: keys that mapped to shard-1 or shard-2
	// land on the successor, the rest keep their epoch-0 placement.
	golden := map[string]string{
		"":                    "shard-1+shard-2", // was shard-1
		"user-0":              "shard-3",
		"user-1":              "shard-0",
		"user-42":             "shard-3",
		"key-0":               "shard-1+shard-2", // was shard-1
		"key-1":               "shard-1+shard-2", // was shard-2
		"key-7":               "shard-0",
		"alpha":               "shard-3",
		"beta":                "shard-3",
		"gamma":               "shard-1+shard-2", // was shard-2
		"delta":               "shard-1+shard-2", // was shard-1
		"the-quick-brown-fox": "shard-3",
		"\x00\x01":            "shard-1+shard-2", // was shard-2
		"shard-1":             "shard-1+shard-2", // exact old names descend too
		"shard-2":             "shard-1+shard-2",
	}
	for key, want := range golden {
		if got := set.ForKey(key).Name; got != want {
			t.Errorf("ForKey(%q) = %s, want %s", key, got, want)
		}
	}
}

// TestWritePinSurvivesFlipAndDrain pins the lifecycle edge case of a write
// acquired on an active route that a migration then flips to draining: the
// drain must wait for the pin, and the release must count down cleanly even
// though the route changed state (and even retires) mid-operation.
func TestWritePinSurvivesFlipAndDrain(t *testing.T) {
	set, err := shard.New(specsNamed(2, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rt := set.Router()

	ref, held, err := rt.TryAcquireWrite(7, "s0")
	if err != nil || held {
		t.Fatalf("acquire on active route: held=%v err=%v", held, err)
	}
	succ, err := set.AddRegion(shard.Spec{
		Name: "s0/0", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InstallSuccessors("s0", []*shard.Shard{succ}); err != nil {
		t.Fatal(err)
	}
	none := map[int]bool{}
	if rt.WritesDrained("s0", none) {
		t.Fatal("draining route with a live pin reports drained")
	}
	// Excluding the pinning client (as a crash would) drains immediately.
	if !rt.WritesDrained("s0", map[int]bool{7: true}) {
		t.Fatal("crashed client's pin must not block the drain")
	}
	rt.ReleaseWrite(ref, 7)
	if !rt.WritesDrained("s0", none) {
		t.Fatal("released pin still blocks the drain")
	}

	// A read pinned to the draining route must survive the route retiring
	// mid-operation: release after retirement is clean, and a fresh resolve
	// no longer lands there.
	ref2, fb, err := rt.AcquireRead(9, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if ref2.Shard().Name != "s0/0" || fb == nil || fb.Shard().Name != "s0" {
		t.Fatalf("dual-epoch acquire = %v / %v", ref2.Shard().Name, fb)
	}
	rt.MarkSeeded("s0/0")
	rt.MarkRetired("s0")
	if got := rt.RouteOf("s0").State(); got != shard.RouteRetired {
		t.Fatalf("s0 state = %v", got)
	}
	rt.ReleaseRead(ref2, fb, 9) // must not panic or corrupt pin counts
	if !rt.ReadsDrained("s0", none) || !rt.ReadsDrained("s0/0", none) {
		t.Fatal("pins leaked across retirement")
	}
	if got := set.ForKey("s0").Name; got != "s0/0" {
		t.Fatalf("post-retirement ForKey(s0) = %s", got)
	}
}

// TestMergeInstallValidation exercises the router-level merge error paths.
func TestMergeInstallValidation(t *testing.T) {
	set, err := shard.New(specsNamed(3, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rt := set.Router()
	succ, err := set.AddRegion(shard.Spec{
		Name: "m", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InstallMergeSuccessor("s0", "s0", succ); err == nil {
		t.Fatal("self-merge accepted")
	}
	if _, err := rt.InstallMergeSuccessor("s0", "nope", succ); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := rt.InstallMergeSuccessor("s0", "s1", set.Shard("s2")); err == nil {
		t.Fatal("already-routed successor name accepted")
	}
	epoch, err := rt.InstallMergeSuccessor("s0", "s1", succ)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("merge installed no epoch")
	}
	// Before the value ordering runs, the child has no lineage parent and
	// nothing counts as pruned.
	if got := rt.RouteOf("m").Parent(); got != "" {
		t.Fatalf("pre-winner parent = %q, want empty", got)
	}
	if pruned := rt.PrunedBranches(); len(pruned) != 0 {
		t.Fatalf("pre-winner pruned branches = %v", pruned)
	}
	// Winner must be one of the parents.
	if err := rt.SetMergeWinner("m", "s2"); err == nil {
		t.Fatal("non-parent winner accepted")
	}
	if err := rt.SetMergeWinner("m", "s1"); err != nil {
		t.Fatal(err)
	}
	if got := rt.RouteOf("m").Parent(); got != "s1" {
		t.Fatalf("parent = %q after SetMergeWinner", got)
	}
	if got := rt.RouteOf("m").Parents(); len(got) != 2 || got[0] != "s0" || got[1] != "s1" {
		t.Fatalf("parents = %v", got)
	}
	// AbortMerge restores both sources and retires the child.
	rt.AbortMerge("s0", "s1")
	if pruned := rt.PrunedBranches(); len(pruned) != 0 {
		t.Fatalf("aborted merge reports pruned branches: %v", pruned)
	}
	for _, name := range []string{"s0", "s1"} {
		if got := rt.RouteOf(name).State(); got != shard.RouteActive {
			t.Fatalf("%s state after abort = %v", name, got)
		}
	}
	if got := rt.RouteOf("m").State(); got != shard.RouteRetired {
		t.Fatalf("child state after abort = %v", got)
	}
	if got := set.ForKey("s0").Name; got != "s0" {
		t.Fatalf("post-abort ForKey(s0) = %s", got)
	}
}

// TestRouterDedicatedLifecycle drives the dedicated add/remove cycle and the
// introspection surface at the router level: install, hold, unroute, delete,
// abort, and the name/region listings reconfiguration and the adversary
// consume.
func TestRouterDedicatedLifecycle(t *testing.T) {
	set, err := shard.New(specsNamed(2, "s%d"))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rt := set.Router()

	if got := rt.Epoch(); got != 0 {
		t.Fatalf("fresh epoch = %d", got)
	}
	ded, err := set.AddRegion(shard.Spec{
		Name: "hot", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	origin, epoch, err := rt.InstallDedicated(ded)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || origin == nil {
		t.Fatalf("InstallDedicated = %v, %d", origin, epoch)
	}
	if got := rt.RouteOf("hot").InstalledAt(); got != 1 {
		t.Fatalf("InstalledAt = %d", got)
	}
	// Holding the origin makes write acquisition report held; releasing
	// reopens it, and the held counter advanced.
	if err := rt.HoldWrites(origin.Shard().Name); err != nil {
		t.Fatal(err)
	}
	if _, held, err := rt.TryAcquireWrite(3, origin.Shard().Name); err != nil || !held {
		t.Fatalf("write admitted through a hold: held=%v err=%v", held, err)
	}
	rt.ReleaseHold(origin.Shard().Name)
	if ref, held, err := rt.TryAcquireWrite(3, origin.Shard().Name); err != nil || held {
		t.Fatalf("write held after release: held=%v err=%v", held, err)
	} else {
		rt.ReleaseWrite(ref, 3)
	}
	if rt.HeldWrites() == 0 {
		t.Fatal("held-writes counter did not advance")
	}
	if err := rt.HoldWrites("nope"); err == nil {
		t.Fatal("hold on unknown shard accepted")
	}

	rt.MarkSeeded("hot")
	if got := rt.RouteOf("hot").State(); got != shard.RouteActive {
		t.Fatalf("seeded route state = %v", got)
	}
	// Lifecycle state strings render for every state (they feed reports).
	for _, s := range []shard.RouteState{shard.RouteActive, shard.RouteSeeding, shard.RouteDraining, shard.RouteRetired, shard.RouteState(99)} {
		if s.String() == "" {
			t.Fatalf("empty state string for %v", int(s))
		}
	}

	// The listings see three routes, all leaves, the dedicated one active.
	if names := rt.Names(); len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	if leaves := rt.ActiveLeafNames(); len(leaves) != 3 {
		t.Fatalf("ActiveLeafNames = %v", leaves)
	}
	if leaves := rt.LeafNames(); len(leaves) != 3 {
		t.Fatalf("LeafNames = %v", leaves)
	}
	if regions := rt.Regions(); len(regions) != 3 {
		t.Fatalf("Regions = %v", regions)
	}
	if lin := rt.Lineage("hot"); len(lin) != 2 || lin[0] != origin.Shard().Name {
		t.Fatalf("Lineage(hot) = %v", lin)
	}
	if pruned := rt.PrunedBranches(); len(pruned) != 0 {
		t.Fatalf("PrunedBranches = %v", pruned)
	}

	// Unroute, retire, delete: the key rehashes and the name frees up.
	if _, err := rt.UnrouteDedicated(origin.Shard().Name); err == nil {
		t.Fatal("unroute of non-dedicated shard accepted")
	}
	if _, err := rt.UnrouteDedicated("hot"); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeleteRetiredRoute("hot"); err == nil {
		t.Fatal("delete of non-retired route accepted")
	}
	rt.MarkRetired("hot")
	if err := rt.DeleteRetiredRoute("hot"); err != nil {
		t.Fatal(err)
	}
	if rt.RouteOf("hot") != nil {
		t.Fatal("deleted route still registered")
	}

	// A fresh dedicated install can be aborted cleanly.
	ded2, err := set.AddRegion(shard.Spec{
		Name: "hot", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.InstallDedicated(ded2); err != nil {
		t.Fatal(err)
	}
	rt.AbortDedicated("hot")
	if got := rt.RouteOf("hot").State(); got != shard.RouteRetired {
		t.Fatalf("aborted dedicated route state = %v", got)
	}

	// AbortSuccessors rolls a split flip back at the router level.
	succ, err := set.AddRegion(shard.Spec{
		Name: "s0/0", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InstallSuccessors("s0", []*shard.Shard{succ}); err != nil {
		t.Fatal(err)
	}
	rt.AbortSuccessors("s0")
	if got := rt.RouteOf("s0").State(); got != shard.RouteActive {
		t.Fatalf("aborted split left s0 %v", got)
	}
	if got := rt.RouteOf("s0/0").State(); got != shard.RouteRetired {
		t.Fatalf("aborted successor state = %v", got)
	}
}
