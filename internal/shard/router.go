package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// RouteState is the lifecycle of one routed shard. Reconfiguration moves a
// shard through Active → Draining → Retired, and brings successors in through
// Seeding → Active.
type RouteState int

// Route lifecycle states.
const (
	// RouteActive routes reads and writes normally.
	RouteActive RouteState = iota + 1
	// RouteSeeding marks a migration successor: reads consult it and fall
	// back to its predecessor while its register is still unwritten (zero
	// timestamp), writes are held until the migration writer has seeded it.
	RouteSeeding
	// RouteDraining marks a migration predecessor: it no longer receives
	// writes (the routing table points at its successors) and serves only the
	// fallback half of dual-epoch reads until it is retired.
	RouteDraining
	// RouteRetired marks a fully drained shard whose base-object region has
	// been decommissioned.
	RouteRetired
)

// String implements fmt.Stringer.
func (s RouteState) String() string {
	switch s {
	case RouteActive:
		return "active"
	case RouteSeeding:
		return "seeding"
	case RouteDraining:
		return "draining"
	case RouteRetired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Route is one entry of the routing table: a shard together with its
// lifecycle state, its migration linkage, and the in-flight operations pinned
// to it. All fields are guarded by the owning Router's mutex; accessors take
// it.
type Route struct {
	sh *Shard
	// parent is the value-ancestor shard name ("" for an original shard): the
	// predecessor whose register value seeded this route. A merge successor
	// has two parents; `parent` is finalized to the merge winner when the
	// seed's value ordering is decided (SetMergeWinner).
	parent string
	// parents lists every migration predecessor (one for split/drain/add
	// successors, two for a merge successor, nil for an original shard).
	parents     []string
	depth       int   // split depth, salts the child-selection hash
	installedAt int64 // routing epoch this route was installed in (0 for roots)
	dedicated   bool  // installed by AddShard for one exact key
	unrouted    bool  // dedicated route removed from the table (being retired)

	state RouteState
	// heldForFork holds writes on an active route while a dedicated fork of
	// one of its keys drains and seeds (reads continue; see HoldWrites).
	heldForFork bool
	from        *Route   // primary fallback target while state == RouteSeeding
	children    []*Route // set once this route was split or merged; routing descends

	// writePins / readPins track in-flight operations by client ID. Draining
	// waits for them — ignoring clients the scheduler has crashed, whose pins
	// can never be released mid-run.
	writePins map[int]int
	readPins  map[int]int

	r *Router
}

// Shard returns the route's shard.
func (e *Route) Shard() *Shard { return e.sh }

// Parent returns the name of the shard whose value seeded this route, or "".
// For a merge successor this is the merge winner, which SetMergeWinner fixes
// after installation — hence the lock.
func (e *Route) Parent() string {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	return e.parent
}

// Parents returns every migration predecessor of this route (two for a merge
// successor), in installation order.
func (e *Route) Parents() []string {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	return append([]string(nil), e.parents...)
}

// InstalledAt returns the routing epoch the route was installed in (0 for the
// original shards). The merge value-ordering rule compares source routes by
// (installation epoch, register timestamp), mirroring the dual-epoch read.
func (e *Route) InstalledAt() int64 {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	return e.installedAt
}

// State returns the route's current lifecycle state.
func (e *Route) State() RouteState {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	return e.state
}

// Router is the epoch-stamped routing table of a shard set. It replaces the
// static FNV map: keys still hash over the original shard list (the mapping
// of PR 1 is preserved bit for bit, see the golden test), but every entry can
// be split, drained onto fresh base objects, or retired at runtime. Each
// change installs a new epoch; operations pin the route they resolved so a
// migration can drain in-flight work before it moves state.
type Router struct {
	mu   sync.Mutex
	cond *sync.Cond

	epoch  int64
	closed bool

	roots  []*Route          // original shards in declaration order (hash ring)
	byName map[string]*Route // every route ever installed, by shard name
	order  []string          // installation order, for deterministic iteration

	heldWrites int64 // writes that had to wait for a seeding successor
}

// newRouter builds the epoch-0 table over the declared shards.
func newRouter(shards []*Shard) *Router {
	r := &Router{byName: make(map[string]*Route, len(shards))}
	r.cond = sync.NewCond(&r.mu)
	for _, sh := range shards {
		e := r.newRoute(sh, "", 0, false)
		e.state = RouteActive
		r.roots = append(r.roots, e)
	}
	return r
}

// newRoute allocates and registers a route. Callers must hold r.mu (or be the
// constructor).
func (r *Router) newRoute(sh *Shard, parent string, depth int, dedicated bool) *Route {
	e := &Route{
		sh: sh, parent: parent, depth: depth, dedicated: dedicated,
		writePins: make(map[int]int), readPins: make(map[int]int), r: r,
	}
	if parent != "" {
		e.parents = []string{parent}
	}
	r.byName[sh.Name] = e
	r.order = append(r.order, sh.Name)
	return e
}

// Epoch returns the current routing epoch: the number of table changes
// installed so far.
func (r *Router) Epoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// HeldWrites returns how many write acquisitions had to wait (or retry)
// because their target was still seeding.
func (r *Router) HeldWrites() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heldWrites
}

// rootHash is the epoch-0 key hash: FNV-1a modulo the original shard count.
// It must never change — a golden test pins the mapping.
func rootHash(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// childHash selects among a split route's successors, salted by the split
// depth so that re-splitting a child re-partitions its keys.
func childHash(key string, depth, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	h.Write([]byte{byte(depth)})
	return int(h.Sum32() % uint32(n))
}

// resolveLocked routes a key to its current leaf route: an exact shard-name
// match wins (descending through splits and merges), any other key hashes
// over the original shard list and descends. Callers must hold r.mu.
func (r *Router) resolveLocked(key string) *Route {
	e, _ := r.resolvePathLocked(key)
	return e
}

// resolvePathLocked is resolveLocked, additionally reporting the route the
// descent stepped through immediately before reaching the leaf (nil when the
// leaf was reached directly). During a merge two draining parents share one
// seeding child; a dual-epoch read must fall back to the parent its key
// actually descended through — the split-tree descent in reverse — which is
// exactly what `via` identifies. Callers must hold r.mu.
func (r *Router) resolvePathLocked(key string) (leaf, via *Route) {
	e := r.roots[rootHash(key, len(r.roots))]
	if x, ok := r.byName[key]; ok && !x.unrouted && (len(x.children) > 0 || x.state != RouteRetired) {
		e = x
	}
	for len(e.children) > 0 {
		via = e
		e = e.children[childHash(key, e.depth, len(e.children))]
	}
	return e, via
}

// ForKey resolves a key to its current leaf shard without pinning.
func (r *Router) ForKey(key string) *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resolveLocked(key).sh
}

// TryAcquireWrite resolves key and pins the target for a write. When the
// target is a still-unseeded migration successor the write must not proceed
// (the seed write has to be the successor's first write); the call then
// reports held=true without pinning, and the caller retries — yielding to the
// scheduler in controlled mode, or via AwaitAcquireWrite in live mode.
func (r *Router) TryAcquireWrite(client int, key string) (ref *Route, held bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, fmt.Errorf("shard: router closed")
	}
	e := r.resolveLocked(key)
	if e.state == RouteSeeding || e.heldForFork {
		r.heldWrites++
		return nil, true, nil
	}
	e.writePins[client]++
	return e, false, nil
}

// AwaitAcquireWrite is TryAcquireWrite for live mode: it blocks on the
// router's condition variable while the target is seeding. It must not be
// used by controlled-mode client tasks, which would deadlock the scheduler;
// they retry with Yield instead.
func (r *Router) AwaitAcquireWrite(client int, key string) (*Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, fmt.Errorf("shard: router closed")
		}
		e := r.resolveLocked(key)
		if e.state != RouteSeeding && !e.heldForFork {
			e.writePins[client]++
			return e, nil
		}
		r.heldWrites++
		r.cond.Wait()
	}
}

// ReleaseWrite unpins a write acquired by TryAcquireWrite/AwaitAcquireWrite.
func (r *Router) ReleaseWrite(e *Route, client int) {
	r.mu.Lock()
	e.writePins[client]--
	if e.writePins[client] <= 0 {
		delete(e.writePins, client)
	}
	migrating := e.state != RouteActive
	r.mu.Unlock()
	if migrating {
		r.cond.Broadcast()
	}
}

// AcquireRead resolves key and pins the target (and, while the target is an
// unseeded successor, its predecessor) for a read. fb is non-nil exactly when
// the read must be a dual-epoch read: read ref's register with its timestamp,
// and fall back to fb when the timestamp is zero — lexicographic
// (epoch, timestamp) order across the migration boundary. For a merge
// successor the fallback is the draining parent the key descended through, so
// each key keeps reading its own pre-merge register until the successor is
// seeded.
func (r *Router) AcquireRead(client int, key string) (ref, fb *Route, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, fmt.Errorf("shard: router closed")
	}
	e, via := r.resolvePathLocked(key)
	e.readPins[client]++
	if e.state == RouteSeeding {
		cand := via
		if cand == nil {
			// Reached directly (a dedicated fork, or the key names the
			// successor itself): fall back to the primary predecessor.
			cand = e.from
		}
		if cand != nil && cand.state != RouteRetired {
			fb = cand
			fb.readPins[client]++
		}
	}
	return e, fb, nil
}

// ReleaseRead unpins a read (and its fallback, if any).
func (r *Router) ReleaseRead(e, fb *Route, client int) {
	r.mu.Lock()
	e.readPins[client]--
	if e.readPins[client] <= 0 {
		delete(e.readPins, client)
	}
	migrating := e.state != RouteActive
	if fb != nil {
		fb.readPins[client]--
		if fb.readPins[client] <= 0 {
			delete(fb.readPins, client)
		}
		migrating = true
	}
	r.mu.Unlock()
	if migrating {
		r.cond.Broadcast()
	}
}

// Closed reports whether the router has been shut down with its set;
// reconfiguration refuses to start moves against a closed table.
func (r *Router) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// InstallSuccessors atomically replaces the leaf route `name` by seeding
// successor routes and marks the old route draining: from this epoch on,
// writes for the old route's keys are held for the successors and reads
// consult both epochs. It returns the new epoch.
func (r *Router) InstallSuccessors(name string, succs []*Shard) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("shard: router closed")
	}
	e, ok := r.byName[name]
	switch {
	case !ok:
		return 0, fmt.Errorf("shard: unknown shard %q", name)
	case e.unrouted || e.state != RouteActive:
		return 0, fmt.Errorf("shard: shard %q is %v, not active", name, e.state)
	case len(e.children) > 0:
		return 0, fmt.Errorf("shard: shard %q was already split", name)
	case len(succs) == 0:
		return 0, fmt.Errorf("shard: no successors for %q", name)
	}
	for _, sh := range succs {
		if _, dup := r.byName[sh.Name]; dup {
			return 0, fmt.Errorf("shard: successor name %q already routed", sh.Name)
		}
	}
	r.epoch++
	for _, sh := range succs {
		c := r.newRoute(sh, name, e.depth+1, e.dedicated)
		c.state = RouteSeeding
		c.from = e
		c.installedAt = r.epoch
		e.children = append(e.children, c)
	}
	e.state = RouteDraining
	r.cond.Broadcast()
	return r.epoch, nil
}

// InstallMergeSuccessor atomically replaces the two leaf routes a and b by a
// single seeding successor — the inverse of a split. Both sources become
// draining parents of the one child, so every key that routed to either
// descends to the successor (split-tree descent in reverse), writes are held
// until the migration writer seeds it, and dual-epoch reads fall back to the
// parent their key descended through. It returns the new epoch.
func (r *Router) InstallMergeSuccessor(a, b string, succ *Shard) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("shard: router closed")
	}
	if a == b {
		return 0, fmt.Errorf("shard: cannot merge shard %q with itself", a)
	}
	var sources [2]*Route
	for i, name := range []string{a, b} {
		e, ok := r.byName[name]
		switch {
		case !ok:
			return 0, fmt.Errorf("shard: unknown shard %q", name)
		case e.unrouted || e.state != RouteActive:
			return 0, fmt.Errorf("shard: shard %q is %v, not active", name, e.state)
		case len(e.children) > 0:
			return 0, fmt.Errorf("shard: shard %q was already split", name)
		case e.dedicated:
			return 0, fmt.Errorf("shard: dedicated shard %q cannot be merged (remove it instead)", name)
		}
		sources[i] = e
	}
	if _, dup := r.byName[succ.Name]; dup {
		return 0, fmt.Errorf("shard: successor name %q already routed", succ.Name)
	}
	r.epoch++
	depth := sources[0].depth
	if sources[1].depth > depth {
		depth = sources[1].depth
	}
	// The child's lineage parent stays unset until the migration's value
	// ordering picks the winner (SetMergeWinner): reporting a default winner
	// would fabricate ancestry in the diagnostics of a run that stranded the
	// merge before the choice.
	c := r.newRoute(succ, "", depth+1, false)
	c.parents = []string{a, b}
	c.state = RouteSeeding
	c.from = sources[0]
	c.installedAt = r.epoch
	for _, e := range sources {
		e.children = []*Route{c}
		e.state = RouteDraining
	}
	r.cond.Broadcast()
	return r.epoch, nil
}

// SetMergeWinner finalizes a merge successor's value ancestry: winner is the
// source whose latest value the migration writer chose by the
// (installation epoch, timestamp) ordering rule. Lineage — and therefore
// cross-epoch history stitching — follows the winner; the other source's
// history becomes a pruned branch (PrunedBranches).
func (r *Router) SetMergeWinner(name, winner string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	for _, p := range e.parents {
		if p == winner {
			e.parent = winner
			return nil
		}
	}
	return fmt.Errorf("shard: %q is not a parent of merge successor %q", winner, name)
}

// AbortMerge rolls back an InstallMergeSuccessor whose migration could not
// complete: both sources become active again and the successor is retired.
// Safe for the same reason AbortSuccessors is — writes were held for the
// successor throughout, so no client state can have reached it.
func (r *Router) AbortMerge(a, b string) {
	r.mu.Lock()
	ea, eb := r.byName[a], r.byName[b]
	if ea != nil && eb != nil && ea.state == RouteDraining && eb.state == RouteDraining &&
		len(ea.children) == 1 && len(eb.children) == 1 && ea.children[0] == eb.children[0] {
		c := ea.children[0]
		c.state = RouteRetired
		c.from = nil
		c.unrouted = true
		ea.children, eb.children = nil, nil
		ea.state, eb.state = RouteActive, RouteActive
		r.epoch++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// AbortSuccessors rolls back an InstallSuccessors whose migration could not
// complete (the seed read or a seed write failed): the old route becomes
// active again and the successors are retired. It is safe because writes were
// held for the successors throughout — no client state can have reached them.
func (r *Router) AbortSuccessors(name string) {
	r.mu.Lock()
	e := r.byName[name]
	if e != nil && e.state == RouteDraining {
		for _, c := range e.children {
			c.state = RouteRetired
			c.from = nil
			c.unrouted = true
		}
		e.children = nil
		e.state = RouteActive
		r.epoch++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// InstallDedicated installs a seeding dedicated route for exactly the key
// sh.Name, migrating from whatever route the key resolves to today. The
// origin stays active (it keeps serving its other keys); the new shard is a
// fork of the origin's register seeded by the migration writer.
func (r *Router) InstallDedicated(sh *Shard) (origin *Route, epoch int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, fmt.Errorf("shard: router closed")
	}
	if _, dup := r.byName[sh.Name]; dup {
		return nil, 0, fmt.Errorf("shard: shard %q already exists", sh.Name)
	}
	origin = r.resolveLocked(sh.Name)
	if origin.state != RouteActive {
		return nil, 0, fmt.Errorf("shard: origin %q of dedicated shard %q is %v, not active",
			origin.sh.Name, sh.Name, origin.state)
	}
	r.epoch++
	e := r.newRoute(sh, origin.sh.Name, 0, true)
	e.state = RouteSeeding
	e.from = origin
	e.installedAt = r.epoch
	r.cond.Broadcast()
	return origin, r.epoch, nil
}

// HoldWrites holds new write acquisitions on an active route without
// changing its routing: a dedicated fork drains the origin's in-flight
// writes and seeds from its settled value while reads continue. ReleaseHold
// reopens writes.
func (r *Router) HoldWrites(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	e.heldForFork = true
	return nil
}

// ReleaseHold lifts a HoldWrites.
func (r *Router) ReleaseHold(name string) {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		e.heldForFork = false
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// AbortDedicated rolls back an InstallDedicated whose seeding failed: the
// route is unrouted and retired, and its key keeps resolving to the origin.
// Safe for the same reason AbortSuccessors is — writes were held throughout.
func (r *Router) AbortDedicated(name string) {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok && e.dedicated && e.state == RouteSeeding {
		e.state = RouteRetired
		e.from = nil
		e.unrouted = true
		r.epoch++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// UnrouteDedicated removes a dedicated route from the table: its key falls
// back to hash routing. The shard's register is discarded once drained —
// removing a dedicated shard drops its namespace, it does not merge values
// back.
func (r *Router) UnrouteDedicated(name string) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("shard: router closed")
	}
	e, ok := r.byName[name]
	switch {
	case !ok:
		return 0, fmt.Errorf("shard: unknown shard %q", name)
	case !e.dedicated:
		return 0, fmt.Errorf("shard: shard %q is not a dedicated shard", name)
	case e.state != RouteActive:
		return 0, fmt.Errorf("shard: shard %q is %v, not active", name, e.state)
	}
	e.unrouted = true
	e.state = RouteDraining
	r.epoch++
	r.cond.Broadcast()
	return r.epoch, nil
}

// WritesDrained reports whether no write is pinned to the route by a client
// that is still alive. Pins of crashed clients are excluded: a client crashed
// mid-operation can never release its pin, and its surviving in-flight RMWs
// are incomplete writes, which the migration is allowed to miss (they are
// concurrent with everything that follows).
func (r *Router) WritesDrained(name string, crashed map[int]bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return true
	}
	return pinsDrained(e.writePins, crashed)
}

// ReadsDrained is WritesDrained for read pins.
func (r *Router) ReadsDrained(name string, crashed map[int]bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return true
	}
	return pinsDrained(e.readPins, crashed)
}

func pinsDrained(pins map[int]int, crashed map[int]bool) bool {
	for client, n := range pins {
		if n > 0 && !crashed[client] {
			return false
		}
	}
	return true
}

// MarkSeeded flips a seeding successor to active: its register now holds the
// migrated value (or a newer client write), so reads stop consulting the
// predecessor and writes are admitted.
func (r *Router) MarkSeeded(name string) {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok && e.state == RouteSeeding {
		e.state = RouteActive
		e.from = nil
		r.epoch++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// MarkRetired flips a drained route to retired. The caller is responsible for
// retiring the underlying object region afterwards.
func (r *Router) MarkRetired(name string) {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		e.state = RouteRetired
		r.epoch++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// DeleteRetiredRoute unregisters a retired, childless dedicated route so its
// name — which for a dedicated shard must equal the key and therefore cannot
// be suffixed like split successors — can be reused by a later AddShard.
func (r *Router) DeleteRetiredRoute(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	switch {
	case !ok:
		return fmt.Errorf("shard: unknown shard %q", name)
	case !e.dedicated || e.state != RouteRetired || len(e.children) > 0:
		return fmt.Errorf("shard: route %q is not a retired dedicated leaf", name)
	}
	delete(r.byName, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Pins reports the clients currently holding read and write pins on the
// named route, in ascending client order. It is a diagnostic for drain
// stalls: a migration waiting on WritesDrained/ReadsDrained is waiting on
// exactly these clients (minus the crashed ones).
func (r *Router) Pins(name string) (readers, writers []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byName[name]
	if !ok {
		return nil, nil
	}
	for c, n := range e.readPins {
		if n > 0 {
			readers = append(readers, c)
		}
	}
	for c, n := range e.writePins {
		if n > 0 {
			writers = append(writers, c)
		}
	}
	sort.Ints(readers)
	sort.Ints(writers)
	return readers, writers
}

// RouteOf returns the route installed under the given shard name, or nil.
func (r *Router) RouteOf(name string) *Route {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Shards returns the shards of all non-retired routes in installation order.
func (r *Router) Shards() []*Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Shard, 0, len(r.order))
	for _, name := range r.order {
		if e := r.byName[name]; e.state != RouteRetired {
			out = append(out, e.sh)
		}
	}
	return out
}

// Names returns every route name ever installed — retired ones included — in
// installation order. Storage attribution iterates it: regions are disjoint
// for the life of the cluster, so summing over all names is always exact even
// when a snapshot races a retirement.
func (r *Router) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// ActiveLeafNames returns the names of the routes that currently receive
// traffic (active, unsplit, routed), in installation order. Reconfiguration
// target pickers use it.
func (r *Router) ActiveLeafNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, name := range r.order {
		e := r.byName[name]
		if e.state == RouteActive && len(e.children) == 0 && !e.unrouted {
			out = append(out, name)
		}
	}
	return out
}

// LeafNames returns the names of all non-retired, unsplit, routed routes in
// installation order — the shards whose (stitched) histories describe the
// system's current registers.
func (r *Router) LeafNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, name := range r.order {
		e := r.byName[name]
		if e.state != RouteRetired && len(e.children) == 0 && !e.unrouted {
			out = append(out, name)
		}
	}
	return out
}

// Lineage returns the chain of shard names from the oldest ancestor down to
// name, following migration parentage. A shard's end-to-end history is the
// stitched union of its lineage's histories.
func (r *Router) Lineage(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var chain []string
	for cur := name; cur != ""; {
		chain = append([]string{cur}, chain...)
		e, ok := r.byName[cur]
		if !ok {
			break
		}
		cur = e.parent
	}
	return chain
}

// PrunedBranches returns the names of merge losers: sources of a merge whose
// latest value the ordering rule did not choose, in installation order of
// their merge successors. Their histories end at the merge — the merged
// register carries the winner's value on — so consistency checking covers
// them as separate terminated branches rather than stitching them into the
// successor's lineage.
func (r *Router) PrunedBranches() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, name := range r.order {
		e := r.byName[name]
		// Two parents identify a merge successor; an unrouted one is an
		// aborted merge, and an empty parent means the value ordering never
		// ran — in neither case was anything pruned.
		if len(e.parents) < 2 || e.unrouted || e.parent == "" {
			continue
		}
		for _, p := range e.parents {
			if p != e.parent {
				out = append(out, p)
			}
		}
	}
	return out
}

// Region is one shard's object region and fault budget, for adversaries and
// fault injectors that must respect per-shard crash budgets as the topology
// changes.
type Region struct {
	Name       string
	Base, Span int
	F          int
}

// Regions returns the non-retired shards' regions in installation order.
func (r *Router) Regions() []Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Region, 0, len(r.order))
	for _, name := range r.order {
		e := r.byName[name]
		if e.state == RouteRetired {
			continue
		}
		out = append(out, Region{Name: name, Base: e.sh.Base, Span: e.sh.Span, F: e.sh.Reg.Config().F})
	}
	return out
}

// close wakes all blocked acquirers with an error.
func (r *Router) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}
