package shard_test

import (
	"testing"

	"spacebounds/internal/shard"
	"spacebounds/internal/trace"
	"spacebounds/internal/value"
)

// TestSetTracing attaches a fully-sampled tracer to a set and checks the two
// properties the layer owns: every operation roots an op span labeled by its
// shard, and the cluster's round spans carry the shard name (not a raw object
// base) because SetTracer named every existing region.
func TestSetTracing(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	tr := trace.New(trace.Options{Sample: 1, Proc: "shard-test"})
	set.SetTracer(tr)
	if set.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}
	if set.Cluster().Tracer() != tr {
		t.Fatal("SetTracer did not attach the tracer to the cluster")
	}

	payload := value.FromBytes(make([]byte, 64))
	for i := 0; i < 4; i++ {
		if err := set.WriteValue(i, set.Shard("s0"), payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := set.ReadValue(5, set.Shard("s1")); err != nil {
		t.Fatal(err)
	}

	ops, rounds := 0, 0
	shards := make(map[string]bool)
	for _, s := range tr.Snapshot() {
		switch s.Stage {
		case trace.StageOp:
			ops++
			shards[s.Shard] = true
			if s.Parent != 0 {
				t.Errorf("op span %016x has parent %016x, want root", s.ID, s.Parent)
			}
		case trace.StageRound:
			rounds++
			if s.Shard != "s0" && s.Shard != "s1" {
				t.Errorf("round span labeled %q, want a shard name", s.Shard)
			}
		}
	}
	if ops != 5 {
		t.Errorf("recorded %d op spans, want 5", ops)
	}
	if rounds < 5 {
		t.Errorf("recorded %d round spans, want at least one per op", rounds)
	}
	if !shards["s0"] || !shards["s1"] {
		t.Errorf("op spans labeled %v, want both s0 and s1", shards)
	}

	// Detaching stops recording without disturbing operations.
	set.SetTracer(nil)
	if set.Tracer() != nil || set.Cluster().Tracer() != nil {
		t.Fatal("SetTracer(nil) did not detach")
	}
	before := len(tr.Snapshot())
	if err := set.WriteValue(9, set.Shard("s0"), payload); err != nil {
		t.Fatal(err)
	}
	if after := len(tr.Snapshot()); after != before {
		t.Errorf("detached set recorded %d new spans", after-before)
	}
}

// TestSetTracingNamesLateRegions verifies a region added after SetTracer is
// labeled as it appears, mirroring the metrics path.
func TestSetTracingNamesLateRegions(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	tr := trace.New(trace.Options{Sample: 1})
	set.SetTracer(tr)

	late := adaptiveSpecs(2)[1] // "s1", distinct from the seed shard
	sh, err := set.AddRegion(late)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.WriteValue(1, sh, value.FromBytes(make([]byte, 64))); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Snapshot() {
		if s.Stage == trace.StageRound && s.Shard == "s1" {
			return
		}
	}
	t.Fatal("no round span labeled by the late-added region's name")
}
