package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/trace"
	"spacebounds/internal/value"
)

// BatchConfig configures per-shard group commit: concurrent Write (and Read)
// calls that arrive while a quorum round is in flight — or within MaxDelay of
// each other — are coalesced into one shared round.
type BatchConfig struct {
	// MaxSize caps the number of operations one shared round may carry
	// (default 16).
	MaxSize int
	// MaxDelay is how long an idle lane waits for companions before
	// dispatching a round that is not yet full (default 0: dispatch
	// immediately; under load rounds fill up anyway because operations
	// accumulate while the previous round is in flight).
	MaxDelay time.Duration
}

// withDefaults fills zero fields.
func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxSize <= 0 {
		c.MaxSize = 16
	}
	return c
}

// BatcherStats counts the batcher's amortization: Writes/Reads are member
// operations completed through the batcher, WriteRounds/ReadRounds the
// physical quorum rounds that carried them. Rounds < operations is the
// group-commit win.
type BatcherStats struct {
	Writes, Reads           int
	WriteRounds, ReadRounds int
}

// Batcher coalesces concurrent operations on one shard into shared quorum
// rounds (group commit). Writes batch with writes and reads with reads; each
// lane dispatches one physical round at a time, so per-shard write concurrency
// is 1 regardless of the client count — which also keeps the shard at the
// cheap end of the paper's min(f, c)·D storage bound.
//
// Batching preserves per-shard strong regularity: a round only carries
// operations that were already pending when it was dispatched, so every
// member's invocation-to-response interval contains the physical round, and
// the recorded history of member operations inherits the register's
// guarantees (an absorbed write behaves like a write immediately superseded
// by the round's winning write, which regularity permits).
type Batcher struct {
	set *Set
	sh  *Shard

	cfg   BatchConfig
	write lane
	read  lane

	// met, when non-nil, holds the batch-wait/batch-size histograms (see
	// setMetrics). Atomic so attachment never blocks a lane.
	met atomic.Pointer[batcherMetrics]
}

// newBatcher builds the shard's batcher. laneClientBase is the client ID the
// write lane uses for its physical rounds; the read lane uses the next ID.
// Lane IDs must not collide with real client IDs (the facade allocates them
// from a high range) so that the lanes' timestamps stay unique.
func newBatcher(set *Set, sh *Shard, cfg BatchConfig, laneClientBase int) *Batcher {
	b := &Batcher{set: set, sh: sh, cfg: cfg.withDefaults()}
	b.write.client = laneClientBase
	b.write.full = make(chan struct{}, 1)
	b.read.client = laneClientBase + 1
	b.read.full = make(chan struct{}, 1)
	return b
}

// Stats returns the batcher's amortization counters.
func (b *Batcher) Stats() BatcherStats {
	b.write.mu.Lock()
	w, wr := b.write.members, b.write.rounds
	b.write.mu.Unlock()
	b.read.mu.Lock()
	r, rr := b.read.members, b.read.rounds
	b.read.mu.Unlock()
	return BatcherStats{Writes: w, Reads: r, WriteRounds: wr, ReadRounds: rr}
}

// batchResp carries a shared round's outcome to one member.
type batchResp struct {
	v   value.Value
	err error
}

// batchReq is one member operation waiting for a shared round.
type batchReq struct {
	v    value.Value // payload for writes; unused for reads
	done chan batchResp
	enq  time.Time     // enqueue instant; zero unless metrics are attached
	tc   trace.Context // the member operation's trace context
	tenq time.Time     // enqueue instant for tracing; zero unless tc is sampled
}

// lane is one direction (writes or reads) of a shard's batcher.
type lane struct {
	mu      sync.Mutex
	pending []*batchReq
	running bool
	client  int // client ID of the lane's physical rounds

	// full wakes a leader idling in its MaxDelay accumulation window as soon
	// as the pending batch reaches MaxSize (capacity 1, non-blocking sends).
	full chan struct{}

	members int // operations completed through this lane
	rounds  int // physical rounds dispatched
}

// Write submits v for group commit and blocks until the shared round that
// carries it completes. When several writes share a round, the round writes
// the latest-arrived value; the earlier ones are superseded at the same
// instant, exactly as if they had been written and immediately overwritten.
func (b *Batcher) Write(v value.Value) error {
	resp := b.submit(&b.write, v, trace.Context{})
	return resp.err
}

// Read submits a read for group commit and blocks until the shared read
// round completes; every member of the round receives the same value.
func (b *Batcher) Read() (value.Value, error) {
	resp := b.submit(&b.read, value.Value{}, trace.Context{})
	return resp.v, resp.err
}

// writeTraced is Write carrying the member operation's trace context.
func (b *Batcher) writeTraced(v value.Value, tc trace.Context) error {
	resp := b.submit(&b.write, v, tc)
	return resp.err
}

// readTraced is Read carrying the member operation's trace context.
func (b *Batcher) readTraced(tc trace.Context) (value.Value, error) {
	resp := b.submit(&b.read, value.Value{}, tc)
	return resp.v, resp.err
}

// submit enqueues a request on the lane, electing a leader goroutine if none
// is running, and waits for the response.
func (b *Batcher) submit(l *lane, v value.Value, tc trace.Context) batchResp {
	req := &batchReq{v: v, done: make(chan batchResp, 1), tc: tc}
	if b.met.Load() != nil {
		req.enq = time.Now()
	}
	if tc.Sampled() {
		req.tenq = time.Now()
	}
	l.mu.Lock()
	l.pending = append(l.pending, req)
	if !l.running {
		l.running = true
		go b.runLane(l)
	} else if len(l.pending) >= b.cfg.MaxSize {
		select {
		case l.full <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
	return <-req.done
}

// runLane is the lane's leader loop: it repeatedly takes up to MaxSize
// pending requests, performs one physical quorum round on their behalf, and
// answers them, exiting when the lane drains. Requests that arrive while a
// round is in flight go into the next round — never the current one — which
// is what keeps every member's interval containing its round.
func (b *Batcher) runLane(l *lane) {
	for {
		l.mu.Lock()
		if len(l.pending) == 0 {
			l.running = false
			l.mu.Unlock()
			return
		}
		if b.cfg.MaxDelay > 0 && len(l.pending) < b.cfg.MaxSize {
			// Idle-window accumulation: give companions MaxDelay to arrive,
			// but dispatch immediately if the batch fills meanwhile.
			l.mu.Unlock()
			timer := time.NewTimer(b.cfg.MaxDelay)
			select {
			case <-l.full:
			case <-timer.C:
			}
			timer.Stop()
			l.mu.Lock()
		}
		n := len(l.pending)
		if n > b.cfg.MaxSize {
			n = b.cfg.MaxSize
		}
		batch := make([]*batchReq, n)
		copy(batch, l.pending[:n])
		l.pending = append(l.pending[:0], l.pending[n:]...)
		l.rounds++
		l.mu.Unlock()

		if m := b.met.Load(); m != nil {
			m.observeBatch(l == &b.write, batch, time.Now())
		}
		// Tracing: each sampled member gets a batch-wait span (enqueue →
		// dispatch), and the physical round runs under the first sampled
		// member's context — its quorum rounds are recorded for real. The
		// other sampled members get a synthetic round span covering the same
		// interval, so every member's trace accounts for the shared round it
		// rode (marked "shared" to distinguish it from a round the tracer
		// measured directly).
		tr := b.set.trc.Load()
		var lead trace.Context
		var roundStart time.Time
		if tr != nil {
			laneName := "read"
			if l == &b.write {
				laneName = "write"
			}
			roundStart = time.Now()
			for _, r := range batch {
				if !r.tc.Sampled() {
					continue
				}
				tr.Record(trace.Span{
					Trace: r.tc.Trace, ID: tr.SpanID(), Parent: r.tc.Span,
					Stage: trace.StageBatchWait, Shard: b.sh.Name, Note: laneName,
					Start: r.tenq, Duration: roundStart.Sub(r.tenq),
				})
				if !lead.Sampled() {
					lead = r.tc
				}
			}
		}
		var resp batchResp
		if l == &b.write {
			// Group commit: the round writes the latest-arrived value.
			winner := batch[n-1].v
			resp.err = b.set.runTraced(l.client, b.sh, lead, func(h *dsys.ClientHandle) error {
				return b.sh.Reg.Write(h, winner)
			})
		} else {
			resp.err = b.set.runTraced(l.client, b.sh, lead, func(h *dsys.ClientHandle) error {
				var err error
				resp.v, err = b.sh.Reg.Read(h)
				return err
			})
		}
		if tr != nil && lead.Sampled() {
			d := time.Since(roundStart)
			for _, r := range batch {
				if !r.tc.Sampled() || r.tc == lead {
					continue
				}
				tr.Record(trace.Span{
					Trace: r.tc.Trace, ID: tr.SpanID(), Parent: r.tc.Span,
					Stage: trace.StageRound, Shard: b.sh.Name, Note: "shared",
					Start: roundStart, Duration: d,
				})
			}
		}

		l.mu.Lock()
		l.members += n
		l.mu.Unlock()
		for _, r := range batch {
			r.done <- resp
		}
	}
}
