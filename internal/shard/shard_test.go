package shard_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

func adaptiveSpecs(n int) []shard.Spec {
	specs := make([]shard.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: 64},
		})
	}
	return specs
}

func TestSetValidation(t *testing.T) {
	if _, err := shard.New(nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
	if _, err := shard.New([]shard.Spec{{Name: "", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 8}}}); err == nil {
		t.Fatal("empty shard name accepted")
	}
	dup := []shard.Spec{
		{Name: "a", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 8}},
		{Name: "a", Algorithm: "abd", Config: register.Config{F: 1, K: 1, DataLen: 8}},
	}
	if _, err := shard.New(dup); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	if _, err := shard.New([]shard.Spec{{Name: "a", Algorithm: "nope", Config: register.Config{F: 1, K: 2, DataLen: 8}}}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestHeterogeneousShards multiplexes all four emulations over one cluster
// and round-trips a value through each.
func TestHeterogeneousShards(t *testing.T) {
	set, err := shard.New([]shard.Spec{
		{Name: "adaptive", Algorithm: "adaptive", Config: register.Config{F: 1, K: 2, DataLen: 64}},
		{Name: "abd", Algorithm: "abd", Config: register.Config{F: 2, K: 1, DataLen: 32}},
		{Name: "ecreg", Algorithm: "ecreg", Config: register.Config{F: 1, K: 2, DataLen: 128}},
		{Name: "safereg", Algorithm: "safereg", Config: register.Config{F: 1, K: 2, DataLen: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	wantTotal := 0
	for _, sh := range set.Shards() {
		wantTotal += sh.Span
	}
	if got := set.Cluster().N(); got != wantTotal {
		t.Fatalf("cluster has %d objects, shards own %d", got, wantTotal)
	}
	for i, sh := range set.Shards() {
		msg := fmt.Sprintf("value-for-%s", sh.Name)
		if err := set.Write(i+1, sh.Name, value.FromString(msg, sh.Reg.Config().DataLen)); err != nil {
			t.Fatalf("write %s: %v", sh.Name, err)
		}
		got, err := set.Read(100+i, sh.Name)
		if err != nil {
			t.Fatalf("read %s: %v", sh.Name, err)
		}
		if s := strings.TrimRight(string(got.Bytes()), "\x00"); s != msg {
			t.Fatalf("shard %s read %q, want %q", sh.Name, s, msg)
		}
	}
}

func TestForKeyRouting(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	// Exact shard names route to themselves.
	for _, sh := range set.Shards() {
		if got := set.ForKey(sh.Name); got != sh {
			t.Fatalf("ForKey(%q) routed to %q", sh.Name, got.Name)
		}
	}
	// Hashed keys are deterministic and cover more than one shard.
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("user-%d", i)
		a, b := set.ForKey(key), set.ForKey(key)
		if a != b {
			t.Fatalf("ForKey(%q) not deterministic", key)
		}
		seen[a.Name] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 hashed keys all routed to %d shard(s)", len(seen))
	}
}

// TestPerShardStorageSumsToTotal checks that the aggregate storage cost
// equals the sum of per-shard costs — the invariant that keeps the paper's
// min(f, c)·D introspection meaningful after the multiplexing refactor.
func TestPerShardStorageSumsToTotal(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for i, sh := range set.Shards() {
		if err := set.Write(i+1, sh.Name, value.Sequenced(i+1, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	snap := set.StorageSnapshot()
	sum := 0
	for _, sh := range set.Shards() {
		bits := set.ShardBits(snap, sh.Name)
		if bits <= 0 {
			t.Fatalf("shard %s reports %d bits", sh.Name, bits)
		}
		sum += bits
	}
	if sum != snap.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, snap.BaseObjectBits)
	}
	if set.ShardBits(snap, "no-such-shard") != 0 {
		t.Fatal("unknown shard reported nonzero bits")
	}
}

// blockingRMW parks inside Apply until released, holding its base object's
// apply lock the whole time.
type blockingRMW struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingRMW) Apply(dsys.State) any {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return nil
}

func (b *blockingRMW) Blocks() []dsys.BlockRef { return nil }

// TestNoCrossShardBlocking pins one shard's base object inside a blocked
// Apply and proves that writes to a different shard still complete: clients
// on disjoint shards share no locks on the live path.
func TestNoCrossShardBlocking(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	shardA, shardB := set.Shards()[0], set.Shards()[1]

	rmw := &blockingRMW{entered: make(chan struct{}), release: make(chan struct{})}
	pinned := make(chan error, 1)
	go func() {
		pinned <- set.Run(99, shardA, func(h *dsys.ClientHandle) error {
			_, err := h.Invoke([]int{0}, func(int) dsys.RMW { return rmw }, 1)
			return err
		})
	}()
	<-rmw.entered // shard A's object 0 now holds its apply lock indefinitely

	done := make(chan error, 1)
	go func() {
		done <- set.Write(1, shardB.Name, value.Sequenced(1, 1, 64))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write to unblocked shard failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write to shard B blocked behind a pinned RMW on shard A")
	}

	close(rmw.release)
	if err := <-pinned; err != nil {
		t.Fatalf("pinned task: %v", err)
	}
}

// TestCrashNodePerShard crashes one node in one shard and checks the other
// shard is unaffected while the crashed shard still tolerates it (f = 1).
func TestCrashNodePerShard(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if err := set.CrashNode("s0", 0); err != nil {
		t.Fatal(err)
	}
	if err := set.CrashNode("s0", -1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := set.CrashNode("nope", 0); err == nil {
		t.Fatal("unknown shard accepted")
	}
	for i, name := range []string{"s0", "s1"} {
		if err := set.Write(i+1, name, value.Sequenced(i+1, 1, 64)); err != nil {
			t.Fatalf("write %s after crash: %v", name, err)
		}
		if _, err := set.Read(10+i, name); err != nil {
			t.Fatalf("read %s after crash: %v", name, err)
		}
	}
	// Only shard s0's global object 0 is crashed.
	crashed := set.Cluster().CrashedObjects()
	if len(crashed) != 1 || crashed[0] != set.Shards()[0].Base {
		t.Fatalf("crashed objects = %v, want exactly [%d]", crashed, set.Shards()[0].Base)
	}
}
