package shard_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/shard"
	"spacebounds/internal/value"
)

// TestBatcherCoalescesWrites drives many concurrent writes through one
// shard's batcher and checks group commit actually happened: far fewer
// physical quorum rounds than member writes, and a final read that returns
// one of the written values.
func TestBatcherCoalescesWrites(t *testing.T) {
	const writers = 32
	set, err := shard.New(adaptiveSpecs(1), dsys.WithLiveLatency(200*time.Microsecond), dsys.WithLiveBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: 16})

	written := make([]value.Value, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		written[i] = value.Sequenced(i+1, 1, 64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := set.Write(i+1, "k", written[i]); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	stats := set.BatchStats()
	if stats.Writes != writers {
		t.Fatalf("stats.Writes = %d, want %d", stats.Writes, writers)
	}
	if stats.WriteRounds == 0 || stats.WriteRounds >= writers {
		t.Fatalf("stats.WriteRounds = %d for %d writes; group commit is not amortizing", stats.WriteRounds, writers)
	}

	got, err := set.Read(100, "k")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range written {
		if got.Equal(v) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("final read returned %v, not one of the written values", got)
	}
}

// TestBatcherReadsShareRounds checks that concurrent reads coalesce into
// shared read rounds and all members of a round agree on the value.
func TestBatcherReadsShareRounds(t *testing.T) {
	const readers = 24
	set, err := shard.New(adaptiveSpecs(1), dsys.WithLiveLatency(200*time.Microsecond), dsys.WithLiveBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: 8})

	want := value.Sequenced(1, 1, 64)
	if err := set.Write(1, "k", want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := set.Read(i+1, "k")
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if !got.Equal(want) {
				t.Errorf("read %d returned %v, want %v", i, got, want)
			}
		}()
	}
	wg.Wait()

	stats := set.BatchStats()
	if stats.Reads != readers {
		t.Fatalf("stats.Reads = %d, want %d", stats.Reads, readers)
	}
	if stats.ReadRounds == 0 || stats.ReadRounds >= readers {
		t.Fatalf("stats.ReadRounds = %d for %d reads; read batching is not amortizing", stats.ReadRounds, readers)
	}
}

// TestBatcherPerShardIsolation checks that batching keeps shards independent:
// writes routed to different shards land on their own registers.
func TestBatcherPerShardIsolation(t *testing.T) {
	set, err := shard.New(adaptiveSpecs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: 4})

	vals := make(map[string]value.Value)
	for i, sh := range set.Shards() {
		v := value.Sequenced(i+1, 7, 64)
		vals[sh.Name] = v
		if err := set.Write(i+1, sh.Name, v); err != nil {
			t.Fatalf("write shard %s: %v", sh.Name, err)
		}
	}
	for i, sh := range set.Shards() {
		got, err := set.Read(10+i, sh.Name)
		if err != nil {
			t.Fatalf("read shard %s: %v", sh.Name, err)
		}
		if !got.Equal(vals[sh.Name]) {
			t.Fatalf("shard %s read %v, want %v", sh.Name, got, vals[sh.Name])
		}
	}
	if b := set.Batcher("s0"); b == nil {
		t.Fatal("Batcher(s0) = nil after EnableBatching")
	}
	if b := set.Batcher(fmt.Sprintf("s%d", 99)); b != nil {
		t.Fatal("Batcher of unknown shard is non-nil")
	}
}

// TestBatcherFullRoundDispatchesBeforeMaxDelay pins the accumulation-window
// fast path: a round that fills to MaxSize must dispatch immediately instead
// of sleeping out the whole MaxDelay.
func TestBatcherFullRoundDispatchesBeforeMaxDelay(t *testing.T) {
	const size = 4
	set, err := shard.New(adaptiveSpecs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.EnableBatching(shard.BatchConfig{MaxSize: size, MaxDelay: 5 * time.Second})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := set.Write(i+1, "k", value.Sequenced(i+1, 1, 64)); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	// The first write may pay one idle window before companions arrive, but a
	// filled batch must never wait out the full 5s delay.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("full batch took %v to dispatch; early dispatch on MaxSize is broken", elapsed)
	}
}
