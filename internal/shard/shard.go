// Package shard multiplexes many named register emulations over one shared
// fault-prone cluster. Each shard owns a contiguous region of base objects
// and an independently configured register emulation (the algorithms may
// differ per shard), so a single simulated cluster serves a whole keyspace:
// keys route to shards by name or hash, and clients on different shards never
// share a lock on the live path because the scoped client handles of
// internal/dsys touch only the shard's own objects.
//
// Storage accounting remains exact: the cluster's snapshot attributes bits to
// base objects by global ID, and a shard's cost is the sum over its region,
// so the paper's min(f, c)·D introspection holds per shard and, by summing,
// in aggregate.
package shard

import (
	"fmt"
	"hash/fnv"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
)

// Spec describes one named shard: which register emulation backs it (a
// provider name from internal/register) and its configuration.
type Spec struct {
	// Name identifies the shard; it must be unique within a Set.
	Name string
	// Algorithm is the register provider name ("adaptive", "abd", "ecreg",
	// "safereg").
	Algorithm string
	// Config is the shard's register configuration (F, K, DataLen, Code).
	Config register.Config
}

// Shard is one register emulation bound to a region of the shared cluster.
type Shard struct {
	// Name is the shard's unique name.
	Name string
	// Reg is the register emulation serving the shard.
	Reg register.Register
	// Base is the global ID of the shard's first base object.
	Base int
	// Span is the number of base objects the shard owns (its register's n).
	Span int
}

// Set is a collection of shards multiplexed over one cluster.
type Set struct {
	cluster  *dsys.Cluster
	shards   []*Shard
	byName   map[string]*Shard
	batchers map[string]*Batcher // non-nil entries when batching is enabled
}

// batcherClientBase is the first client ID handed to batcher lanes. Real
// clients use small IDs; starting the lanes this high keeps the lanes'
// timestamp client components collision-free.
const batcherClientBase = 1 << 30

// New builds the registers named by specs, concatenates their initial base
// object states into one cluster, and returns the shard set. The cluster
// defaults to live mode (the set exists for throughput); pass dsys options to
// override. Each shard's initial value is the zero value of its size.
func New(specs []Spec, opts ...dsys.Option) (*Set, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: empty spec list")
	}
	s := &Set{byName: make(map[string]*Shard, len(specs))}
	var states []dsys.State
	maxDataBits := 0
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("shard: shard with empty name")
		}
		if _, dup := s.byName[spec.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard name %q", spec.Name)
		}
		reg, err := register.NewByName(spec.Algorithm, spec.Config)
		if err != nil {
			return nil, fmt.Errorf("shard %q: %w", spec.Name, err)
		}
		cfg := reg.Config()
		init, err := reg.InitialStates(value.Zero(cfg.DataLen))
		if err != nil {
			return nil, fmt.Errorf("shard %q: initial states: %w", spec.Name, err)
		}
		sh := &Shard{Name: spec.Name, Reg: reg, Base: len(states), Span: len(init)}
		states = append(states, init...)
		s.shards = append(s.shards, sh)
		s.byName[spec.Name] = sh
		if d := cfg.DataBits(); d > maxDataBits {
			maxDataBits = d
		}
	}
	all := append([]dsys.Option{dsys.WithLiveMode(), dsys.WithDataBits(maxDataBits)}, opts...)
	s.cluster = dsys.NewCluster(states, all...)
	return s, nil
}

// Cluster returns the shared cluster.
func (s *Set) Cluster() *dsys.Cluster { return s.cluster }

// Shards returns the shards in declaration order.
func (s *Set) Shards() []*Shard { return s.shards }

// Shard returns the shard with the given name, or nil.
func (s *Set) Shard(name string) *Shard { return s.byName[name] }

// ForKey routes a key to a shard: an exact shard name wins, any other key
// hashes (FNV-1a) onto the shard list. Routing is deterministic across
// processes and runs.
func (s *Set) ForKey(key string) *Shard {
	if sh, ok := s.byName[key]; ok {
		return sh
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32()%uint32(len(s.shards)))]
}

// Run executes fn as the given client scoped to the shard's object region.
// On the live path fn runs inline in the caller's goroutine.
func (s *Set) Run(client int, sh *Shard, fn func(h *dsys.ClientHandle) error) error {
	return s.cluster.RunScoped(client, sh.Base, sh.Span, fn)
}

// EnableBatching installs a group-commit Batcher on every shard: from then
// on, concurrent Write/Read calls on a shard coalesce into shared quorum
// rounds. It must be called before the set serves operations (it is not safe
// to call concurrently with Write or Read).
func (s *Set) EnableBatching(cfg BatchConfig) {
	s.batchers = make(map[string]*Batcher, len(s.shards))
	for i, sh := range s.shards {
		s.batchers[sh.Name] = newBatcher(s, sh, cfg, batcherClientBase+2*i)
	}
}

// Batcher returns the named shard's batcher, or nil when batching is off.
func (s *Set) Batcher(name string) *Batcher { return s.batchers[name] }

// BatchStats sums the batcher counters across all shards; zero when batching
// is disabled.
func (s *Set) BatchStats() BatcherStats {
	var total BatcherStats
	for _, b := range s.batchers {
		st := b.Stats()
		total.Writes += st.Writes
		total.Reads += st.Reads
		total.WriteRounds += st.WriteRounds
		total.ReadRounds += st.ReadRounds
	}
	return total
}

// WriteValue performs a register write of v on the given shard, through the
// shard's batcher when batching is enabled (the physical round then runs
// under the batcher lane's client ID rather than the caller's).
func (s *Set) WriteValue(client int, sh *Shard, v value.Value) error {
	if b := s.batchers[sh.Name]; b != nil {
		return b.Write(v)
	}
	return s.Run(client, sh, func(h *dsys.ClientHandle) error {
		return sh.Reg.Write(h, v)
	})
}

// ReadValue performs a register read on the given shard, through the shard's
// batcher when batching is enabled.
func (s *Set) ReadValue(client int, sh *Shard) (value.Value, error) {
	if b := s.batchers[sh.Name]; b != nil {
		return b.Read()
	}
	var got value.Value
	err := s.Run(client, sh, func(h *dsys.ClientHandle) error {
		var err error
		got, err = sh.Reg.Read(h)
		return err
	})
	return got, err
}

// Write performs a register write of v on the shard routed by key.
func (s *Set) Write(client int, key string, v value.Value) error {
	return s.WriteValue(client, s.ForKey(key), v)
}

// Read performs a register read on the shard routed by key.
func (s *Set) Read(client int, key string) (value.Value, error) {
	return s.ReadValue(client, s.ForKey(key))
}

// CrashNode crashes the shard-local base object node of the named shard.
func (s *Set) CrashNode(name string, node int) error {
	sh := s.byName[name]
	if sh == nil {
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	if node < 0 || node >= sh.Span {
		return fmt.Errorf("shard %q: node %d out of range [0,%d)", name, node, sh.Span)
	}
	return s.cluster.CrashObject(sh.Base + node)
}

// StorageSnapshot samples the whole cluster's storage breakdown.
func (s *Set) StorageSnapshot() *storagecost.Snapshot { return s.cluster.SampleStorage() }

// ShardBits returns the base-object bits a snapshot attributes to the named
// shard's object region (the per-shard storage cost of Definition 2).
func (s *Set) ShardBits(snap *storagecost.Snapshot, name string) int {
	sh := s.byName[name]
	if sh == nil {
		return 0
	}
	total := 0
	for obj := sh.Base; obj < sh.Base+sh.Span; obj++ {
		total += snap.PerObjectBits[obj]
	}
	return total
}

// Close shuts the shared cluster down.
func (s *Set) Close() { s.cluster.Close() }
