// Package shard multiplexes many named register emulations over one shared
// fault-prone cluster. Each shard owns a contiguous region of base objects
// and an independently configured register emulation (the algorithms may
// differ per shard), so a single simulated cluster serves a whole keyspace:
// keys route to shards by name or hash, and clients on different shards never
// share a lock on the live path because the scoped client handles of
// internal/dsys touch only the shard's own objects.
//
// Since the reconfiguration subsystem landed, routing is an epoch-stamped
// table (Router) instead of a static map: shards can be split, drained onto
// fresh base objects, added for dedicated keys, and retired at runtime, with
// a migration writer carrying each register's latest value across the epoch
// boundary (see internal/reconfig and DESIGN.md "Reconfiguration").
//
// Storage accounting remains exact: the cluster's snapshot attributes bits to
// base objects by global ID, and a shard's cost is the sum over its region,
// so the paper's min(f, c)·D introspection holds per shard and, by summing,
// in aggregate — including while two epochs coexist, because the draining
// region and its successors are disjoint regions of one cluster.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spacebounds/internal/dsys"
	"spacebounds/internal/metrics"
	"spacebounds/internal/register"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/trace"
	"spacebounds/internal/value"
)

// ErrUnknownShard is returned (wrapped with the offending name) by set
// operations naming a shard that does not exist.
var ErrUnknownShard = errors.New("shard: unknown shard")

// Spec describes one named shard: which register emulation backs it (a
// provider name from internal/register) and its configuration.
type Spec struct {
	// Name identifies the shard; it must be unique within a Set.
	Name string
	// Algorithm is the register provider name ("adaptive", "abd", "ecreg",
	// "safereg").
	Algorithm string
	// Config is the shard's register configuration (F, K, DataLen, Code).
	Config register.Config
}

// Shard is one register emulation bound to a region of the shared cluster.
type Shard struct {
	// Name is the shard's unique name.
	Name string
	// Algorithm is the register provider name that built Reg; reconfiguration
	// uses it to build successors with the same emulation.
	Algorithm string
	// Reg is the register emulation serving the shard.
	Reg register.Register
	// Base is the global ID of the shard's first base object.
	Base int
	// Span is the number of base objects the shard owns (its register's n).
	Span int
}

// Set is a collection of shards multiplexed over one cluster.
type Set struct {
	cluster *dsys.Cluster
	router  *Router

	bmu      sync.RWMutex        // guards batchers and nextLane
	batchers map[string]*Batcher // non-nil entries when batching is enabled
	batchCfg *BatchConfig        // nil when batching is disabled
	nextLane int

	// regions is the append-only registry of every object region ever built,
	// in creation order. Storage attribution iterates it rather than the
	// routing table: a region exists (and holds its initial states' bits)
	// from ExtendObjects on, before its route is installed, and regions are
	// disjoint forever, so summing over this list is exact at every instant.
	rmu     sync.Mutex
	regions []*Shard

	fallbackReads atomic.Int64 // dual-epoch reads answered by the old epoch

	// met, when non-nil, is the registry attached by SetMetrics; AddRegion
	// reads it to label and instrument regions created after attachment.
	met atomic.Pointer[metrics.Registry]

	// trc, when non-nil, is the tracer attached by SetTracer: operations
	// begin their root spans at this layer and the batcher records lane
	// waits into it.
	trc atomic.Pointer[trace.Tracer]
}

// batcherClientBase is the first client ID handed to batcher lanes. Real
// clients use small IDs; starting the lanes this high keeps the lanes'
// timestamp client components collision-free.
const batcherClientBase = 1 << 30

// buildShard constructs the register and initial states for one spec.
func buildShard(spec Spec) (*Shard, []dsys.State, error) {
	if spec.Name == "" {
		return nil, nil, fmt.Errorf("shard: shard with empty name")
	}
	reg, err := register.NewByName(spec.Algorithm, spec.Config)
	if err != nil {
		return nil, nil, fmt.Errorf("shard %q: %w", spec.Name, err)
	}
	init, err := reg.InitialStates(value.Zero(reg.Config().DataLen))
	if err != nil {
		return nil, nil, fmt.Errorf("shard %q: initial states: %w", spec.Name, err)
	}
	return &Shard{Name: spec.Name, Algorithm: spec.Algorithm, Reg: reg, Span: len(init)}, init, nil
}

// New builds the registers named by specs, concatenates their initial base
// object states into one cluster, and returns the shard set. The cluster
// defaults to live mode (the set exists for throughput); pass dsys options to
// override. Each shard's initial value is the zero value of its size.
func New(specs []Spec, opts ...dsys.Option) (*Set, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: empty spec list")
	}
	var states []dsys.State
	var shards []*Shard
	seen := make(map[string]bool, len(specs))
	maxDataBits := 0
	for _, spec := range specs {
		if seen[spec.Name] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", spec.Name)
		}
		sh, init, err := buildShard(spec)
		if err != nil {
			return nil, err
		}
		seen[spec.Name] = true
		sh.Base = len(states)
		states = append(states, init...)
		shards = append(shards, sh)
		if d := sh.Reg.Config().DataBits(); d > maxDataBits {
			maxDataBits = d
		}
	}
	all := append([]dsys.Option{dsys.WithLiveMode(), dsys.WithDataBits(maxDataBits)}, opts...)
	s := &Set{router: newRouter(shards), regions: shards}
	s.cluster = dsys.NewCluster(states, all...)
	return s, nil
}

// NewRemote builds the client side of a sharded deployment: the same
// registers and routing as New, but every quorum round is delivered by inv —
// a transport reaching the processes that actually host the base objects —
// instead of a local engine. Both sides must expand the same specs in the
// same order so the shards' global base offsets agree. Closing the set closes
// inv if it implements io.Closer.
func NewRemote(specs []Spec, inv dsys.RoundInvoker) (*Set, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: empty spec list")
	}
	var shards []*Shard
	total := 0
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if seen[spec.Name] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", spec.Name)
		}
		sh, init, err := buildShard(spec)
		if err != nil {
			return nil, err
		}
		seen[spec.Name] = true
		sh.Base = total
		total += len(init) // states live remotely; only the span matters here
		shards = append(shards, sh)
	}
	s := &Set{router: newRouter(shards), regions: shards}
	s.cluster = dsys.NewRemoteCluster(total, inv)
	return s, nil
}

// Cluster returns the shared cluster.
func (s *Set) Cluster() *dsys.Cluster { return s.cluster }

// Router returns the set's routing table.
func (s *Set) Router() *Router { return s.router }

// AddRegion builds the register named by spec, extends the live cluster with
// its initial base-object states, and returns the new shard. The shard is not
// routed yet — reconfiguration moves install it into the table (as a split
// successor, a drain replacement, or a dedicated route). When batching is
// enabled the new shard gets its own batcher.
func (s *Set) AddRegion(spec Spec) (*Shard, error) {
	if s.router.RouteOf(spec.Name) != nil {
		return nil, fmt.Errorf("shard: shard name %q already exists", spec.Name)
	}
	sh, init, err := buildShard(spec)
	if err != nil {
		return nil, err
	}
	base, err := s.cluster.ExtendObjects(init)
	if err != nil {
		return nil, err
	}
	sh.Base = base
	s.rmu.Lock()
	s.regions = append(s.regions, sh)
	s.rmu.Unlock()
	reg := s.met.Load()
	if reg != nil {
		s.cluster.LabelRegion(sh.Base, sh.Name)
	}
	s.cluster.TraceRegion(sh.Base, sh.Name)
	s.bmu.Lock()
	if s.batchCfg != nil {
		b := newBatcher(s, sh, *s.batchCfg, batcherClientBase+2*s.nextLane)
		s.nextLane++
		if reg != nil {
			b.setMetrics(reg, sh.Name)
		}
		s.batchers[sh.Name] = b
	}
	s.bmu.Unlock()
	return sh, nil
}

// RetireShard marks the named route retired and decommissions its object
// region. The caller (the reconfiguration executor) must have drained it.
func (s *Set) RetireShard(name string) error {
	e := s.router.RouteOf(name)
	if e == nil {
		return fmt.Errorf("%w %q", ErrUnknownShard, name)
	}
	s.router.MarkRetired(name)
	return s.cluster.RetireObjects(e.Shard().Base, e.Shard().Span)
}

// Shards returns the non-retired shards in installation order.
func (s *Set) Shards() []*Shard { return s.router.Shards() }

// Shard returns the shard with the given name, or nil. Retired shards are
// still returned (their regions report zero storage).
func (s *Set) Shard(name string) *Shard {
	if e := s.router.RouteOf(name); e != nil {
		return e.Shard()
	}
	return nil
}

// Lineage returns the migration ancestry of the named shard, oldest first.
func (s *Set) Lineage(name string) []string { return s.router.Lineage(name) }

// Region returns the built region with the given name, routed or not, or nil.
// Between a migration's grow and flip steps a successor region exists without
// a route; resuming an interrupted move needs to find it again.
func (s *Set) Region(name string) *Shard {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	for i := len(s.regions) - 1; i >= 0; i-- {
		if s.regions[i].Name == name {
			return s.regions[i]
		}
	}
	return nil
}

// FallbackReads returns how many dual-epoch reads were answered by the old
// epoch (the successor's register was still unwritten).
func (s *Set) FallbackReads() int64 { return s.fallbackReads.Load() }

// ForKey routes a key to a shard: an exact shard name wins, any other key
// hashes (FNV-1a) onto the original shard list and descends through any
// splits. Routing is deterministic across processes and runs; for a table
// that has never been reconfigured it is exactly the static FNV map of PR 1.
func (s *Set) ForKey(key string) *Shard { return s.router.ForKey(key) }

// Run executes fn as the given client scoped to the shard's object region.
// On the live path fn runs inline in the caller's goroutine.
func (s *Set) Run(client int, sh *Shard, fn func(h *dsys.ClientHandle) error) error {
	return s.cluster.RunScoped(client, sh.Base, sh.Span, fn)
}

// EnableBatching installs a group-commit Batcher on every shard: from then
// on, concurrent Write/Read calls on a shard coalesce into shared quorum
// rounds. It must be called before the set serves operations (it is not safe
// to call concurrently with Write or Read). Shards added later by
// reconfiguration get batchers automatically.
func (s *Set) EnableBatching(cfg BatchConfig) {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	s.batchCfg = &cfg
	s.batchers = make(map[string]*Batcher)
	reg := s.met.Load()
	for _, sh := range s.router.Shards() {
		b := newBatcher(s, sh, cfg, batcherClientBase+2*s.nextLane)
		s.nextLane++
		if reg != nil {
			b.setMetrics(reg, sh.Name)
		}
		s.batchers[sh.Name] = b
	}
}

// Batcher returns the named shard's batcher, or nil when batching is off.
func (s *Set) Batcher(name string) *Batcher {
	s.bmu.RLock()
	defer s.bmu.RUnlock()
	return s.batchers[name]
}

// BatchStats sums the batcher counters across all shards; zero when batching
// is disabled.
func (s *Set) BatchStats() BatcherStats {
	s.bmu.RLock()
	defer s.bmu.RUnlock()
	var total BatcherStats
	for _, b := range s.batchers {
		st := b.Stats()
		total.Writes += st.Writes
		total.Reads += st.Reads
		total.WriteRounds += st.WriteRounds
		total.ReadRounds += st.ReadRounds
	}
	return total
}

// WriteValue performs a register write of v on the given shard, through the
// shard's batcher when batching is enabled (the physical round then runs
// under the batcher lane's client ID rather than the caller's). It addresses
// the shard directly, bypassing the routing table — use Write for routed,
// reconfiguration-safe access. With a tracer attached it is a root-span
// entry point: a sampled write's batch wait, quorum rounds, and node-side
// stages all hang under the span opened here.
func (s *Set) WriteValue(client int, sh *Shard, v value.Value) error {
	sp := s.beginOp(sh, "write")
	err := s.writeValue(client, sh, v, sp.Context())
	sp.Done()
	return err
}

// writeValue is WriteValue under an already-decided trace context.
func (s *Set) writeValue(client int, sh *Shard, v value.Value, tc trace.Context) error {
	if b := s.Batcher(sh.Name); b != nil {
		return b.writeTraced(v, tc)
	}
	return s.runTraced(client, sh, tc, func(h *dsys.ClientHandle) error {
		return sh.Reg.Write(h, v)
	})
}

// ReadValue performs a register read on the given shard, through the shard's
// batcher when batching is enabled. Like WriteValue it bypasses the routing
// table and is a root-span entry point when a tracer is attached.
func (s *Set) ReadValue(client int, sh *Shard) (value.Value, error) {
	sp := s.beginOp(sh, "read")
	got, err := s.readValue(client, sh, sp.Context())
	sp.Done()
	return got, err
}

// readValue is ReadValue under an already-decided trace context.
func (s *Set) readValue(client int, sh *Shard, tc trace.Context) (value.Value, error) {
	if b := s.Batcher(sh.Name); b != nil {
		return b.readTraced(tc)
	}
	var got value.Value
	err := s.runTraced(client, sh, tc, func(h *dsys.ClientHandle) error {
		var err error
		got, err = sh.Reg.Read(h)
		return err
	})
	return got, err
}

// AcquireWrite routes key and pins the target shard for a write, blocking
// while the target is a still-seeding migration successor. Live mode only.
func (s *Set) AcquireWrite(client int, key string) (*Route, error) {
	return s.router.AwaitAcquireWrite(client, key)
}

// ReleaseWrite unpins a write acquisition.
func (s *Set) ReleaseWrite(ref *Route, client int) { s.router.ReleaseWrite(ref, client) }

// WriteRef performs the write against an acquired route, through the shard's
// batcher when one is installed.
func (s *Set) WriteRef(client int, ref *Route, v value.Value) error {
	return s.WriteValue(client, ref.Shard(), v)
}

// AcquireRead routes key and pins the target (plus its migration predecessor
// during a migration) for a read.
func (s *Set) AcquireRead(client int, key string) (ref, fb *Route, err error) {
	return s.router.AcquireRead(client, key)
}

// ReleaseRead unpins a read acquisition.
func (s *Set) ReleaseRead(ref, fb *Route, client int) { s.router.ReleaseRead(ref, fb, client) }

// ReadRef performs the read against an acquired route. With a fallback route
// (migration in progress) it is a dual-epoch read — see ReadRouted, the
// shared implementation — bypassing the batcher, whose group commit does not
// carry timestamps.
func (s *Set) ReadRef(client int, ref, fb *Route) (value.Value, error) {
	v, _, err := s.ReadRefFell(client, ref, fb)
	return v, err
}

// ReadRefFell is ReadRef, additionally reporting whether the old epoch
// answered the read. History recording needs this: a fallback-answered read
// observed the predecessor's register and must be recorded in the
// predecessor's history, which matters for merges, where the predecessor on
// the key's path may be a pruned branch that never joins the successor's
// stitched lineage.
func (s *Set) ReadRefFell(client int, ref, fb *Route) (value.Value, bool, error) {
	sp := s.beginOp(ref.Shard(), "read")
	tc := sp.Context()
	if fb == nil {
		v, err := s.readValue(client, ref.Shard(), tc)
		sp.Done()
		return v, false, err
	}
	var got value.Value
	var fell bool
	err := s.cluster.RunScoped(client, 0, s.cluster.N(), func(h *dsys.ClientHandle) error {
		if tc.Sampled() {
			h = h.WithContext(trace.NewContext(context.Background(), tc))
		}
		var err error
		got, fell, err = ReadRouted(h, ref, fb)
		return err
	})
	if fell {
		s.fallbackReads.Add(1)
	}
	sp.Done()
	return got, fell, err
}

// ReadRouted performs a routed read through a whole-cluster handle (live
// Set.ReadRef and the controlled-mode simulator clients share it). Without a
// fallback it is a plain register read. With one — the route is a seeding
// migration successor — it is the dual-epoch read: the successor's register
// is read with its timestamp, and a zero timestamp (no write has reached the
// new epoch yet) falls back to the predecessor's register, so the higher
// (epoch, timestamp) wins. A successor register that cannot report
// timestamps is answered by the predecessor outright: during seeding the
// predecessor is authoritative, and reconfiguration refuses to migrate such
// registers anyway, so the branch is purely defensive. fellBack reports that
// the old epoch answered.
func ReadRouted(h *dsys.ClientHandle, ref, fb *Route) (v value.Value, fellBack bool, err error) {
	sh := ref.Shard()
	sub, err := h.Sub(sh.Base, sh.Span)
	if err != nil {
		return value.Value{}, false, err
	}
	if fb == nil {
		v, err = sh.Reg.Read(sub)
		return v, false, err
	}
	if tr, ok := sh.Reg.(register.TimestampedReader); ok {
		v, ts, err := tr.ReadTimestamped(sub)
		if err != nil {
			return value.Value{}, false, err
		}
		if ts != register.ZeroTS {
			return v, false, nil
		}
	}
	fsh := fb.Shard()
	fsub, err := h.Sub(fsh.Base, fsh.Span)
	if err != nil {
		return value.Value{}, false, err
	}
	v, err = fsh.Reg.Read(fsub)
	return v, true, err
}

// Write performs a routed register write of v on the shard key resolves to,
// pinning the route so a concurrent reconfiguration drains it correctly.
func (s *Set) Write(client int, key string, v value.Value) error {
	ref, err := s.AcquireWrite(client, key)
	if err != nil {
		return err
	}
	defer s.ReleaseWrite(ref, client)
	return s.WriteRef(client, ref, v)
}

// Read performs a routed register read on the shard key resolves to,
// consulting both epochs while that shard is migrating.
func (s *Set) Read(client int, key string) (value.Value, error) {
	ref, fb, err := s.AcquireRead(client, key)
	if err != nil {
		return value.Value{}, err
	}
	defer s.ReleaseRead(ref, fb, client)
	return s.ReadRef(client, ref, fb)
}

// CrashNode crashes the shard-local base object node of the named shard.
func (s *Set) CrashNode(name string, node int) error {
	sh := s.Shard(name)
	if sh == nil {
		return fmt.Errorf("%w %q", ErrUnknownShard, name)
	}
	if node < 0 || node >= sh.Span {
		return fmt.Errorf("shard %q: node %d out of range [0,%d)", name, node, sh.Span)
	}
	return s.cluster.CrashObject(sh.Base + node)
}

// StorageSnapshot samples the whole cluster's storage breakdown.
func (s *Set) StorageSnapshot() *storagecost.Snapshot { return s.cluster.SampleStorage() }

// ShardBits returns the base-object bits a snapshot attributes to the named
// shard's object region (the per-shard storage cost of Definition 2). Retired
// regions report zero: their bits left the system with the nodes.
func (s *Set) ShardBits(snap *storagecost.Snapshot, name string) int {
	sh := s.Shard(name)
	if sh == nil {
		return 0
	}
	total := 0
	for obj := sh.Base; obj < sh.Base+sh.Span; obj++ {
		total += snap.PerObjectBits[obj]
	}
	return total
}

// StorageBreakdown samples storage once and attributes the base-object bits
// to shards from that single sample. It iterates every route ever installed —
// regions are disjoint for the life of the cluster — so the per-shard values
// always sum to the sample's total, even while a reconfiguration is mid-
// flight (a retiring region's last bits are attributed to its old name).
// Fully retired shards with zero bits are omitted.
func (s *Set) StorageBreakdown() (snap *storagecost.Snapshot, perShard map[string]int) {
	snap = s.StorageSnapshot()
	s.rmu.Lock()
	regions := make([]*Shard, len(s.regions))
	copy(regions, s.regions)
	s.rmu.Unlock()
	perShard = make(map[string]int, len(regions))
	for _, sh := range regions {
		bits := 0
		for obj := sh.Base; obj < sh.Base+sh.Span; obj++ {
			bits += snap.PerObjectBits[obj]
		}
		e := s.router.RouteOf(sh.Name)
		if bits > 0 || e == nil || e.State() != RouteRetired {
			perShard[sh.Name] = bits
		}
	}
	return snap, perShard
}

// DurabilityBreakdown samples storage once and attributes the durable
// (WAL log + snapshot) bits to shards the same way StorageBreakdown
// attributes base-object bits. Framing, move-ledger, and snapshot-overhead
// bytes — charged by the journal to a pseudo-object outside every region —
// come back in ledger, so total == sum(perShard) + ledger exactly. All zeros
// when no journal is attached.
func (s *Set) DurabilityBreakdown() (total int, perShard map[string]int, ledger int) {
	snap := s.StorageSnapshot()
	s.rmu.Lock()
	regions := make([]*Shard, len(s.regions))
	copy(regions, s.regions)
	s.rmu.Unlock()
	perShard = make(map[string]int, len(regions))
	attributed := 0
	for _, sh := range regions {
		bits := 0
		for obj := sh.Base; obj < sh.Base+sh.Span; obj++ {
			bits += snap.PerObjectDurableBits[obj]
		}
		attributed += bits
		e := s.router.RouteOf(sh.Name)
		if bits > 0 || e == nil || e.State() != RouteRetired {
			perShard[sh.Name] = bits
		}
	}
	total = snap.DurableBits()
	ledger = total - attributed
	return total, perShard, ledger
}

// InitialStateOf builds a fresh initial state for the base object with the
// given global ID, using its region's register emulation. Recovery uses it
// as the floor a crashed object's durable records replay on top of.
func (s *Set) InitialStateOf(id int) (dsys.State, error) {
	s.rmu.Lock()
	var owner *Shard
	for _, sh := range s.regions {
		if id >= sh.Base && id < sh.Base+sh.Span {
			owner = sh
			break
		}
	}
	s.rmu.Unlock()
	if owner == nil {
		return nil, fmt.Errorf("shard: no region owns base object %d", id)
	}
	init, err := owner.Reg.InitialStates(value.Zero(owner.Reg.Config().DataLen))
	if err != nil {
		return nil, fmt.Errorf("shard %q: initial states: %w", owner.Name, err)
	}
	return init[id-owner.Base], nil
}

// Close shuts the routing table and the shared cluster down.
func (s *Set) Close() {
	s.router.close()
	s.cluster.Close()
}
