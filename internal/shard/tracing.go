package shard

import (
	"context"

	"spacebounds/internal/dsys"
	"spacebounds/internal/trace"
)

// SetTracer attaches a tracer to the set (nil detaches): WriteValue/ReadValue
// and the routed read path begin root spans, batch lanes record batch-wait
// spans, and the underlying cluster records quorum-round spans labeled by
// shard name. Regions added later by AddRegion are labeled as they appear.
// Like SetMetrics, attach before serving operations.
func (s *Set) SetTracer(tr *trace.Tracer) {
	s.trc.Store(tr)
	s.cluster.SetTracer(tr)
	if tr == nil {
		return
	}
	s.rmu.Lock()
	regions := append([]*Shard(nil), s.regions...)
	s.rmu.Unlock()
	for _, sh := range regions {
		s.cluster.TraceRegion(sh.Base, sh.Name)
	}
}

// Tracer returns the attached tracer (nil when none).
func (s *Set) Tracer() *trace.Tracer { return s.trc.Load() }

// beginOp opens the root span of one client operation on a shard when a
// tracer is attached and sampling selects the operation. The returned Pending
// is inert otherwise, so untraced call sites pay one pointer load.
func (s *Set) beginOp(sh *Shard, kind string) trace.Pending {
	tr := s.trc.Load()
	if tr == nil {
		return trace.Pending{}
	}
	bc := tr.Begin()
	if !bc.Sampled() {
		return trace.Pending{}
	}
	sp := tr.Start(bc, trace.StageOp)
	sp.Span.Shard = sh.Name
	sp.Span.Note = kind
	return sp
}

// runTraced is Set.Run with a trace context: when tc is sampled the client
// handle is rebound so the register's quorum rounds parent under it.
func (s *Set) runTraced(client int, sh *Shard, tc trace.Context, fn func(h *dsys.ClientHandle) error) error {
	return s.cluster.RunScoped(client, sh.Base, sh.Span, func(h *dsys.ClientHandle) error {
		if tc.Sampled() {
			h = h.WithContext(trace.NewContext(context.Background(), tc))
		}
		return fn(h)
	})
}
