package workload_test

import (
	"fmt"
	"testing"
	"time"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	"spacebounds/internal/shard"
	"spacebounds/internal/workload"
)

// newBatchedSet builds a shard set on the batched quorum engine: node-level
// RMW coalescing under a small service latency plus per-shard group commit.
func newBatchedSet(t *testing.T, shards int) *shard.Set {
	t.Helper()
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: 64},
		})
	}
	set, err := shard.New(specs, dsys.WithLiveLatency(50*time.Microsecond), dsys.WithLiveBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	set.EnableBatching(shard.BatchConfig{MaxSize: 8})
	t.Cleanup(set.Close)
	return set
}

func newSet(t *testing.T, shards int) *shard.Set {
	t.Helper()
	specs := make([]shard.Spec, 0, shards)
	for i := 0; i < shards; i++ {
		specs = append(specs, shard.Spec{
			Name:      fmt.Sprintf("s%d", i),
			Algorithm: "adaptive",
			Config:    register.Config{F: 1, K: 2, DataLen: 64},
		})
	}
	set, err := shard.New(specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	return set
}

func TestShardedSpecValidate(t *testing.T) {
	if _, err := (workload.ShardedSpec{Clients: -1}).Validate(); err == nil {
		t.Fatal("negative client count accepted")
	}
	if _, err := (workload.ShardedSpec{ReadFraction: 1.5}).Validate(); err == nil {
		t.Fatal("read fraction > 1 accepted")
	}
	s, err := (workload.ShardedSpec{Clients: 1}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Keys == 0 {
		t.Fatal("Keys default not applied")
	}
}

// TestRunShardedRegularity drives concurrent clients over several shards and
// checks every per-shard history against strong regularity.
func TestRunShardedRegularity(t *testing.T) {
	set := newSet(t, 4)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:       6,
		OpsPerClient:  20,
		ReadFraction:  0.4,
		Keys:          12,
		Seed:          7,
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors: %d write, %d read", res.WriteErrors, res.ReadErrors)
	}
	if got := res.CompletedWrites + res.CompletedReads; got != 6*20 {
		t.Fatalf("completed %d ops, want %d", got, 6*20)
	}
	if err := res.CheckRegularity(); err != nil {
		t.Fatalf("per-shard regularity violated: %v", err)
	}
}

// TestRunShardedBatchedRegularity is the batched-engine acceptance check:
// group commit plus node-level coalescing must still produce strongly
// regular per-shard histories, both under a closed loop and under open-loop
// arrivals that pile up concurrent operations per shard.
func TestRunShardedBatchedRegularity(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec workload.ShardedSpec
	}{
		{"closed-loop", workload.ShardedSpec{
			Clients: 6, OpsPerClient: 20, ReadFraction: 0.4, Keys: 12, Seed: 7, RecordHistory: true,
		}},
		{"open-loop", workload.ShardedSpec{
			Clients: 4, OpsPerClient: 25, ReadFraction: 0.4, Keys: 12, Seed: 11,
			RecordHistory: true, ArrivalRate: 4000,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			set := newBatchedSet(t, 4)
			res, err := workload.RunSharded(set, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.WriteErrors != 0 || res.ReadErrors != 0 {
				t.Fatalf("errors: %d write, %d read", res.WriteErrors, res.ReadErrors)
			}
			want := tc.spec.Clients * tc.spec.OpsPerClient
			if got := res.CompletedWrites + res.CompletedReads; got != want {
				t.Fatalf("completed %d ops, want %d", got, want)
			}
			if err := res.CheckRegularity(); err != nil {
				t.Fatalf("per-shard regularity violated under batching: %v", err)
			}
			stats := set.BatchStats()
			if stats.Writes+stats.Reads != want {
				t.Fatalf("batcher carried %d ops, want %d", stats.Writes+stats.Reads, want)
			}
			if stats.WriteRounds >= stats.Writes {
				t.Logf("note: no write coalescing this run (%d rounds for %d writes)", stats.WriteRounds, stats.Writes)
			}
		})
	}
}

// TestRunShardedOpenLoopUniqueValues checks the open-loop dispatcher hands
// every in-flight operation its own virtual client so written values stay
// globally distinct (a collision would show up as a regularity violation or
// a duplicated value in the history).
func TestRunShardedOpenLoopUniqueValues(t *testing.T) {
	set := newSet(t, 2)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients: 3, OpsPerClient: 30, Keys: 8, Seed: 5, RecordHistory: true, ArrivalRate: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]string)
	for name, h := range res.Histories {
		for _, op := range h.Writes() {
			fp := op.Value.Fingerprint()
			if prev, dup := seen[fp]; dup {
				t.Fatalf("written value duplicated across %s and %s", prev, name)
			}
			seen[fp] = name
		}
	}
	if err := res.CheckRegularity(); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedStorageSum checks the aggregate storage cost equals the sum
// of the per-shard costs after a multi-shard run.
func TestRunShardedStorageSum(t *testing.T) {
	set := newSet(t, 3)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients: 4, OpsPerClient: 10, Keys: 9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for name, bits := range res.PerShardBits {
		if bits <= 0 {
			t.Fatalf("shard %s reports %d bits", name, bits)
		}
		sum += bits
	}
	if sum != res.FinalSnapshot.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, res.FinalSnapshot.BaseObjectBits)
	}
}

// TestRunShardedZipfSkew checks that a skewed workload concentrates ops on
// the shard owning the hottest keys while a uniform one spreads them.
func TestRunShardedZipfSkew(t *testing.T) {
	set := newSet(t, 4)
	skewed, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients: 4, OpsPerClient: 50, Keys: 32, ZipfS: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := set.ForKey(workload.KeyName(0)).Name
	total, hottest := 0, skewed.PerShardOps[hot]
	for _, n := range skewed.PerShardOps {
		total += n
	}
	if total != 4*50 {
		t.Fatalf("ops across shards sum to %d, want %d", total, 4*50)
	}
	// Under s=2.5 Zipf, key-0's shard must dominate: more than half of all ops.
	if hottest*2 <= total {
		t.Fatalf("skewed run not skewed: hottest shard %q got %d of %d ops (%v)", hot, hottest, total, skewed.PerShardOps)
	}

	uniform, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients: 4, OpsPerClient: 50, Keys: 32, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range uniform.PerShardOps {
		if n == 0 {
			t.Fatalf("uniform run left shard %s idle: %v", name, uniform.PerShardOps)
		}
	}
}

// TestRunShardedWithReconfigSchedule runs an open-loop workload with a split
// and a drain scheduled mid-run: zero failed operations, both moves applied,
// and the stitched per-lineage histories strongly regular end to end.
func TestRunShardedWithReconfigSchedule(t *testing.T) {
	set := newSet(t, 2)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:       4,
		OpsPerClient:  60,
		ReadFraction:  0.3,
		Keys:          8,
		Seed:          7,
		RecordHistory: true,
		Reconfig: []workload.ReconfigMove{
			{AfterOps: 40, Split: "s0"},
			{AfterOps: 120, Drain: "s1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteErrors+res.ReadErrors != 0 {
		t.Fatalf("%d writes / %d reads failed during live reconfiguration", res.WriteErrors, res.ReadErrors)
	}
	if len(res.Reconfigs) != 2 {
		t.Fatalf("applied %d moves, want 2", len(res.Reconfigs))
	}
	for _, ar := range res.Reconfigs {
		if ar.Err != "" {
			t.Fatalf("move %+v failed: %s", ar.Move, ar.Err)
		}
	}
	if res.ReconfigStats.Splits != 1 || res.ReconfigStats.Drains != 1 {
		t.Fatalf("reconfig stats = %+v", res.ReconfigStats)
	}
	// The split's successors appear in the final shard attribution.
	if _, ok := res.PerShardBits["s0/0"]; !ok {
		t.Fatalf("successor missing from PerShardBits: %v", res.PerShardBits)
	}
	// Stitched histories — ancestors merged into successors — must be
	// strongly regular across the epoch boundary.
	if err := res.CheckRegularity(); err != nil {
		t.Fatalf("stitched regularity: %v", err)
	}
	for name, h := range res.Histories {
		if lineage := set.Lineage(name); len(lineage) > 1 && len(h.Ops) == 0 {
			t.Fatalf("stitched history of %s is empty", name)
		}
	}
	// Storage still sums after the topology change.
	sum := 0
	for _, bits := range res.PerShardBits {
		sum += bits
	}
	if sum != res.FinalSnapshot.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, res.FinalSnapshot.BaseObjectBits)
	}
}

// TestRunShardedReconfigValidation rejects ambiguous reconfig moves.
func TestRunShardedReconfigValidation(t *testing.T) {
	set := newSet(t, 1)
	_, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients: 1, OpsPerClient: 1,
		Reconfig: []workload.ReconfigMove{{Split: "s0", Drain: "s0"}},
	})
	if err == nil {
		t.Fatal("ambiguous reconfig move accepted")
	}
}

// TestReconfigAbortDoesNotSkewWindows is the regression test for the
// before/after throughput-window miscount: a move that aborts mid-schedule
// must report no rate windows at all, and must not advance the baseline the
// next move's before-window is measured from. Before the fix, the aborted
// move reported an after-rate as if it had migrated, and the following move's
// before-window started at the abort.
func TestReconfigAbortDoesNotSkewWindows(t *testing.T) {
	set := newSet(t, 2)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:      4,
		OpsPerClient: 60,
		ReadFraction: 0.3,
		Keys:         8,
		Seed:         11,
		Reconfig: []workload.ReconfigMove{
			{AfterOps: 30, Split: "s0"},
			{AfterOps: 60, Drain: "no-such-shard"}, // injected abort
			{AfterOps: 90, Drain: "s1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reconfigs) != 3 {
		t.Fatalf("applied %d moves, want 3", len(res.Reconfigs))
	}
	good, bad, tail := res.Reconfigs[0], res.Reconfigs[1], res.Reconfigs[2]
	if good.Err != "" || tail.Err != "" {
		t.Fatalf("control moves failed: %q / %q", good.Err, tail.Err)
	}
	if bad.Err == "" {
		t.Fatal("move on an unknown shard did not fail")
	}
	// The regression: before the fix, a failed move reported a before-rate
	// (measured from the run start) and an after-rate (as if it had
	// migrated). Window *positivity* for the successful moves is only
	// asserted where it is deterministic — a move that completes after the
	// workload has already ended legitimately reports no after-window.
	if bad.OpsPerSecBefore != 0 || bad.OpsPerSecAfter != 0 {
		t.Fatalf("failed move reports throughput windows: before=%v after=%v",
			bad.OpsPerSecBefore, bad.OpsPerSecAfter)
	}
	if good.OpsPerSecBefore <= 0 {
		t.Fatalf("successful move lost its before-window: %+v", good)
	}
	if res.ReconfigStats.Splits != 1 || res.ReconfigStats.Drains != 1 || res.ReconfigStats.Aborts != 1 {
		t.Fatalf("reconfig stats = %+v", res.ReconfigStats)
	}
}

// TestRunShardedWithMergeSchedule merges two shards under live load: zero
// failed operations, the merged shard serves both sources' keys, and the
// stitched winner-lineage history is strongly regular.
func TestRunShardedWithMergeSchedule(t *testing.T) {
	set := newSet(t, 2)
	res, err := workload.RunSharded(set, workload.ShardedSpec{
		Clients:       4,
		OpsPerClient:  60,
		ReadFraction:  0.3,
		Keys:          8,
		Seed:          13,
		RecordHistory: true,
		Reconfig: []workload.ReconfigMove{
			{AfterOps: 80, Merge: "s0", MergeWith: "s1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteErrors+res.ReadErrors != 0 {
		t.Fatalf("%d writes / %d reads failed during the live merge", res.WriteErrors, res.ReadErrors)
	}
	if len(res.Reconfigs) != 1 || res.Reconfigs[0].Err != "" {
		t.Fatalf("merge did not apply cleanly: %+v", res.Reconfigs)
	}
	if res.ReconfigStats.Merges != 1 {
		t.Fatalf("reconfig stats = %+v", res.ReconfigStats)
	}
	if _, ok := res.PerShardBits["s0+s1"]; !ok {
		t.Fatalf("merged shard missing from PerShardBits: %v", res.PerShardBits)
	}
	if err := res.CheckRegularity(); err != nil {
		t.Fatalf("stitched regularity across the merge: %v", err)
	}
	sum := 0
	for _, bits := range res.PerShardBits {
		sum += bits
	}
	if sum != res.FinalSnapshot.BaseObjectBits {
		t.Fatalf("per-shard bits sum to %d, snapshot says %d", sum, res.FinalSnapshot.BaseObjectBits)
	}
}
