// Package workload drives register emulations with configurable workloads on
// a simulated cluster, records operation histories for consistency checking,
// and reports the storage costs the experiments and benchmarks analyse.
//
// A workload is a set of writer clients (each performing a sequence of writes
// of distinct values) and reader clients (each performing a sequence of
// reads), scheduled by a pluggable policy over the fault-prone shared memory
// of internal/dsys. Because every writer has at most one outstanding write,
// the paper's write-concurrency level c equals the number of writers.
package workload

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// Spec describes a workload.
type Spec struct {
	// Writers is the number of writer clients; it equals the paper's write
	// concurrency level c because each writer has one outstanding write at a
	// time.
	Writers int
	// WritesPerWriter is the number of writes each writer performs.
	WritesPerWriter int
	// Readers is the number of reader clients.
	Readers int
	// ReadsPerReader is the number of reads each reader performs.
	ReadsPerReader int
	// ReadersAfterWrites makes readers start only after all writers have
	// finished; FW-terminating registers guarantee read completion only in
	// runs with finitely many writes, so consistency experiments that want
	// every read to complete use this.
	ReadersAfterWrites bool
	// Policy schedules the run; nil means dsys.FairPolicy.
	Policy dsys.Policy
	// Live switches to live (uncontrolled) scheduling.
	Live bool
	// MaxSteps bounds controlled-mode scheduling decisions (0 = unbounded).
	MaxSteps int
	// CrashObjects lists base objects crashed before the run starts.
	CrashObjects []int
	// KeepSeries retains the full storage-cost time series.
	KeepSeries bool
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Writers < 0 || s.Readers < 0 || s.WritesPerWriter < 0 || s.ReadsPerReader < 0 {
		return fmt.Errorf("workload: negative counts in spec %+v", s)
	}
	return nil
}

// Result is the outcome of a workload run.
type Result struct {
	// History is the recorded operation history (for consistency checking).
	History *history.History
	// MaxTotalBits is the maximum storage cost observed anywhere (base
	// objects + clients + channel), per Definition 2.
	MaxTotalBits int
	// MaxBaseObjectBits is the maximum storage observed across base objects
	// only — the quantity the paper's algorithm bounds (Theorem 2) refer to.
	MaxBaseObjectBits int
	// QuiescentBaseObjectBits is the base-object storage after the run
	// quiesced (all operations done and all leftover RMWs applied).
	QuiescentBaseObjectBits int
	// Series is the storage-cost time series (empty unless KeepSeries).
	Series []int
	// Steps is the number of scheduling decisions taken (controlled mode).
	Steps int
	// WriteErrors / ReadErrors count failed operations (e.g. reads that
	// exhausted their retry budget).
	WriteErrors int
	ReadErrors  int
	// CompletedWrites / CompletedReads count successful operations.
	CompletedWrites int
	CompletedReads  int
	// IdleReason reports how the run ended.
	IdleReason dsys.IdleReason
}

// WriterValue returns the deterministic distinct value written by the given
// writer for its seq-th write; checkers rely on value distinctness.
func WriterValue(cfg register.Config, writer, seq int) value.Value {
	return value.Sequenced(writer, seq, cfg.DataLen)
}

// Run executes the workload against the register and returns the result.
func Run(reg register.Register, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := reg.Config()
	v0 := value.Zero(cfg.DataLen)
	states, err := reg.InitialStates(v0)
	if err != nil {
		return nil, fmt.Errorf("workload: initial states: %w", err)
	}
	opts := []dsys.Option{dsys.WithDataBits(cfg.DataBits())}
	if spec.Policy != nil {
		opts = append(opts, dsys.WithPolicy(spec.Policy))
	}
	if spec.Live {
		opts = append(opts, dsys.WithLiveMode())
	}
	if spec.MaxSteps > 0 {
		opts = append(opts, dsys.WithMaxSteps(spec.MaxSteps))
	}
	if spec.KeepSeries {
		opts = append(opts, dsys.WithSeries())
	}
	cluster := dsys.NewCluster(states, opts...)
	defer cluster.Close()
	for _, obj := range spec.CrashObjects {
		if err := cluster.CrashObject(obj); err != nil {
			return nil, err
		}
	}

	rec := history.NewRecorder()
	res := &Result{}

	writerTasks := spawnWriters(cluster, reg, rec, spec)
	var readerTasks []*dsys.TaskHandle
	if !spec.ReadersAfterWrites {
		readerTasks = spawnReaders(cluster, reg, rec, spec)
	}
	cluster.Start()

	joinOrStuck(cluster, writerTasks)
	if spec.ReadersAfterWrites {
		readerTasks = spawnReaders(cluster, reg, rec, spec)
	}
	joinOrStuck(cluster, readerTasks)

	reason := cluster.WaitIdle()
	final := cluster.SampleStorage()

	res.History = rec.History(v0)
	res.IdleReason = reason
	res.Steps = cluster.Steps()
	res.QuiescentBaseObjectBits = final.BaseObjectBits
	if acct := cluster.Accountant(); acct != nil {
		res.MaxTotalBits = acct.MaxTotalBits()
		res.MaxBaseObjectBits = acct.MaxBaseObjectBits()
		res.Series = acct.Series()
	}
	res.CompletedWrites = len(completedOfKind(res.History, history.Write))
	res.CompletedReads = len(res.History.CompletedReads())
	res.WriteErrors = spec.Writers*spec.WritesPerWriter - res.CompletedWrites
	res.ReadErrors = spec.Readers*spec.ReadsPerReader - res.CompletedReads
	return res, nil
}

// completedOfKind returns the completed operations of the given kind.
func completedOfKind(h *history.History, kind history.OpKind) []*history.Op {
	var out []*history.Op
	for _, op := range h.Ops {
		if op.Kind == kind && op.Completed() {
			out = append(out, op)
		}
	}
	return out
}

// joinOrStuck waits for all tasks to finish; if the run becomes stuck first
// (a policy stall, an exhausted step budget, or an unreachable quorum), it
// closes the cluster so the blocked tasks abort with ErrHalted.
func joinOrStuck(cluster *dsys.Cluster, tasks []*dsys.TaskHandle) {
	if len(tasks) == 0 {
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		waitAll(tasks)
	}()
	stuck := make(chan struct{}, 1)
	go func() {
		if cluster.WaitIdle() == dsys.IdleStuck {
			stuck <- struct{}{}
		}
	}()
	select {
	case <-done:
	case <-stuck:
		cluster.Close()
		<-done
	}
}

// spawnWriters starts the writer tasks. Writer client IDs start at 1.
func spawnWriters(cluster *dsys.Cluster, reg register.Register, rec *history.Recorder, spec Spec) []*dsys.TaskHandle {
	cfg := reg.Config()
	tasks := make([]*dsys.TaskHandle, 0, spec.Writers)
	for w := 1; w <= spec.Writers; w++ {
		w := w
		tasks = append(tasks, cluster.Spawn(w, func(h *dsys.ClientHandle) error {
			var firstErr error
			for seq := 1; seq <= spec.WritesPerWriter; seq++ {
				v := WriterValue(cfg, w, seq)
				op := rec.BeginWrite(w, v)
				if err := reg.Write(h, v); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				rec.EndWrite(op)
			}
			return firstErr
		}))
	}
	return tasks
}

// spawnReaders starts the reader tasks. Reader client IDs start at 1001 so
// they never collide with writers.
func spawnReaders(cluster *dsys.Cluster, reg register.Register, rec *history.Recorder, spec Spec) []*dsys.TaskHandle {
	tasks := make([]*dsys.TaskHandle, 0, spec.Readers)
	for r := 1; r <= spec.Readers; r++ {
		client := 1000 + r
		tasks = append(tasks, cluster.Spawn(client, func(h *dsys.ClientHandle) error {
			var firstErr error
			for seq := 1; seq <= spec.ReadsPerReader; seq++ {
				op := rec.BeginRead(client)
				v, err := reg.Read(h)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				rec.EndRead(op, v)
			}
			return firstErr
		}))
	}
	return tasks
}

// waitAll joins tasks and counts errors.
func waitAll(tasks []*dsys.TaskHandle) int {
	errs := 0
	for _, t := range tasks {
		if err := t.Wait(); err != nil {
			errs++
		}
	}
	return errs
}
