package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spacebounds/internal/history"
	"spacebounds/internal/reconfig"
	"spacebounds/internal/shard"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
)

// ShardedSpec describes a multi-key workload over a shard set: concurrent
// clients issue reads and writes against a keyspace whose keys hash onto the
// shards, with optionally Zipf-skewed key popularity (hot keys model the
// heavy-traffic regime the ROADMAP targets; uniform keys model a balanced
// cache). Writes by one client use globally unique values so the per-shard
// histories stay checkable against the paper's consistency conditions.
type ShardedSpec struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// OpsPerClient is the number of operations each client performs.
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (0 = write-only).
	ReadFraction float64
	// Keys is the number of distinct keys ("key-0" … "key-N-1"; default 16).
	Keys int
	// ZipfS is the Zipf skew exponent; values > 1 skew key popularity toward
	// low-numbered keys, anything else means uniform. (math/rand's Zipf
	// generator requires s > 1.)
	ZipfS float64
	// Seed makes the key and read/write choices reproducible.
	Seed int64
	// RecordHistory records one operation history per shard and enables
	// CheckRegularity on the result. Histories are stitched across
	// reconfiguration epochs: a migrated shard's history is checked together
	// with its ancestors'.
	RecordHistory bool
	// ArrivalRate, when positive, switches every client from a closed loop
	// (issue, wait, issue) to an open loop: operations are dispatched at the
	// given rate in operations per second per client, without waiting for
	// earlier operations to finish. Each in-flight operation runs under its
	// own virtual client ID, so concurrent writes never share a timestamp
	// client component. Open-loop arrivals are what pile concurrent
	// operations onto a shard and give the batched quorum engine something
	// to coalesce.
	ArrivalRate float64
	// Reconfig schedules live reconfiguration moves at completed-operation
	// thresholds, so benchmarks can measure throughput through an elastic
	// resharding (e.g. a split at the half-way mark under open-loop load).
	Reconfig []ReconfigMove
}

// ReconfigMove schedules one live reconfiguration move. Exactly one of
// Split, Drain and Merge must name a shard (Merge additionally needs
// MergeWith).
type ReconfigMove struct {
	// AfterOps triggers the move once this many operations have completed.
	AfterOps int
	// Split names a shard to split into two successors.
	Split string
	// Drain names a shard to migrate onto a fresh region.
	Drain string
	// Merge and MergeWith name two shards to merge into one successor.
	Merge     string
	MergeWith string
}

func (m ReconfigMove) move() (reconfig.Move, error) {
	switch {
	case m.Split != "" && m.Drain == "" && m.Merge == "" && m.MergeWith == "":
		return reconfig.Move{Kind: reconfig.MoveSplit, Shard: m.Split}, nil
	case m.Drain != "" && m.Split == "" && m.Merge == "" && m.MergeWith == "":
		return reconfig.Move{Kind: reconfig.MoveDrain, Shard: m.Drain}, nil
	case m.Merge != "" && m.MergeWith != "" && m.Split == "" && m.Drain == "":
		return reconfig.Move{Kind: reconfig.MoveMerge, Shard: m.Merge, Shard2: m.MergeWith}, nil
	default:
		return reconfig.Move{}, fmt.Errorf("workload: reconfig move must set exactly one of Split/Drain/Merge(+MergeWith): %+v", m)
	}
}

// Validate checks the spec and fills defaults.
func (s ShardedSpec) Validate() (ShardedSpec, error) {
	if s.Clients < 0 || s.OpsPerClient < 0 || s.Keys < 0 {
		return s, fmt.Errorf("workload: negative counts in sharded spec %+v", s)
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("workload: read fraction %v outside [0,1]", s.ReadFraction)
	}
	if s.ArrivalRate < 0 {
		return s, fmt.Errorf("workload: negative arrival rate %v", s.ArrivalRate)
	}
	for _, m := range s.Reconfig {
		if _, err := m.move(); err != nil {
			return s, err
		}
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	return s, nil
}

// AppliedReconfig records one reconfiguration move applied mid-workload.
type AppliedReconfig struct {
	// Move is the scheduled move.
	Move ReconfigMove
	// Successors are the shards the move installed.
	Successors []string
	// TriggeredAtOps is the completed-op count when the move fired.
	TriggeredAtOps int
	// Took is the wall-clock duration of the migration.
	Took time.Duration
	// OpsPerSecBefore is the completed-op rate from the previous successful
	// move's completion (or the start of the run) to the trigger;
	// OpsPerSecAfter the rate from migration completion to the end of the
	// run. A healthy elastic split shows After ≥ Before: the new epoch has
	// more nodes. A move that failed migrated nothing, so it gets no windows
	// and does not advance the baseline the next move's window starts at.
	OpsPerSecBefore, OpsPerSecAfter float64
	// Err is the migration error, if any ("" on success).
	Err string

	completedAt time.Duration // since run start; for OpsPerSecAfter
	opsAtDone   int
}

// ShardedResult is the outcome of a sharded workload run.
type ShardedResult struct {
	// CompletedWrites / CompletedReads count successful operations.
	CompletedWrites int
	CompletedReads  int
	// WriteErrors / ReadErrors count failed operations.
	WriteErrors int
	ReadErrors  int
	// PerShardOps counts completed operations per shard name; skewed
	// workloads show up as imbalance here. Operations are attributed to the
	// shard they actually executed on, which during a migration can be a
	// successor of the shard the key hashed to at spec time.
	PerShardOps map[string]int
	// Histories maps shard names to their recorded operation history
	// (only when RecordHistory was set). Keys hashing to the same shard
	// share one register and therefore one history. For shards installed by
	// reconfiguration the entry is the stitched lineage history: the
	// ancestors' operations merged in, so CheckRegularity spans the epochs.
	Histories map[string]*history.History
	// FinalSnapshot is the storage breakdown after the run.
	FinalSnapshot *storagecost.Snapshot
	// PerShardBits maps shard names to their base-object bits at the end of
	// the run; the values sum to FinalSnapshot.BaseObjectBits.
	PerShardBits map[string]int
	// Reconfigs records the applied reconfiguration schedule.
	Reconfigs []AppliedReconfig
	// ReconfigStats aggregates the reconfiguration subsystem counters (zero
	// when no moves were scheduled).
	ReconfigStats reconfig.Stats
}

// CheckRegularity verifies every recorded per-shard history against strong
// regularity (the consistency condition the paper's adaptive algorithm
// guarantees). It is only meaningful when every shard runs a regular
// emulation — safe-register shards may legitimately fail it. Histories of
// reconfigured shards are stitched across epochs, so the check spans live
// migrations end to end.
func (r *ShardedResult) CheckRegularity() error {
	names := make([]string, 0, len(r.Histories))
	for name := range r.Histories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := history.CheckStrongRegularity(r.Histories[name]); err != nil {
			return fmt.Errorf("shard %q: %w", name, err)
		}
	}
	return nil
}

// KeyName returns the i-th key of the sharded workload's keyspace.
func KeyName(i int) string { return fmt.Sprintf("key-%d", i) }

// tally accumulates one logical client's results. Open-loop clients complete
// operations from many goroutines, so updates are mutex-guarded.
type tally struct {
	mu                          sync.Mutex
	writes, reads, werrs, rerrs int
	perShard                    map[string]int
}

// recorderSet lazily creates one history recorder per shard name; successors
// installed by reconfiguration mid-run get theirs on first use. All recorders
// share one logical clock: cross-epoch stitching merges histories from
// different recorders, which is only sound if an operation that returned
// before another was invoked carries the smaller timestamp regardless of
// which recorder stamped it.
type recorderSet struct {
	mu    sync.Mutex
	clock atomic.Int64
	recs  map[string]*history.Recorder
}

func (rs *recorderSet) forShard(name string) *history.Recorder {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.recs[name]
	if !ok {
		rec = history.NewRecorder()
		rec.SetClock(func() int64 { return rs.clock.Add(1) })
		rs.recs[name] = rec
	}
	return rec
}

func (rs *recorderSet) get(name string) *history.Recorder {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.recs[name]
}

// runShardedOp performs one read or write against the set and records it in
// the history recorder and the tally. The route is acquired first so the
// operation is attributed (and its history recorded) on the shard it actually
// runs on — during a migration that is the current epoch's target, and reads
// transparently consult both epochs. Writes derive a globally unique value
// from (client, seq).
func runShardedOp(set *shard.Set, recs *recorderSet, t *tally, completed *atomic.Int64, client int, key string, isRead bool, seq int) {
	if isRead {
		ref, fb, err := set.AcquireRead(client, key)
		if err != nil {
			t.mu.Lock()
			t.rerrs++
			t.mu.Unlock()
			return
		}
		// A dual-epoch read is recorded in the history of the register that
		// answered it: invocations are recorded against both epochs and the
		// loser stays incomplete (incomplete reads constrain no checker).
		// This matters for merges — a fallback read answered by the value-
		// ordering loser belongs to the pruned branch's history, not to the
		// successor's stitched lineage.
		name := ref.Shard().Name
		rec := recs.forShard(name)
		var hop, fbOp *history.Op
		var fbRec *history.Recorder
		if rec != nil {
			hop = rec.BeginRead(client)
		}
		if fb != nil && recs != nil {
			fbRec = recs.forShard(fb.Shard().Name)
			if fbRec != nil {
				fbOp = fbRec.BeginRead(client)
			}
		}
		v, fell, err := set.ReadRefFell(client, ref, fb)
		set.ReleaseRead(ref, fb, client)
		if err != nil {
			t.mu.Lock()
			t.rerrs++
			t.mu.Unlock()
			return
		}
		if fell {
			name = fb.Shard().Name
			if fbRec != nil {
				fbRec.EndRead(fbOp, v)
			}
		} else if rec != nil {
			rec.EndRead(hop, v)
		}
		completed.Add(1)
		t.mu.Lock()
		t.reads++
		t.perShard[name]++
		t.mu.Unlock()
		return
	}
	ref, err := set.AcquireWrite(client, key)
	if err != nil {
		t.mu.Lock()
		t.werrs++
		t.mu.Unlock()
		return
	}
	name := ref.Shard().Name
	v := value.Sequenced(client, seq, ref.Shard().Reg.Config().DataLen)
	rec := recs.forShard(name)
	var hop *history.Op
	if rec != nil {
		hop = rec.BeginWrite(client, v)
	}
	err = set.WriteRef(client, ref, v)
	set.ReleaseWrite(ref, client)
	if err != nil {
		t.mu.Lock()
		t.werrs++
		t.mu.Unlock()
		return
	}
	if rec != nil {
		rec.EndWrite(hop)
	}
	completed.Add(1)
	t.mu.Lock()
	t.writes++
	t.perShard[name]++
	t.mu.Unlock()
}

// runReconfigSchedule fires the spec's moves as their completed-op thresholds
// are crossed. Moves whose thresholds the workload never reaches are applied
// after it ends (on a quiet set), so the schedule always completes. It
// returns the applied moves; rate windows are filled in by the caller.
func runReconfigSchedule(set *shard.Set, spec ShardedSpec, completed *atomic.Int64, start time.Time, workloadDone <-chan struct{}) ([]AppliedReconfig, reconfig.Stats) {
	co := reconfig.NewCoordinator(set)
	applied := make([]AppliedReconfig, 0, len(spec.Reconfig))
	// The before-window baseline: the completed-op count and time of the last
	// successful move. A failed move must not advance it — its abort migrated
	// nothing, so the next move's before-window still measures the epoch the
	// last successful move installed.
	baseOps, baseAt := 0, time.Duration(0)
	for i, m := range spec.Reconfig {
		mv, _ := m.move() // validated by Validate
		for completed.Load() < int64(m.AfterOps) {
			select {
			case <-workloadDone:
			case <-time.After(100 * time.Microsecond):
				continue
			}
			break
		}
		at := int(completed.Load())
		elapsed := time.Since(start)
		t0 := time.Now()
		// 1<<28 keeps migration-writer timestamps clear of workload clients.
		ev, err := co.Apply(reconfig.NewLiveRunner(set, 1<<28+i), mv)
		ar := AppliedReconfig{
			Move:           m,
			Successors:     ev.Successors,
			TriggeredAtOps: at,
			Took:           time.Since(t0),
		}
		if err != nil {
			// No throughput windows for a failed move: reporting rates around
			// an abort would attribute the old epoch's throughput to a
			// migration that never happened.
			ar.Err = err.Error()
		} else {
			ar.completedAt = time.Since(start)
			ar.opsAtDone = int(completed.Load())
			if window := elapsed - baseAt; window > 0 {
				ar.OpsPerSecBefore = float64(at-baseOps) / window.Seconds()
			}
			baseOps, baseAt = ar.opsAtDone, ar.completedAt
		}
		applied = append(applied, ar)
	}
	return applied, co.Stats()
}

// RunSharded executes the workload against the shard set on its live path:
// every client runs in its own goroutine and operations on different shards
// proceed without shared locks. Client IDs start at 1. Scheduled
// reconfiguration moves fire as their thresholds are crossed, with the
// workload running throughout.
func RunSharded(set *shard.Set, spec ShardedSpec) (*ShardedResult, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	var recs *recorderSet
	if spec.RecordHistory {
		recs = &recorderSet{recs: make(map[string]*history.Recorder)}
		for _, sh := range set.Shards() {
			recs.forShard(sh.Name)
		}
	}

	var completed atomic.Int64
	start := time.Now()
	workloadDone := make(chan struct{})
	type reconfigOutcome struct {
		applied []AppliedReconfig
		stats   reconfig.Stats
	}
	reconfigDone := make(chan reconfigOutcome, 1)
	if len(spec.Reconfig) > 0 {
		go func() {
			applied, stats := runReconfigSchedule(set, spec, &completed, start, workloadDone)
			reconfigDone <- reconfigOutcome{applied: applied, stats: stats}
		}()
	}

	tallies := make([]tally, spec.Clients)
	var wg sync.WaitGroup
	for cl := 1; cl <= spec.Clients; cl++ {
		cl := cl
		t := &tallies[cl-1]
		t.perShard = make(map[string]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(cl)))
			var zipf *rand.Zipf
			if spec.ZipfS > 1 && spec.Keys > 1 {
				zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Keys-1))
			}
			var interval time.Duration
			if spec.ArrivalRate > 0 {
				interval = time.Duration(float64(time.Second) / spec.ArrivalRate)
			}
			var inflight sync.WaitGroup
			next := time.Now()
			seq := 0
			for op := 0; op < spec.OpsPerClient; op++ {
				var idx int
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else {
					idx = rng.Intn(spec.Keys)
				}
				key := KeyName(idx)
				isRead := rng.Float64() < spec.ReadFraction
				if spec.ArrivalRate <= 0 {
					// Closed loop: issue, wait, issue.
					seq++
					runShardedOp(set, recs, t, &completed, cl, key, isRead, seq)
					continue
				}
				// Open loop: dispatch on the arrival schedule without waiting
				// for completion. Every in-flight operation runs under its own
				// virtual client ID (the (cl, op) pair flattened), keeping
				// write timestamps collision-free even though one logical
				// client now has many outstanding operations.
				vclient := cl*spec.OpsPerClient + op
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					runShardedOp(set, recs, t, &completed, vclient, key, isRead, 1)
				}()
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			inflight.Wait()
		}()
	}
	wg.Wait()
	close(workloadDone)
	end := time.Since(start)

	res := &ShardedResult{PerShardOps: make(map[string]int), PerShardBits: make(map[string]int)}
	if len(spec.Reconfig) > 0 {
		outcome := <-reconfigDone
		res.Reconfigs = outcome.applied
		res.ReconfigStats = outcome.stats
		total := int(completed.Load())
		for i := range res.Reconfigs {
			ar := &res.Reconfigs[i]
			if ar.Err != "" {
				continue // failed moves get no throughput windows
			}
			if window := end - ar.completedAt; window > 0 {
				ar.OpsPerSecAfter = float64(total-ar.opsAtDone) / window.Seconds()
			}
		}
	}
	for i := range tallies {
		t := &tallies[i]
		res.CompletedWrites += t.writes
		res.CompletedReads += t.reads
		res.WriteErrors += t.werrs
		res.ReadErrors += t.rerrs
		for name, n := range t.perShard {
			res.PerShardOps[name] += n
		}
	}
	if spec.RecordHistory {
		// Stitch every surviving shard's lineage: the shard's own recorder
		// plus its migration ancestors', merged in invocation order.
		res.Histories = make(map[string]*history.History)
		for _, sh := range set.Shards() {
			v0 := value.Zero(sh.Reg.Config().DataLen)
			var chain []*history.History
			for _, ancestor := range set.Lineage(sh.Name) {
				if rec := recs.get(ancestor); rec != nil {
					chain = append(chain, rec.History(v0))
				}
			}
			res.Histories[sh.Name] = history.Merge(v0, chain...)
		}
	}
	res.FinalSnapshot = set.StorageSnapshot()
	for _, sh := range set.Shards() {
		res.PerShardBits[sh.Name] = set.ShardBits(res.FinalSnapshot, sh.Name)
	}
	return res, nil
}
