package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"spacebounds/internal/history"
	"spacebounds/internal/shard"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
)

// ShardedSpec describes a multi-key workload over a shard set: concurrent
// clients issue reads and writes against a keyspace whose keys hash onto the
// shards, with optionally Zipf-skewed key popularity (hot keys model the
// heavy-traffic regime the ROADMAP targets; uniform keys model a balanced
// cache). Writes by one client use globally unique values so the per-shard
// histories stay checkable against the paper's consistency conditions.
type ShardedSpec struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// OpsPerClient is the number of operations each client performs.
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (0 = write-only).
	ReadFraction float64
	// Keys is the number of distinct keys ("key-0" … "key-N-1"; default 16).
	Keys int
	// ZipfS is the Zipf skew exponent; values > 1 skew key popularity toward
	// low-numbered keys, anything else means uniform. (math/rand's Zipf
	// generator requires s > 1.)
	ZipfS float64
	// Seed makes the key and read/write choices reproducible.
	Seed int64
	// RecordHistory records one operation history per shard and enables
	// CheckRegularity on the result.
	RecordHistory bool
}

// Validate checks the spec and fills defaults.
func (s ShardedSpec) Validate() (ShardedSpec, error) {
	if s.Clients < 0 || s.OpsPerClient < 0 || s.Keys < 0 {
		return s, fmt.Errorf("workload: negative counts in sharded spec %+v", s)
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("workload: read fraction %v outside [0,1]", s.ReadFraction)
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	return s, nil
}

// ShardedResult is the outcome of a sharded workload run.
type ShardedResult struct {
	// CompletedWrites / CompletedReads count successful operations.
	CompletedWrites int
	CompletedReads  int
	// WriteErrors / ReadErrors count failed operations.
	WriteErrors int
	ReadErrors  int
	// PerShardOps counts completed operations per shard name; skewed
	// workloads show up as imbalance here.
	PerShardOps map[string]int
	// Histories maps shard names to their recorded operation history
	// (only when RecordHistory was set). Keys hashing to the same shard
	// share one register and therefore one history.
	Histories map[string]*history.History
	// FinalSnapshot is the storage breakdown after the run.
	FinalSnapshot *storagecost.Snapshot
	// PerShardBits maps shard names to their base-object bits at the end of
	// the run; the values sum to FinalSnapshot.BaseObjectBits.
	PerShardBits map[string]int
}

// CheckRegularity verifies every recorded per-shard history against strong
// regularity (the consistency condition the paper's adaptive algorithm
// guarantees). It is only meaningful when every shard runs a regular
// emulation — safe-register shards may legitimately fail it.
func (r *ShardedResult) CheckRegularity() error {
	names := make([]string, 0, len(r.Histories))
	for name := range r.Histories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := history.CheckStrongRegularity(r.Histories[name]); err != nil {
			return fmt.Errorf("shard %q: %w", name, err)
		}
	}
	return nil
}

// KeyName returns the i-th key of the sharded workload's keyspace.
func KeyName(i int) string { return fmt.Sprintf("key-%d", i) }

// RunSharded executes the workload against the shard set on its live path:
// every client runs in its own goroutine and operations on different shards
// proceed without shared locks. Client IDs start at 1.
func RunSharded(set *shard.Set, spec ShardedSpec) (*ShardedResult, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	recorders := make(map[string]*history.Recorder)
	if spec.RecordHistory {
		for _, sh := range set.Shards() {
			recorders[sh.Name] = history.NewRecorder()
		}
	}

	type tally struct {
		writes, reads, werrs, rerrs int
		perShard                    map[string]int
	}
	tallies := make([]tally, spec.Clients)
	var wg sync.WaitGroup
	for cl := 1; cl <= spec.Clients; cl++ {
		cl := cl
		t := &tallies[cl-1]
		t.perShard = make(map[string]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(cl)))
			var zipf *rand.Zipf
			if spec.ZipfS > 1 && spec.Keys > 1 {
				zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Keys-1))
			}
			seq := 0
			for op := 0; op < spec.OpsPerClient; op++ {
				var idx int
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else {
					idx = rng.Intn(spec.Keys)
				}
				key := KeyName(idx)
				sh := set.ForKey(key)
				rec := recorders[sh.Name]
				if rng.Float64() < spec.ReadFraction {
					var hop *history.Op
					if rec != nil {
						hop = rec.BeginRead(cl)
					}
					v, err := set.Read(cl, key)
					if err != nil {
						t.rerrs++
						continue
					}
					if rec != nil {
						rec.EndRead(hop, v)
					}
					t.reads++
				} else {
					seq++
					v := value.Sequenced(cl, seq, sh.Reg.Config().DataLen)
					var hop *history.Op
					if rec != nil {
						hop = rec.BeginWrite(cl, v)
					}
					if err := set.Write(cl, key, v); err != nil {
						t.werrs++
						continue
					}
					if rec != nil {
						rec.EndWrite(hop)
					}
					t.writes++
				}
				t.perShard[sh.Name]++
			}
		}()
	}
	wg.Wait()

	res := &ShardedResult{PerShardOps: make(map[string]int), PerShardBits: make(map[string]int)}
	for i := range tallies {
		t := &tallies[i]
		res.CompletedWrites += t.writes
		res.CompletedReads += t.reads
		res.WriteErrors += t.werrs
		res.ReadErrors += t.rerrs
		for name, n := range t.perShard {
			res.PerShardOps[name] += n
		}
	}
	if spec.RecordHistory {
		res.Histories = make(map[string]*history.History, len(recorders))
		for _, sh := range set.Shards() {
			res.Histories[sh.Name] = recorders[sh.Name].History(value.Zero(sh.Reg.Config().DataLen))
		}
	}
	res.FinalSnapshot = set.StorageSnapshot()
	for _, sh := range set.Shards() {
		res.PerShardBits[sh.Name] = set.ShardBits(res.FinalSnapshot, sh.Name)
	}
	return res, nil
}
