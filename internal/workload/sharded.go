package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"spacebounds/internal/history"
	"spacebounds/internal/shard"
	"spacebounds/internal/storagecost"
	"spacebounds/internal/value"
)

// ShardedSpec describes a multi-key workload over a shard set: concurrent
// clients issue reads and writes against a keyspace whose keys hash onto the
// shards, with optionally Zipf-skewed key popularity (hot keys model the
// heavy-traffic regime the ROADMAP targets; uniform keys model a balanced
// cache). Writes by one client use globally unique values so the per-shard
// histories stay checkable against the paper's consistency conditions.
type ShardedSpec struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// OpsPerClient is the number of operations each client performs.
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (0 = write-only).
	ReadFraction float64
	// Keys is the number of distinct keys ("key-0" … "key-N-1"; default 16).
	Keys int
	// ZipfS is the Zipf skew exponent; values > 1 skew key popularity toward
	// low-numbered keys, anything else means uniform. (math/rand's Zipf
	// generator requires s > 1.)
	ZipfS float64
	// Seed makes the key and read/write choices reproducible.
	Seed int64
	// RecordHistory records one operation history per shard and enables
	// CheckRegularity on the result.
	RecordHistory bool
	// ArrivalRate, when positive, switches every client from a closed loop
	// (issue, wait, issue) to an open loop: operations are dispatched at the
	// given rate in operations per second per client, without waiting for
	// earlier operations to finish. Each in-flight operation runs under its
	// own virtual client ID, so concurrent writes never share a timestamp
	// client component. Open-loop arrivals are what pile concurrent
	// operations onto a shard and give the batched quorum engine something
	// to coalesce.
	ArrivalRate float64
}

// Validate checks the spec and fills defaults.
func (s ShardedSpec) Validate() (ShardedSpec, error) {
	if s.Clients < 0 || s.OpsPerClient < 0 || s.Keys < 0 {
		return s, fmt.Errorf("workload: negative counts in sharded spec %+v", s)
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("workload: read fraction %v outside [0,1]", s.ReadFraction)
	}
	if s.ArrivalRate < 0 {
		return s, fmt.Errorf("workload: negative arrival rate %v", s.ArrivalRate)
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	return s, nil
}

// ShardedResult is the outcome of a sharded workload run.
type ShardedResult struct {
	// CompletedWrites / CompletedReads count successful operations.
	CompletedWrites int
	CompletedReads  int
	// WriteErrors / ReadErrors count failed operations.
	WriteErrors int
	ReadErrors  int
	// PerShardOps counts completed operations per shard name; skewed
	// workloads show up as imbalance here.
	PerShardOps map[string]int
	// Histories maps shard names to their recorded operation history
	// (only when RecordHistory was set). Keys hashing to the same shard
	// share one register and therefore one history.
	Histories map[string]*history.History
	// FinalSnapshot is the storage breakdown after the run.
	FinalSnapshot *storagecost.Snapshot
	// PerShardBits maps shard names to their base-object bits at the end of
	// the run; the values sum to FinalSnapshot.BaseObjectBits.
	PerShardBits map[string]int
}

// CheckRegularity verifies every recorded per-shard history against strong
// regularity (the consistency condition the paper's adaptive algorithm
// guarantees). It is only meaningful when every shard runs a regular
// emulation — safe-register shards may legitimately fail it.
func (r *ShardedResult) CheckRegularity() error {
	names := make([]string, 0, len(r.Histories))
	for name := range r.Histories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := history.CheckStrongRegularity(r.Histories[name]); err != nil {
			return fmt.Errorf("shard %q: %w", name, err)
		}
	}
	return nil
}

// KeyName returns the i-th key of the sharded workload's keyspace.
func KeyName(i int) string { return fmt.Sprintf("key-%d", i) }

// tally accumulates one logical client's results. Open-loop clients complete
// operations from many goroutines, so updates are mutex-guarded.
type tally struct {
	mu                          sync.Mutex
	writes, reads, werrs, rerrs int
	perShard                    map[string]int
}

// runShardedOp performs one read or write against the set and records it in
// the history recorder and the tally. Writes derive a globally unique value
// from (client, seq).
func runShardedOp(set *shard.Set, rec *history.Recorder, t *tally, client int, sh *shard.Shard, key string, isRead bool, seq int) {
	if isRead {
		var hop *history.Op
		if rec != nil {
			hop = rec.BeginRead(client)
		}
		v, err := set.Read(client, key)
		if err != nil {
			t.mu.Lock()
			t.rerrs++
			t.mu.Unlock()
			return
		}
		if rec != nil {
			rec.EndRead(hop, v)
		}
		t.mu.Lock()
		t.reads++
		t.perShard[sh.Name]++
		t.mu.Unlock()
		return
	}
	v := value.Sequenced(client, seq, sh.Reg.Config().DataLen)
	var hop *history.Op
	if rec != nil {
		hop = rec.BeginWrite(client, v)
	}
	if err := set.Write(client, key, v); err != nil {
		t.mu.Lock()
		t.werrs++
		t.mu.Unlock()
		return
	}
	if rec != nil {
		rec.EndWrite(hop)
	}
	t.mu.Lock()
	t.writes++
	t.perShard[sh.Name]++
	t.mu.Unlock()
}

// RunSharded executes the workload against the shard set on its live path:
// every client runs in its own goroutine and operations on different shards
// proceed without shared locks. Client IDs start at 1.
func RunSharded(set *shard.Set, spec ShardedSpec) (*ShardedResult, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	recorders := make(map[string]*history.Recorder)
	if spec.RecordHistory {
		for _, sh := range set.Shards() {
			recorders[sh.Name] = history.NewRecorder()
		}
	}

	tallies := make([]tally, spec.Clients)
	var wg sync.WaitGroup
	for cl := 1; cl <= spec.Clients; cl++ {
		cl := cl
		t := &tallies[cl-1]
		t.perShard = make(map[string]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(cl)))
			var zipf *rand.Zipf
			if spec.ZipfS > 1 && spec.Keys > 1 {
				zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Keys-1))
			}
			var interval time.Duration
			if spec.ArrivalRate > 0 {
				interval = time.Duration(float64(time.Second) / spec.ArrivalRate)
			}
			var inflight sync.WaitGroup
			next := time.Now()
			seq := 0
			for op := 0; op < spec.OpsPerClient; op++ {
				var idx int
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else {
					idx = rng.Intn(spec.Keys)
				}
				key := KeyName(idx)
				sh := set.ForKey(key)
				rec := recorders[sh.Name]
				isRead := rng.Float64() < spec.ReadFraction
				if spec.ArrivalRate <= 0 {
					// Closed loop: issue, wait, issue.
					seq++
					runShardedOp(set, rec, t, cl, sh, key, isRead, seq)
					continue
				}
				// Open loop: dispatch on the arrival schedule without waiting
				// for completion. Every in-flight operation runs under its own
				// virtual client ID (the (cl, op) pair flattened), keeping
				// write timestamps collision-free even though one logical
				// client now has many outstanding operations.
				vclient := cl*spec.OpsPerClient + op
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					runShardedOp(set, rec, t, vclient, sh, key, isRead, 1)
				}()
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			inflight.Wait()
		}()
	}
	wg.Wait()

	res := &ShardedResult{PerShardOps: make(map[string]int), PerShardBits: make(map[string]int)}
	for i := range tallies {
		t := &tallies[i]
		res.CompletedWrites += t.writes
		res.CompletedReads += t.reads
		res.WriteErrors += t.werrs
		res.ReadErrors += t.rerrs
		for name, n := range t.perShard {
			res.PerShardOps[name] += n
		}
	}
	if spec.RecordHistory {
		res.Histories = make(map[string]*history.History, len(recorders))
		for _, sh := range set.Shards() {
			res.Histories[sh.Name] = recorders[sh.Name].History(value.Zero(sh.Reg.Config().DataLen))
		}
	}
	res.FinalSnapshot = set.StorageSnapshot()
	for _, sh := range set.Shards() {
		res.PerShardBits[sh.Name] = set.ShardBits(res.FinalSnapshot, sh.Name)
	}
	return res, nil
}
