package workload_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/register/adaptive"
	"spacebounds/internal/workload"
)

func newReg(t *testing.T) register.Register {
	t.Helper()
	reg, err := adaptive.New(register.Config{F: 1, K: 2, DataLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestSpecValidate(t *testing.T) {
	if err := (workload.Spec{Writers: -1}).Validate(); err == nil {
		t.Fatal("negative writer count accepted")
	}
	if err := (workload.Spec{Writers: 1, Readers: 1}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := workload.Run(newReg(t), workload.Spec{ReadsPerReader: -1}); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}

func TestWriterValueDistinct(t *testing.T) {
	cfg := newReg(t).Config()
	a := workload.WriterValue(cfg, 1, 1)
	b := workload.WriterValue(cfg, 1, 2)
	c := workload.WriterValue(cfg, 2, 1)
	if a.Equal(b) || a.Equal(c) || b.Equal(c) {
		t.Fatal("writer values are not distinct")
	}
	if a.SizeBytes() != cfg.DataLen {
		t.Fatalf("writer value size %d, want %d", a.SizeBytes(), cfg.DataLen)
	}
}

func TestRunRecordsHistoryAndStorage(t *testing.T) {
	res, err := workload.Run(newReg(t), workload.Spec{
		Writers:            2,
		WritesPerWriter:    2,
		Readers:            1,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		KeepSeries:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedWrites != 4 || res.CompletedReads != 2 {
		t.Fatalf("completed %d writes / %d reads, want 4 / 2", res.CompletedWrites, res.CompletedReads)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("unexpected errors: %d / %d", res.WriteErrors, res.ReadErrors)
	}
	if res.MaxTotalBits < res.MaxBaseObjectBits || res.MaxBaseObjectBits == 0 {
		t.Fatalf("implausible storage accounting: total %d, base %d", res.MaxTotalBits, res.MaxBaseObjectBits)
	}
	if len(res.Series) == 0 {
		t.Fatal("KeepSeries produced no series")
	}
	if res.Steps == 0 {
		t.Fatal("no scheduling steps recorded")
	}
	if res.IdleReason != dsys.IdleQuiesced {
		t.Fatalf("run ended %v, want quiesced", res.IdleReason)
	}
	if got := len(res.History.Writes()); got != 4 {
		t.Fatalf("history has %d writes, want 4", got)
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatal(err)
	}
}

func TestRunStuckRunIsReleased(t *testing.T) {
	// A workload that cannot make progress (quorum unreachable) must return
	// rather than hang, reporting zero completed operations.
	res, err := workload.Run(newReg(t), workload.Spec{
		Writers:         1,
		WritesPerWriter: 1,
		CrashObjects:    []int{0, 1}, // f = 1, so two crashes break every quorum
		MaxSteps:        200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedWrites != 0 {
		t.Fatalf("completed %d writes without a quorum", res.CompletedWrites)
	}
}

func TestRunLiveMode(t *testing.T) {
	res, err := workload.Run(newReg(t), workload.Spec{
		Writers:            3,
		WritesPerWriter:    2,
		Readers:            2,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		Live:               true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedWrites != 6 || res.CompletedReads != 4 {
		t.Fatalf("live run completed %d/%d ops", res.CompletedWrites, res.CompletedReads)
	}
	if err := history.CheckWeakRegularity(res.History); err != nil {
		t.Fatal(err)
	}
}
