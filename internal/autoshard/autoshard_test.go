package autoshard

import (
	"errors"
	"fmt"
	"testing"

	"spacebounds/internal/metrics"
	"spacebounds/internal/reconfig"
)

// policyConfig is the baseline planner config the policy tests perturb.
func policyConfig() Config {
	return Config{
		HotOps:        100,
		ColdOps:       10,
		SustainTicks:  3,
		CooldownTicks: 5,
	}
}

func mustPlanner(t *testing.T, cfg Config) *Planner {
	t.Helper()
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	return p
}

func flat(ops float64, shards ...string) []Sample {
	out := make([]Sample, len(shards))
	for i, s := range shards {
		out[i] = Sample{Shard: s, Ops: ops}
	}
	return out
}

// TestConfigValidation pins the hysteresis invariant: ColdOps at or above
// HotOps, and configs with no signal at all, are rejected up front.
func TestConfigValidation(t *testing.T) {
	if _, err := NewPlanner(Config{HotOps: 50, ColdOps: 50}); err == nil {
		t.Fatal("ColdOps == HotOps accepted; the hysteresis band would be empty")
	}
	if _, err := NewPlanner(Config{}); err == nil {
		t.Fatal("config with no thresholds accepted")
	}
	if _, err := NewPlanner(Config{HotOps: 50}); err != nil {
		t.Fatalf("rate-only config rejected: %v", err)
	}
}

// TestSustainedHotShardSplitsExactlyOnce: a shard that is hot every tick
// produces exactly one split plan — the sustain window delays it, and the
// one-in-flight gate blocks all further plans until the move resolves.
func TestSustainedHotShardSplitsExactlyOnce(t *testing.T) {
	p := mustPlanner(t, policyConfig())
	plans := 0
	var got Plan
	for tick := 1; tick <= 50; tick++ {
		pl, ok := p.Tick([]Sample{{Shard: "s0", Ops: 500}, {Shard: "s1", Ops: 50}})
		if ok {
			plans++
			got = pl
			if tick < 3 {
				t.Fatalf("plan emitted at tick %d, inside the sustain window", tick)
			}
		}
	}
	if plans != 1 {
		t.Fatalf("sustained hot shard produced %d plans, want exactly 1", plans)
	}
	if got.Move.Kind != reconfig.MoveSplit || got.Move.Shard != "s0" {
		t.Fatalf("plan = %+v, want split of s0", got.Move)
	}
	if st := p.Stats(); st.Plans != 1 || st.Splits != 1 {
		t.Fatalf("stats = %+v, want 1 plan / 1 split", st)
	}
}

// TestFlappingLoadPlansNothing: load that oscillates faster than the sustain
// window — hot one tick, cold or neutral the next — never accumulates a
// streak, so the planner does nothing at all.
func TestFlappingLoadPlansNothing(t *testing.T) {
	p := mustPlanner(t, policyConfig())
	for tick := 0; tick < 200; tick++ {
		var ops float64
		switch tick % 3 {
		case 0:
			ops = 500 // hot
		case 1:
			ops = 1 // cold
		case 2:
			ops = 50 // neutral band
		}
		if pl, ok := p.Tick(flat(ops, "s0", "s1")); ok {
			t.Fatalf("tick %d: flapping load planned %+v", tick, pl.Move)
		}
	}
	if st := p.Stats(); st.Plans != 0 {
		t.Fatalf("flapping load produced %d plans, want 0", st.Plans)
	}
}

// TestHysteresisNoOpposingMoves: after a split resolves, the planner cannot
// turn around and merge inside the sustain-plus-cooldown window, even if the
// successors immediately look cold — the opposite signal has to survive the
// full sustain window after the cooldown expires.
func TestHysteresisNoOpposingMoves(t *testing.T) {
	cfg := policyConfig()
	p := mustPlanner(t, cfg)

	// Drive s0 hot until the split comes out.
	var split bool
	for tick := 0; tick < 10 && !split; tick++ {
		_, split = p.Tick([]Sample{{Shard: "s0", Ops: 500}, {Shard: "s1", Ops: 50}})
	}
	if !split {
		t.Fatal("no split emitted")
	}
	p.NoteResolved(true)

	// The successors now look dead cold. No merge may appear until the
	// cooldown has drained AND the cold signal has survived the sustain
	// window — the two gates run concurrently, so the earliest legal
	// opposing move is max(cooldown, sustain)+1 ticks after resolution.
	successors := flat(0, "s0-a", "s0-b", "s1")
	window := cfg.CooldownTicks
	if cfg.SustainTicks > window {
		window = cfg.SustainTicks
	}
	for tick := 1; tick <= window; tick++ {
		if pl, ok := p.Tick(successors); ok {
			t.Fatalf("opposing move %+v emitted %d ticks after the split; hysteresis window is %d", pl.Move, tick, window)
		}
	}
	// One more tick completes the window; now the merge is legitimate.
	pl, ok := p.Tick(successors)
	if !ok || pl.Move.Kind != reconfig.MoveMerge {
		t.Fatalf("after the full window, got (%+v, %v), want a merge", pl.Move, ok)
	}
}

// TestCooldownHonored: with two independently hot shards, the second plan
// waits out the full cooldown after the first resolves — even though its
// streak was sustained the whole time.
func TestCooldownHonored(t *testing.T) {
	cfg := policyConfig()
	p := mustPlanner(t, cfg)
	samples := []Sample{{Shard: "s0", Ops: 500}, {Shard: "s1", Ops: 400}}

	var firstTick int
	for tick := 1; tick <= 10 && firstTick == 0; tick++ {
		if pl, ok := p.Tick(samples); ok {
			if pl.Move.Shard != "s0" {
				t.Fatalf("first plan took %s, want the hotter s0", pl.Move.Shard)
			}
			firstTick = tick
		}
	}
	if firstTick == 0 {
		t.Fatal("no first plan emitted")
	}
	p.NoteResolved(true)

	// The split took effect: s0 became two warm successors, s1 stays hot.
	// s1's streak keeps accruing, so only the cooldown gates the second
	// plan: it must appear on exactly the (CooldownTicks+1)-th tick after
	// resolution, never earlier.
	after := []Sample{
		{Shard: "s0-a", Ops: 50}, {Shard: "s0-b", Ops: 50},
		{Shard: "s1", Ops: 400},
	}
	for tick := 1; tick <= cfg.CooldownTicks; tick++ {
		if pl, ok := p.Tick(after); ok {
			t.Fatalf("plan %+v emitted %d ticks after resolution, inside the %d-tick cooldown", pl.Move, tick, cfg.CooldownTicks)
		}
	}
	pl, ok := p.Tick(after)
	if !ok || pl.Move.Shard != "s1" {
		t.Fatalf("first post-cooldown tick: got (%+v, %v), want split of s1", pl.Move, ok)
	}
}

// TestLatencyOnlyHeatDrains: a shard hot by latency alone is answered with a
// drain (slow nodes), not a split (load).
func TestLatencyOnlyHeatDrains(t *testing.T) {
	cfg := policyConfig()
	cfg.HotLatency = 0.5
	p := mustPlanner(t, cfg)
	samples := []Sample{{Shard: "s0", Ops: 50, LatencyP99: 2.0}, {Shard: "s1", Ops: 50}}
	var got Plan
	var ok bool
	for tick := 0; tick < 10 && !ok; tick++ {
		got, ok = p.Tick(samples)
	}
	if !ok || got.Move.Kind != reconfig.MoveDrain || got.Move.Shard != "s0" {
		t.Fatalf("latency-only heat produced (%+v, %v), want drain of s0", got.Move, ok)
	}
}

// TestTopologyBounds: MaxShards blocks splits at the cap and MinShards blocks
// merges at the floor.
func TestTopologyBounds(t *testing.T) {
	cfg := policyConfig()
	cfg.MaxShards = 2
	cfg.MinShards = 2
	p := mustPlanner(t, cfg)
	for tick := 0; tick < 20; tick++ {
		if pl, ok := p.Tick(flat(500, "s0", "s1")); ok {
			t.Fatalf("split %+v emitted at the MaxShards cap", pl.Move)
		}
	}
	p2 := mustPlanner(t, cfg)
	for tick := 0; tick < 20; tick++ {
		if pl, ok := p2.Tick(flat(0, "s0", "s1")); ok {
			t.Fatalf("merge %+v emitted at the MinShards floor", pl.Move)
		}
	}
}

// TestMaxMovesBudget: the lifetime budget caps total plans no matter how long
// the pressure lasts.
func TestMaxMovesBudget(t *testing.T) {
	cfg := policyConfig()
	cfg.MaxMoves = 2
	p := mustPlanner(t, cfg)
	plans := 0
	shards := []string{"s0", "s1"}
	for tick := 0; tick < 200; tick++ {
		if pl, ok := p.Tick(flat(500, shards...)); ok {
			plans++
			p.NoteResolved(true)
			// Simulate the split taking effect.
			shards = append(shards[:0], fmt.Sprintf("g%d-a", plans), fmt.Sprintf("g%d-b", plans), "s1")
			_ = pl
		}
	}
	if plans != 2 {
		t.Fatalf("budget of 2 allowed %d plans", plans)
	}
}

// TestMergePicksTwoColdest: with several sustained-cold shards the merge
// takes the two coldest, deterministically.
func TestMergePicksTwoColdest(t *testing.T) {
	p := mustPlanner(t, policyConfig())
	samples := []Sample{
		{Shard: "s0", Ops: 8},
		{Shard: "s1", Ops: 2},
		{Shard: "s2", Ops: 5},
	}
	var got Plan
	var ok bool
	for tick := 0; tick < 10 && !ok; tick++ {
		got, ok = p.Tick(samples)
	}
	if !ok || got.Move.Kind != reconfig.MoveMerge {
		t.Fatalf("cold shards produced (%+v, %v), want a merge", got.Move, ok)
	}
	if got.Move.Shard != "s1" || got.Move.Shard2 != "s2" {
		t.Fatalf("merge chose %s+%s, want the two coldest s1+s2", got.Move.Shard, got.Move.Shard2)
	}
}

// driverHarness drives a Driver's Step directly, bypassing the ticker.
type driverHarness struct {
	samples   []Sample
	applyErr  []error // consumed per Apply call
	applied   []reconfig.Move
	resumes   int
	resumeErr error
	inFlight  bool
}

func (h *driverHarness) driver(t *testing.T, reg *metrics.Registry) *Driver {
	t.Helper()
	p := mustPlanner(t, Config{HotOps: 100, ColdOps: 10, SustainTicks: 1, CooldownTicks: 1})
	d, err := StartDriver(DriverConfig{
		Planner:  p,
		Interval: 1e9, // long; tests call Step directly
		Sample:   func() []Sample { return h.samples },
		Apply: func(mv reconfig.Move) error {
			h.applied = append(h.applied, mv)
			if len(h.applyErr) == 0 {
				return nil
			}
			err := h.applyErr[0]
			h.applyErr = h.applyErr[1:]
			return err
		},
		Resume: func() (int, error) {
			h.resumes++
			if h.resumeErr != nil {
				return 0, h.resumeErr
			}
			h.inFlight = false
			return 1, nil
		},
		InFlight: func() bool { return h.inFlight },
		Metrics:  reg,
	})
	if err != nil {
		t.Fatalf("StartDriver: %v", err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestDriverBackpressureDropsPlan: ErrMoveInFlight from Apply resolves the
// plan as dropped — no pending state, no resume attempts.
func TestDriverBackpressureDropsPlan(t *testing.T) {
	h := &driverHarness{
		samples:  flat(500, "s0", "s1"),
		applyErr: []error{fmt.Errorf("busy: %w", reconfig.ErrMoveInFlight)},
	}
	d := h.driver(t, nil)
	d.Step()
	if len(h.applied) != 1 || h.resumes != 0 {
		t.Fatalf("applied %d resumes %d, want 1 apply and no resumes", len(h.applied), h.resumes)
	}
	if st := d.Stats(); st.Dropped != 1 || st.Applied != 0 {
		t.Fatalf("stats = %+v, want the plan dropped", st)
	}
	// The next eligible plan goes through Apply again (re-planned, not
	// resumed).
	d.Step() // cooldown tick
	d.Step()
	if len(h.applied) != 2 {
		t.Fatalf("applied %d moves after cooldown, want 2", len(h.applied))
	}
}

// TestDriverInterruptionResumesViaLedger: an interruption parks the plan;
// later ticks call Resume (never Apply) until the ledger move completes, then
// the plan resolves as resumed.
func TestDriverInterruptionResumesViaLedger(t *testing.T) {
	h := &driverHarness{
		samples:  flat(500, "s0", "s1"),
		applyErr: []error{fmt.Errorf("crashed: %w", reconfig.ErrInterrupted)},
	}
	h.inFlight = true
	reg := metrics.NewRegistry()
	d := h.driver(t, reg)

	d.Step() // plan + interrupted apply
	if len(h.applied) != 1 {
		t.Fatalf("applied %d, want 1", len(h.applied))
	}

	// First resume attempt fails: still pending, still no new Apply.
	h.resumeErr = fmt.Errorf("still down: %w", reconfig.ErrInterrupted)
	d.Step()
	if h.resumes != 1 || len(h.applied) != 1 {
		t.Fatalf("after failed resume: resumes %d applied %d, want 1 and 1", h.resumes, len(h.applied))
	}

	// Second attempt completes the move from the ledger.
	h.resumeErr = nil
	d.Step()
	if h.resumes != 2 || len(h.applied) != 1 {
		t.Fatalf("after resume: resumes %d applied %d, want 2 and 1", h.resumes, len(h.applied))
	}
	if st := d.Stats(); st.Resumed != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want exactly one resumed resolution", st)
	}
	if v := reg.Counter(metricMoves, "", metrics.L("outcome", "resumed")).Value(); v != 1 {
		t.Fatalf("resumed counter = %d, want 1", v)
	}
}

// TestDriverGenuineFailureInFlightResumes: a non-interruption error that
// leaves the move in the ledger (InFlight true) is also resumed rather than
// re-planned — the driver is alive and the move is its responsibility.
func TestDriverGenuineFailureInFlightResumes(t *testing.T) {
	h := &driverHarness{
		samples:  flat(500, "s0", "s1"),
		applyErr: []error{errors.New("node wedged mid-retire")},
	}
	h.inFlight = true
	d := h.driver(t, nil)
	d.Step()
	d.Step()
	if h.resumes != 1 || len(h.applied) != 1 {
		t.Fatalf("resumes %d applied %d, want the wedged move resumed once and no re-plan", h.resumes, len(h.applied))
	}
	if st := d.Stats(); st.Resumed != 1 {
		t.Fatalf("stats = %+v, want one resumed resolution", st)
	}
}

// TestDriverAbortedFailureDrops: a genuine failure with a completed abort
// (nothing left in the ledger) just drops the plan.
func TestDriverAbortedFailureDrops(t *testing.T) {
	h := &driverHarness{
		samples:  flat(500, "s0", "s1"),
		applyErr: []error{errors.New("seed write rejected; aborted")},
	}
	d := h.driver(t, nil)
	d.Step()
	if st := d.Stats(); st.Dropped != 1 || h.resumes != 0 {
		t.Fatalf("stats = %+v resumes = %d, want a dropped plan and no resumes", st, h.resumes)
	}
}

// TestMetersEagerRegistration: attaching a registry creates every autoshard
// family and label combination before the first tick.
func TestMetersEagerRegistration(t *testing.T) {
	reg := metrics.NewRegistry()
	h := &driverHarness{samples: nil}
	h.driver(t, reg)
	want := map[string]bool{
		metricTicks: false, metricPlans: false, metricMoves: false,
		metricHot: false, metricCold: false,
	}
	for _, f := range reg.Families() {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s not registered eagerly", name)
		}
	}
}

// TestRegistrySamplerDeltas: the sampler reports per-window deltas, not
// cumulative counters, and quantiles come from the window's distribution
// alone.
func TestRegistrySamplerDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	ok := reg.Counter(sampleRoundsTotal, "quorum rounds completed by region and outcome", metrics.L("region", "s0"), metrics.L("outcome", "ok"))
	errs := reg.Counter(sampleRoundsTotal, "quorum rounds completed by region and outcome", metrics.L("region", "s0"), metrics.L("outcome", "error"))
	lat := reg.Histogram(sampleRoundSeconds, "quorum round latency by region", metrics.LatencyBuckets(), metrics.L("region", "s0"))

	s := NewRegistrySampler(reg, func() []string { return []string{"s0"} })

	ok.Add(10)
	errs.Add(2)
	lat.Observe(0.001)
	first := s.Sample()
	if len(first) != 1 || first[0].Ops != 12 {
		t.Fatalf("first sample = %+v, want 12 ops", first)
	}

	// Second window: 5 more ops, all slow. The p99 must reflect only the
	// window — the fast observation from window one must not drag it down.
	ok.Add(5)
	for i := 0; i < 5; i++ {
		lat.Observe(1.0)
	}
	second := s.Sample()
	if second[0].Ops != 5 {
		t.Fatalf("second window ops = %v, want 5", second[0].Ops)
	}
	if second[0].LatencyP99 < 0.5 {
		t.Fatalf("second window p99 = %v; cumulative snapshot leaked into the window", second[0].LatencyP99)
	}

	// An idle window reports zero ops.
	third := s.Sample()
	if third[0].Ops != 0 {
		t.Fatalf("idle window ops = %v, want 0", third[0].Ops)
	}
}
