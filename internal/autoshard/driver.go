package autoshard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spacebounds/internal/metrics"
	"spacebounds/internal/reconfig"
)

// DriverConfig wires a Planner to a live store. The Sample/Apply/Resume hooks
// keep the driver free of store types, so the facade, the benchmark harness
// and tests each plug their own.
type DriverConfig struct {
	// Planner makes the decisions; required.
	Planner *Planner
	// Interval is the wall-clock tick period; required (> 0).
	Interval time.Duration
	// Sample returns one Sample per live shard; required.
	Sample func() []Sample
	// Apply pushes one move through the reconfiguration coordinator;
	// required.
	Apply func(reconfig.Move) error
	// Resume re-drives an interrupted in-flight move from the ledger. It
	// reports how many moves it completed. Required.
	Resume func() (int, error)
	// InFlight reports whether the coordinator still holds an unfinished
	// move; optional, used to classify failures as resumable.
	InFlight func() bool
	// OnPlan, when set, observes every emitted plan (logging, test capture).
	OnPlan func(Plan)
	// Metrics, when set, receives the autoshard metric families.
	Metrics *metrics.Registry
}

// Driver runs the control loop on its own goroutine: sample, tick the
// planner, push the plan, absorb backpressure. Coordinator pushback is
// handled, never escalated: ErrMoveInFlight means an operator (or fault
// injector) is reconfiguring and the plan is dropped; an interruption or a
// failure that leaves the move in the ledger parks the plan as pending, and
// later ticks re-drive the move via Resume instead of re-planning.
type Driver struct {
	cfg DriverConfig
	met *meters

	mu      sync.Mutex
	pending *Plan

	halt chan struct{}
	done chan struct{}
}

// StartDriver validates the wiring and starts the loop.
func StartDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Planner == nil || cfg.Sample == nil || cfg.Apply == nil || cfg.Resume == nil {
		return nil, fmt.Errorf("autoshard: driver needs Planner, Sample, Apply and Resume")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("autoshard: driver interval must be positive, got %v", cfg.Interval)
	}
	d := &Driver{
		cfg:  cfg,
		met:  newMeters(cfg.Metrics),
		halt: make(chan struct{}),
		done: make(chan struct{}),
	}
	go d.run()
	return d, nil
}

// Stop halts the loop and waits for the in-progress tick, if any, to return.
// A move the coordinator is mid-way through is left in the ledger; the next
// process (or ResumeMoves) picks it up — that is the ledger's job.
func (d *Driver) Stop() {
	select {
	case <-d.halt:
	default:
		close(d.halt)
	}
	<-d.done
}

// Stats returns the planner's counters; safe to call concurrently with the
// loop.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.Planner.Stats()
}

func (d *Driver) run() {
	defer close(d.done)
	tick := time.NewTicker(d.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-d.halt:
			return
		case <-tick.C:
			d.Step()
		}
	}
}

// Step runs one control-loop iteration. The loop calls it on every tick; it
// is exported so tests and the benchmark harness can drive the same logic
// without the wall clock.
func (d *Driver) Step() {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.pending != nil {
		// An earlier plan's move is stuck in the ledger. Re-drive it from
		// where it stopped — re-planning would double-count the signal and
		// ignore the half-applied topology.
		if _, err := d.cfg.Resume(); err != nil {
			// Still interrupted (or the resumer itself was superseded):
			// keep the plan pending and try again next tick.
			return
		}
		if d.cfg.InFlight != nil && d.cfg.InFlight() {
			return
		}
		d.pending = nil
		d.cfg.Planner.NoteResumed()
		d.met.move("resumed")
		return
	}

	plan, ok := d.cfg.Planner.Tick(d.cfg.Sample())
	d.met.tick(d.cfg.Planner.Stats())
	if !ok {
		return
	}
	d.met.plan(plan.Move.Kind.String())
	if d.cfg.OnPlan != nil {
		d.cfg.OnPlan(plan)
	}

	err := d.cfg.Apply(plan.Move)
	switch {
	case err == nil:
		d.cfg.Planner.NoteResolved(true)
		d.met.move("applied")
	case errors.Is(err, reconfig.ErrMoveInFlight):
		// Someone else is reconfiguring. That is backpressure, not failure:
		// drop the plan and re-observe the world after the cooldown.
		d.cfg.Planner.NoteResolved(false)
		d.met.move("dropped")
	case reconfig.IsInterruption(err), d.cfg.InFlight != nil && d.cfg.InFlight():
		// The move is in the ledger, half done. Park the plan; subsequent
		// ticks resume the move rather than planning anew.
		p := plan
		d.pending = &p
	default:
		// A genuine failure with a completed abort: the topology is back
		// where it started, so the plan is simply dropped.
		d.cfg.Planner.NoteResolved(false)
		d.met.move("dropped")
	}
}
