// Package autoshard is the self-driving topology controller: a control loop
// that watches per-shard load signals and steers the reconfiguration
// subsystem — split shards that run hot, merge shards that run cold, drain
// shards whose nodes are slow — without an operator in the loop.
//
// The package splits the controller into three pieces so each is testable on
// its own:
//
//   - Planner is the pure decision procedure: feed it one Sample per live
//     shard per tick and it emits at most one Plan. It never touches the
//     store. All the control-theory guardrails live here: separate up/down
//     thresholds with a neutral band between them (hysteresis), a sustain
//     window (a shard must stay hot or cold for SustainTicks consecutive
//     ticks before it is acted on, so flapping load plans nothing), a
//     cooldown after every resolved move, and a single move in flight at a
//     time.
//   - Driver owns the clock: it samples, ticks the planner, and pushes plans
//     through the reconfiguration coordinator. Backpressure from the
//     coordinator is not an error: ErrMoveInFlight drops the plan (someone
//     else is reconfiguring — the next tick re-observes the world), and an
//     interrupted move is re-driven from the ledger on later ticks rather
//     than re-planned.
//   - RegistrySampler (sampler.go) derives Samples from the metrics registry
//     the store already exports, so enabling the controller needs no second
//     instrumentation path.
package autoshard

import (
	"fmt"
	"sort"

	"spacebounds/internal/reconfig"
)

// Sample is one shard's control signals for one tick. Rates are per-tick
// deltas, not per-second rates: the planner compares them against Config
// thresholds in the same unit, so the tick interval cancels out.
type Sample struct {
	// Shard is the shard (route) name the signals belong to.
	Shard string
	// Ops is the number of operations (quorum rounds) the shard completed
	// since the previous tick.
	Ops float64
	// LatencyP99 is the 99th-percentile quorum-round latency over the tick
	// window, in seconds (0 when unknown).
	LatencyP99 float64
	// QueueDepth is the mean batch-lane occupancy over the tick window (0
	// when unknown or batching is disabled).
	QueueDepth float64
}

// Config tunes the planner. The zero value is not usable: at least HotOps or
// ColdOps must distinguish hot from cold; withDefaults fills the rest.
type Config struct {
	// HotOps is the per-tick operation count at or above which a shard runs
	// hot. 0 disables rate-based heat.
	HotOps float64
	// ColdOps is the per-tick operation count at or below which a shard runs
	// cold. It must be strictly below HotOps when both are set — the gap is
	// the hysteresis band in which a shard is neither, and both streaks
	// reset.
	ColdOps float64
	// HotLatency is the p99 quorum-round latency (seconds) at or above which
	// a shard runs hot regardless of rate. A shard that is persistently hot
	// by latency alone — slow nodes, not load — is drained onto fresh nodes
	// instead of split. 0 disables latency-based heat.
	HotLatency float64
	// HotQueue is the batch queue depth at or above which a shard runs hot.
	// 0 disables queue-based heat.
	HotQueue float64
	// SustainTicks is how many consecutive hot (or cold) ticks a shard must
	// accumulate before it is acted on (default 3).
	SustainTicks int
	// CooldownTicks is how many ticks after a resolved move the planner
	// refuses to plan again (default 5), so the topology settles and the
	// signals re-form before the next decision.
	CooldownTicks int
	// MaxMoves caps the total number of plans the planner will ever emit
	// (0 = unlimited). A bound here bounds the damage of a bad threshold.
	MaxMoves int
	// MinShards refuses merges that would shrink the topology below this
	// many shards (default 1).
	MinShards int
	// MaxShards refuses splits that would grow the topology above this many
	// shards (0 = unlimited).
	MaxShards int
}

// withDefaults fills the zero fields with the standard guardrails.
func (c Config) withDefaults() Config {
	if c.SustainTicks <= 0 {
		c.SustainTicks = 3
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 5
	}
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	return c
}

// validate rejects configurations whose thresholds cannot hysterese.
func (c Config) validate() error {
	if c.HotOps <= 0 && c.HotLatency <= 0 && c.HotQueue <= 0 && c.ColdOps <= 0 {
		return fmt.Errorf("autoshard: config enables no signal (set HotOps, HotLatency, HotQueue or ColdOps)")
	}
	if c.HotOps > 0 && c.ColdOps >= c.HotOps {
		return fmt.Errorf("autoshard: ColdOps (%v) must be below HotOps (%v); the gap is the hysteresis band", c.ColdOps, c.HotOps)
	}
	return nil
}

// Plan is one planned topology move and the signal that justified it.
type Plan struct {
	// Move is the reconfiguration move to apply.
	Move reconfig.Move
	// Reason is a human-readable one-liner for logs and failure artifacts.
	Reason string
}

// Stats are the planner's cumulative counters plus its current view.
type Stats struct {
	// Ticks counts Tick calls.
	Ticks int64
	// Plans counts emitted plans; Splits/Merges/Drains break them down.
	Plans, Splits, Merges, Drains int64
	// Applied, Dropped and Resumed count plan resolutions: applied cleanly,
	// dropped (backpressure or abort), and completed by re-driving an
	// interrupted move from the ledger.
	Applied, Dropped, Resumed int64
	// HotShards and ColdShards are the shards currently carrying a nonzero
	// hot (resp. cold) streak, as of the last tick.
	HotShards, ColdShards int
}

// streak is one shard's consecutive-classification state.
type streak struct {
	hot, cold int
	// latencyOnly records whether every hot tick of the current streak was
	// caused by latency alone — the signature of slow nodes rather than
	// load, answered by a drain rather than a split.
	latencyOnly bool
}

// Planner is the pure decision procedure. It is not safe for concurrent use;
// the Driver (or a simulator task) owns it.
type Planner struct {
	cfg      Config
	streaks  map[string]*streak
	cooldown int
	awaiting bool
	stats    Stats
}

// NewPlanner builds a planner; the error names the config mistake.
func NewPlanner(cfg Config) (*Planner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Planner{cfg: cfg, streaks: make(map[string]*streak)}, nil
}

// Stats returns the planner's counters and current hot/cold census.
func (p *Planner) Stats() Stats { return p.stats }

// Awaiting reports whether an emitted plan is still unresolved; the planner
// refuses to plan again until NoteResolved is called.
func (p *Planner) Awaiting() bool { return p.awaiting }

// NoteResolved tells the planner the outcome of the last emitted plan:
// applied (ok) or dropped (backpressure, abort, rejection). Either way the
// cooldown starts — even a dropped plan means the topology or its signals
// were just in flux.
func (p *Planner) NoteResolved(ok bool) {
	if !p.awaiting {
		return
	}
	p.awaiting = false
	p.cooldown = p.cfg.CooldownTicks
	if ok {
		p.stats.Applied++
	} else {
		p.stats.Dropped++
	}
}

// NoteResumed records a plan completed by re-driving its interrupted move
// from the ledger; it resolves like a success.
func (p *Planner) NoteResumed() {
	if !p.awaiting {
		return
	}
	p.awaiting = false
	p.cooldown = p.cfg.CooldownTicks
	p.stats.Resumed++
}

// classify buckets one sample, returning hot, cold, and whether the heat was
// latency-only.
func (p *Planner) classify(s Sample) (hot, cold, latencyOnly bool) {
	hotRate := p.cfg.HotOps > 0 && s.Ops >= p.cfg.HotOps
	hotQueue := p.cfg.HotQueue > 0 && s.QueueDepth >= p.cfg.HotQueue
	hotLat := p.cfg.HotLatency > 0 && s.LatencyP99 >= p.cfg.HotLatency
	hot = hotRate || hotQueue || hotLat
	if hot {
		return true, false, hotLat && !hotRate && !hotQueue
	}
	// A shard is cold only on the rate axis, and only below the low
	// threshold; the band between ColdOps and HotOps is neutral.
	return false, s.Ops <= p.cfg.ColdOps, false
}

// Tick feeds the planner one sample per live shard and returns at most one
// plan. The boolean reports whether a plan was emitted; an emitted plan puts
// the planner in the awaiting state until NoteResolved/NoteResumed.
func (p *Planner) Tick(samples []Sample) (Plan, bool) {
	p.stats.Ticks++

	// Update streaks, dropping state for shards that left the topology.
	seen := make(map[string]bool, len(samples))
	hotCount, coldCount := 0, 0
	for _, s := range samples {
		seen[s.Shard] = true
		st := p.streaks[s.Shard]
		if st == nil {
			st = &streak{}
			p.streaks[s.Shard] = st
		}
		hot, cold, latOnly := p.classify(s)
		switch {
		case hot:
			if st.hot == 0 {
				st.latencyOnly = true
			}
			st.latencyOnly = st.latencyOnly && latOnly
			st.hot++
			st.cold = 0
		case cold:
			st.cold++
			st.hot = 0
		default:
			// Neutral band: hysteresis resets both streaks.
			st.hot, st.cold = 0, 0
		}
		if st.hot > 0 {
			hotCount++
		}
		if st.cold > 0 {
			coldCount++
		}
	}
	for name := range p.streaks {
		if !seen[name] {
			delete(p.streaks, name)
		}
	}
	p.stats.HotShards, p.stats.ColdShards = hotCount, coldCount

	// Rate limiting: one move in flight, then a cooldown, then a lifetime
	// budget.
	if p.awaiting || p.cooldown > 0 {
		if !p.awaiting {
			p.cooldown--
		}
		return Plan{}, false
	}
	if p.cfg.MaxMoves > 0 && p.stats.Plans >= int64(p.cfg.MaxMoves) {
		return Plan{}, false
	}

	if pl, ok := p.planHot(samples); ok {
		return p.emit(pl), true
	}
	if pl, ok := p.planCold(samples); ok {
		return p.emit(pl), true
	}
	return Plan{}, false
}

// planHot picks the hottest sustained-hot shard: drain it if its heat is
// latency-only (slow nodes), otherwise split it (load). Splits respect
// MaxShards; drains keep the shard count and are always allowed.
func (p *Planner) planHot(samples []Sample) (Plan, bool) {
	var cands []Sample
	for _, s := range samples {
		if st := p.streaks[s.Shard]; st != nil && st.hot >= p.cfg.SustainTicks {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return Plan{}, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Ops != cands[j].Ops {
			return cands[i].Ops > cands[j].Ops
		}
		return cands[i].Shard < cands[j].Shard
	})
	for _, s := range cands {
		st := p.streaks[s.Shard]
		if st.latencyOnly {
			return Plan{
				Move:   reconfig.Move{Kind: reconfig.MoveDrain, Shard: s.Shard},
				Reason: fmt.Sprintf("shard %s hot by latency alone for %d ticks (p99 %.4fs): draining onto fresh nodes", s.Shard, st.hot, s.LatencyP99),
			}, true
		}
		if p.cfg.MaxShards > 0 && len(samples) >= p.cfg.MaxShards {
			continue // at the topology cap; a split would blow it
		}
		return Plan{
			Move:   reconfig.Move{Kind: reconfig.MoveSplit, Shard: s.Shard},
			Reason: fmt.Sprintf("shard %s hot for %d ticks (%.0f ops/tick): splitting", s.Shard, st.hot, s.Ops),
		}, true
	}
	return Plan{}, false
}

// planCold merges the two coldest sustained-cold shards, topology floor
// permitting.
func (p *Planner) planCold(samples []Sample) (Plan, bool) {
	if len(samples)-1 < p.cfg.MinShards {
		return Plan{}, false
	}
	var cands []Sample
	for _, s := range samples {
		if st := p.streaks[s.Shard]; st != nil && st.cold >= p.cfg.SustainTicks {
			cands = append(cands, s)
		}
	}
	if len(cands) < 2 {
		return Plan{}, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Ops != cands[j].Ops {
			return cands[i].Ops < cands[j].Ops
		}
		return cands[i].Shard < cands[j].Shard
	})
	a, b := cands[0], cands[1]
	return Plan{
		Move:   reconfig.Move{Kind: reconfig.MoveMerge, Shard: a.Shard, Shard2: b.Shard},
		Reason: fmt.Sprintf("shards %s and %s cold for %d+ ticks (%.0f and %.0f ops/tick): merging", a.Shard, b.Shard, p.cfg.SustainTicks, a.Ops, b.Ops),
	}, true
}

// emit finalizes a plan: count it, clear the involved shards' streaks (their
// routes are about to be replaced), and enter the awaiting state.
func (p *Planner) emit(pl Plan) Plan {
	p.stats.Plans++
	switch pl.Move.Kind {
	case reconfig.MoveSplit:
		p.stats.Splits++
	case reconfig.MoveMerge:
		p.stats.Merges++
	case reconfig.MoveDrain:
		p.stats.Drains++
	}
	delete(p.streaks, pl.Move.Shard)
	if pl.Move.Shard2 != "" {
		delete(p.streaks, pl.Move.Shard2)
	}
	p.awaiting = true
	return pl
}
