package autoshard

import "spacebounds/internal/metrics"

// Metric family names exported by the controller. All families are registered
// eagerly when a registry is attached, so dashboards and the doc-sync test
// see them even before the first tick.
const (
	metricTicks = "spacebounds_autoshard_ticks_total"
	metricPlans = "spacebounds_autoshard_plans_total"
	metricMoves = "spacebounds_autoshard_moves_total"
	metricHot   = "spacebounds_autoshard_hot_shards"
	metricCold  = "spacebounds_autoshard_cold_shards"
)

// meters is the controller's instrumentation; a nil *meters (no registry)
// no-ops throughout.
type meters struct {
	ticks *metrics.Counter
	plans map[string]*metrics.Counter // by move kind
	moves map[string]*metrics.Counter // by outcome
	hot   *metrics.Gauge
	cold  *metrics.Gauge
}

// newMeters registers every autoshard family and label combination up front.
func newMeters(reg *metrics.Registry) *meters {
	if reg == nil {
		return nil
	}
	m := &meters{
		ticks: reg.Counter(metricTicks, "autoshard control-loop ticks"),
		plans: make(map[string]*metrics.Counter),
		moves: make(map[string]*metrics.Counter),
		hot:   reg.Gauge(metricHot, "shards currently carrying a hot streak"),
		cold:  reg.Gauge(metricCold, "shards currently carrying a cold streak"),
	}
	for _, kind := range []string{"split", "merge", "drain"} {
		m.plans[kind] = reg.Counter(metricPlans, "topology plans emitted by the autoshard planner", metrics.L("kind", kind))
	}
	for _, outcome := range []string{"applied", "dropped", "resumed"} {
		m.moves[outcome] = reg.Counter(metricMoves, "autoshard plan resolutions", metrics.L("outcome", outcome))
	}
	return m
}

func (m *meters) tick(st Stats) {
	if m == nil {
		return
	}
	m.ticks.Inc()
	m.hot.Set(int64(st.HotShards))
	m.cold.Set(int64(st.ColdShards))
}

func (m *meters) plan(kind string) {
	if m == nil {
		return
	}
	if c := m.plans[kind]; c != nil {
		c.Inc()
	}
}

func (m *meters) move(outcome string) {
	if m == nil {
		return
	}
	if c := m.moves[outcome]; c != nil {
		c.Inc()
	}
}
