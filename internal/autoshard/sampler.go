package autoshard

import (
	"sort"

	"spacebounds/internal/metrics"
)

// Family names the sampler reads. They belong to the dsys and shard layers;
// the literals are repeated here because those packages keep them unexported,
// and the metrics doc-sync test pins all of them to docs/METRICS.md, so a
// rename there breaks loudly.
const (
	sampleRoundsTotal  = "spacebounds_dsys_quorum_rounds_total"
	sampleRoundSeconds = "spacebounds_dsys_quorum_round_seconds"
	sampleBatchSizeOps = "spacebounds_shard_batch_size_ops"
)

// RegistrySampler derives per-shard control signals from the metrics registry
// the store already exports: op rate from the quorum-round counters, p99
// latency from the quorum-round histogram, and queue depth from the batch
// size histograms. Everything is computed as a delta against the previous
// call, so each Sample describes exactly one tick window. The first call
// establishes the baseline and reports the counters as-is (one warm-up tick
// of inflated rates — the planner's sustain window absorbs it).
type RegistrySampler struct {
	reg    *metrics.Registry
	shards func() []string
	last   map[string]baseline
}

// baseline is one shard's counters as of the previous tick.
type baseline struct {
	rounds  int64
	latency metrics.HistogramSnapshot
	batchW  metrics.HistogramSnapshot
	batchR  metrics.HistogramSnapshot
}

// NewRegistrySampler builds a sampler over the registry; shards enumerates
// the live shard names each tick (retired shards fall out of the baseline
// automatically).
func NewRegistrySampler(reg *metrics.Registry, shards func() []string) *RegistrySampler {
	return &RegistrySampler{reg: reg, shards: shards, last: make(map[string]baseline)}
}

// Sample reads the registry once and returns one Sample per live shard, in
// shard-name order.
func (s *RegistrySampler) Sample() []Sample {
	names := s.shards()
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	next := make(map[string]baseline, len(names))
	for _, name := range names {
		region := metrics.L("region", name)
		sl := metrics.L("shard", name)
		cur := baseline{
			// Reading through the getters creates absent series, which is
			// exactly right: a brand-new shard starts from zero.
			rounds: s.reg.Counter(sampleRoundsTotal, "quorum rounds completed by region and outcome", region, metrics.L("outcome", "ok")).Value() +
				s.reg.Counter(sampleRoundsTotal, "quorum rounds completed by region and outcome", region, metrics.L("outcome", "error")).Value(),
			latency: s.reg.Histogram(sampleRoundSeconds, "quorum round latency by region", metrics.LatencyBuckets(), region).Snapshot(),
			batchW:  s.reg.Histogram(sampleBatchSizeOps, "operations carried per shared quorum round", metrics.CountBuckets(), sl, metrics.L("lane", "write")).Snapshot(),
			batchR:  s.reg.Histogram(sampleBatchSizeOps, "operations carried per shared quorum round", metrics.CountBuckets(), sl, metrics.L("lane", "read")).Snapshot(),
		}
		prev := s.last[name]
		lat := snapshotDelta(cur.latency, prev.latency)
		batch := snapshotDelta(cur.batchW, prev.batchW)
		batch = addSnapshot(batch, snapshotDelta(cur.batchR, prev.batchR))
		out = append(out, Sample{
			Shard:      name,
			Ops:        float64(cur.rounds - prev.rounds),
			LatencyP99: lat.Quantile(0.99),
			QueueDepth: batch.Mean(),
		})
		next[name] = cur
	}
	s.last = next
	return out
}

// snapshotDelta subtracts a previous histogram snapshot from the current one,
// yielding the distribution of just the window between them. A previous
// snapshot with mismatched buckets (or none at all) yields the current
// snapshot unchanged.
func snapshotDelta(cur, prev metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	if prev.Count == 0 || len(prev.Counts) != len(cur.Counts) {
		return cur
	}
	d := metrics.HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d
}

// addSnapshot merges two same-shaped snapshots (used to fold the read and
// write batch lanes into one occupancy signal).
func addSnapshot(a, b metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	if len(a.Counts) == 0 {
		return b
	}
	if len(b.Counts) != len(a.Counts) {
		return a
	}
	sum := metrics.HistogramSnapshot{
		Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)),
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
	}
	for i := range a.Counts {
		sum.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return sum
}
