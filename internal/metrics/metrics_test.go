package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x", "help")
	h := r.Histogram("x_seconds", "help", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics, got %v %v %v", c, g, h)
	}
	// Every method on the nil metrics must be a no-op, not a panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("nil histogram snapshot: %+v", got)
	}
	if r.Families() != nil || r.SortedFamilyNames() != nil {
		t.Fatalf("nil registry families must be nil")
	}
	r.WritePrometheus(io.Discard)
	r.WriteSummary(io.Discard)
	if r.String() != "{}" {
		t.Fatalf("nil registry expvar = %q", r.String())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", L("status", "ok"))
	c.Inc()
	c.Add(4)
	c.Add(-2) // negative deltas dropped: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "requests", L("status", "ok")); again != c {
		t.Fatalf("get-or-create must return the same series")
	}
	other := r.Counter("requests_total", "requests", L("status", "error"))
	if other == c {
		t.Fatalf("different label values must be different series")
	}
	g := r.Gauge("inflight", "in-flight")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryPanicsOnTypeMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("thing_total", "help")
}

func TestRegistryPanicsOnLabelKeyMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total", "help", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with different label keys must panic")
		}
	}()
	r.Counter("thing_total", "help", L("b", "1"))
}

// TestHistogramBucketBoundaries pins the "le" semantics: an observation
// exactly on a bound lands in that bound's bucket, one epsilon above lands
// in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{1, 2, 4})
	h.Observe(1)       // bucket le=1
	h.Observe(1.00001) // bucket le=2
	h.Observe(2)       // bucket le=2
	h.Observe(4)       // bucket le=4
	h.Observe(99)      // +Inf bucket
	h.Observe(0)       // le=1
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], n, s)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-(1+1.00001+2+4+99)) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// TestHistogramQuantiles checks the interpolated estimates on a known
// distribution: 100 observations uniform over (0, 1] against bounds every
// 0.1 must estimate q to within one bucket width.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64(i+1) / 10
	}
	h := r.Histogram("q_seconds", "help", bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := s.Quantile(q)
		if math.Abs(got-q) > 0.1 {
			t.Fatalf("Quantile(%v) = %v, want within 0.1", q, got)
		}
	}
	// Exactly at a bucket boundary the estimate is exact.
	if got := s.Quantile(0.10); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("Quantile(0.10) = %v, want 0.10", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Quantile(1.0) = %v, want 1.0", got)
	}
	if got := s.Mean(); math.Abs(got-0.505) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.505", got)
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("o_seconds", "help", []float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	// Everything is in the +Inf bucket; the estimate degrades to the largest
	// finite bound rather than inventing a number.
	if got := h.Snapshot().Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestConcurrentUpdates hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this pins the lock-free update
// paths, and the final counts must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Exercise get-or-create concurrently too.
			c := r.Counter("conc_total", "help")
			h := r.Histogram("conc_seconds", "help", LatencyBuckets())
			gauge := r.Gauge("conc_inflight", "help")
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(float64(g*perG+i) * 1e-6)
				gauge.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "help").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("conc_inflight", "help").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("conc_seconds", "help", LatencyBuckets())
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	// The CAS-looped sum must be exact, not approximately right: every
	// observation is a multiple of 1e-6 and float64 carries them all.
	wantSum := 0.0
	for i := 0; i < goroutines*perG; i++ {
		wantSum += float64(i) * 1e-6
	}
	if got := h.Snapshot().Sum; math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestPrometheusGolden pins the text exposition format end to end.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_ops_total", "operations served", L("kind", "write")).Add(3)
	r.Counter("sb_ops_total", "operations served", L("kind", "read")).Add(1)
	r.Gauge("sb_inflight", "in-flight frames").Set(2)
	h := r.Histogram("sb_lat_seconds", "operation latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	b := &strings.Builder{}
	r.WritePrometheus(b)
	want := `# HELP sb_ops_total operations served
# TYPE sb_ops_total counter
sb_ops_total{kind="read"} 1
sb_ops_total{kind="write"} 3
# HELP sb_inflight in-flight frames
# TYPE sb_inflight gauge
sb_inflight 2
# HELP sb_lat_seconds operation latency
# TYPE sb_lat_seconds histogram
sb_lat_seconds_bucket{le="0.5"} 1
sb_lat_seconds_bucket{le="1"} 2
sb_lat_seconds_bucket{le="+Inf"} 3
sb_lat_seconds_sum 4
sb_lat_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestExpvarGolden pins the JSON shape: families keyed by name, histogram
// series carrying count/sum/quantiles.
func TestExpvarGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_ops_total", "ops", L("kind", "write")).Add(2)
	h := r.Histogram("sb_lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var doc map[string][]map[string]any
	if err := json.Unmarshal([]byte(r.String()), &doc); err != nil {
		t.Fatalf("expvar JSON does not parse: %v", err)
	}
	ops := doc["sb_ops_total"]
	if len(ops) != 1 || ops[0]["value"].(float64) != 2 {
		t.Fatalf("counter series: %+v", ops)
	}
	if ops[0]["labels"].(map[string]any)["kind"] != "write" {
		t.Fatalf("counter labels: %+v", ops)
	}
	lat := doc["sb_lat_seconds"]
	if len(lat) != 1 || lat[0]["count"].(float64) != 2 || lat[0]["sum"].(float64) != 2 {
		t.Fatalf("histogram series: %+v", lat)
	}
	if lat[0]["p50"].(float64) <= 0 {
		t.Fatalf("histogram p50 missing: %+v", lat)
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_redials_total", "redials").Inc()
	r.Counter("sb_silent_total", "never incremented")
	h := r.Histogram("sb_lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.002)
	r.Histogram("sb_empty_seconds", "empty", []float64{1})
	b := &strings.Builder{}
	r.WriteSummary(b)
	out := b.String()
	if !strings.Contains(out, "sb_lat_seconds") || !strings.Contains(out, "p99=") {
		t.Fatalf("summary missing histogram digest:\n%s", out)
	}
	if !strings.Contains(out, "sb_redials_total") {
		t.Fatalf("summary missing non-zero counter:\n%s", out)
	}
	if strings.Contains(out, "sb_empty_seconds") || strings.Contains(out, "sb_silent_total") {
		t.Fatalf("summary must omit empty series:\n%s", out)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_e2e_total", "end-to-end counter").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if got := get("/metrics"); !strings.Contains(got, "sb_e2e_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", got)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "memstats") {
		t.Fatalf("/debug/vars not expvar-shaped:\n%.200s", vars)
	}
	// The registry published under "spacebounds" must appear — this process
	// may have published an earlier registry under the shared global name, so
	// assert the key exists rather than this exact registry's content.
	if !strings.Contains(vars, `"spacebounds"`) {
		t.Fatalf("/debug/vars missing the published registry:\n%.200s", vars)
	}
}

// TestHotPathAllocations pins goal #2 of the package: observation never
// allocates, so instrumentation can sit on the per-RMW hot path.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "help")
	g := r.Gauge("alloc_gauge", "help")
	h := r.Histogram("alloc_seconds", "help", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
	// Disabled (nil) metrics must also be allocation-free.
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilC.Inc(); nilH.Observe(1) }); n != 0 {
		t.Fatalf("disabled metrics allocate %v per op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "help", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
