// Package metrics is the system's dependency-free observability registry:
// counters, gauges, and fixed-bucket latency histograms with quantile
// summaries, exported over both expvar-style JSON and the Prometheus text
// format (see export.go and http.go).
//
// The design goals, in order:
//
//  1. Near-zero overhead when disabled. Every constructor on a nil *Registry
//     returns a nil metric, and every metric method is nil-safe, so an
//     uninstrumented hot path pays one predictable branch per call site and
//     allocates nothing. Subsystems therefore take a *Registry directly and
//     never wrap it in an interface or a feature flag.
//  2. Zero allocations when enabled. Counters and gauges are single atomics;
//     a histogram observation is a binary search over a fixed bucket table
//     plus two atomic adds. Nothing on the observation path allocates, which
//     a test pins with testing.AllocsPerRun.
//  3. Doc-syncable. Every metric family (name, type, help, label keys) is
//     recorded at registration, so docs/METRICS.md can be checked against the
//     registry at runtime instead of drifting (see the doc-sync test in the
//     root package).
//
// Metric identity is the family name plus an ordered label list; registering
// the same name with a different type or label key set panics, which turns
// cross-subsystem naming collisions into immediate test failures rather than
// silently merged time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value pair attached to a metric series. Labels are
// ordered; all series of one family must pass the same keys in the same
// order.
type Label struct {
	// Key is the label name (e.g. "shard").
	Key string
	// Value is the label value (e.g. "s0").
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Type enumerates the metric kinds the registry supports.
type Type int

// Metric kinds.
const (
	// TypeCounter is a monotonically increasing count.
	TypeCounter Type = iota
	// TypeGauge is an instantaneous value that can go up and down.
	TypeGauge
	// TypeHistogram is a fixed-bucket distribution with count and sum.
	TypeHistogram
)

// String implements fmt.Stringer with the Prometheus type names.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Family is the metadata of one metric name: its type, help text, and label
// key set. The doc-sync test walks families, not individual series, so
// per-shard and per-node label values never need doc table rows.
type Family struct {
	// Name is the full metric name (e.g. "spacebounds_dsys_quorum_round_seconds").
	Name string
	// Type is the metric kind.
	Type Type
	// Help is the one-line description emitted as # HELP.
	Help string
	// LabelKeys are the label names every series of the family carries.
	LabelKeys []string
}

// Registry holds metric families and their series. The zero value is not
// usable; call NewRegistry. A nil *Registry is the disabled registry: every
// constructor returns nil and every exported method no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*Family),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// seriesKey builds the map key of one series: name plus rendered labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	b := strings.Builder{}
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register records the family, panicking on a type or label-key mismatch
// with an earlier registration of the same name. Caller holds r.mu.
func (r *Registry) register(name, help string, t Type, labels []Label) {
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}
	if f, ok := r.families[name]; ok {
		if f.Type != t {
			panic(fmt.Sprintf("metrics: %s re-registered as %v, was %v", name, t, f.Type))
		}
		if len(f.LabelKeys) != len(keys) {
			panic(fmt.Sprintf("metrics: %s re-registered with label keys %v, was %v", name, keys, f.LabelKeys))
		}
		for i := range keys {
			if f.LabelKeys[i] != keys[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with label keys %v, was %v", name, keys, f.LabelKeys))
			}
		}
		return
	}
	r.families[name] = &Family{Name: name, Type: t, Help: help, LabelKeys: keys}
	r.order = append(r.order, name)
}

// Families returns the registered families in registration order.
func (r *Registry) Families() []Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Family, 0, len(r.order))
	for _, name := range r.order {
		f := *r.families[name]
		f.LabelKeys = append([]string(nil), f.LabelKeys...)
		out = append(out, f)
	}
	return out
}

// Counter returns the counter series for name+labels, creating it (and its
// family) on first use. On a nil registry it returns nil, which is the
// disabled counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[key]; c != nil {
		return c
	}
	r.register(name, help, TypeCounter, labels)
	c = &Counter{labels: append([]Label(nil), labels...)}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[key]; g != nil {
		return g
	}
	r.register(name, help, TypeGauge, labels)
	g = &Gauge{labels: append([]Label(nil), labels...)}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram series for name+labels, creating it with
// the given bucket upper bounds (ascending; +Inf is implicit) on first use.
// Series of one family share the first-registered bucket table.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[key]; h != nil {
		return h
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending: %v", name, buckets))
		}
	}
	r.register(name, help, TypeHistogram, labels)
	h = &Histogram{
		labels: append([]Label(nil), labels...),
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.hists[key] = h
	return h
}

// Counter is a monotonically increasing count. A nil *Counter is disabled:
// all methods no-op.
type Counter struct {
	n      atomic.Int64
	labels []Label
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds delta (negative deltas are a programming error and are dropped).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous value. A nil *Gauge is disabled.
type Gauge struct {
	n      atomic.Int64
	labels []Label
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.n.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// Histogram is a fixed-bucket distribution. Observations are in the unit the
// family name declares (seconds for latency families, following the
// Prometheus convention). A nil *Histogram is disabled.
type Histogram struct {
	labels []Label
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; counts[i] observations in bucket i
	count  atomic.Uint64
	sumX   atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v ("le" semantics: an observation
	// exactly on a bound counts in that bound's bucket).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumX.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumX.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records time elapsed since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram: per-bucket cumulative counts, total count, and sum. Snapshots
// taken during concurrent observation may be torn by at most the
// observations in flight, which is the usual scrape-time contract.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (+Inf excluded).
	Bounds []float64
	// Counts[i] is the number of observations in bucket i; len(Bounds)+1
	// entries, the last being the +Inf overflow bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot copies the histogram's current state (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumX.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution by linear interpolation within the bucket that contains the
// target rank — the standard fixed-bucket estimate, exact at bucket bounds.
// Observations in the +Inf bucket are estimated as the largest finite bound.
// It returns 0 for an empty (or nil) histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(n)
		return lower + (upper-lower)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LatencyBuckets is the default bucket table for latency histograms:
// exponential from 50µs to ~13s, sized so both the in-process simulated
// cluster (tens of µs per service period) and real TCP round trips (ms) land
// in the interpolable range.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 18)
	for b := 50e-6; b < 15; b *= 2 {
		out = append(out, b)
	}
	return out
}

// CountBuckets is the default bucket table for small-count distributions
// (batch sizes): 1, 2, 4, ... 512.
func CountBuckets() []float64 {
	out := make([]float64, 0, 10)
	for b := 1.0; b <= 512; b *= 2 {
		out = append(out, b)
	}
	return out
}

// labelString renders labels for export, sorted output not required — labels
// keep their registration order, which all series of a family share.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	b := strings.Builder{}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortedSeriesKeys returns the series keys of one family, sorted for
// deterministic export. Caller holds r.mu (read).
func sortedKeysOf[T any](m map[string]T, family string) []string {
	keys := make([]string, 0, 4)
	for k := range m {
		if k == family || strings.HasPrefix(k, family+"{") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
