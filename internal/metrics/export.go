package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE per family, one line
// per counter/gauge series, and the _bucket/_sum/_count expansion per
// histogram series. Families appear in registration order, series of a
// family in sorted order, so output is deterministic and golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, f.Help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.Type)
		switch f.Type {
		case TypeCounter:
			for _, key := range sortedKeysOf(r.counters, name) {
				c := r.counters[key]
				fmt.Fprintf(w, "%s%s %d\n", name, labelString(c.labels), c.Value())
			}
		case TypeGauge:
			for _, key := range sortedKeysOf(r.gauges, name) {
				g := r.gauges[key]
				fmt.Fprintf(w, "%s%s %d\n", name, labelString(g.labels), g.Value())
			}
		case TypeHistogram:
			for _, key := range sortedKeysOf(r.hists, name) {
				h := r.hists[key]
				s := h.Snapshot()
				cum := uint64(0)
				for i, bound := range s.Bounds {
					cum += s.Counts[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(h.labels, formatFloat(bound)), cum)
				}
				cum += s.Counts[len(s.Counts)-1]
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(h.labels, "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(h.labels), formatFloat(s.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(h.labels), s.Count)
			}
		}
	}
}

// bucketLabels renders a histogram bucket's label set: the series labels
// plus the cumulative "le" bound.
func bucketLabels(labels []Label, le string) string {
	b := strings.Builder{}
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	fmt.Fprintf(&b, "le=%q}", le)
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvarSeries is one series in the expvar JSON rendering.
type expvarSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

// String implements expvar.Var: the whole registry as one JSON object keyed
// by family name, each family an array of series. Histogram series carry
// count, sum, and the p50/p95/p99 estimates rather than raw buckets — the
// expvar view is for humans and polling scripts; Prometheus gets the full
// bucket expansion.
func (r *Registry) String() string {
	if r == nil {
		return "{}"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	doc := make(map[string][]expvarSeries, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		var out []expvarSeries
		switch f.Type {
		case TypeCounter:
			for _, key := range sortedKeysOf(r.counters, name) {
				c := r.counters[key]
				out = append(out, expvarSeries{Labels: labelMap(c.labels), Value: c.Value()})
			}
		case TypeGauge:
			for _, key := range sortedKeysOf(r.gauges, name) {
				g := r.gauges[key]
				out = append(out, expvarSeries{Labels: labelMap(g.labels), Value: g.Value()})
			}
		case TypeHistogram:
			for _, key := range sortedKeysOf(r.hists, name) {
				h := r.hists[key]
				s := h.Snapshot()
				out = append(out, expvarSeries{
					Labels: labelMap(h.labels),
					Count:  s.Count,
					Sum:    s.Sum,
					P50:    s.Quantile(0.50),
					P95:    s.Quantile(0.95),
					P99:    s.Quantile(0.99),
				})
			}
		}
		doc[name] = out
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Sprintf("{\"error\":%q}", err.Error())
	}
	return string(data)
}

// labelMap converts the ordered label list to a map for JSON rendering.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// WriteSummary prints a human-readable digest of every histogram series with
// at least one observation — count, mean, p50/p95/p99 — plus every non-zero
// counter. It is what spacebench prints at the end of a -connect run.
func (r *Registry) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		switch f.Type {
		case TypeHistogram:
			for _, key := range sortedKeysOf(r.hists, name) {
				h := r.hists[key]
				s := h.Snapshot()
				if s.Count == 0 {
					continue
				}
				fmt.Fprintf(w, "  %-58s n=%-7d mean=%s p50=%s p95=%s p99=%s\n",
					name+labelString(h.labels), s.Count,
					formatSeconds(s.Mean()), formatSeconds(s.Quantile(0.50)),
					formatSeconds(s.Quantile(0.95)), formatSeconds(s.Quantile(0.99)))
			}
		case TypeCounter:
			for _, key := range sortedKeysOf(r.counters, name) {
				c := r.counters[key]
				if v := c.Value(); v != 0 {
					fmt.Fprintf(w, "  %-58s %d\n", name+labelString(c.labels), v)
				}
			}
		}
	}
}

// formatSeconds renders a histogram statistic. Latency families observe
// seconds; count families (batch sizes) observe dimensionless values, so
// small magnitudes print as durations and the rest as plain numbers.
func formatSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1:
		return fmt.Sprintf("%.3gms", v*1e3)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// SortedFamilyNames returns every registered family name, sorted. The
// doc-sync test compares this against the table in docs/METRICS.md.
func (r *Registry) SortedFamilyNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
