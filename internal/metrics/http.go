package metrics

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the Prometheus text-format scrape handler for the
// registry (mounted at /metrics by Serve).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// PublishExpvar publishes the registry into the process-global expvar
// namespace under the given name, so the standard /debug/vars page includes
// it next to memstats. Publishing the same name twice is a no-op (expvar
// forbids replacement), which makes the call safe for tests that build many
// registries in one process — only the first one wins the global name.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}

// Server is a running metrics HTTP endpoint (see Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Mount adds one extra handler to the endpoint Serve builds, so subsystems
// the metrics package must not import (the trace dump, say) can still ride
// the same operational port.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Serve binds addr and serves the registry over HTTP:
//
//	/metrics        Prometheus text format
//	/debug/vars     standard expvar JSON (the registry published as "spacebounds")
//	/debug/pprof/   standard runtime profiles (CPU, heap, goroutine, block, ...)
//
// plus any extra mounts. It returns once the listener is bound; requests are
// served in the background until Close. Pass an address with port 0 to pick
// an ephemeral port and read it back from Addr.
func Serve(addr string, r *Registry, extra ...Mount) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("spacebounds")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
