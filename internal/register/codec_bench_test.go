package register_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// BenchmarkEnvelopeCodec measures the full wire path of one RMW per kind —
// codec encode, envelope marshal, unmarshal, codec decode — which is the
// per-request serialization cost the loopback transport adds to the local
// engine and the TCP transport pays per frame.
func BenchmarkEnvelopeCodec(b *testing.B) {
	op := dsys.OpID{Client: 11, Seq: 42, Kind: dsys.OpWrite}
	for _, kind := range register.CodecKinds() {
		payload := seedPayloads()[kind]
		c, ok := register.CodecByKind(kind)
		if !ok {
			b.Fatalf("kind %q not registered", kind)
		}
		rmw, err := c.Decode(payload)
		if err != nil {
			b.Fatalf("%s: seed does not decode: %v", kind, err)
		}
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := register.EncodeEnvelope(op, 5, rmw)
				if err != nil {
					b.Fatal(err)
				}
				wire, err := env.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				got, err := dsys.UnmarshalEnvelope(wire)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := register.DecodeRMW(got); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
