package register_test

import (
	"errors"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
)

// fakeState is a State type no provider registers, for negative paths and
// registry-conflict checks.
type fakeState struct{ b byte }

func (fakeState) Blocks() []dsys.BlockRef { return nil }

// otherFakeState shares fakeState's codec kind in the duplicate-kind check.
type otherFakeState struct{}

func (otherFakeState) Blocks() []dsys.BlockRef { return nil }

func fakeCodec(kind string) register.StateCodec {
	return register.StateCodec{
		Kind:   kind,
		Encode: func(s dsys.State) ([]byte, error) { return []byte{s.(fakeState).b}, nil },
		Decode: func(p []byte) (dsys.State, error) { return fakeState{b: p[0]}, nil },
	}
}

// TestStateCodecKinds: every provider registered its state codec at init.
func TestStateCodecKinds(t *testing.T) {
	kinds := register.StateCodecKinds()
	got := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		got[k] = true
	}
	for _, want := range []string{"abd.state", "adaptive.state", "ec.state", "safe.state"} {
		if !got[want] {
			t.Errorf("StateCodecKinds() = %v, missing %q", kinds, want)
		}
	}
}

// TestStateCodecErrors covers the registry's refusal paths: unknown state
// types, unknown kinds, and payloads the provider codec rejects — all typed
// ErrCodec so callers can distinguish codec trouble from I/O trouble.
func TestStateCodecErrors(t *testing.T) {
	if _, _, err := register.EncodeState(otherFakeState{}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("EncodeState(unregistered type) = %v, want ErrCodec", err)
	}
	if _, err := register.DecodeState("no.such.state", nil); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeState(unknown kind) = %v, want ErrCodec", err)
	}
	if _, err := register.DecodeState("abd.state", []byte{0xff}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeState(garbage payload) = %v, want ErrCodec", err)
	}
}

// TestStateCodecRegistryRoundTripAndConflicts registers a test-only codec,
// round-trips through it, and checks the duplicate and incompleteness panics
// that keep the global registry unambiguous.
func TestStateCodecRegistryRoundTripAndConflicts(t *testing.T) {
	register.RegisterStateCodec(fakeCodec("test.fake-state"), fakeState{})
	kind, payload, err := register.EncodeState(fakeState{b: 7})
	if err != nil || kind != "test.fake-state" {
		t.Fatalf("EncodeState = %q, %v", kind, err)
	}
	dec, err := register.DecodeState(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.(fakeState).b; got != 7 {
		t.Fatalf("round-trip = %d, want 7", got)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate kind", func() {
		register.RegisterStateCodec(fakeCodec("test.fake-state"), otherFakeState{})
	})
	mustPanic("duplicate type", func() {
		register.RegisterStateCodec(fakeCodec("test.fake-state-2"), fakeState{})
	})
	mustPanic("incomplete codec", func() {
		register.RegisterStateCodec(register.StateCodec{Kind: "test.incomplete"}, otherFakeState{})
	})
}
