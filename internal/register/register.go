// Package register defines the shared vocabulary of the register emulations:
// lexicographic timestamps, timestamped code-block chunks, the emulation
// configuration n = 2f + k, and the Register interface implemented by the
// adaptive algorithm (Section 5), the safe register (Appendix E), and the
// ABD and pure-erasure-coded baselines.
package register

import (
	"errors"
	"fmt"
	"sort"

	"spacebounds/internal/dsys"
	"spacebounds/internal/erasure"
	"spacebounds/internal/oracle"
	"spacebounds/internal/value"
)

// Timestamp is the pair ⟨num, client⟩ ordered lexicographically
// (Algorithm 1, line 1). The zero timestamp tags the initial value v0.
type Timestamp struct {
	Num    int
	Client int
}

// ZeroTS is the timestamp of the initial value v0.
var ZeroTS = Timestamp{}

// Less reports whether t orders strictly before other.
func (t Timestamp) Less(other Timestamp) bool {
	if t.Num != other.Num {
		return t.Num < other.Num
	}
	return t.Client < other.Client
}

// LessEq reports whether t orders before or equals other.
func (t Timestamp) LessEq(other Timestamp) bool { return t == other || t.Less(other) }

// Max returns the larger of t and other.
func (t Timestamp) Max(other Timestamp) Timestamp {
	if t.Less(other) {
		return other
	}
	return t
}

// String implements fmt.Stringer.
func (t Timestamp) String() string { return fmt.Sprintf("ts(%d,%d)", t.Num, t.Client) }

// MaxTimestamp returns the largest timestamp in the slice, or ZeroTS if the
// slice is empty.
func MaxTimestamp(ts []Timestamp) Timestamp {
	max := ZeroTS
	for _, t := range ts {
		max = max.Max(t)
	}
	return max
}

// Chunk is a timestamped code block together with the source tag that traces
// it back to the write that produced it (Algorithm 1, line 3: Chunks =
// Pieces x TimeStamps; the source tag realizes Definition 4's source
// function and is treated as meta-data, so it is not charged to storage).
type Chunk struct {
	TS     Timestamp
	Block  erasure.Block
	Source oracle.SourceTag
}

// Ref converts the chunk into the runtime's storage-accounting reference.
func (c Chunk) Ref() dsys.BlockRef {
	return dsys.BlockRef{Source: c.Source, Bits: c.Block.SizeBits()}
}

// CloneChunks deep-copies a chunk slice; RMW responses use it so that client
// code never aliases base-object state.
func CloneChunks(chunks []Chunk) []Chunk {
	out := make([]Chunk, len(chunks))
	for i, c := range chunks {
		out[i] = Chunk{TS: c.TS, Block: c.Block.Clone(), Source: c.Source}
	}
	return out
}

// ChunkRefs converts chunks to storage-accounting references.
func ChunkRefs(chunks []Chunk) []dsys.BlockRef {
	out := make([]dsys.BlockRef, len(chunks))
	for i, c := range chunks {
		out[i] = c.Ref()
	}
	return out
}

// Config describes a register emulation instance. The paper's resilience
// relation is n = 2f + k: any two quorums of n-f base objects intersect in
// at least k objects, which is what lets a reader find k pieces of a
// completely written value.
type Config struct {
	// F is the number of base-object crash failures tolerated.
	F int
	// K is the erasure-code decode threshold; K = 1 yields full replication.
	K int
	// DataLen is the value size in bytes (D = 8*DataLen bits).
	DataLen int
	// Code is the coding scheme; it must be a K-of-N() symmetric code. If nil,
	// constructors build a Reed-Solomon code (or replication when K == 1).
	Code erasure.Code
}

// Errors shared by register implementations.
var (
	// ErrConfig indicates an invalid configuration.
	ErrConfig = errors.New("register: invalid configuration")
	// ErrReadStarved is returned when a read exhausts its retry budget
	// because new values keep being written concurrently; FW-termination
	// only promises read completion once writes stop.
	ErrReadStarved = errors.New("register: read exhausted its retry budget (writes still in progress)")
)

// N returns the number of base objects, 2F + K.
func (c Config) N() int { return 2*c.F + c.K }

// Quorum returns the quorum size n - f every round waits for.
func (c Config) Quorum() int { return c.N() - c.F }

// DataBits returns D in bits.
func (c Config) DataBits() int { return 8 * c.DataLen }

// Validate checks the configuration and fills in a default code if none is
// set. It returns the normalized configuration.
func (c Config) Validate() (Config, error) {
	if c.F < 0 {
		return c, fmt.Errorf("%w: f = %d must be non-negative", ErrConfig, c.F)
	}
	if c.K < 1 {
		return c, fmt.Errorf("%w: k = %d must be at least 1", ErrConfig, c.K)
	}
	if c.DataLen < 1 {
		return c, fmt.Errorf("%w: data length %d must be positive", ErrConfig, c.DataLen)
	}
	if c.N() > 255 {
		return c, fmt.Errorf("%w: n = %d exceeds the GF(2^8) code limit of 255", ErrConfig, c.N())
	}
	if c.Code == nil {
		var err error
		if c.K == 1 {
			c.Code, err = erasure.NewReplication(c.N())
		} else {
			c.Code, err = erasure.NewReedSolomon(c.K, c.N())
		}
		if err != nil {
			return c, fmt.Errorf("%w: building default code: %v", ErrConfig, err)
		}
	}
	if c.Code.K() != c.K || c.Code.N() < c.N() {
		return c, fmt.Errorf("%w: code %s does not match k=%d n=%d", ErrConfig, c.Code.Name(), c.K, c.N())
	}
	if err := erasure.CheckSymmetry(c.Code, c.DataLen); err != nil {
		return c, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return c, nil
}

// TimestampedReader is implemented by register emulations whose read can also
// report the internal timestamp of the value it returns. The zero timestamp
// means the register has never been written (the read returned v0).
//
// Reconfiguration depends on this: while a shard migrates, a read consults
// both epochs and the new epoch's value wins exactly when its register has a
// nonzero timestamp — lexicographic (epoch, timestamp) order — so the router
// needs the timestamp, not just the value. All built-in emulations implement
// it; a shard whose register does not cannot be migrated live.
type TimestampedReader interface {
	ReadTimestamped(h *dsys.ClientHandle) (value.Value, Timestamp, error)
}

// SeedTS is the fixed timestamp of reconfiguration seed writes. It is
// strictly above ZeroTS (so a dual-epoch read recognizes a seeded successor)
// and its client component is below every real client ID, so the first
// client write on a seeded register — whose read phase must intersect the
// seed's write quorum — always picks a strictly larger timestamp.
//
// Fixing the timestamp is what makes seeding idempotent: every WriteSeed of
// the same value onto a fresh register installs the identical
// ⟨timestamp, value⟩ pair, so a crash-interrupted migration can simply be
// re-driven — stale RMWs of an earlier seed attempt that land arbitrarily
// late are byte-identical no-ops and can never supersede a later client
// write, which a read-phase-chosen timestamp could (an interrupted seed's
// partially applied high timestamp may be missed by the retry's read quorum).
var SeedTS = Timestamp{Num: 1, Client: -1}

// SeedWriter is implemented by register emulations that support the
// reconfiguration migration writer's idempotent seed write: a write of v at
// the fixed SeedTS, with no read phase. It must only be used against a fresh
// (never client-written) register whose writes are held — the seed has to be
// the register's first write — which is exactly the state a migration
// successor is in between the routing-table flip and its activation. All
// built-in emulations implement it.
type SeedWriter interface {
	WriteSeed(h *dsys.ClientHandle, v value.Value) error
}

// SeedChunks is the shared front half of every WriteSeed implementation: it
// validates v against the configuration, encodes it for the caller's current
// write operation, and stamps every chunk with the fixed SeedTS. The caller
// owns the operation (BeginOp/EndOp) and must Expire the returned encoder;
// only the protocol-specific RMW rounds remain per emulation.
func SeedChunks(cfg Config, op dsys.OpID, v value.Value) ([]Chunk, *oracle.Encoder, error) {
	if v.SizeBytes() != cfg.DataLen {
		return nil, nil, fmt.Errorf("%w: value has %d bytes, config says %d", ErrConfig, v.SizeBytes(), cfg.DataLen)
	}
	chunks, enc, err := EncodeWrite(cfg, op.WriteID(), v)
	if err != nil {
		return nil, nil, err
	}
	for i := range chunks {
		chunks[i].TS = SeedTS
	}
	return chunks, enc, nil
}

// Register is a multi-writer multi-reader register emulation bound to a
// configuration. Implementations are stateless facades: all mutable state
// lives in the base objects of the cluster the operations run against.
type Register interface {
	// Name identifies the algorithm, e.g. "adaptive(f=2,k=2)".
	Name() string
	// Config returns the emulation's configuration.
	Config() Config
	// InitialStates returns fresh base-object states holding the initial
	// value v0, suitable for dsys.NewCluster.
	InitialStates(v0 value.Value) ([]dsys.State, error)
	// Write performs a high-level write of v using the given client handle.
	Write(h *dsys.ClientHandle, v value.Value) error
	// Read performs a high-level read using the given client handle.
	Read(h *dsys.ClientHandle) (value.Value, error)
}

// EncodeWrite runs the write-side oracle for value v: it produces the n
// blocks, tags them, and returns them as timestamp-free chunks in block-index
// order (index i+1 is destined for base object i).
func EncodeWrite(cfg Config, w oracle.WriteID, v value.Value) ([]Chunk, *oracle.Encoder, error) {
	enc := oracle.NewEncoder(cfg.Code, w, v)
	chunks := make([]Chunk, 0, cfg.N())
	for i := 1; i <= cfg.N(); i++ {
		b, tag, err := enc.Get(i)
		if err != nil {
			return nil, nil, fmt.Errorf("register: encoding block %d: %w", i, err)
		}
		chunks = append(chunks, Chunk{Block: b, Source: tag})
	}
	return chunks, enc, nil
}

// InitialChunks encodes the initial value v0 and returns its chunks tagged
// with the zero timestamp and the InitialWrite source.
func InitialChunks(cfg Config, v0 value.Value) ([]Chunk, error) {
	if v0.SizeBytes() != cfg.DataLen {
		return nil, fmt.Errorf("%w: initial value has %d bytes, config says %d", ErrConfig, v0.SizeBytes(), cfg.DataLen)
	}
	chunks, _, err := EncodeWrite(cfg, oracle.InitialWrite, v0)
	if err != nil {
		return nil, err
	}
	for i := range chunks {
		chunks[i].TS = ZeroTS
	}
	return chunks, nil
}

// DecodeChunks attempts to decode a value from chunks that all carry the same
// timestamp, using the read-side oracle. It returns erasure.ErrNotEnoughBlocks
// if fewer than k distinct block indices are present.
func DecodeChunks(cfg Config, chunks []Chunk) (value.Value, error) {
	dec := oracle.NewDecoder(cfg.Code, cfg.DataLen)
	for _, c := range chunks {
		if err := dec.Push(c.Block); err != nil {
			return value.Value{}, err
		}
	}
	return dec.Done()
}

// BestDecodable groups chunks by timestamp and returns the chunks of the
// largest timestamp that is at least minTS and has at least k distinct block
// indices, along with that timestamp. The boolean result reports whether such
// a timestamp exists. It is the selection rule of the adaptive read
// (Algorithm 2, lines 18-21) and of the baseline readers.
func BestDecodable(chunks []Chunk, minTS Timestamp, k int) ([]Chunk, Timestamp, bool) {
	byTS := make(map[Timestamp][]Chunk)
	for _, c := range chunks {
		if c.TS.Less(minTS) {
			continue
		}
		byTS[c.TS] = append(byTS[c.TS], c)
	}
	candidates := make([]Timestamp, 0, len(byTS))
	for ts, group := range byTS {
		indices := make(map[int]bool, len(group))
		for _, c := range group {
			indices[c.Block.Index] = true
		}
		if len(indices) >= k {
			candidates = append(candidates, ts)
		}
	}
	if len(candidates) == 0 {
		return nil, ZeroTS, false
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[j].Less(candidates[i]) })
	best := candidates[0]
	return byTS[best], best, true
}
