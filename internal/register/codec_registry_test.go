package register_test

import (
	"errors"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// unregisteredRMW has no codec: the registry must refuse it by type.
type unregisteredRMW struct{}

func (unregisteredRMW) Apply(dsys.State) any    { return nil }
func (unregisteredRMW) Blocks() []dsys.BlockRef { return nil }

func TestCodecRegistryLookups(t *testing.T) {
	kinds := register.CodecKinds()
	if len(kinds) < 12 {
		t.Fatalf("only %d codec kinds registered: %v", len(kinds), kinds)
	}
	for _, kind := range kinds {
		c, ok := register.CodecByKind(kind)
		if !ok || c.Kind != kind {
			t.Fatalf("CodecByKind(%q) = (%+v, %v)", kind, c, ok)
		}
	}
	// Exactly the four provider read rounds are read-only: that's the set a
	// recovering node refuses before repair.
	readOnly := map[string]bool{"abd.read": true, "safe.read": true, "ec.read": true, "adaptive.read": true}
	for _, kind := range kinds {
		if register.KindReadOnly(kind) != readOnly[kind] {
			t.Fatalf("KindReadOnly(%q) = %v, want %v", kind, !readOnly[kind], readOnly[kind])
		}
	}
	if register.KindReadOnly("no.such.kind") {
		t.Fatal("unknown kind reported read-only")
	}
	if _, ok := register.CodecByKind("no.such.kind"); ok {
		t.Fatal("unknown kind resolved")
	}
	if _, ok := register.KindOf(unregisteredRMW{}); ok {
		t.Fatal("unregistered RMW type resolved")
	}
}

func TestCodecErrorPaths(t *testing.T) {
	op := dsys.OpID{Client: 1, Seq: 2, Kind: dsys.OpRead}
	if _, err := register.EncodeEnvelope(op, 0, unregisteredRMW{}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("EncodeEnvelope of unregistered type: %v", err)
	}
	if _, err := register.DecodeRMW(dsys.Envelope{Kind: "no.such.kind"}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeRMW of unknown kind: %v", err)
	}
	if _, err := register.EncodeResponse("no.such.kind", true); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("EncodeResponse of unknown kind: %v", err)
	}
	if _, err := register.DecodeResponse("no.such.kind", nil); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeResponse of unknown kind: %v", err)
	}
	// A malformed payload must latch a decode error, not panic or misparse.
	for _, kind := range register.CodecKinds() {
		if _, err := register.DecodeRMW(dsys.Envelope{Kind: kind, Payload: []byte{0xFF}}); !errors.Is(err, register.ErrCodec) {
			t.Fatalf("DecodeRMW(%s, garbage) = %v, want ErrCodec", kind, err)
		}
	}
	if err := register.RequireEmpty([]byte{1}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("RequireEmpty on non-empty: %v", err)
	}
}

// Every registered kind must round-trip a response value the way the fuzz
// target round-trips request payloads: encode(resp) must decode back.
func TestResponseCodecsRoundTrip(t *testing.T) {
	chunk := register.Chunk{TS: register.Timestamp{Num: 3, Client: 7}}
	chunk.Block.Index = 1
	chunk.Block.Data = []byte{1, 2, 3}

	if payload, err := register.EncodeBoolResp(true); err != nil {
		t.Fatal(err)
	} else if v, err := register.DecodeBoolResp(payload); err != nil || v != true {
		t.Fatalf("bool resp round trip = (%v, %v)", v, err)
	}
	if _, err := register.EncodeBoolResp("nope"); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("EncodeBoolResp of non-bool: %v", err)
	}
	if _, err := register.DecodeBoolResp([]byte{2}); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeBoolResp of bad bool byte: %v", err)
	}

	payload, err := register.EncodeChunkResp(chunk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := register.DecodeChunkResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gc := got.(register.Chunk); gc.TS != chunk.TS || gc.Block.Index != chunk.Block.Index {
		t.Fatalf("chunk resp round trip = %+v, want %+v", gc, chunk)
	}
	if _, err := register.EncodeChunkResp(42); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("EncodeChunkResp of non-chunk: %v", err)
	}
	if _, err := register.DecodeChunkResp(payload[:len(payload)-1]); !errors.Is(err, register.ErrCodec) {
		t.Fatalf("DecodeChunkResp of truncated payload: %v", err)
	}
}

// WireReader rejects structurally absurd inputs before allocating for them.
func TestWireReaderBounds(t *testing.T) {
	var w register.WireWriter
	w.Bytes([]byte("abc"))
	r := register.NewWireReader(w.Finish())
	if got := r.Bytes(); string(got) != "abc" || r.Finish() != nil {
		t.Fatalf("bytes round trip = %q, %v", got, r.Finish())
	}

	// Declared byte length beyond the buffer.
	r = register.NewWireReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("oversized declared byte length accepted")
	}
	// Declared chunk count beyond what the buffer could hold.
	r = register.NewWireReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if r.Chunks() != nil || r.Err() == nil {
		t.Fatal("oversized declared chunk count accepted")
	}
	// Trailing bytes are an error even when every read succeeded.
	r = register.NewWireReader([]byte{0, 1})
	if r.Bool(); r.Finish() == nil {
		t.Fatal("trailing payload byte accepted")
	}
}
