// Package safereg implements the simple storage-efficient algorithm of
// Appendix E: a wait-free, strongly safe (but not regular) MWMR register
// built from a k-of-n erasure code with a worst-case storage cost of exactly
// n·D/k = (2f/k + 1)·D bits.
//
// Each base object stores exactly one timestamped piece. A write overwrites
// an object's piece only if it carries a higher timestamp; a read that finds
// k pieces of a single value decodes it and otherwise returns v0, which safe
// semantics permits because in that case a write is concurrent with the read.
// Its existence shows that the Ω(min(f, c)·D) lower bound is specific to
// regular registers (it does not hold for safe ones).
package safereg

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// Register is the safe register emulation of Appendix E.
type Register struct {
	cfg register.Config
	v0  value.Value
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.SeedWriter = (*Register)(nil)
)

// New builds a safe register for the given configuration.
func New(cfg register.Config) (*Register, error) {
	v, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Register{cfg: v}, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return fmt.Sprintf("safe(f=%d,k=%d)", r.cfg.F, r.cfg.K) }

// Config implements register.Register.
func (r *Register) Config() register.Config { return r.cfg }

// InitialStates implements register.Register: object i holds the i-th piece
// of v0 with the zero timestamp (Algorithm 4's initialization).
func (r *Register) InitialStates(v0 value.Value) ([]dsys.State, error) {
	chunks, err := register.InitialChunks(r.cfg, v0)
	if err != nil {
		return nil, err
	}
	r.v0 = v0
	states := make([]dsys.State, r.cfg.N())
	for i := range states {
		states[i] = &objectState{index: i, chunk: chunks[i]}
	}
	return states, nil
}

// Write implements register.Register (Algorithm 5, lines 1-9).
func (r *Register) Write(h *dsys.ClientHandle, v value.Value) error {
	if v.SizeBytes() != r.cfg.DataLen {
		return fmt.Errorf("%w: value has %d bytes, config says %d", register.ErrConfig, v.SizeBytes(), r.cfg.DataLen)
	}
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	pieces, enc, err := register.EncodeWrite(r.cfg, op.WriteID(), v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(pieces))

	// Round 1: read timestamps.
	resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
	if err != nil {
		return err
	}
	maxNum := 0
	for obj := 0; obj < r.cfg.N(); obj++ {
		raw, ok := resp[obj]
		if !ok {
			continue
		}
		if c := raw.(register.Chunk); c.TS.Num > maxNum {
			maxNum = c.TS.Num
		}
	}
	ts := register.Timestamp{Num: maxNum + 1, Client: h.ID()}
	for i := range pieces {
		pieces[i].TS = ts
	}

	// Round 2: conditional update on every object, wait for n-f.
	_, err = h.InvokeAll(func(obj int) dsys.RMW {
		return &updateRMW{chunk: pieces[obj]}
	}, r.cfg.Quorum())
	return err
}

// WriteSeed implements register.SeedWriter: the conditional-update round
// alone, at the fixed register.SeedTS. The update RMW only overwrites
// strictly older timestamps, so replaying an interrupted seed is idempotent.
func (r *Register) WriteSeed(h *dsys.ClientHandle, v value.Value) error {
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	pieces, enc, err := register.SeedChunks(r.cfg, op, v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(pieces))
	_, err = h.InvokeAll(func(obj int) dsys.RMW { return &updateRMW{chunk: pieces[obj]} }, r.cfg.Quorum())
	return err
}

// Read implements register.Register (Algorithm 5, lines 13-19). It is
// wait-free: a single round suffices, and if no value is reconstructible the
// initial value v0 is returned, which safe semantics permits because that can
// only happen when a write is concurrent with the read.
func (r *Register) Read(h *dsys.ClientHandle) (value.Value, error) {
	v, _, err := r.ReadTimestamped(h)
	return v, err
}

// ReadTimestamped implements register.TimestampedReader: the same collect-
// and-decode read, additionally reporting the timestamp of the decoded value
// (the zero timestamp when the read falls back to v0).
func (r *Register) ReadTimestamped(h *dsys.ClientHandle) (value.Value, register.Timestamp, error) {
	h.BeginOp(dsys.OpRead)
	defer h.EndOp()
	resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
	if err != nil {
		return value.Value{}, register.ZeroTS, err
	}
	var chunks []register.Chunk
	for obj := 0; obj < r.cfg.N(); obj++ {
		if raw, ok := resp[obj]; ok {
			chunks = append(chunks, raw.(register.Chunk))
		}
	}
	if best, ts, ok := register.BestDecodable(chunks, register.ZeroTS, r.cfg.K); ok {
		v, err := register.DecodeChunks(r.cfg, best)
		return v, ts, err
	}
	return r.v0, register.ZeroTS, nil
}

// objectState holds exactly one timestamped piece.
type objectState struct {
	index int
	chunk register.Chunk
}

var _ dsys.State = (*objectState)(nil)

// Blocks implements dsys.State.
func (s *objectState) Blocks() []dsys.BlockRef { return []dsys.BlockRef{s.chunk.Ref()} }

// Chunk exposes the stored piece for tests.
func (s *objectState) Chunk() register.Chunk { return s.chunk }

// readRMW returns the object's piece.
type readRMW struct{}

var _ dsys.RMW = (*readRMW)(nil)

// Apply implements dsys.RMW.
func (*readRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	return register.CloneChunks([]register.Chunk{s.chunk})[0]
}

// Blocks implements dsys.RMW.
func (*readRMW) Blocks() []dsys.BlockRef { return nil }

// updateRMW overwrites the object's piece if the new timestamp is larger
// (Algorithm 5, lines 10-12).
type updateRMW struct {
	chunk register.Chunk
}

var _ dsys.RMW = (*updateRMW)(nil)

// Apply implements dsys.RMW.
func (u *updateRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	if s.chunk.TS.Less(u.chunk.TS) {
		s.chunk = u.chunk
		return true
	}
	return false
}

// Blocks implements dsys.RMW.
func (u *updateRMW) Blocks() []dsys.BlockRef { return []dsys.BlockRef{u.chunk.Ref()} }
