package safereg_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/register/safereg"
	"spacebounds/internal/workload"
)

func newReg(t *testing.T, f, k, dataLen int) *safereg.Register {
	t.Helper()
	reg, err := safereg.New(register.Config{F: f, K: k, DataLen: dataLen})
	if err != nil {
		t.Fatalf("safereg.New: %v", err)
	}
	return reg
}

func TestNameAndValidation(t *testing.T) {
	reg := newReg(t, 1, 2, 32)
	if reg.Name() != "safe(f=1,k=2)" {
		t.Fatalf("Name = %q", reg.Name())
	}
	if _, err := safereg.New(register.Config{F: 1, K: 0, DataLen: 4}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSequentialReadsSeeLatestWrite(t *testing.T) {
	reg := newReg(t, 1, 2, 64)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            1,
		WritesPerWriter:    3,
		Readers:            2,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors: %d/%d", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongSafety(res.History); err != nil {
		t.Fatalf("strong safety: %v", err)
	}
	last := workload.WriterValue(reg.Config(), 1, 3)
	for _, rd := range res.History.CompletedReads() {
		if !rd.Value.Equal(last) {
			t.Fatalf("write-free read returned %v, want last written value", rd.Value)
		}
	}
}

func TestWaitFreeUnderConcurrency(t *testing.T) {
	// Reads are wait-free even with writers still running; every operation
	// completes under every (fair) schedule, and strong safety holds.
	reg := newReg(t, 2, 3, 96)
	for seed := int64(1); seed <= 4; seed++ {
		res, err := workload.Run(reg, workload.Spec{
			Writers:         4,
			WritesPerWriter: 2,
			Readers:         3,
			ReadsPerReader:  2,
			Policy:          dsys.NewRandomPolicy(seed),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WriteErrors != 0 || res.ReadErrors != 0 {
			t.Fatalf("seed %d: wait-freedom violated (%d/%d errors)", seed, res.WriteErrors, res.ReadErrors)
		}
		if err := history.CheckStrongSafety(res.History); err != nil {
			t.Fatalf("seed %d strong safety: %v", seed, err)
		}
	}
}

func TestStorageIsExactlyNDk(t *testing.T) {
	// Lemma 17: the storage is always n*D/k bits regardless of concurrency.
	for _, writers := range []int{1, 2, 6} {
		reg := newReg(t, 2, 2, 120)
		cfg := reg.Config()
		res, err := workload.Run(reg, workload.Spec{
			Writers:         writers,
			WritesPerWriter: 2,
			Policy:          dsys.NewRandomPolicy(int64(writers)),
		})
		if err != nil {
			t.Fatalf("c=%d: %v", writers, err)
		}
		want := cfg.N() * cfg.DataBits() / cfg.K
		if res.MaxBaseObjectBits != want {
			t.Errorf("c=%d: max base storage = %d bits, want exactly %d", writers, res.MaxBaseObjectBits, want)
		}
		if res.QuiescentBaseObjectBits != want {
			t.Errorf("c=%d: quiescent storage = %d bits, want exactly %d", writers, res.QuiescentBaseObjectBits, want)
		}
	}
}

func TestToleratesFCrashes(t *testing.T) {
	reg := newReg(t, 2, 2, 48)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            2,
		WritesPerWriter:    2,
		Readers:            1,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		CrashObjects:       []int{1, 4},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors with f crashes: %d/%d", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongSafety(res.History); err != nil {
		t.Fatalf("strong safety under crashes: %v", err)
	}
}
