package safereg

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// State codec for snapshot persistence: the base-object index plus the stored
// piece.
func init() {
	register.RegisterStateCodec(register.StateCodec{
		Kind: "safe.state",
		Encode: func(s dsys.State) ([]byte, error) {
			st := s.(*objectState)
			var w register.WireWriter
			w.Int(st.index)
			w.Chunk(st.chunk)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.State, error) {
			r := register.NewWireReader(payload)
			st := &objectState{index: r.Int(), chunk: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return st, nil
		},
	}, &objectState{})
}
