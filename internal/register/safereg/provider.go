package safereg

import "spacebounds/internal/register"

func init() {
	register.RegisterProvider("safereg", func(cfg register.Config) (register.Register, error) {
		return New(cfg)
	})
}
