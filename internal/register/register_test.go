package register

import (
	"errors"
	"testing"
	"testing/quick"

	"spacebounds/internal/erasure"
	"spacebounds/internal/oracle"
	"spacebounds/internal/value"
)

func TestTimestampOrdering(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		less bool
	}{
		{Timestamp{0, 0}, Timestamp{0, 0}, false},
		{Timestamp{0, 0}, Timestamp{1, 0}, true},
		{Timestamp{1, 2}, Timestamp{1, 3}, true},
		{Timestamp{2, 1}, Timestamp{1, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Timestamp{1, 1}).LessEq(Timestamp{1, 1}) {
		t.Error("LessEq not reflexive")
	}
	if (Timestamp{3, 0}).Max(Timestamp{2, 9}) != (Timestamp{3, 0}) {
		t.Error("Max wrong")
	}
	if MaxTimestamp(nil) != ZeroTS {
		t.Error("MaxTimestamp(nil) != ZeroTS")
	}
	if MaxTimestamp([]Timestamp{{1, 1}, {4, 0}, {2, 7}}) != (Timestamp{4, 0}) {
		t.Error("MaxTimestamp wrong")
	}
	if (Timestamp{1, 2}).String() == "" {
		t.Error("empty String")
	}
}

func TestTimestampTotalOrderProperty(t *testing.T) {
	prop := func(a, b, c int8, d, e, f int8) bool {
		x := Timestamp{Num: int(a), Client: int(d)}
		y := Timestamp{Num: int(b), Client: int(e)}
		z := Timestamp{Num: int(c), Client: int(f)}
		// Antisymmetry and transitivity on a sample.
		if x.Less(y) && y.Less(x) {
			return false
		}
		if x.Less(y) && y.Less(z) && !x.Less(z) {
			return false
		}
		// Totality.
		return x == y || x.Less(y) || y.Less(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("timestamp order is not a total order: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg, err := Config{F: 2, K: 3, DataLen: 120}.Validate()
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.N() != 7 || cfg.Quorum() != 5 || cfg.DataBits() != 960 {
		t.Fatalf("derived parameters wrong: n=%d q=%d D=%d", cfg.N(), cfg.Quorum(), cfg.DataBits())
	}
	if cfg.Code == nil || cfg.Code.K() != 3 {
		t.Fatal("default code not built")
	}

	// k = 1 yields replication.
	cfg1, err := Config{F: 1, K: 1, DataLen: 10}.Validate()
	if err != nil {
		t.Fatalf("Validate k=1: %v", err)
	}
	if cfg1.Code.Name() != "repl(3)" {
		t.Fatalf("k=1 code = %s, want repl(3)", cfg1.Code.Name())
	}

	bad := []Config{
		{F: -1, K: 1, DataLen: 1},
		{F: 1, K: 0, DataLen: 1},
		{F: 1, K: 1, DataLen: 0},
		{F: 120, K: 120, DataLen: 1},
		{F: 1, K: 2, DataLen: 8, Code: erasure.MustReedSolomon(3, 9)}, // k mismatch
	}
	for i, b := range bad {
		if _, err := b.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("bad config %d validated: %v", i, err)
		}
	}
}

func TestEncodeWriteAndInitialChunks(t *testing.T) {
	cfg, err := Config{F: 1, K: 2, DataLen: 64}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	v := value.Sequenced(1, 1, 64)
	chunks, enc, err := EncodeWrite(cfg, oracle.WriteID{Client: 1, Seq: 1}, v)
	if err != nil {
		t.Fatalf("EncodeWrite: %v", err)
	}
	if len(chunks) != cfg.N() {
		t.Fatalf("EncodeWrite returned %d chunks, want %d", len(chunks), cfg.N())
	}
	for i, c := range chunks {
		if c.Block.Index != i+1 {
			t.Fatalf("chunk %d has block index %d", i, c.Block.Index)
		}
		if c.Source.Index != i+1 || c.Source.Write != (oracle.WriteID{Client: 1, Seq: 1}) {
			t.Fatalf("chunk %d has wrong source %v", i, c.Source)
		}
	}
	enc.Expire()

	// Decode from the first k chunks.
	got, err := DecodeChunks(cfg, chunks[:cfg.K])
	if err != nil {
		t.Fatalf("DecodeChunks: %v", err)
	}
	if !got.Equal(v) {
		t.Fatal("decoded value differs")
	}

	init, err := InitialChunks(cfg, value.Zero(64))
	if err != nil {
		t.Fatalf("InitialChunks: %v", err)
	}
	for _, c := range init {
		if c.TS != ZeroTS || c.Source.Write != oracle.InitialWrite {
			t.Fatalf("initial chunk badly tagged: %+v", c)
		}
	}
	if _, err := InitialChunks(cfg, value.Zero(3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("InitialChunks with wrong size: %v", err)
	}
}

func TestChunkHelpers(t *testing.T) {
	cfg, err := Config{F: 1, K: 2, DataLen: 16}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	chunks, _, err := EncodeWrite(cfg, oracle.WriteID{Client: 3, Seq: 4}, value.Sequenced(3, 4, 16))
	if err != nil {
		t.Fatal(err)
	}
	clone := CloneChunks(chunks)
	clone[0].Block.Data[0] ^= 0xFF
	if chunks[0].Block.Data[0] == clone[0].Block.Data[0] {
		t.Fatal("CloneChunks shares block storage")
	}
	refs := ChunkRefs(chunks)
	if len(refs) != len(chunks) || refs[0].Bits != chunks[0].Block.SizeBits() {
		t.Fatalf("ChunkRefs wrong: %+v", refs[0])
	}
}

func TestBestDecodable(t *testing.T) {
	cfg, err := Config{F: 1, K: 2, DataLen: 32}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	vOld := value.Sequenced(1, 1, 32)
	vNew := value.Sequenced(2, 1, 32)
	oldChunks, _, err := EncodeWrite(cfg, oracle.WriteID{Client: 1, Seq: 1}, vOld)
	if err != nil {
		t.Fatal(err)
	}
	newChunks, _, err := EncodeWrite(cfg, oracle.WriteID{Client: 2, Seq: 1}, vNew)
	if err != nil {
		t.Fatal(err)
	}
	tsOld := Timestamp{Num: 1, Client: 1}
	tsNew := Timestamp{Num: 2, Client: 2}
	for i := range oldChunks {
		oldChunks[i].TS = tsOld
	}
	for i := range newChunks {
		newChunks[i].TS = tsNew
	}

	// Old value fully present, new value has only one piece: best decodable
	// at minTS=0 is the old value.
	mixed := append(CloneChunks(oldChunks), newChunks[0])
	got, ts, ok := BestDecodable(mixed, ZeroTS, cfg.K)
	if !ok || ts != tsOld {
		t.Fatalf("BestDecodable = ts %v ok %v, want old ts", ts, ok)
	}
	v, err := DecodeChunks(cfg, got)
	if err != nil || !v.Equal(vOld) {
		t.Fatalf("decoded wrong value (err %v)", err)
	}

	// With minTS above the old timestamp, nothing qualifies.
	if _, _, ok := BestDecodable(mixed, tsNew, cfg.K); ok {
		t.Fatal("BestDecodable found a value above minTS unexpectedly")
	}

	// With both values fully present, the larger timestamp wins.
	both := append(CloneChunks(oldChunks), newChunks...)
	_, ts, ok = BestDecodable(both, ZeroTS, cfg.K)
	if !ok || ts != tsNew {
		t.Fatalf("BestDecodable with both = %v, want new ts", ts)
	}

	// Duplicate block indices of the same timestamp do not count as distinct.
	dups := []Chunk{newChunks[0], newChunks[0], newChunks[0]}
	if _, _, ok := BestDecodable(dups, ZeroTS, cfg.K); ok {
		t.Fatal("BestDecodable accepted duplicate indices as decodable")
	}
}
