package register

import (
	"fmt"
	"sort"
	"sync"
)

// Provider builds a register emulation from a configuration. Implementations
// register themselves under a short name ("adaptive", "abd", "ecreg",
// "safereg") from their package init, which lets shard sets and command-line
// tools build heterogeneous mixes of emulations by name without linking
// against every implementation package directly.
type Provider func(Config) (Register, error)

var (
	providerMu sync.RWMutex
	providers  = make(map[string]Provider)
)

// RegisterProvider makes a register implementation available under name.
// It panics on duplicate registration, which would indicate two packages
// claiming the same algorithm name.
func RegisterProvider(name string, p Provider) {
	providerMu.Lock()
	defer providerMu.Unlock()
	if _, dup := providers[name]; dup {
		panic(fmt.Sprintf("register: duplicate provider %q", name))
	}
	providers[name] = p
}

// NewByName builds a register via the provider registered under name.
func NewByName(name string, cfg Config) (Register, error) {
	providerMu.RLock()
	p, ok := providers[name]
	providerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("register: unknown provider %q (have %v)", name, ProviderNames())
	}
	return p(cfg)
}

// ProviderNames returns the registered provider names, sorted.
func ProviderNames() []string {
	providerMu.RLock()
	defer providerMu.RUnlock()
	names := make([]string, 0, len(providers))
	for name := range providers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
