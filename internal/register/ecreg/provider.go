package ecreg

import "spacebounds/internal/register"

func init() {
	register.RegisterProvider("ecreg", func(cfg register.Config) (register.Register, error) {
		return New(cfg)
	})
}
