package ecreg

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// Wire codecs for the pure-erasure-coded register's RMW kinds, registered at
// init so that linking the provider makes its operations transportable.
func init() {
	register.RegisterCodec(register.Codec{
		Kind:     "ec.read",
		ReadOnly: true,
		Encode:   register.EmptyPayload,
		Decode: func(payload []byte) (dsys.RMW, error) {
			if err := register.RequireEmpty(payload); err != nil {
				return nil, err
			}
			return &readRMW{}, nil
		},
		EncodeResp: func(resp any) ([]byte, error) {
			rr := resp.(readResp)
			var w register.WireWriter
			w.TS(rr.CommittedTS)
			w.Chunks(rr.Pieces)
			return w.Finish(), nil
		},
		DecodeResp: func(payload []byte) (any, error) {
			r := register.NewWireReader(payload)
			rr := readResp{CommittedTS: r.TS(), Pieces: r.Chunks()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return rr, nil
		},
	}, &readRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "ec.store",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			u := rmw.(*storeRMW)
			var w register.WireWriter
			w.Chunk(u.piece)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			r := register.NewWireReader(payload)
			u := &storeRMW{piece: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return u, nil
		},
		EncodeResp: register.EncodeBoolResp,
		DecodeResp: register.DecodeBoolResp,
	}, &storeRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "ec.seedstore",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			u := rmw.(*seedStoreRMW)
			var w register.WireWriter
			w.Chunk(u.piece)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			r := register.NewWireReader(payload)
			u := &seedStoreRMW{piece: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return u, nil
		},
		EncodeResp: register.EncodeBoolResp,
		DecodeResp: register.DecodeBoolResp,
	}, &seedStoreRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "ec.commit",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			u := rmw.(*commitRMW)
			var w register.WireWriter
			w.TS(u.ts)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			r := register.NewWireReader(payload)
			u := &commitRMW{ts: r.TS()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return u, nil
		},
		EncodeResp: register.EncodeBoolResp,
		DecodeResp: register.DecodeBoolResp,
	}, &commitRMW{})
}
