package ecreg

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// State codec for snapshot persistence: the base-object index, the highest
// committed timestamp, and every not-yet-reclaimed piece.
func init() {
	register.RegisterStateCodec(register.StateCodec{
		Kind: "ec.state",
		Encode: func(s dsys.State) ([]byte, error) {
			st := s.(*objectState)
			var w register.WireWriter
			w.Int(st.index)
			w.TS(st.committedTS)
			w.Chunks(st.pieces)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.State, error) {
			r := register.NewWireReader(payload)
			st := &objectState{index: r.Int(), committedTS: r.TS(), pieces: r.Chunks()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return st, nil
		},
	}, &objectState{})
}
