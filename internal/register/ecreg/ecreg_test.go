package ecreg_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/register/ecreg"
	"spacebounds/internal/workload"
)

func newReg(t *testing.T, f, k, dataLen int) *ecreg.Register {
	t.Helper()
	reg, err := ecreg.New(register.Config{F: f, K: k, DataLen: dataLen})
	if err != nil {
		t.Fatalf("ecreg.New: %v", err)
	}
	return reg
}

func TestNameAndValidation(t *testing.T) {
	reg := newReg(t, 1, 2, 32)
	if reg.Name() != "ecreg(f=1,k=2)" {
		t.Fatalf("Name = %q", reg.Name())
	}
	if _, err := ecreg.New(register.Config{F: -1, K: 1, DataLen: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRegularity(t *testing.T) {
	reg := newReg(t, 1, 2, 64)
	for seed := int64(1); seed <= 3; seed++ {
		res, err := workload.Run(reg, workload.Spec{
			Writers:            3,
			WritesPerWriter:    2,
			Readers:            2,
			ReadsPerReader:     2,
			ReadersAfterWrites: true,
			Policy:             dsys.NewRandomPolicy(seed),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WriteErrors != 0 || res.ReadErrors != 0 {
			t.Fatalf("seed %d: errors %d/%d", seed, res.WriteErrors, res.ReadErrors)
		}
		if err := history.CheckWeakRegularity(res.History); err != nil {
			t.Fatalf("seed %d weak regularity: %v", seed, err)
		}
		if err := history.CheckStrongRegularity(res.History); err != nil {
			t.Fatalf("seed %d strong regularity: %v", seed, err)
		}
	}
}

func TestSequentialStorageIsIdeal(t *testing.T) {
	// With sequential writes the coded register is storage-ideal: at quiesce
	// it stores n*D/k bits, like the safe register.
	reg := newReg(t, 2, 2, 120)
	cfg := reg.Config()
	res, err := workload.Run(reg, workload.Spec{Writers: 1, WritesPerWriter: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.N() * cfg.DataBits() / cfg.K
	if res.QuiescentBaseObjectBits != want {
		t.Fatalf("quiescent storage = %d, want %d", res.QuiescentBaseObjectBits, want)
	}
}

func TestStorageGrowsWithConcurrency(t *testing.T) {
	// The defining weakness (Section 1, Corollary 2): peak storage grows
	// linearly with the number of concurrent writers, because pieces of
	// incomplete writes cannot be reclaimed.
	cfgOf := func() *ecreg.Register { return newReg(t, 2, 2, 240) }
	peak := func(writers int) int {
		reg := cfgOf()
		// The default fair (FIFO) policy interleaves the writers so that all
		// store rounds are applied before any commit round, which is exactly
		// the worst case: every object transiently holds one piece per
		// concurrent writer plus the initial value's piece.
		res, err := workload.Run(reg, workload.Spec{
			Writers:         writers,
			WritesPerWriter: 1,
		})
		if err != nil {
			t.Fatalf("c=%d: %v", writers, err)
		}
		return res.MaxBaseObjectBits
	}
	cfg := cfgOf().Config()
	pieceBits := cfg.DataBits() / cfg.K
	p1, p4, p8 := peak(1), peak(4), peak(8)
	if !(p1 < p4 && p4 < p8) {
		t.Fatalf("peak storage not increasing with concurrency: c=1:%d c=4:%d c=8:%d", p1, p4, p8)
	}
	// Under the FIFO schedule the peak is exactly (c+1) pieces on each of the
	// n objects: Θ(c·D), the growth the paper's introduction describes.
	for c, p := range map[int]int{1: p1, 4: p4, 8: p8} {
		want := (c + 1) * cfg.N() * pieceBits
		if p != want {
			t.Errorf("c=%d: peak = %d bits, want (c+1)·n·D/k = %d", c, p, want)
		}
	}
}

func TestToleratesFCrashes(t *testing.T) {
	reg := newReg(t, 1, 2, 48)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            2,
		WritesPerWriter:    2,
		Readers:            1,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		CrashObjects:       []int{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors with f crashes: %d/%d", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatal(err)
	}
}
