// Package ecreg implements a pure erasure-coded register baseline in the
// style of the asynchronous code-based algorithms the paper cites ([5], [6],
// [8], [9]): base objects store one coded piece per write and may only
// garbage-collect pieces of writes that are known to have completed.
//
// The algorithm is regular and FW-terminating, and when writes are
// sequential its storage is the ideal n·D/k bits. Its weakness — the one the
// paper's lower bound shows is unavoidable without falling back to
// replication — is that with c concurrent writes every base object can
// accumulate up to c+1 pieces, for a total of Θ(c·D) bits, because a piece
// of an incomplete write can never be dropped safely (coded pieces of
// different writes cannot be combined into a readable value).
package ecreg

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// DefaultReadRetryBudget bounds read retries, as in the adaptive register.
const DefaultReadRetryBudget = 10_000

// Register is the pure erasure-coded register baseline.
type Register struct {
	cfg             register.Config
	readRetryBudget int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.SeedWriter = (*Register)(nil)
)

// New builds the baseline register for the given configuration.
func New(cfg register.Config) (*Register, error) {
	v, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Register{cfg: v, readRetryBudget: DefaultReadRetryBudget}, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return fmt.Sprintf("ecreg(f=%d,k=%d)", r.cfg.F, r.cfg.K) }

// Config implements register.Register.
func (r *Register) Config() register.Config { return r.cfg }

// SetReadRetryBudget overrides the read retry budget.
func (r *Register) SetReadRetryBudget(n int) { r.readRetryBudget = n }

// InitialStates implements register.Register.
func (r *Register) InitialStates(v0 value.Value) ([]dsys.State, error) {
	chunks, err := register.InitialChunks(r.cfg, v0)
	if err != nil {
		return nil, err
	}
	states := make([]dsys.State, r.cfg.N())
	for i := range states {
		states[i] = &objectState{index: i, pieces: []register.Chunk{chunks[i]}}
	}
	return states, nil
}

// Write implements register.Register: read-timestamp round, store round,
// commit round. The store round appends the piece unconditionally (there is
// no cap and no replication fallback); the commit round advances the
// object's committed timestamp, which is the only thing that allows pieces of
// older writes to be reclaimed.
func (r *Register) Write(h *dsys.ClientHandle, v value.Value) error {
	if v.SizeBytes() != r.cfg.DataLen {
		return fmt.Errorf("%w: value has %d bytes, config says %d", register.ErrConfig, v.SizeBytes(), r.cfg.DataLen)
	}
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	pieces, enc, err := register.EncodeWrite(r.cfg, op.WriteID(), v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(pieces))

	// Round 1: read timestamps.
	resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
	if err != nil {
		return err
	}
	maxNum := 0
	for obj := 0; obj < r.cfg.N(); obj++ {
		raw, ok := resp[obj]
		if !ok {
			continue
		}
		rr := raw.(readResp)
		if rr.CommittedTS.Num > maxNum {
			maxNum = rr.CommittedTS.Num
		}
		for _, c := range rr.Pieces {
			if c.TS.Num > maxNum {
				maxNum = c.TS.Num
			}
		}
	}
	ts := register.Timestamp{Num: maxNum + 1, Client: h.ID()}
	for i := range pieces {
		pieces[i].TS = ts
	}

	// Round 2: store one piece per object.
	if _, err := h.InvokeAll(func(obj int) dsys.RMW { return &storeRMW{piece: pieces[obj]} }, r.cfg.Quorum()); err != nil {
		return err
	}

	// Round 3: commit, enabling garbage collection of strictly older pieces.
	_, err = h.InvokeAll(func(int) dsys.RMW { return &commitRMW{ts: ts} }, r.cfg.Quorum())
	return err
}

// WriteSeed implements register.SeedWriter: store and commit rounds at the
// fixed register.SeedTS, no read round. The store uses a dedup-guarded RMW —
// the ordinary store round appends unconditionally, which would double-charge
// storage when an interrupted seed is re-driven over its own partial first
// attempt.
func (r *Register) WriteSeed(h *dsys.ClientHandle, v value.Value) error {
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	pieces, enc, err := register.SeedChunks(r.cfg, op, v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(pieces))
	if _, err := h.InvokeAll(func(obj int) dsys.RMW { return &seedStoreRMW{piece: pieces[obj]} }, r.cfg.Quorum()); err != nil {
		return err
	}
	_, err = h.InvokeAll(func(int) dsys.RMW { return &commitRMW{ts: register.SeedTS} }, r.cfg.Quorum())
	return err
}

// Read implements register.Register: retry read rounds until some value with
// a timestamp at least the highest observed committed timestamp has k
// distinct pieces, then decode it.
func (r *Register) Read(h *dsys.ClientHandle) (value.Value, error) {
	v, _, err := r.ReadTimestamped(h)
	return v, err
}

// ReadTimestamped implements register.TimestampedReader: the same read loop,
// additionally reporting the timestamp of the decoded value.
func (r *Register) ReadTimestamped(h *dsys.ClientHandle) (value.Value, register.Timestamp, error) {
	h.BeginOp(dsys.OpRead)
	defer h.EndOp()
	for attempt := 0; attempt < r.readRetryBudget; attempt++ {
		resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
		if err != nil {
			return value.Value{}, register.ZeroTS, err
		}
		committed := register.ZeroTS
		var chunks []register.Chunk
		for obj := 0; obj < r.cfg.N(); obj++ {
			raw, ok := resp[obj]
			if !ok {
				continue
			}
			rr := raw.(readResp)
			committed = committed.Max(rr.CommittedTS)
			chunks = append(chunks, rr.Pieces...)
		}
		if best, ts, ok := register.BestDecodable(chunks, committed, r.cfg.K); ok {
			v, err := register.DecodeChunks(r.cfg, best)
			return v, ts, err
		}
	}
	return value.Value{}, register.ZeroTS, register.ErrReadStarved
}

// objectState stores one piece per not-yet-reclaimed write plus the highest
// committed timestamp.
type objectState struct {
	index       int
	committedTS register.Timestamp
	pieces      []register.Chunk
}

var _ dsys.State = (*objectState)(nil)

// Blocks implements dsys.State.
func (s *objectState) Blocks() []dsys.BlockRef { return register.ChunkRefs(s.pieces) }

// PieceCount exposes the number of stored pieces for tests and experiments.
func (s *objectState) PieceCount() int { return len(s.pieces) }

// CommittedTS exposes the committed timestamp for tests.
func (s *objectState) CommittedTS() register.Timestamp { return s.committedTS }

// readResp is the read-round response.
type readResp struct {
	CommittedTS register.Timestamp
	Pieces      []register.Chunk
}

// readRMW returns the object's pieces and committed timestamp.
type readRMW struct{}

var _ dsys.RMW = (*readRMW)(nil)

// Apply implements dsys.RMW.
func (*readRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	return readResp{CommittedTS: s.committedTS, Pieces: register.CloneChunks(s.pieces)}
}

// Blocks implements dsys.RMW.
func (*readRMW) Blocks() []dsys.BlockRef { return nil }

// storeRMW appends the write's piece and prunes pieces older than the
// object's committed timestamp.
type storeRMW struct {
	piece register.Chunk
}

var _ dsys.RMW = (*storeRMW)(nil)

// Apply implements dsys.RMW.
func (u *storeRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	if u.piece.TS.Less(s.committedTS) {
		// A newer write already committed; this piece is already obsolete.
		return false
	}
	kept := s.pieces[:0]
	for _, c := range s.pieces {
		if !c.TS.Less(s.committedTS) {
			kept = append(kept, c)
		}
	}
	s.pieces = append(kept, u.piece)
	return true
}

// Blocks implements dsys.RMW.
func (u *storeRMW) Blocks() []dsys.BlockRef { return []dsys.BlockRef{u.piece.Ref()} }

// seedStoreRMW is storeRMW for reconfiguration seed writes: identical, except
// that a piece with the seed's exact timestamp already present is left alone,
// so a re-driven seed never duplicates the first attempt's pieces.
type seedStoreRMW struct {
	piece register.Chunk
}

var _ dsys.RMW = (*seedStoreRMW)(nil)

// Apply implements dsys.RMW.
func (u *seedStoreRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	for _, c := range s.pieces {
		if c.TS == u.piece.TS && c.Block.Index == u.piece.Block.Index {
			return false
		}
	}
	return (&storeRMW{piece: u.piece}).Apply(state)
}

// Blocks implements dsys.RMW.
func (u *seedStoreRMW) Blocks() []dsys.BlockRef { return []dsys.BlockRef{u.piece.Ref()} }

// commitRMW raises the committed timestamp and reclaims strictly older pieces.
type commitRMW struct {
	ts register.Timestamp
}

var _ dsys.RMW = (*commitRMW)(nil)

// Apply implements dsys.RMW.
func (cmt *commitRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	s.committedTS = s.committedTS.Max(cmt.ts)
	kept := s.pieces[:0]
	for _, c := range s.pieces {
		if !c.TS.Less(s.committedTS) {
			kept = append(kept, c)
		}
	}
	s.pieces = kept
	return true
}

// Blocks implements dsys.RMW.
func (*commitRMW) Blocks() []dsys.BlockRef { return nil }
