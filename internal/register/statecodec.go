package register

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"spacebounds/internal/dsys"
)

// This file is the base-object *state* codec registry, the snapshot-side
// sibling of the RMW codec registry in codec.go: each register emulation
// registers, from its package init, one StateCodec for its objectState type,
// keyed both by a stable wire name ("abd.state") and by the state's concrete
// Go type. A write-ahead log uses it to persist a base object's full state in
// a snapshot and to rebuild a live State on replay — the decoded form has the
// registered concrete type, so Apply-ing logged RMWs on top of it behaves
// exactly as it did in the original process, and Blocks() keeps Definition-2
// accounting exact across a restart.

// StateCodec describes the wire encoding of one provider's base-object state.
type StateCodec struct {
	// Kind is the stable wire name, conventionally "<provider>.state".
	Kind string
	// Encode serializes the full state. It is called under the object's apply
	// lock, so it observes no mid-Apply state.
	Encode func(s dsys.State) ([]byte, error)
	// Decode rebuilds a live State from Encode's output.
	Decode func(payload []byte) (dsys.State, error)
}

var (
	stateCodecMu     sync.RWMutex
	stateCodecByKind = make(map[string]StateCodec)
	stateCodecByType = make(map[reflect.Type]StateCodec)
)

// RegisterStateCodec installs a state codec for the State whose concrete type
// is that of prototype. Like RegisterCodec it panics on duplicates; providers
// call it from init, one registration per provider.
func RegisterStateCodec(c StateCodec, prototype dsys.State) {
	if c.Kind == "" || c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("register: incomplete state codec for kind %q", c.Kind))
	}
	t := reflect.TypeOf(prototype)
	stateCodecMu.Lock()
	defer stateCodecMu.Unlock()
	if _, dup := stateCodecByKind[c.Kind]; dup {
		panic(fmt.Sprintf("register: duplicate state codec kind %q", c.Kind))
	}
	if _, dup := stateCodecByType[t]; dup {
		panic(fmt.Sprintf("register: duplicate state codec for type %v", t))
	}
	stateCodecByKind[c.Kind] = c
	stateCodecByType[t] = c
}

// StateCodecKinds returns the registered state kind names, sorted.
func StateCodecKinds() []string {
	stateCodecMu.RLock()
	defer stateCodecMu.RUnlock()
	kinds := make([]string, 0, len(stateCodecByKind))
	for k := range stateCodecByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// EncodeState serializes a base-object state, returning its wire kind and
// payload.
func EncodeState(s dsys.State) (kind string, payload []byte, err error) {
	stateCodecMu.RLock()
	c, ok := stateCodecByType[reflect.TypeOf(s)]
	stateCodecMu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("%w: no state codec for type %T", ErrCodec, s)
	}
	payload, err = c.Encode(s)
	if err != nil {
		return "", nil, fmt.Errorf("%w: encoding %s: %v", ErrCodec, c.Kind, err)
	}
	return c.Kind, payload, nil
}

// DecodeState rebuilds a live base-object state of the given wire kind.
func DecodeState(kind string, payload []byte) (dsys.State, error) {
	stateCodecMu.RLock()
	c, ok := stateCodecByKind[kind]
	stateCodecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: unknown state kind %q", ErrCodec, kind)
	}
	s, err := c.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding %s: %v", ErrCodec, kind, err)
	}
	return s, nil
}
