package register

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"spacebounds/internal/dsys"
	"spacebounds/internal/erasure"
	"spacebounds/internal/oracle"
)

// This file is the per-provider codec registry: each register emulation
// registers, from its package init, a Codec per RMW kind it triggers, keyed
// both by a stable wire name ("abd.update") and by the RMW's concrete Go type.
// A transport encodes an outgoing RMW by type lookup, ships the
// dsys.Envelope, and the hosting process decodes it back into a live RMW
// value of the same concrete type — so Apply and Blocks() run on the decoded
// form and Definition-2 storage charging is computed exactly as in-process.

// Codec describes the wire encoding of one RMW kind and of its response.
type Codec struct {
	// Kind is the stable wire name, conventionally "<provider>.<rmw>".
	Kind string
	// ReadOnly marks kinds whose Apply never mutates base-object state. A
	// node restarted with empty state refuses read-only kinds per object
	// until a mutating RMW has repopulated it (recovery mode), which is what
	// keeps quorum reads regular across kill -9 restarts.
	ReadOnly bool
	// Encode serializes the RMW's parameters (not its kind or target).
	Encode func(rmw dsys.RMW) ([]byte, error)
	// Decode rebuilds a live RMW from Encode's output.
	Decode func(payload []byte) (dsys.RMW, error)
	// EncodeResp serializes the response returned by the RMW's Apply.
	EncodeResp func(resp any) ([]byte, error)
	// DecodeResp rebuilds the response value from EncodeResp's output.
	DecodeResp func(payload []byte) (any, error)
}

// ErrCodec reports codec registry failures: unknown kinds, unregistered RMW
// types, malformed payloads.
var ErrCodec = errors.New("register: codec error")

var (
	codecMu     sync.RWMutex
	codecByKind = make(map[string]Codec)
	codecByType = make(map[reflect.Type]Codec)
)

// RegisterCodec installs a codec for the RMW kind whose concrete type is that
// of prototype. It panics on duplicate kind names or duplicate types, which
// would indicate two providers claiming the same wire name. Providers call it
// from init, one registration per RMW kind.
func RegisterCodec(c Codec, prototype dsys.RMW) {
	if c.Kind == "" || c.Encode == nil || c.Decode == nil || c.EncodeResp == nil || c.DecodeResp == nil {
		panic(fmt.Sprintf("register: incomplete codec for kind %q", c.Kind))
	}
	t := reflect.TypeOf(prototype)
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByKind[c.Kind]; dup {
		panic(fmt.Sprintf("register: duplicate codec kind %q", c.Kind))
	}
	if _, dup := codecByType[t]; dup {
		panic(fmt.Sprintf("register: duplicate codec for type %v", t))
	}
	codecByKind[c.Kind] = c
	codecByType[t] = c
}

// CodecKinds returns the registered RMW kind names, sorted.
func CodecKinds() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	kinds := make([]string, 0, len(codecByKind))
	for k := range codecByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// CodecByKind returns the codec registered under kind.
func CodecByKind(kind string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByKind[kind]
	return c, ok
}

// KindOf returns the wire kind registered for the RMW's concrete type.
func KindOf(rmw dsys.RMW) (string, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByType[reflect.TypeOf(rmw)]
	return c.Kind, ok
}

// KindReadOnly reports whether kind is registered as read-only. Unknown kinds
// report false — a node in recovery refuses only what it can prove harmless.
func KindReadOnly(kind string) bool {
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecByKind[kind].ReadOnly
}

// EncodeEnvelope serializes a live RMW into a wire envelope addressed at the
// given global base object on behalf of operation op.
func EncodeEnvelope(op dsys.OpID, object int, rmw dsys.RMW) (dsys.Envelope, error) {
	codecMu.RLock()
	c, ok := codecByType[reflect.TypeOf(rmw)]
	codecMu.RUnlock()
	if !ok {
		return dsys.Envelope{}, fmt.Errorf("%w: no codec for RMW type %T", ErrCodec, rmw)
	}
	payload, err := c.Encode(rmw)
	if err != nil {
		return dsys.Envelope{}, fmt.Errorf("%w: encoding %s: %v", ErrCodec, c.Kind, err)
	}
	return dsys.Envelope{Op: op, Object: object, Kind: c.Kind, Payload: payload}, nil
}

// DecodeRMW rebuilds the live RMW carried by an envelope. The returned value
// has the registered concrete type, so its Apply and Blocks behave exactly as
// the original.
func DecodeRMW(env dsys.Envelope) (dsys.RMW, error) {
	c, ok := CodecByKind(env.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown RMW kind %q", ErrCodec, env.Kind)
	}
	rmw, err := c.Decode(env.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding %s: %v", ErrCodec, env.Kind, err)
	}
	return rmw, nil
}

// EncodeResponse serializes the response of an applied RMW of the given kind.
func EncodeResponse(kind string, resp any) ([]byte, error) {
	c, ok := CodecByKind(kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown RMW kind %q", ErrCodec, kind)
	}
	payload, err := c.EncodeResp(resp)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding %s response: %v", ErrCodec, kind, err)
	}
	return payload, nil
}

// DecodeResponse rebuilds a response value of the given kind.
func DecodeResponse(kind string, payload []byte) (any, error) {
	c, ok := CodecByKind(kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown RMW kind %q", ErrCodec, kind)
	}
	resp, err := c.DecodeResp(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding %s response: %v", ErrCodec, kind, err)
	}
	return resp, nil
}

// WireWriter builds codec payloads. The encoding is deterministic and
// fixed-width (big-endian), so encode→decode→re-encode is byte-identical —
// the property FuzzEnvelopeRoundTrip pins down.
type WireWriter struct {
	b []byte
}

// Int appends a signed integer as a two's-complement big-endian u64.
func (w *WireWriter) Int(v int) { w.b = binary.BigEndian.AppendUint64(w.b, uint64(v)) }

// Bool appends a single 0/1 byte.
func (w *WireWriter) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Bytes appends a u32 length prefix followed by the bytes.
func (w *WireWriter) Bytes(p []byte) {
	if len(p) > math.MaxUint32 {
		panic(fmt.Sprintf("register: wire bytes of length %d", len(p)))
	}
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(len(p)))
	w.b = append(w.b, p...)
}

// TS appends a timestamp.
func (w *WireWriter) TS(t Timestamp) {
	w.Int(t.Num)
	w.Int(t.Client)
}

// Chunk appends a timestamped code block with its source tag.
func (w *WireWriter) Chunk(c Chunk) {
	w.TS(c.TS)
	w.Int(c.Block.Index)
	w.Bytes(c.Block.Data)
	w.Int(c.Source.Write.Client)
	w.Int(c.Source.Write.Seq)
	w.Int(c.Source.Index)
}

// Chunks appends a u32 count followed by each chunk.
func (w *WireWriter) Chunks(cs []Chunk) {
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(len(cs)))
	for _, c := range cs {
		w.Chunk(c)
	}
}

// Finish returns the accumulated payload.
func (w *WireWriter) Finish() []byte { return w.b }

// WireReader consumes codec payloads written by WireWriter. The first short
// read latches an error; Finish reports it and rejects trailing bytes.
type WireReader struct {
	b   []byte
	off int
	err error
}

// NewWireReader wraps a payload.
func NewWireReader(b []byte) *WireReader { return &WireReader{b: b} }

func (r *WireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated payload at offset %d", ErrCodec, r.off)
	}
}

func (r *WireReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// Int reads a signed integer.
func (r *WireReader) Int() int {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int(int64(binary.BigEndian.Uint64(b)))
}

// Bool reads a 0/1 byte; any other value is an error.
func (r *WireReader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: bool byte %d", ErrCodec, b[0])
		}
		return false
	}
}

// Bytes reads a length-prefixed byte string into a fresh slice (never
// aliasing the payload buffer, which a transport may reuse).
func (r *WireReader) Bytes() []byte {
	b := r.take(4)
	if b == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(n) > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	src := r.take(int(n))
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// TS reads a timestamp.
func (r *WireReader) TS() Timestamp { return Timestamp{Num: r.Int(), Client: r.Int()} }

// Chunk reads a chunk.
func (r *WireReader) Chunk() Chunk {
	c := Chunk{TS: r.TS()}
	c.Block = erasure.Block{Index: r.Int(), Data: r.Bytes()}
	c.Source = oracle.SourceTag{
		Write: oracle.WriteID{Client: r.Int(), Seq: r.Int()},
		Index: r.Int(),
	}
	return c
}

// Chunks reads a counted chunk sequence.
func (r *WireReader) Chunks() []Chunk {
	b := r.take(4)
	if b == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(b)
	// Every chunk occupies at least its fixed-width fields, so a count
	// implying more bytes than remain is rejected before allocating.
	const minChunk = 8 * 6
	if uint64(n)*minChunk > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	out := make([]Chunk, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.Chunk())
	}
	return out
}

// Err returns the latched decode error, if any.
func (r *WireReader) Err() error { return r.err }

// Finish reports the latched error, or an error if payload bytes remain.
func (r *WireReader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCodec, len(r.b)-r.off)
	}
	return nil
}

// EmptyPayload is the shared Encode half of parameterless RMW kinds.
func EmptyPayload(dsys.RMW) ([]byte, error) { return nil, nil }

// RequireEmpty validates that a parameterless RMW kind's payload is empty.
func RequireEmpty(payload []byte) error {
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d bytes on parameterless RMW", ErrCodec, len(payload))
	}
	return nil
}

// EncodeBoolResp / DecodeBoolResp are the shared response codec of RMW kinds
// answering a plain bool.
func EncodeBoolResp(resp any) ([]byte, error) {
	v, ok := resp.(bool)
	if !ok {
		return nil, fmt.Errorf("%w: response %T is not bool", ErrCodec, resp)
	}
	var w WireWriter
	w.Bool(v)
	return w.Finish(), nil
}

// DecodeBoolResp decodes a bool response payload.
func DecodeBoolResp(payload []byte) (any, error) {
	r := NewWireReader(payload)
	v := r.Bool()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeChunkResp / DecodeChunkResp are the shared response codec of RMW
// kinds answering a single Chunk (the ABD and safe-register read rounds).
func EncodeChunkResp(resp any) ([]byte, error) {
	c, ok := resp.(Chunk)
	if !ok {
		return nil, fmt.Errorf("%w: response %T is not Chunk", ErrCodec, resp)
	}
	var w WireWriter
	w.Chunk(c)
	return w.Finish(), nil
}

// DecodeChunkResp decodes a single-chunk response payload.
func DecodeChunkResp(payload []byte) (any, error) {
	r := NewWireReader(payload)
	c := r.Chunk()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return c, nil
}
