// Package abd implements the replication baseline [4] (Attiya, Bar-Noy,
// Dolev): a multi-writer multi-reader regular register over n = 2f + 1 full
// replicas. It is the O(f·D) end of the storage trade-off the paper studies:
// its storage cost is (2f+1)·D bits regardless of the concurrency level,
// because every base object stores one full copy of a single value that a
// reader can always use on its own.
//
// The implementation is the paper's adaptive algorithm specialized to k = 1
// conceptually, but written directly: a write reads timestamps from a
// majority, picks a higher one, and stores ⟨v, ts⟩ on a majority; a read
// collects a majority and returns the value with the highest timestamp.
// Without reader write-back the register is (strongly) regular, which is the
// consistency level the paper's bounds are stated for.
package abd

import (
	"fmt"

	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
	"spacebounds/internal/value"
)

// Register is the ABD replication register.
type Register struct {
	cfg register.Config
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.SeedWriter = (*Register)(nil)
)

// New builds an ABD register tolerating cfg.F failures over 2f+1 replicas.
// The configuration's K must be 1 (replication); Code defaults to the
// replication code.
func New(cfg register.Config) (*Register, error) {
	if cfg.K == 0 {
		cfg.K = 1
	}
	if cfg.K != 1 {
		return nil, fmt.Errorf("%w: abd requires k = 1, got %d", register.ErrConfig, cfg.K)
	}
	v, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Register{cfg: v}, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return fmt.Sprintf("abd(f=%d)", r.cfg.F) }

// Config implements register.Register.
func (r *Register) Config() register.Config { return r.cfg }

// InitialStates implements register.Register: every replica holds v0.
func (r *Register) InitialStates(v0 value.Value) ([]dsys.State, error) {
	chunks, err := register.InitialChunks(r.cfg, v0)
	if err != nil {
		return nil, err
	}
	states := make([]dsys.State, r.cfg.N())
	for i := range states {
		states[i] = &objectState{chunk: chunks[i]}
	}
	return states, nil
}

// Write implements register.Register.
func (r *Register) Write(h *dsys.ClientHandle, v value.Value) error {
	if v.SizeBytes() != r.cfg.DataLen {
		return fmt.Errorf("%w: value has %d bytes, config says %d", register.ErrConfig, v.SizeBytes(), r.cfg.DataLen)
	}
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	replicas, enc, err := register.EncodeWrite(r.cfg, op.WriteID(), v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(replicas[:1]))

	// Phase 1: query a majority for the highest timestamp.
	resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
	if err != nil {
		return err
	}
	maxNum := 0
	for obj := 0; obj < r.cfg.N(); obj++ {
		if raw, ok := resp[obj]; ok {
			if c := raw.(register.Chunk); c.TS.Num > maxNum {
				maxNum = c.TS.Num
			}
		}
	}
	ts := register.Timestamp{Num: maxNum + 1, Client: h.ID()}
	for i := range replicas {
		replicas[i].TS = ts
	}

	// Phase 2: store the full replica on a majority.
	_, err = h.InvokeAll(func(obj int) dsys.RMW { return &updateRMW{chunk: replicas[obj]} }, r.cfg.Quorum())
	return err
}

// WriteSeed implements register.SeedWriter: the write phase alone, at the
// fixed register.SeedTS. The update RMW only overwrites strictly older
// timestamps, so re-driving an interrupted seed is a no-op on every replica
// the first attempt already reached.
func (r *Register) WriteSeed(h *dsys.ClientHandle, v value.Value) error {
	op := h.BeginOp(dsys.OpWrite)
	defer h.EndOp()
	replicas, enc, err := register.SeedChunks(r.cfg, op, v)
	if err != nil {
		return err
	}
	defer enc.Expire()
	h.SetLocalBlocks(register.ChunkRefs(replicas[:1]))
	_, err = h.InvokeAll(func(obj int) dsys.RMW { return &updateRMW{chunk: replicas[obj]} }, r.cfg.Quorum())
	return err
}

// Read implements register.Register.
func (r *Register) Read(h *dsys.ClientHandle) (value.Value, error) {
	v, _, err := r.ReadTimestamped(h)
	return v, err
}

// ReadTimestamped implements register.TimestampedReader: the same majority
// read, additionally reporting the timestamp of the returned replica.
func (r *Register) ReadTimestamped(h *dsys.ClientHandle) (value.Value, register.Timestamp, error) {
	h.BeginOp(dsys.OpRead)
	defer h.EndOp()
	resp, err := h.InvokeAll(func(int) dsys.RMW { return &readRMW{} }, r.cfg.Quorum())
	if err != nil {
		return value.Value{}, register.ZeroTS, err
	}
	best := register.Chunk{}
	found := false
	for obj := 0; obj < r.cfg.N(); obj++ {
		raw, ok := resp[obj]
		if !ok {
			continue
		}
		c := raw.(register.Chunk)
		if !found || best.TS.Less(c.TS) {
			best, found = c, true
		}
	}
	if !found {
		return value.Value{}, register.ZeroTS, fmt.Errorf("abd: read received no responses")
	}
	v, err := register.DecodeChunks(r.cfg, []register.Chunk{best})
	return v, best.TS, err
}

// objectState holds one timestamped full replica.
type objectState struct {
	chunk register.Chunk
}

var _ dsys.State = (*objectState)(nil)

// Blocks implements dsys.State.
func (s *objectState) Blocks() []dsys.BlockRef { return []dsys.BlockRef{s.chunk.Ref()} }

// Chunk exposes the stored replica for tests.
func (s *objectState) Chunk() register.Chunk { return s.chunk }

// readRMW returns the replica.
type readRMW struct{}

var _ dsys.RMW = (*readRMW)(nil)

// Apply implements dsys.RMW.
func (*readRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	return register.CloneChunks([]register.Chunk{s.chunk})[0]
}

// Blocks implements dsys.RMW.
func (*readRMW) Blocks() []dsys.BlockRef { return nil }

// updateRMW overwrites the replica if the new timestamp is higher.
type updateRMW struct {
	chunk register.Chunk
}

var _ dsys.RMW = (*updateRMW)(nil)

// Apply implements dsys.RMW.
func (u *updateRMW) Apply(state dsys.State) any {
	s := state.(*objectState)
	if s.chunk.TS.Less(u.chunk.TS) {
		s.chunk = u.chunk
		return true
	}
	return false
}

// Blocks implements dsys.RMW.
func (u *updateRMW) Blocks() []dsys.BlockRef { return []dsys.BlockRef{u.chunk.Ref()} }
