package abd

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// Wire codecs for the ABD RMW kinds, registered at init so that linking the
// provider makes its operations transportable.
func init() {
	register.RegisterCodec(register.Codec{
		Kind:     "abd.read",
		ReadOnly: true,
		Encode:   register.EmptyPayload,
		Decode: func(payload []byte) (dsys.RMW, error) {
			if err := register.RequireEmpty(payload); err != nil {
				return nil, err
			}
			return &readRMW{}, nil
		},
		EncodeResp: register.EncodeChunkResp,
		DecodeResp: register.DecodeChunkResp,
	}, &readRMW{})

	register.RegisterCodec(register.Codec{
		Kind: "abd.update",
		Encode: func(rmw dsys.RMW) ([]byte, error) {
			u := rmw.(*updateRMW)
			var w register.WireWriter
			w.Chunk(u.chunk)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.RMW, error) {
			r := register.NewWireReader(payload)
			u := &updateRMW{chunk: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return u, nil
		},
		EncodeResp: register.EncodeBoolResp,
		DecodeResp: register.DecodeBoolResp,
	}, &updateRMW{})
}
