package abd_test

import (
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/history"
	"spacebounds/internal/register"
	"spacebounds/internal/register/abd"
	"spacebounds/internal/workload"
)

func newReg(t *testing.T, f, dataLen int) *abd.Register {
	t.Helper()
	reg, err := abd.New(register.Config{F: f, K: 1, DataLen: dataLen})
	if err != nil {
		t.Fatalf("abd.New: %v", err)
	}
	return reg
}

func TestNameAndValidation(t *testing.T) {
	reg := newReg(t, 2, 16)
	if reg.Name() != "abd(f=2)" {
		t.Fatalf("Name = %q", reg.Name())
	}
	if reg.Config().N() != 5 {
		t.Fatalf("n = %d, want 5", reg.Config().N())
	}
	if _, err := abd.New(register.Config{F: 1, K: 3, DataLen: 4}); err == nil {
		t.Fatal("abd accepted k != 1")
	}
	// K = 0 defaults to 1.
	if reg2, err := abd.New(register.Config{F: 1, DataLen: 4}); err != nil || reg2.Config().K != 1 {
		t.Fatalf("abd with default k: %v", err)
	}
}

func TestRegularityAcrossSchedules(t *testing.T) {
	reg := newReg(t, 1, 64)
	for seed := int64(1); seed <= 4; seed++ {
		res, err := workload.Run(reg, workload.Spec{
			Writers:         3,
			WritesPerWriter: 2,
			Readers:         2,
			ReadsPerReader:  3,
			Policy:          dsys.NewRandomPolicy(seed),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WriteErrors != 0 || res.ReadErrors != 0 {
			t.Fatalf("seed %d: errors %d/%d (ABD ops are wait-free)", seed, res.WriteErrors, res.ReadErrors)
		}
		if err := history.CheckStrongRegularity(res.History); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStorageIsConstantReplication(t *testing.T) {
	// Replication stores (2f+1)*D bits regardless of the concurrency level.
	for _, writers := range []int{1, 4, 8} {
		reg := newReg(t, 2, 100)
		cfg := reg.Config()
		res, err := workload.Run(reg, workload.Spec{
			Writers:         writers,
			WritesPerWriter: 2,
			Policy:          dsys.NewRandomPolicy(int64(writers)),
		})
		if err != nil {
			t.Fatalf("c=%d: %v", writers, err)
		}
		want := cfg.N() * cfg.DataBits()
		if res.MaxBaseObjectBits != want {
			t.Errorf("c=%d: storage = %d bits, want exactly %d", writers, res.MaxBaseObjectBits, want)
		}
	}
}

func TestToleratesFCrashes(t *testing.T) {
	reg := newReg(t, 2, 32)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            2,
		WritesPerWriter:    3,
		Readers:            2,
		ReadsPerReader:     2,
		ReadersAfterWrites: true,
		CrashObjects:       []int{0, 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WriteErrors != 0 || res.ReadErrors != 0 {
		t.Fatalf("errors with f crashes: %d/%d", res.WriteErrors, res.ReadErrors)
	}
	if err := history.CheckStrongRegularity(res.History); err != nil {
		t.Fatal(err)
	}
}

func TestReadsSeeLatestCompletedWrite(t *testing.T) {
	reg := newReg(t, 1, 48)
	res, err := workload.Run(reg, workload.Spec{
		Writers:            1,
		WritesPerWriter:    5,
		Readers:            1,
		ReadsPerReader:     3,
		ReadersAfterWrites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := workload.WriterValue(reg.Config(), 1, 5)
	for _, rd := range res.History.CompletedReads() {
		if !rd.Value.Equal(last) {
			t.Fatalf("read returned %v, want last written value", rd.Value)
		}
	}
}
