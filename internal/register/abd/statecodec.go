package abd

import (
	"spacebounds/internal/dsys"
	"spacebounds/internal/register"
)

// State codec for snapshot persistence: the full replica state is a single
// timestamped chunk.
func init() {
	register.RegisterStateCodec(register.StateCodec{
		Kind: "abd.state",
		Encode: func(s dsys.State) ([]byte, error) {
			st := s.(*objectState)
			var w register.WireWriter
			w.Chunk(st.chunk)
			return w.Finish(), nil
		},
		Decode: func(payload []byte) (dsys.State, error) {
			r := register.NewWireReader(payload)
			st := &objectState{chunk: r.Chunk()}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return st, nil
		},
	}, &objectState{})
}
