package abd

import "spacebounds/internal/register"

func init() {
	register.RegisterProvider("abd", func(cfg register.Config) (register.Register, error) {
		return New(cfg)
	})
}
