package register_test

import (
	"bytes"
	"testing"

	"spacebounds/internal/dsys"
	"spacebounds/internal/erasure"
	"spacebounds/internal/oracle"
	"spacebounds/internal/register"

	// Link all four providers so their codecs are registered.
	_ "spacebounds/internal/register/abd"
	_ "spacebounds/internal/register/adaptive"
	_ "spacebounds/internal/register/ecreg"
	_ "spacebounds/internal/register/safereg"
)

// mkChunk builds a chunk with non-trivial field values.
func mkChunk(salt int) register.Chunk {
	return register.Chunk{
		TS:     register.Timestamp{Num: 7 + salt, Client: 3},
		Block:  erasure.Block{Index: 2 + salt, Data: []byte{0xde, 0xad, 0xbe}},
		Source: oracle.SourceTag{Write: oracle.WriteID{Client: 3, Seq: 9 + salt}, Index: 2 + salt},
	}
}

// seedPayloads returns one well-formed payload per registered RMW kind, built
// directly in the wire format (provider RMW types are unexported, so seeds
// are constructed at the byte level).
func seedPayloads() map[string][]byte {
	chunk := func(salt int) []byte {
		var w register.WireWriter
		w.Chunk(mkChunk(salt))
		return w.Finish()
	}
	ts := func() []byte {
		var w register.WireWriter
		w.TS(register.Timestamp{Num: 5, Client: 1})
		return w.Finish()
	}
	gc := func() []byte {
		var w register.WireWriter
		w.TS(register.Timestamp{Num: 4, Client: 0})
		w.Chunk(mkChunk(1))
		return w.Finish()
	}
	return map[string][]byte{
		"abd.read":            nil,
		"abd.update":          chunk(0),
		"safe.read":           nil,
		"safe.update":         chunk(1),
		"ec.read":             nil,
		"ec.store":            chunk(2),
		"ec.seedstore":        chunk(3),
		"ec.commit":           ts(),
		"adaptive.read":       nil,
		"adaptive.update":     adaptiveUpdatePayload(0),
		"adaptive.seedupdate": adaptiveUpdatePayload(1),
		"adaptive.gc":         gc(),
	}
}

// adaptiveUpdatePayload builds an update payload carrying a piece plus a
// two-chunk full replica.
func adaptiveUpdatePayload(salt int) []byte {
	var w register.WireWriter
	w.Int(2) // k
	w.TS(register.Timestamp{Num: 8 + salt, Client: 4})
	w.TS(register.Timestamp{Num: 6, Client: 2})
	w.Chunk(mkChunk(salt))
	w.Chunks([]register.Chunk{mkChunk(salt + 1), mkChunk(salt + 2)})
	return w.Finish()
}

// checkRoundTrip asserts the codec fixpoint for one kind: if payload decodes,
// then encode(decode(payload)) is canonical — decoding and re-encoding it
// reproduces the same bytes, at both the payload and the envelope level.
func checkRoundTrip(t *testing.T, kind string, payload []byte) {
	t.Helper()
	c, ok := register.CodecByKind(kind)
	if !ok {
		t.Fatalf("kind %q not registered", kind)
	}
	rmw, err := c.Decode(payload)
	if err != nil {
		return // malformed input is allowed; it just must not round-trip wrong
	}
	enc1, err := c.Encode(rmw)
	if err != nil {
		t.Fatalf("%s: encode of decoded RMW failed: %v", kind, err)
	}
	rmw2, err := c.Decode(enc1)
	if err != nil {
		t.Fatalf("%s: re-decode of canonical payload failed: %v", kind, err)
	}
	enc2, err := c.Encode(rmw2)
	if err != nil {
		t.Fatalf("%s: re-encode failed: %v", kind, err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("%s: canonical payload not a fixpoint:\n  enc1 %x\n  enc2 %x", kind, enc1, enc2)
	}

	// Envelope level: wrap, marshal, unmarshal, decode, re-encode.
	op := dsys.OpID{Client: 11, Seq: 42, Kind: dsys.OpWrite}
	env1, err := register.EncodeEnvelope(op, 5, rmw)
	if err != nil {
		t.Fatalf("%s: EncodeEnvelope: %v", kind, err)
	}
	wire1, err := env1.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: envelope marshal: %v", kind, err)
	}
	env2, err := dsys.UnmarshalEnvelope(wire1)
	if err != nil {
		t.Fatalf("%s: envelope unmarshal: %v", kind, err)
	}
	rmw3, err := register.DecodeRMW(env2)
	if err != nil {
		t.Fatalf("%s: DecodeRMW: %v", kind, err)
	}
	env3, err := register.EncodeEnvelope(env2.Op, env2.Object, rmw3)
	if err != nil {
		t.Fatalf("%s: re-EncodeEnvelope: %v", kind, err)
	}
	wire2, err := env3.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: envelope re-marshal: %v", kind, err)
	}
	if !bytes.Equal(wire1, wire2) {
		t.Fatalf("%s: envelope bytes not a fixpoint:\n  %x\n  %x", kind, wire1, wire2)
	}
	if got := rmw3.Blocks(); got == nil != (rmw.Blocks() == nil) || len(got) != len(rmw.Blocks()) {
		t.Fatalf("%s: decoded RMW reports %d blocks, original %d", kind, len(got), len(rmw.Blocks()))
	}

	// Versioned case: the same envelope carrying a trace context must encode
	// as version 2, round-trip the trace words, and stay a byte fixpoint —
	// while the untraced wire above stays version 1 (the pre-trace layout old
	// peers decode).
	if wire1[0] != 1 {
		t.Fatalf("%s: untraced envelope encoded as version %d, want 1", kind, wire1[0])
	}
	traced := env1
	traced.Trace = uint64(len(payload))<<32 | 0x5EED
	traced.Span = uint64(len(kind)) + 1
	twire1, err := traced.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: traced envelope marshal: %v", kind, err)
	}
	if twire1[0] != 2 {
		t.Fatalf("%s: traced envelope encoded as version %d, want 2", kind, twire1[0])
	}
	tenv, err := dsys.UnmarshalEnvelope(twire1)
	if err != nil {
		t.Fatalf("%s: traced envelope unmarshal: %v", kind, err)
	}
	if tenv.Trace != traced.Trace || tenv.Span != traced.Span {
		t.Fatalf("%s: trace context round-tripped to (%d, %d), want (%d, %d)",
			kind, tenv.Trace, tenv.Span, traced.Trace, traced.Span)
	}
	twire2, err := tenv.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: traced envelope re-marshal: %v", kind, err)
	}
	if !bytes.Equal(twire1, twire2) {
		t.Fatalf("%s: traced envelope bytes not a fixpoint:\n  %x\n  %x", kind, twire1, twire2)
	}
	// And a v1 (pre-trace) frame always yields the empty trace context.
	if env2.Trace != 0 || env2.Span != 0 {
		t.Fatalf("%s: v1 envelope decoded with trace context (%d, %d)", kind, env2.Trace, env2.Span)
	}
}

// TestEnvelopeRoundTripAllKinds deterministically verifies the round-trip
// property on a well-formed payload of every registered kind — the fuzz
// seeds double as a conformance test, so a provider whose codec drifts fails
// plain `go test` too.
func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	seeds := seedPayloads()
	for _, kind := range register.CodecKinds() {
		payload, ok := seeds[kind]
		if !ok {
			t.Errorf("no seed payload for registered kind %q — add one", kind)
			continue
		}
		c, _ := register.CodecByKind(kind)
		if _, err := c.Decode(payload); err != nil {
			t.Errorf("%s: seed payload does not decode: %v", kind, err)
			continue
		}
		checkRoundTrip(t, kind, payload)
	}
	// Read-only flags: exactly the four read rounds.
	wantRO := map[string]bool{"abd.read": true, "safe.read": true, "ec.read": true, "adaptive.read": true}
	for _, kind := range register.CodecKinds() {
		if register.KindReadOnly(kind) != wantRO[kind] {
			t.Errorf("%s: ReadOnly = %v, want %v", kind, register.KindReadOnly(kind), wantRO[kind])
		}
	}
}

// FuzzEnvelopeRoundTrip fuzzes the codec registry across all four providers:
// any payload that decodes must re-encode to a canonical byte-identical
// fixpoint, at the payload and the envelope level.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	kinds := register.CodecKinds()
	index := make(map[string]int, len(kinds))
	for i, k := range kinds {
		index[k] = i
	}
	for kind, payload := range seedPayloads() {
		i, ok := index[kind]
		if !ok {
			f.Fatalf("seed for unregistered kind %q", kind)
		}
		f.Add(uint8(i), payload)
	}
	f.Fuzz(func(t *testing.T, kindIdx uint8, payload []byte) {
		kind := kinds[int(kindIdx)%len(kinds)]
		checkRoundTrip(t, kind, payload)
	})
}
